#ifndef ESP_CORE_METRICS_H_
#define ESP_CORE_METRICS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace esp::core {

/// \brief Durability-layer counters (docs/RECOVERY.md), maintained by the
/// RecoveryCoordinator against its processor and surfaced in
/// EspProcessor::Health() so operators can watch checkpoint cadence and
/// restore behaviour alongside liveness.
struct RecoveryStats {
  int64_t checkpoints_written = 0;
  /// Records appended to the input journal this session (incl. recovered
  /// prefix after a restore).
  int64_t journal_records = 0;
  /// Bytes appended to the input journal by this session's writer.
  int64_t journal_bytes = 0;
  /// Restores performed into this processor (0 or 1 in practice).
  int64_t restores = 0;
  /// Journal records replayed during restores.
  int64_t restore_replays = 0;
  /// Snapshots that failed validation (CRC/truncation) and were skipped in
  /// favour of an older one.
  int64_t corrupt_snapshots_skipped = 0;
  /// Bytes discarded from the journal's torn tail during restores.
  int64_t journal_torn_bytes = 0;

  /// One-line summary for health reports.
  std::string ToString() const;
};

/// \brief Equation (1) of the paper: the mean of |reported - truth| / truth
/// over aligned time steps. Truth values of zero are handled as in the
/// experimental setup (shelves are never truly empty there); here a zero
/// truth with a zero report contributes 0 error, and a zero truth with a
/// non-zero report contributes |reported| (relative to 1) to stay finite.
StatusOr<double> AverageRelativeError(const std::vector<double>& reported,
                                      const std::vector<double>& truth);

/// \brief Epoch yield (Section 5.2): delivered readings as a fraction of
/// the readings the application requested.
double EpochYield(int64_t delivered, int64_t requested);

/// \brief Fraction of reported readings within `tolerance` of the reference
/// (the "within 1 °C" metric). Entries where `reported` is nullopt (no
/// reading delivered for that epoch) are skipped — the metric conditions on
/// reported data, matching the paper's definition.
StatusOr<double> FractionWithinTolerance(
    const std::vector<std::optional<double>>& reported,
    const std::vector<double>& reference, double tolerance);

/// \brief Accuracy of a binary detector against ground truth: fraction of
/// time steps classified correctly (the digital home's "92% of the time").
StatusOr<double> BinaryAccuracy(const std::vector<bool>& predicted,
                                const std::vector<bool>& truth);

/// \brief Rate (events per second) at which `counts` dips below
/// `threshold`, each dip counting once per sample — the paper's restock
/// alert metric ("2.3 times per second"). `sample_period` is the spacing of
/// consecutive entries.
StatusOr<double> AlertRate(const std::vector<double>& counts,
                           double threshold, Duration sample_period);

}  // namespace esp::core

#endif  // ESP_CORE_METRICS_H_
