#include "core/query_serving.h"

#include <algorithm>

namespace esp::core {

using stream::Relation;
using stream::Tuple;

Status QueryServingLayer::Configure(cql::QueryRegistry::Options options) {
  if (registry_ != nullptr) {
    return Status::FailedPrecondition(
        "query-serving options are fixed once the first subscription is "
        "registered");
  }
  options_ = std::move(options);
  return Status::OK();
}

Status QueryServingLayer::SetTenantBudgets(const std::string& tenant,
                                           cql::TenantBudgets budgets) {
  if (registry_ != nullptr) {
    registry_->SetTenantBudgets(tenant, budgets);
  } else {
    pending_budgets_[tenant] = budgets;
  }
  return Status::OK();
}

Status QueryServingLayer::EnsureRegistry(const StreamLister& streams) {
  if (registry_ != nullptr) return Status::OK();
  ESP_ASSIGN_OR_RETURN(const auto listed, streams());
  auto registry = std::make_unique<cql::QueryRegistry>(options_);
  for (const auto& [name, schema] : listed) {
    ESP_RETURN_IF_ERROR(registry->AddStream(name, schema));
  }
  for (const auto& [tenant, budgets] : pending_budgets_) {
    registry->SetTenantBudgets(tenant, budgets);
  }
  registry_ = std::move(registry);
  return Status::OK();
}

Status QueryServingLayer::Register(const StreamLister& streams,
                                   const std::string& tenant,
                                   const std::string& name,
                                   const std::string& query_text) {
  ESP_RETURN_IF_ERROR(EnsureRegistry(streams));
  return registry_->Register(tenant, name, query_text);
}

Status QueryServingLayer::Unregister(const std::string& name) {
  if (registry_ == nullptr) {
    return Status::NotFound("no subscription named '" + name + "'");
  }
  return registry_->Unregister(name);
}

StatusOr<std::vector<cql::SubscriptionResult>> QueryServingLayer::FeedAndTick(
    const std::vector<std::pair<std::string, const Relation*>>& inputs,
    Timestamp now) {
  std::vector<cql::SubscriptionResult> results;
  if (registry_ == nullptr) return results;
  for (const auto& [stream, relation] : inputs) {
    // The engine's per-type output is time-stamped but not guaranteed
    // sorted (pass-through types union raw receptor streams); the
    // registry's window buffers require non-decreasing timestamps. Feed in
    // stable timestamp order — deterministic, and a no-op for stage
    // outputs (all stamped `now`).
    std::vector<const Tuple*> ordered;
    ordered.reserve(relation->size());
    for (const Tuple& tuple : relation->tuples()) ordered.push_back(&tuple);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Tuple* a, const Tuple* b) {
                       return a->timestamp() < b->timestamp();
                     });
    for (const Tuple* tuple : ordered) {
      ESP_RETURN_IF_ERROR(registry_->Push(stream, *tuple));
    }
  }
  return registry_->Tick(now);
}

cql::QueryServingStats QueryServingLayer::Stats() const {
  if (registry_ == nullptr) return cql::QueryServingStats{};
  return registry_->Stats();
}

size_t QueryServingLayer::BufferedTuples() const {
  return registry_ == nullptr ? 0 : registry_->BufferedTuples();
}

void QueryServingLayer::Checkpoint(CheckpointWriter& out) const {
  if (registry_ == nullptr) return;
  ByteWriter w;
  registry_->SaveState(w);
  out.AddSection("queries", std::move(w));
}

Status QueryServingLayer::Restore(const CheckpointReader& in,
                                  const StreamLister& streams) {
  if (!in.HasSection("queries")) {
    // The snapshot predates the serving layer or had no subscriptions;
    // match it exactly.
    registry_.reset();
    return Status::OK();
  }
  ESP_RETURN_IF_ERROR(EnsureRegistry(streams));
  ESP_ASSIGN_OR_RETURN(const std::string_view payload, in.Section("queries"));
  ByteReader r(payload);
  return registry_->LoadState(r);
}

}  // namespace esp::core
