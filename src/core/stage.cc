#include "core/stage.h"

#include "common/string_util.h"
#include "cql/parser.h"

namespace esp::core {

using stream::Relation;
using stream::Tuple;
using stream::WindowKind;
using stream::WindowSpec;

const char* StageKindToString(StageKind kind) {
  switch (kind) {
    case StageKind::kPoint:
      return "Point";
    case StageKind::kSmooth:
      return "Smooth";
    case StageKind::kMerge:
      return "Merge";
    case StageKind::kArbitrate:
      return "Arbitrate";
    case StageKind::kVirtualize:
      return "Virtualize";
  }
  return "?";
}

std::string StageInputName(StageKind kind) {
  switch (kind) {
    case StageKind::kPoint:
      return "point_input";
    case StageKind::kSmooth:
      return "smooth_input";
    case StageKind::kMerge:
      return "merge_input";
    case StageKind::kArbitrate:
      return "arbitrate_input";
    case StageKind::kVirtualize:
      return "virtualize_input";
  }
  return "input";
}

namespace {

/// Point stages operate tuple-at-a-time; rewrite bare references to the
/// stage input as instantaneous windows so the paper's unwindowed Query 4
/// has streaming semantics.
void RewritePointWindows(cql::SelectQuery* query,
                         const std::string& input_name) {
  for (cql::TableRef& ref : query->from) {
    if (ref.kind == cql::TableRef::Kind::kStream &&
        StrEqualsIgnoreCase(ref.stream_name, input_name) &&
        ref.window.kind == WindowKind::kUnbounded) {
      ref.window = WindowSpec::Now();
    }
    if (ref.kind == cql::TableRef::Kind::kSubquery) {
      RewritePointWindows(ref.subquery.get(), input_name);
    }
  }
}

}  // namespace

StatusOr<std::unique_ptr<CqlStage>> CqlStage::Create(StageKind kind,
                                                     std::string name,
                                                     const std::string& query) {
  ESP_ASSIGN_OR_RETURN(std::unique_ptr<cql::SelectQuery> ast,
                       cql::ParseQuery(query));
  if (kind == StageKind::kPoint) {
    RewritePointWindows(ast.get(), StageInputName(kind));
  }
  std::string text = ast->ToString();
  return std::unique_ptr<CqlStage>(
      new CqlStage(kind, std::move(name), std::move(ast), std::move(text)));
}

Status CqlStage::Bind(const cql::SchemaCatalog& inputs) {
  if (cq_ != nullptr) return Status::Internal("stage already bound");
  if (ast_ == nullptr) return Status::Internal("stage AST consumed");
  ESP_ASSIGN_OR_RETURN(cq_, cql::ContinuousQuery::CreateFromAst(
                                std::move(ast_), inputs));
  output_schema_ = cq_->output_schema();
  return Status::OK();
}

Status CqlStage::Push(const std::string& input, Tuple tuple) {
  if (cq_ == nullptr) return Status::Internal("stage not bound");
  return cq_->Push(input, std::move(tuple));
}

StatusOr<Relation> CqlStage::Evaluate(Timestamp now) {
  if (cq_ == nullptr) return Status::Internal("stage not bound");
  return cq_->Evaluate(now);
}

FunctionStage::FunctionStage(StageKind kind, std::string name,
                             std::vector<Input> inputs,
                             stream::SchemaRef output_schema, Fn fn)
    : Stage(kind, std::move(name)),
      declared_inputs_(std::move(inputs)),
      declared_output_(std::move(output_schema)),
      fn_(std::move(fn)) {}

Status FunctionStage::Bind(const cql::SchemaCatalog& inputs) {
  if (bound_called_) return Status::Internal("stage already bound");
  bound_called_ = true;
  for (const Input& input : declared_inputs_) {
    ESP_ASSIGN_OR_RETURN(stream::SchemaRef schema, inputs.Find(input.stream));
    bound_.push_back(
        BoundInput{input, stream::WindowBuffer(input.window, schema)});
  }
  output_schema_ = declared_output_;
  if (output_schema_ == nullptr) {
    return Status::InvalidArgument("FunctionStage '" + name() +
                                   "' declared no output schema");
  }
  return Status::OK();
}

Status FunctionStage::Push(const std::string& input, Tuple tuple) {
  if (!bound_called_) return Status::Internal("stage not bound");
  for (BoundInput& bound : bound_) {
    if (StrEqualsIgnoreCase(bound.declared.stream, input)) {
      return bound.buffer.Insert(std::move(tuple));
    }
  }
  return Status::NotFound("stage '" + name() + "' has no input '" + input +
                          "'");
}

StatusOr<Relation> FunctionStage::Evaluate(Timestamp now) {
  if (!bound_called_) return Status::Internal("stage not bound");
  std::vector<Relation> windows;
  windows.reserve(bound_.size());
  for (BoundInput& bound : bound_) {
    windows.push_back(bound.buffer.Snapshot(now));
  }
  ESP_ASSIGN_OR_RETURN(Relation result, fn_(windows, now));
  // Evict after evaluation; the window at `now` itself was just served.
  for (BoundInput& bound : bound_) {
    bound.buffer.EvictBefore(now);
  }
  if (result.schema() == nullptr ||
      !result.schema()->Equals(*output_schema_)) {
    return Status::TypeError("FunctionStage '" + name() +
                             "' produced a relation not matching its "
                             "declared output schema");
  }
  return result;
}

size_t FunctionStage::buffered() const {
  size_t total = 0;
  for (const BoundInput& bound : bound_) total += bound.buffer.buffered();
  return total;
}

Status CqlStage::SaveState(ByteWriter& w) const {
  if (cq_ == nullptr) return Status::Internal("stage not bound");
  cq_->SaveState(w);
  return Status::OK();
}

Status CqlStage::LoadState(ByteReader& r) {
  if (cq_ == nullptr) return Status::Internal("stage not bound");
  return cq_->LoadState(r);
}

Status FunctionStage::SaveState(ByteWriter& w) const {
  if (!bound_called_) return Status::Internal("stage not bound");
  w.WriteU32(static_cast<uint32_t>(bound_.size()));
  for (const BoundInput& bound : bound_) {
    w.WriteString(bound.declared.stream);
    bound.buffer.SaveState(w);
  }
  return Status::OK();
}

Status FunctionStage::LoadState(ByteReader& r) {
  if (!bound_called_) return Status::Internal("stage not bound");
  ESP_ASSIGN_OR_RETURN(const uint32_t count, r.ReadU32());
  if (count != bound_.size()) {
    return Status::ParseError("serialized FunctionStage state has " +
                              std::to_string(count) + " inputs, stage '" +
                              name() + "' declares " +
                              std::to_string(bound_.size()));
  }
  for (uint32_t i = 0; i < count; ++i) {
    ESP_ASSIGN_OR_RETURN(const std::string stream_name, r.ReadString());
    if (!StrEqualsIgnoreCase(stream_name, bound_[i].declared.stream)) {
      return Status::ParseError("serialized FunctionStage input '" +
                                stream_name + "' does not match declared '" +
                                bound_[i].declared.stream + "'");
    }
    ESP_RETURN_IF_ERROR(bound_[i].buffer.LoadState(r));
  }
  return Status::OK();
}

Status SaveStageBlob(const Stage* stage, ByteWriter& w) {
  w.WriteString(stage->name());
  ByteWriter blob;
  ESP_RETURN_IF_ERROR(stage->SaveState(blob));
  w.WriteString(blob.data());
  return Status::OK();
}

Status LoadStageBlob(Stage* stage, ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(const std::string name, r.ReadString());
  if (name != stage->name()) {
    return Status::ParseError("snapshot stage '" + name +
                              "' does not match deployed stage '" +
                              stage->name() + "'");
  }
  ESP_ASSIGN_OR_RETURN(const std::string blob, r.ReadString());
  ByteReader blob_reader(blob);
  ESP_RETURN_IF_ERROR(stage->LoadState(blob_reader));
  if (!blob_reader.exhausted()) {
    return Status::ParseError("stage '" + stage->name() + "' left " +
                              std::to_string(blob_reader.remaining()) +
                              " unread state bytes");
  }
  return Status::OK();
}

}  // namespace esp::core
