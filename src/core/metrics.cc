#include "core/metrics.h"

#include <cmath>

namespace esp::core {

std::string RecoveryStats::ToString() const {
  return "checkpoints=" + std::to_string(checkpoints_written) +
         " journal_records=" + std::to_string(journal_records) +
         " journal_bytes=" + std::to_string(journal_bytes) +
         " restores=" + std::to_string(restores) +
         " restore_replays=" + std::to_string(restore_replays) +
         " corrupt_snapshots_skipped=" +
         std::to_string(corrupt_snapshots_skipped) +
         " journal_torn_bytes=" + std::to_string(journal_torn_bytes);
}

StatusOr<double> AverageRelativeError(const std::vector<double>& reported,
                                      const std::vector<double>& truth) {
  if (reported.size() != truth.size()) {
    return Status::InvalidArgument("series lengths differ");
  }
  if (reported.empty()) {
    return Status::InvalidArgument("empty series");
  }
  double total = 0.0;
  for (size_t i = 0; i < reported.size(); ++i) {
    const double denominator = truth[i] != 0.0 ? std::abs(truth[i]) : 1.0;
    total += std::abs(reported[i] - truth[i]) / denominator;
  }
  return total / static_cast<double>(reported.size());
}

double EpochYield(int64_t delivered, int64_t requested) {
  if (requested <= 0) return 0.0;
  return static_cast<double>(delivered) / static_cast<double>(requested);
}

StatusOr<double> FractionWithinTolerance(
    const std::vector<std::optional<double>>& reported,
    const std::vector<double>& reference, double tolerance) {
  if (reported.size() != reference.size()) {
    return Status::InvalidArgument("series lengths differ");
  }
  int64_t considered = 0;
  int64_t within = 0;
  for (size_t i = 0; i < reported.size(); ++i) {
    if (!reported[i].has_value()) continue;
    ++considered;
    if (std::abs(*reported[i] - reference[i]) <= tolerance) ++within;
  }
  if (considered == 0) {
    return Status::InvalidArgument("no reported readings");
  }
  return static_cast<double>(within) / static_cast<double>(considered);
}

StatusOr<double> BinaryAccuracy(const std::vector<bool>& predicted,
                                const std::vector<bool>& truth) {
  if (predicted.size() != truth.size()) {
    return Status::InvalidArgument("series lengths differ");
  }
  if (predicted.empty()) {
    return Status::InvalidArgument("empty series");
  }
  int64_t correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

StatusOr<double> AlertRate(const std::vector<double>& counts,
                           double threshold, Duration sample_period) {
  if (counts.empty()) return Status::InvalidArgument("empty series");
  if (sample_period.micros() <= 0) {
    return Status::InvalidArgument("sample period must be positive");
  }
  int64_t alerts = 0;
  for (double count : counts) {
    if (count < threshold) ++alerts;
  }
  const double duration_s =
      sample_period.seconds() * static_cast<double>(counts.size());
  return static_cast<double>(alerts) / duration_s;
}

}  // namespace esp::core
