#ifndef ESP_CORE_SHARDED_PROCESSOR_H_
#define ESP_CORE_SHARDED_PROCESSOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/time.h"
#include "core/engine.h"
#include "core/processor.h"
#include "core/query_serving.h"

namespace esp::core {

/// \brief A StreamEngine that partitions the deployment's proximity groups
/// across N internal EspProcessor shards and ticks them in parallel on a
/// thread pool, while producing output bitwise-identical to a single
/// EspProcessor over the same inputs.
///
/// Why this is exact and not approximate: every pipeline stage up to and
/// including Merge is local to one receptor or one proximity group, and
/// receptors never migrate between groups of different shards (quarantine
/// parks a receptor in a shard-local parking group). Each type's groups are
/// partitioned into contiguous blocks in registration order, so
/// concatenating the shards' per-type outputs in shard order reproduces the
/// single processor's group-ordered Union. The only cross-group stages —
/// Arbitrate (per type) and Virtualize (cross-type) — are stripped from the
/// shards and run serially in this wrapper over the merged stream, exactly
/// where the single processor runs them.
///
/// The parallel win on top of the pipeline parallelism: Push's linear
/// receptor scan and Tick's per-receptor group routing shrink by the shard
/// count, so even on one core a sharded engine over R receptors beats the
/// monolith once R is large (docs/PERFORMANCE.md).
///
/// Configuration mirrors EspProcessor: AddProximityGroup / AddPipeline /
/// SetHealthPolicy / SetVirtualize, then Start(). Checkpoint/Restore
/// snapshot every shard plus the wrapper's own stages, so the
/// RecoveryCoordinator drives either engine unchanged.
class ShardedEspProcessor : public StreamEngine {
 public:
  struct Options {
    /// Number of internal shards. Groups are spread contiguously; shards
    /// beyond the group count of every type simply idle.
    size_t num_shards = 2;

    /// Pool to tick shards on; must outlive the processor and have been
    /// created with at least one thread for any parallelism to materialize.
    /// When null the processor creates a private pool of num_shards threads
    /// at Start().
    ThreadPool* pool = nullptr;
  };

  explicit ShardedEspProcessor(Options options);
  ShardedEspProcessor(const ShardedEspProcessor&) = delete;
  ShardedEspProcessor& operator=(const ShardedEspProcessor&) = delete;

  Status AddProximityGroup(ProximityGroup group);
  Status AddPipeline(DeviceTypePipeline pipeline);
  Status SetHealthPolicy(HealthPolicy policy);
  const HealthPolicy& health_policy() const { return policy_; }
  void SetVirtualize(std::unique_ptr<Stage> stage);

  /// Partitions groups, builds the shards, binds the wrapper's Arbitrate
  /// and Virtualize stages, and freezes configuration.
  Status Start();

  size_t num_shards() const { return options_.num_shards; }

  // StreamEngine:
  Status Push(const std::string& device_type, stream::Tuple raw) override;
  StatusOr<TickResult> Tick(Timestamp now) override;
  /// Forwards to every shard; shard partials are concatenated into
  /// TickResult::group_partials in shard order (per type, that is global
  /// group-registration order thanks to block contiguity).
  void SetExportGroupPartials(bool enabled) override;
  bool has_ticked() const override { return has_ticked_; }
  Timestamp last_tick() const override { return last_tick_; }
  StatusOr<stream::SchemaRef> TypeReadingSchema(
      const std::string& device_type) const override;
  Status Checkpoint(CheckpointWriter& out) const override;
  Status Restore(const CheckpointReader& in) override;
  RecoveryStats& mutable_recovery_stats() override { return recovery_stats_; }
  IngestStats& mutable_ingest_stats() override { return ingest_stats_; }
  void SetIngestStatsSource(IngestStatsSource source) override {
    std::lock_guard<std::mutex> lock(ingest_source_mu_);
    ingest_source_ = std::move(source);
  }
  PipelineHealth Health() const override;

  /// Cleaned-output schema of one device type; valid after Start().
  StatusOr<stream::SchemaRef> TypeOutputSchema(
      const std::string& device_type) const;

  /// Total tuples buffered across every shard and the wrapper's stages.
  size_t BufferedTuples() const;

  /// Standing-query serving over the final (post-Arbitrate) per-type
  /// outputs — the serving layer lives in the wrapper, where those streams
  /// are reassembled, never in the shards. See EspProcessor.
  Status SetQueryServingOptions(cql::QueryRegistry::Options options) {
    return queries_.Configure(std::move(options));
  }
  Status RegisterQuery(const std::string& tenant, const std::string& name,
                       const std::string& query_text) override;
  Status UnregisterQuery(const std::string& name) override;
  Status SetTenantBudgets(const std::string& tenant,
                          const cql::TenantBudgets& budgets) override;
  QueryServingLayer& query_serving() { return queries_; }

 private:
  /// Wrapper-side view of one device type: its original config (with the
  /// Arbitrate factory), which shards host at least one of its groups, and
  /// the wrapper's own Arbitrate instance.
  struct TypeRuntime {
    DeviceTypePipeline config;
    std::vector<size_t> hosting_shards;   // Shard indices, ascending.
    std::unique_ptr<Stage> arbitrate;     // May be null.
    stream::SchemaRef group_output_schema;  // Shards' per-type output.
    stream::SchemaRef output_schema;        // After wrapper Arbitrate.
  };

  StatusOr<TypeRuntime*> FindType(const std::string& device_type);
  StatusOr<const TypeRuntime*> FindType(const std::string& device_type) const;

  /// Streams the serving layer exposes: each type's virtualize_input name
  /// with its final (post-Arbitrate) output schema.
  QueryServingLayer::StreamLister QueryStreams() const;

  /// Mirror of EspProcessor::RunStageGuarded for the wrapper-owned stages
  /// (Arbitrate / Virtualize are never receptor-owned, so no chain).
  StatusOr<stream::Relation> RunStageGuarded(Stage* stage,
                                             const std::string& input_name,
                                             stream::Relation input,
                                             Timestamp now,
                                             const std::string& device_type,
                                             const std::string& owner_id);
  void RecordStageError(Stage* stage, const std::string& device_type,
                        const std::string& owner_id, const Status& status);

  /// Deterministic byte string identifying the deployed topology, policy,
  /// and shard count; Restore refuses snapshots whose fingerprint differs.
  ByteWriter ConfigFingerprint() const;

  Options options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  // == options_.pool or owned_pool_.get().

  /// Staging registry (registration-ordered); used to validate, partition,
  /// and build the routing map. Not updated by shard-local quarantine moves.
  GranuleMap staged_granules_;
  std::vector<TypeRuntime> types_;
  std::unique_ptr<Stage> virtualize_;
  HealthPolicy policy_;

  std::vector<std::unique_ptr<EspProcessor>> shards_;
  /// (device_type '\0' receptor_id) -> shard index, case-insensitive.
  std::unordered_map<std::string, size_t, AsciiCaseHash, AsciiCaseEq>
      receptor_shard_;

  /// Wrapper-stage error tallies (Arbitrate / Virtualize labels only;
  /// shard-local labels live in the shards and are merged by Health()).
  std::map<std::string, StageErrorStat> stage_errors_;
  RecoveryStats recovery_stats_;
  IngestStats ingest_stats_;
  /// Multi-tenant standing-query serving over the reassembled outputs.
  QueryServingLayer queries_;
  /// Guards ingest_source_ against Health() racing the ingest server's
  /// install/freeze (see engine.h).
  mutable std::mutex ingest_source_mu_;
  IngestStatsSource ingest_source_;
  bool started_ = false;
  bool has_ticked_ = false;
  bool export_group_partials_ = false;
  Timestamp last_tick_;
};

}  // namespace esp::core

#endif  // ESP_CORE_SHARDED_PROCESSOR_H_
