#include "core/model_stage.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace esp::core {

using stream::DataType;
using stream::Relation;
using stream::SchemaRef;
using stream::Tuple;
using stream::Value;

CrossAttributeModel::CrossAttributeModel(double forgetting)
    : forgetting_(forgetting) {
  ESP_CHECK(forgetting > 0.0 && forgetting <= 1.0)
      << "forgetting factor must be in (0, 1]";
}

void CrossAttributeModel::Observe(double x, double y) {
  // Score the residual against the *previous* fit before updating, so the
  // spread estimate is honest (one-step-ahead).
  if (Usable()) {
    const double residual = y - (slope_ * x + intercept_);
    residual_weight_ = forgetting_ * residual_weight_ + 1.0;
    residual_m2_ = forgetting_ * residual_m2_ + residual * residual;
  }
  weight_ = forgetting_ * weight_ + 1.0;
  sx_ = forgetting_ * sx_ + x;
  sy_ = forgetting_ * sy_ + y;
  sxx_ = forgetting_ * sxx_ + x * x;
  sxy_ = forgetting_ * sxy_ + x * y;
  ++observations_;
  Refit();
}

bool CrossAttributeModel::Usable() const {
  if (observations_ < 2) return false;
  const double det = weight_ * sxx_ - sx_ * sx_;
  return std::abs(det) > 1e-9;
}

void CrossAttributeModel::Refit() {
  const double det = weight_ * sxx_ - sx_ * sx_;
  if (observations_ < 2 || std::abs(det) <= 1e-9) return;
  slope_ = (weight_ * sxy_ - sx_ * sy_) / det;
  intercept_ = (sy_ - slope_ * sx_) / weight_;
}

double CrossAttributeModel::residual_stddev() const {
  if (residual_weight_ <= 0) return 0.0;
  return std::sqrt(residual_m2_ / residual_weight_);
}

StatusOr<double> CrossAttributeModel::Predict(double x) const {
  if (!Usable()) {
    return Status::InvalidArgument(
        "model needs at least two observations with distinct x");
  }
  return slope_ * x + intercept_;
}

StatusOr<double> CrossAttributeModel::ResidualSigmas(double x,
                                                     double y) const {
  ESP_ASSIGN_OR_RETURN(const double predicted, Predict(x));
  const double spread = residual_stddev();
  if (spread <= 1e-12) {
    return Status::InvalidArgument("residual spread is degenerate");
  }
  return (y - predicted) / spread;
}

void CrossAttributeModel::SaveState(ByteWriter& w) const {
  w.WriteI64(observations_);
  w.WriteDouble(weight_);
  w.WriteDouble(sx_);
  w.WriteDouble(sy_);
  w.WriteDouble(sxx_);
  w.WriteDouble(sxy_);
  w.WriteDouble(slope_);
  w.WriteDouble(intercept_);
  w.WriteDouble(residual_weight_);
  w.WriteDouble(residual_m2_);
}

Status CrossAttributeModel::LoadState(ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(observations_, r.ReadI64());
  ESP_ASSIGN_OR_RETURN(weight_, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(sx_, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(sy_, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(sxx_, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(sxy_, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(slope_, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(intercept_, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(residual_weight_, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(residual_m2_, r.ReadDouble());
  return Status::OK();
}

ModelOutlierStage::ModelOutlierStage(StageKind kind, std::string name,
                                     Config config)
    : Stage(kind, std::move(name)),
      config_(std::move(config)),
      model_(config_.forgetting) {
  if (config_.input_stream.empty()) {
    config_.input_stream = StageInputName(kind);
  }
}

Status ModelOutlierStage::Bind(const cql::SchemaCatalog& inputs) {
  if (buffer_.has_value()) return Status::Internal("stage already bound");
  ESP_ASSIGN_OR_RETURN(SchemaRef in, inputs.Find(config_.input_stream));
  ESP_ASSIGN_OR_RETURN(x_index_, in->ResolveIndex(config_.x_column));
  ESP_ASSIGN_OR_RETURN(y_index_, in->ResolveIndex(config_.y_column));
  std::vector<stream::Field> fields = in->fields();
  fields.push_back({"predicted", DataType::kDouble});
  fields.push_back({"residual_sigmas", DataType::kDouble});
  fields.push_back({"outlier", DataType::kBool});
  output_schema_ = stream::MakeSchema(std::move(fields));
  buffer_.emplace(stream::WindowSpec::Now(), in);
  return Status::OK();
}

Status ModelOutlierStage::Push(const std::string& input, Tuple tuple) {
  if (!buffer_.has_value()) return Status::Internal("stage not bound");
  if (!StrEqualsIgnoreCase(input, config_.input_stream)) {
    return Status::NotFound("stage '" + name() + "' has no input '" + input +
                            "'");
  }
  return buffer_->Insert(std::move(tuple));
}

StatusOr<Relation> ModelOutlierStage::Evaluate(Timestamp now) {
  if (!buffer_.has_value()) return Status::Internal("stage not bound");
  Relation window = buffer_->Snapshot(now);
  buffer_->EvictBefore(now);

  Relation out(output_schema_);
  for (const Tuple& tuple : window.tuples()) {
    const Value& x_value = tuple.value(x_index_);
    const Value& y_value = tuple.value(y_index_);
    if (x_value.is_null() || y_value.is_null()) continue;
    ESP_ASSIGN_OR_RETURN(const double x, x_value.AsDouble());
    ESP_ASSIGN_OR_RETURN(const double y, y_value.AsDouble());

    Value predicted = Value::Null();
    Value sigmas = Value::Null();
    bool outlier = false;
    const bool warmed_up =
        model_.observations() >= config_.warmup_observations;
    if (warmed_up) {
      auto prediction = model_.Predict(x);
      auto score = model_.ResidualSigmas(x, y);
      if (prediction.ok()) predicted = Value::Double(*prediction);
      if (score.ok()) {
        sigmas = Value::Double(*score);
        outlier = std::abs(*score) > config_.threshold_sigmas;
      }
    }
    // Outliers are reported but never trained on.
    if (!outlier) model_.Observe(x, y);

    std::vector<Value> values = tuple.values();
    values.push_back(predicted);
    values.push_back(sigmas);
    values.push_back(Value::Bool(outlier));
    out.Add(Tuple(output_schema_, std::move(values), tuple.timestamp()));
  }
  return out;
}

Status ModelOutlierStage::SaveState(ByteWriter& w) const {
  if (!buffer_.has_value()) return Status::Internal("stage not bound");
  model_.SaveState(w);
  buffer_->SaveState(w);
  return Status::OK();
}

Status ModelOutlierStage::LoadState(ByteReader& r) {
  if (!buffer_.has_value()) return Status::Internal("stage not bound");
  ESP_RETURN_IF_ERROR(model_.LoadState(r));
  return buffer_->LoadState(r);
}

}  // namespace esp::core
