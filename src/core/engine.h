#ifndef ESP_CORE_ENGINE_H_
#define ESP_CORE_ENGINE_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/checkpoint.h"
#include "core/health.h"
#include "cql/query_registry.h"
#include "stream/tuple.h"

namespace esp::core {

/// \brief One proximity group's post-Merge, pre-Arbitrate relation — the
/// partial aggregate a cluster worker ships to the coordinator, which
/// reassembles partials in global group-registration order before running
/// the cross-group Arbitrate (docs/DISTRIBUTED.md).
struct GroupPartial {
  std::string device_type;
  std::string group_id;
  stream::Relation relation;
};

/// \brief One tick's cleaned outputs: the final relation per device type
/// (after Arbitrate), in pipeline registration order, plus the Virtualize
/// output when that stage is installed. `group_partials` is populated only
/// when SetExportGroupPartials(true) — per-group Merge outputs in (type,
/// group) registration order, captured before Union/Arbitrate.
struct TickResult {
  std::vector<std::pair<std::string, stream::Relation>> per_type;
  std::optional<stream::Relation> virtualized;
  std::vector<GroupPartial> group_partials;
  /// Standing-query results, one per live subscription in registration
  /// order (multi-tenant serving layer, cql/query_registry.h). Empty
  /// unless subscriptions are registered.
  std::vector<cql::SubscriptionResult> query_results;
};

/// \brief The surface a pipeline execution engine exposes to the layers
/// above it — the durability coordinator, benchmarks, and deployments.
///
/// Two implementations exist: the single-threaded EspProcessor and the
/// ShardedEspProcessor, which partitions proximity groups across internal
/// shards and runs them in parallel while producing bitwise-identical
/// output. Everything written against this interface (notably
/// RecoveryCoordinator's journal-before-apply protocol) works with either.
class StreamEngine {
 public:
  virtual ~StreamEngine() = default;

  /// Routes one raw reading toward its receptor's chain. See
  /// EspProcessor::Push for the (previous tick, now] timestamp contract.
  virtual Status Push(const std::string& device_type, stream::Tuple raw) = 0;

  /// Runs the full cascade at time `now`. Tick times must be
  /// non-decreasing.
  virtual StatusOr<TickResult> Tick(Timestamp now) = 0;

  /// When enabled, every Tick also returns each proximity group's
  /// post-Merge relation in TickResult::group_partials (a copy — the
  /// per-type cascade still runs unchanged). Cluster workers turn this on
  /// so the coordinator can reassemble partials across workers and run the
  /// cross-group Arbitrate centrally. Off by default; call before or
  /// between ticks.
  virtual void SetExportGroupPartials(bool enabled) = 0;

  /// True once a tick has run (including via Restore of a ticked snapshot).
  virtual bool has_ticked() const = 0;

  /// Time of the most recent tick; meaningful only when has_ticked().
  virtual Timestamp last_tick() const = 0;

  /// Raw-reading schema of one device type (as configured in its pipeline).
  virtual StatusOr<stream::SchemaRef> TypeReadingSchema(
      const std::string& device_type) const = 0;

  /// Serializes the full mutable runtime state into named sections of
  /// `out`; the configuration is fingerprinted, not serialized
  /// (docs/RECOVERY.md).
  virtual Status Checkpoint(CheckpointWriter& out) const = 0;

  /// Restores state saved by Checkpoint() into this engine, which must be
  /// identically configured and started.
  virtual Status Restore(const CheckpointReader& in) = 0;

  /// Durability counters, written by the RecoveryCoordinator and reported
  /// through Health().
  virtual RecoveryStats& mutable_recovery_stats() = 0;

  /// Networked-ingest counters reported through Health() when no
  /// IngestStatsSource is installed (direct writes — tests, replay).
  virtual IngestStats& mutable_ingest_stats() = 0;

  /// Installs (or replaces) the pull source Health() reads its ingest
  /// counters from. net::IngestServer installs a thread-safe live snapshot
  /// at Start() and freezes the final counters at Stop(), so Health() is
  /// safe to call from any thread while the server runs. An empty source
  /// falls back to mutable_ingest_stats(). Must be thread-safe against
  /// concurrent Health() calls.
  virtual void SetIngestStatsSource(IngestStatsSource source) = 0;

  /// Snapshot of per-receptor liveness and per-stage error-isolation
  /// tallies. Threading: the ingest counters are pulled through the
  /// thread-safe IngestStatsSource and may be observed from any thread at
  /// any time; the receptor/stage aggregation reads engine state and shares
  /// Push/Tick's single-threaded contract — don't call concurrently with
  /// them (observe after the driving thread quiesces, e.g. after
  /// IngestServer::Stop()).
  virtual PipelineHealth Health() const = 0;

  /// Registers a standing CQL subscription for `tenant` over the engine's
  /// cleaned per-type output streams (the pipelines' virtualize_input
  /// names). Subsequent Ticks carry its result in
  /// TickResult::query_results. Typed errors per
  /// cql::QueryRegistry::Register; engines that do not serve queries
  /// return kUnimplemented. Valid after the engine is started; shares the
  /// Push/Tick single-threaded contract.
  virtual Status RegisterQuery(const std::string& tenant,
                               const std::string& name,
                               const std::string& query_text) {
    (void)tenant;
    (void)name;
    (void)query_text;
    return Status::Unimplemented("this engine does not serve queries");
  }

  /// Removes a live subscription (kNotFound when absent).
  virtual Status UnregisterQuery(const std::string& name) {
    (void)name;
    return Status::Unimplemented("this engine does not serve queries");
  }

  /// Installs a per-tenant admission budget (cql/query_registry.h).
  virtual Status SetTenantBudgets(const std::string& tenant,
                                  const cql::TenantBudgets& budgets) {
    (void)tenant;
    (void)budgets;
    return Status::Unimplemented("this engine does not serve queries");
  }
};

}  // namespace esp::core

#endif  // ESP_CORE_ENGINE_H_
