#ifndef ESP_CORE_DEPLOYMENT_H_
#define ESP_CORE_DEPLOYMENT_H_

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "core/processor.h"
#include "core/recovery.h"

namespace esp::core {

/// \brief Builds a fully-configured EspProcessor from a textual deployment
/// specification — the paper's vision of cleaning pipelines that are "easy
/// to deploy and configure", taken literally: an entire deployment is a
/// small declarative file whose stages are CQL.
///
/// Format (INI-style; `#` comments; keys are case-insensitive):
///
/// ```
/// # One section per proximity group.
/// [group pg_shelf0]
/// type = rfid                    # device type
/// granule = shelf_0              # spatial granule the group observes
/// receptors = reader_0           # comma-separated receptor ids
///
/// # One section per device type's pipeline. Stage values are CQL; the
/// # point key may repeat to build a chain. Omitted stages are omitted.
/// [pipeline rfid]
/// schema = reader_id:string, tag_id:string
/// receptor_id_column = reader_id
/// smooth = SELECT tag_id, count(*) AS reads FROM smooth_input
///          [Range By '5 sec'] GROUP BY tag_id
/// arbitrate = SELECT ... FROM arbitrate_input ...
/// virtualize_input = rfid_input  # optional; default "<type>_input"
///
/// # At most one cross-device-type Virtualize stage.
/// [virtualize]
/// query = SELECT 'event' AS event WHERE ...
///
/// # Optional degraded-mode policy (see core/health.h; all keys optional).
/// [health]
/// staleness_threshold = 2 sec    # silent receptor -> suspect
/// quarantine_timeout = 5 sec     # suspect and still silent -> quarantined
/// revival_backoff = 1 sec        # first probe delay; doubles per failure
/// max_revival_backoff = 60 sec
/// lateness_horizon = 500 msec    # reorder-buffer tolerance for late data
/// stage_error_policy = degrade   # or failfast
///
/// # Optional durability layer (see core/recovery.h; directory required).
/// [recovery]
/// directory = /var/lib/esp/shelf # journal + snapshots live here
/// checkpoint_interval_ticks = 50 # 0 = manual checkpoints only
/// retain_snapshots = 3
/// fsync = true
/// journal_flush_every = 1        # records per journal flush
/// journal_fsync_every = 1        # fsync every Nth flush (durability batch)
///
/// # Optional multi-tenant query serving (see cql/query_registry.h).
/// # Sharing toggles plus default admission budgets; 0 = unlimited.
/// [tenants]
/// share_plans = true             # fingerprint-dedupe identical queries
/// share_windows = true           # coarsest-common shared window buffers
/// max_queries = 1000             # live subscriptions per tenant
/// max_window_range = 60 sec      # largest RANGE retention per stream
/// max_window_rows = 100000       # largest ROWS retention per stream
/// allow_unbounded = false        # admit unbounded windows?
/// max_eval_time = 50 msec        # per-tick eval budget; over -> throttled
///
/// # Optional per-tenant overrides; omitted keys keep [tenants] defaults.
/// [tenant acme]
/// max_queries = 10
///
/// # Optional networked ingest front door (see net/ingest_server.h).
/// [ingest]
/// bind_address = 127.0.0.1
/// port = 9120                    # 0 picks a free port
/// max_connections = 64
/// queue_limit_frames = 256       # per-connection pending-frame bound
/// backpressure = block           # or shed
/// max_frame_bytes = 1048576
/// read_timeout = 10 sec          # slow-loris reaping; 0 disables
/// idle_timeout = 60 sec          # silent-connection reaping; 0 disables
/// backoff_initial = 10 msec      # client reconnect backoff floor
/// backoff_max = 2 sec            # client reconnect backoff cap
/// backoff_jitter = 0.5           # +/- fraction applied to each delay
/// ```
///
/// Unknown keys and malformed values in [health], [recovery], [ingest],
/// [tenants], and [tenant] are line-numbered parse errors, never
/// silently-applied defaults.
///
/// The returned processor is already Start()ed: push readings and Tick().
StatusOr<std::unique_ptr<EspProcessor>> LoadDeployment(
    const std::string& spec_text);

/// \brief The [ingest] section of a deployment spec, as plain data. The
/// core layer only parses and validates it; src/net (which links against
/// core, not the other way around) converts it into IngestServerOptions via
/// net::MakeIngestServerOptions and runs the front door.
struct IngestSpecOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;
  uint64_t max_connections = 64;
  uint64_t queue_limit_frames = 256;
  /// Validated to "block" or "shed" at parse time.
  std::string backpressure = "block";
  uint64_t max_frame_bytes = 1 << 20;
  Duration read_timeout = Duration::Seconds(10);
  Duration idle_timeout = Duration::Seconds(60);

  /// Client-side reconnect knobs, so a deployment file configures both
  /// halves of the link. Defaults mirror net::IngestClientOptions; see
  /// net::MakeIngestClientOptions. backoff_jitter is the +/- fraction each
  /// delay is scattered by, validated to [0, 1] at parse time; backoff_max
  /// is validated to be >= backoff_initial.
  Duration backoff_initial = Duration::Millis(10);
  Duration backoff_max = Duration::Seconds(2);
  double backoff_jitter = 0.5;
};

/// \brief A loaded deployment plus its optional durability configuration.
struct DeploymentBundle {
  std::unique_ptr<EspProcessor> processor;
  /// Present when the spec has a [recovery] section. The caller decides how
  /// to use it: RecoveryCoordinator::Start for a fresh session, ::Resume to
  /// recover after a crash.
  std::optional<RecoveryOptions> recovery;
  /// Present when the spec has an [ingest] section.
  std::optional<IngestSpecOptions> ingest;
};

/// \brief Like LoadDeployment, additionally surfacing the [recovery] and
/// [ingest] sections (which LoadDeployment validates but discards).
StatusOr<DeploymentBundle> LoadDeploymentBundle(const std::string& spec_text);

/// \brief Parses a "name:type, name:type" schema description (types: bool,
/// int64, double, string, timestamp). Exposed for reuse and tests.
StatusOr<stream::SchemaRef> ParseSchemaSpec(const std::string& spec);

}  // namespace esp::core

#endif  // ESP_CORE_DEPLOYMENT_H_
