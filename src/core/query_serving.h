#ifndef ESP_CORE_QUERY_SERVING_H_
#define ESP_CORE_QUERY_SERVING_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/checkpoint.h"
#include "cql/query_registry.h"
#include "stream/tuple.h"

namespace esp::core {

/// \brief The multi-tenant query-serving layer an engine embeds: a lazily
/// created cql::QueryRegistry over the engine's cleaned per-type output
/// streams, plus checkpoint/restore glue.
///
/// Both EspProcessor and ShardedEspProcessor own one. The registry is
/// created on the first registration (a deployment with no subscriptions
/// pays nothing) against whatever streams the engine exposes at that
/// moment; configuration (sharing toggles, budgets) installed before then
/// is applied at creation.
class QueryServingLayer {
 public:
  /// Enumerates the streams queries may reference: (stream name, schema)
  /// pairs. Engines bind this to their per-type cleaned-output streams
  /// (the pipelines' virtualize_input names).
  using StreamLister = std::function<StatusOr<
      std::vector<std::pair<std::string, stream::SchemaRef>>>()>;

  /// Replaces the registry options (sharing toggles, default budgets).
  /// kFailedPrecondition once the registry is live — sharing topology is
  /// fixed at first registration.
  Status Configure(cql::QueryRegistry::Options options);

  /// Installs a per-tenant budget override, now or at registry creation.
  Status SetTenantBudgets(const std::string& tenant,
                          cql::TenantBudgets budgets);

  /// Registers / removes one subscription (cql::QueryRegistry semantics:
  /// kAlreadyExists, kResourceExhausted, kNotFound).
  Status Register(const StreamLister& streams, const std::string& tenant,
                  const std::string& name, const std::string& query_text);
  Status Unregister(const std::string& name);

  /// True once the registry exists (any registration ever happened).
  bool active() const { return registry_ != nullptr; }
  cql::QueryRegistry* registry() { return registry_.get(); }

  /// Pushes each relation's tuples to its stream (sorted by timestamp, the
  /// registry's ordering contract) and ticks every subscription at `now`.
  /// No-op returning empty results while inactive.
  StatusOr<std::vector<cql::SubscriptionResult>> FeedAndTick(
      const std::vector<std::pair<std::string, const stream::Relation*>>&
          inputs,
      Timestamp now);

  /// Zeroed stats while inactive.
  cql::QueryServingStats Stats() const;
  size_t BufferedTuples() const;

  /// Adds the "queries" checkpoint section (only while active, so
  /// snapshots from query-less deployments are byte-identical to before
  /// this layer existed). The section is NOT part of the config
  /// fingerprint: subscriptions are runtime state, not topology.
  void Checkpoint(CheckpointWriter& out) const;

  /// Restores the "queries" section. An absent section means the snapshot
  /// had no subscriptions: any live ones are dropped, matching the
  /// checkpointed engine tick-for-tick.
  Status Restore(const CheckpointReader& in, const StreamLister& streams);

 private:
  Status EnsureRegistry(const StreamLister& streams);

  cql::QueryRegistry::Options options_;
  /// Overrides installed before the registry existed, applied at creation.
  std::map<std::string, cql::TenantBudgets> pending_budgets_;
  std::unique_ptr<cql::QueryRegistry> registry_;
};

}  // namespace esp::core

#endif  // ESP_CORE_QUERY_SERVING_H_
