#ifndef ESP_CORE_TOOLKIT_H_
#define ESP_CORE_TOOLKIT_H_

#include <string>
#include <vector>

#include "core/granule.h"
#include "core/stage.h"

namespace esp::core {

/// \file
/// The ESP operator toolkit: pre-built, parameterised implementations of
/// the five stages, realizing the paper's envisioned "suite of ESP
/// Operators ... that can be used to configure and deploy cleaning
/// pipelines" (Section 7). Most operators are declarative (CQL) — the
/// `Native*` variants implement the same semantics in arbitrary code, both
/// as examples of the UDF path and to cross-check the declarative engine.

// --- Point operators (tuple-level filters and transforms) -----------------

/// Keeps tuples satisfying `predicate` (a CQL boolean expression over the
/// reading schema), e.g. "temp < 50" — the paper's Query 4.
StageFactory PointFilter(std::string predicate);

/// Keeps tuples whose `column` equals one of `allowed` — the digital-home
/// Point stage that joins against a static relation of expected tag ids.
StageFactory PointValueFilter(std::string column,
                              std::vector<std::string> allowed);

/// Runs an arbitrary CQL query over point_input (instantaneous window).
StageFactory PointQuery(std::string query);

// --- Smooth operators (temporal-granule aggregation) ----------------------

/// The paper's Query 2: within the temporal granule, count the readings of
/// each `key_column` value; a key present anywhere in the window is
/// reported, interpolating dropped readings. Output: (key, reads).
StageFactory SmoothPresenceCount(TemporalGranule granule,
                                 std::string key_column);

/// Sliding-window average of `value_column` per `key_column` — the sensor
/// networks' Smooth stage (Section 5.2.1). Output: (key, value_column).
StageFactory SmoothWindowedAverage(TemporalGranule granule,
                                   std::string key_column,
                                   std::string value_column);

/// Robust variant of SmoothWindowedAverage using the window median, which
/// shrugs off single errant readings within a mote's own stream — the
/// technique footnote 3 of the paper alludes to ("[Smooth] could be used to
/// correct for single outlier readings in one mote"). Output:
/// (key, value_column).
StageFactory SmoothWindowedMedian(TemporalGranule granule,
                                  std::string key_column,
                                  std::string value_column);

/// Native (arbitrary-code) equivalent of SmoothPresenceCount.
StageFactory NativeSmoothPresenceCount(TemporalGranule granule,
                                       std::string key_column);

/// Native (arbitrary-code) equivalent of SmoothWindowedAverage.
StageFactory NativeSmoothWindowedAverage(TemporalGranule granule,
                                         std::string key_column,
                                         std::string value_column);

// --- Merge operators (spatial-granule aggregation) -------------------------

/// Union of the proximity group's member streams, unchanged (instantaneous
/// window) — the digital-home RFID Merge.
StageFactory MergeUnion();

/// Windowed average of `value_column` across the group — Section 5.2.2.
/// Output: (spatial_granule, value_column).
StageFactory MergeWindowedAverage(TemporalGranule granule,
                                  std::string value_column);

/// The corrected Query 5: average of `value_column` across the group,
/// excluding readings more than one standard deviation from the window
/// mean. Output: (spatial_granule, value_column).
StageFactory MergeOutlierRejectingAverage(TemporalGranule granule,
                                          std::string value_column);

/// Reports one row per granule when at least `min_receptors` distinct
/// devices reported within the granule — the X10 Merge (Section 6.1).
/// Output: (spatial_granule, votes).
StageFactory MergeVoteThreshold(TemporalGranule granule,
                                std::string receptor_column,
                                int64_t min_receptors);

// --- Arbitrate operators (conflicts between spatial granules) --------------

/// The paper's Query 3 adapted to the pipeline's dataflow: each key (tag)
/// is attributed to the spatial granule whose smoothed stream reports the
/// highest read count; ties keep the tag in every tying granule.
/// Output: (spatial_granule, key, reads).
StageFactory ArbitrateMaxCount(std::string key_column,
                               std::string count_column);

/// The calibrated variant of Section 4.3.1, implemented natively: equal
/// counts are attributed to `weak_granule` only (compensating for the known
/// antenna disparity). Output: (spatial_granule, key, reads).
StageFactory ArbitrateMaxCountCalibrated(std::string key_column,
                                         std::string count_column,
                                         std::string weak_granule);

// --- Virtualize operators (cross-device-type cleaning) ---------------------

/// One modality's contribution to a voting Virtualize stage: the modality
/// votes 1 when any row of `stream`'s instantaneous window satisfies
/// `condition` (a CQL boolean expression over that stream's schema).
struct VoteInput {
  std::string stream;
  std::string condition;
};

/// The Query 6 pattern: normalize every receptor input stream to a vote and
/// report `event_label` when at least `threshold` modalities vote yes
/// (Section 6.2). Output: (event).
StatusOr<std::unique_ptr<Stage>> VirtualizeVote(std::vector<VoteInput> inputs,
                                                int64_t threshold,
                                                std::string event_label);

}  // namespace esp::core

#endif  // ESP_CORE_TOOLKIT_H_
