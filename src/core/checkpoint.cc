#include "core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace esp::core {

namespace {

constexpr char kMagic[8] = {'E', 'S', 'P', 'C', 'K', 'P', 'T', '1'};

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

/// Directory part of a path ("" when the path has no slash).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncPath(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return Status::IoError(ErrnoMessage("open for fsync", path));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError(ErrnoMessage("fsync", path));
  return Status::OK();
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return Status::IoError(ErrnoMessage("open", path));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError(ErrnoMessage("read", path));
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp));
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError(ErrnoMessage("write", tmp));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError(ErrnoMessage("fsync", tmp));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(ErrnoMessage("close", tmp));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(ErrnoMessage("rename to", path));
  }
  // Make the rename itself durable.
  const std::string dir = DirName(path);
  if (!dir.empty()) {
    ESP_RETURN_IF_ERROR(FsyncPath(dir, O_RDONLY | O_DIRECTORY));
  }
  return Status::OK();
}

void CheckpointWriter::AddSection(std::string name, std::string payload) {
  sections_.emplace_back(std::move(name), std::move(payload));
}

std::string CheckpointWriter::Serialize() const {
  ByteWriter w;
  w.WriteBytes(std::string_view(kMagic, sizeof(kMagic)));
  w.WriteU32(kCheckpointVersion);
  w.WriteU32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    w.WriteString(name);
    w.WriteU32(static_cast<uint32_t>(payload.size()));
    w.WriteU32(Crc32(payload));
    w.WriteBytes(payload);
  }
  const uint32_t file_crc = Crc32(w.data());
  w.WriteU32(file_crc);
  return std::move(w).Release();
}

Status CheckpointWriter::WriteToFile(const std::string& path) const {
  return AtomicWriteFile(path, Serialize());
}

StatusOr<CheckpointReader> CheckpointReader::Parse(std::string bytes) {
  CheckpointReader reader;
  reader.bytes_ = std::move(bytes);
  const std::string& data = reader.bytes_;

  if (data.size() < sizeof(kMagic) + 2 * sizeof(uint32_t) + sizeof(uint32_t)) {
    return Status::ParseError("checkpoint truncated: " +
                              std::to_string(data.size()) + " bytes");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("checkpoint has bad magic (not an ESPCKPT1 file)");
  }
  // The trailing u32 protects everything before it.
  const std::string_view body(data.data(), data.size() - sizeof(uint32_t));
  ByteReader tail(
      std::string_view(data.data() + body.size(), sizeof(uint32_t)));
  ESP_ASSIGN_OR_RETURN(const uint32_t stored_file_crc, tail.ReadU32());
  if (Crc32(body) != stored_file_crc) {
    return Status::ParseError(
        "checkpoint manifest checksum mismatch (file corrupted or truncated)");
  }

  ByteReader r(body);
  ESP_RETURN_IF_ERROR(r.ReadBytes(sizeof(kMagic)).status());
  ESP_ASSIGN_OR_RETURN(const uint32_t version, r.ReadU32());
  if (version != kCheckpointVersion) {
    return Status::ParseError("unsupported checkpoint version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kCheckpointVersion) + ")");
  }
  ESP_ASSIGN_OR_RETURN(const uint32_t count, r.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    ESP_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    ESP_ASSIGN_OR_RETURN(const uint32_t len, r.ReadU32());
    ESP_ASSIGN_OR_RETURN(const uint32_t stored_crc, r.ReadU32());
    const size_t offset = data.size() - sizeof(uint32_t) - r.remaining();
    ESP_ASSIGN_OR_RETURN(const std::string_view payload, r.ReadBytes(len));
    if (Crc32(payload) != stored_crc) {
      return Status::ParseError("checkpoint section '" + name +
                                "' checksum mismatch");
    }
    reader.names_.push_back(std::move(name));
    reader.spans_.emplace_back(offset, len);
  }
  if (!r.exhausted()) {
    return Status::ParseError("checkpoint has " +
                              std::to_string(r.remaining()) +
                              " trailing bytes after the last section");
  }
  return reader;
}

StatusOr<CheckpointReader> CheckpointReader::FromFile(const std::string& path) {
  ESP_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return Parse(std::move(bytes));
}

bool CheckpointReader::HasSection(const std::string& name) const {
  for (const std::string& have : names_) {
    if (have == name) return true;
  }
  return false;
}

StatusOr<std::string_view> CheckpointReader::Section(
    const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return std::string_view(bytes_.data() + spans_[i].first,
                              spans_[i].second);
    }
  }
  return Status::NotFound("checkpoint has no section '" + name + "'");
}

}  // namespace esp::core
