#ifndef ESP_CORE_MODEL_STAGE_H_
#define ESP_CORE_MODEL_STAGE_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "core/stage.h"
#include "stream/window.h"

namespace esp::core {

/// \brief Online linear model between two correlated attributes, with
/// exponential forgetting — the minimal core of the BBQ-style model-driven
/// cleaning the paper proposes for the Virtualize stage (Sections 2.2 and
/// 6.3.1): "a BBQ-like system ... may exploit correlations between
/// different sensors (e.g., voltage and temperature) to provide outlier
/// detection".
///
/// The model is y ≈ slope·x + intercept, fitted by exponentially-weighted
/// least squares; it also tracks the residual's standard deviation so
/// callers can score new readings in sigma units.
class CrossAttributeModel {
 public:
  /// `forgetting` in (0, 1]: 1.0 = ordinary least squares over all history;
  /// smaller values track drifting relationships.
  explicit CrossAttributeModel(double forgetting = 0.99);

  /// Folds one (x, y) observation into the model.
  void Observe(double x, double y);

  /// Predicted y for a given x. Requires at least two observations with
  /// distinct x values.
  StatusOr<double> Predict(double x) const;

  /// Residual z-score of an observation against the current model; requires
  /// a usable model and non-degenerate residual spread.
  StatusOr<double> ResidualSigmas(double x, double y) const;

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }
  double residual_stddev() const;
  int64_t observations() const { return observations_; }

  /// Serializes / restores the learned sufficient statistics (durability
  /// layer). The forgetting factor is configuration and is not serialized.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  bool Usable() const;
  void Refit();

  double forgetting_;
  int64_t observations_ = 0;
  // Exponentially-weighted sufficient statistics.
  double weight_ = 0;
  double sx_ = 0, sy_ = 0, sxx_ = 0, sxy_ = 0;
  double slope_ = 0, intercept_ = 0;
  // Exponentially-weighted second moment of residuals.
  double residual_weight_ = 0;
  double residual_m2_ = 0;
};

/// \brief A cleaning stage that learns the cross-attribute model online and
/// annotates each tuple with the model's verdict.
///
/// Input: one stream carrying numeric columns `x_column` and `y_column`
/// (e.g. voltage and temperature). Output: the input columns plus
/// `predicted` (double), `residual_sigmas` (double), and `outlier` (bool).
/// Tuples flagged as outliers are NOT used to update the model, so a
/// fail-dirty sensor cannot drag the model along with its drift. During
/// warm-up (< `warmup_observations`) everything trains and nothing is
/// flagged.
class ModelOutlierStage : public Stage {
 public:
  struct Config {
    std::string input_stream;  // Defaults to the stage kind's input name.
    std::string x_column;
    std::string y_column;
    double forgetting = 0.99;
    double threshold_sigmas = 5.0;
    int64_t warmup_observations = 32;
  };

  ModelOutlierStage(StageKind kind, std::string name, Config config);

  Status Bind(const cql::SchemaCatalog& inputs) override;
  Status Push(const std::string& input, stream::Tuple tuple) override;
  StatusOr<stream::Relation> Evaluate(Timestamp now) override;
  size_t buffered() const override {
    return buffer_.has_value() ? buffer_->buffered() : 0;
  }
  Status SaveState(ByteWriter& w) const override;
  Status LoadState(ByteReader& r) override;

  const CrossAttributeModel& model() const { return model_; }

 private:
  Config config_;
  CrossAttributeModel model_;
  size_t x_index_ = 0;
  size_t y_index_ = 0;
  std::optional<stream::WindowBuffer> buffer_;
};

}  // namespace esp::core

#endif  // ESP_CORE_MODEL_STAGE_H_
