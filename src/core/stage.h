#ifndef ESP_CORE_STAGE_H_
#define ESP_CORE_STAGE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "common/time.h"
#include "cql/continuous_query.h"
#include "stream/tuple.h"
#include "stream/window.h"

namespace esp::core {

/// \brief The five logical cleaning stages of the ESP pipeline (Figure 1).
enum class StageKind { kPoint, kSmooth, kMerge, kArbitrate, kVirtualize };

const char* StageKindToString(StageKind kind);

/// \brief The conventional input stream name a stage of each kind reads —
/// exactly the names the paper's queries use (smooth_input, merge_input,
/// arbitrate_input, point_input). Virtualize stages read one stream per
/// device type, named by the deployment (e.g. rfid_input, sensors_input).
std::string StageInputName(StageKind kind);

/// \brief One programmable processing stage.
///
/// A stage consumes one or more named input streams and, at each tick,
/// produces the relation its logic defines at that instant. Stages may be
/// implemented three ways (Section 3.3), in decreasing declarativeness:
/// declarative continuous queries (CqlStage), user-defined functions over
/// window snapshots (FunctionStage), or arbitrary code (subclass Stage).
class Stage {
 public:
  explicit Stage(StageKind kind, std::string name)
      : kind_(kind), name_(std::move(name)) {}
  virtual ~Stage() = default;

  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  StageKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  /// Resolves the stage against its input schemas and computes the output
  /// schema. Must be called exactly once before Push/Evaluate.
  virtual Status Bind(const cql::SchemaCatalog& inputs) = 0;

  /// Output schema; valid after Bind.
  const stream::SchemaRef& output_schema() const { return output_schema_; }

  /// Feeds one tuple into the named input stream (timestamps must be
  /// non-decreasing per stream).
  virtual Status Push(const std::string& input, stream::Tuple tuple) = 0;

  /// Produces the stage's output relation at time `now`.
  virtual StatusOr<stream::Relation> Evaluate(Timestamp now) = 0;

  /// Tuples currently buffered in the stage's windows (observability; used
  /// by the memory-boundedness soak tests).
  virtual size_t buffered() const { return 0; }

  /// Byte the default SaveState writes as its entire payload, letting the
  /// default LoadState tell "this stage deliberately checkpoints no state"
  /// apart from a blob that actually holds state.
  static constexpr uint8_t kNoStateMarker = 0xE5;

  /// Serializes the stage's mutable runtime state (window contents, clocks,
  /// learned statistics) for a pipeline checkpoint. Configuration (queries,
  /// schemas, parameters) is NOT serialized — restore happens into a stage
  /// rebuilt from the same deployment and already Bind()ed. Stages built
  /// into the repository all support this; custom subclasses that keep no
  /// state across ticks may rely on the defaults, which write and verify an
  /// explicit no-state marker, while stateful subclasses must override BOTH
  /// hooks: the marker makes a mismatch loud in either direction (a blob
  /// holding real state fails the default LoadState instead of silently
  /// restoring nothing, and the marker blob fails a real LoadState).
  /// Caveat: a stateful subclass that overrides neither hook and keeps its
  /// state outside buffered() tuples is undetectable here — checkpoint
  /// coverage is part of the subclass author's contract (docs/RECOVERY.md).
  virtual Status SaveState(ByteWriter& w) const {
    if (buffered() > 0) {
      return Status::Unimplemented("stage '" + name_ +
                                   "' does not implement SaveState");
    }
    w.WriteU8(kNoStateMarker);
    return Status::OK();
  }

  /// Restores state saved by SaveState. Called after Bind on an identically
  /// configured stage.
  virtual Status LoadState(ByteReader& r) {
    const StatusOr<uint8_t> marker = r.ReadU8();
    if (!marker.ok() || marker.value() != kNoStateMarker || !r.exhausted()) {
      return Status::Unimplemented(
          "stage '" + name_ +
          "' does not implement LoadState but its checkpoint holds state");
    }
    return Status::OK();
  }

 protected:
  stream::SchemaRef output_schema_;

 private:
  StageKind kind_;
  std::string name_;
};

/// Factory used by the processor to instantiate per-receptor / per-group
/// stage instances from one configuration.
using StageFactory = std::function<StatusOr<std::unique_ptr<Stage>>()>;

/// Writes one stage's name plus its SaveState payload as a length-prefixed
/// blob, so each stage's LoadState sees exactly its own bytes (and the
/// default hooks, which write and verify an explicit no-state marker, stay
/// framed per stage). Shared by every StreamEngine's checkpoint writer.
Status SaveStageBlob(const Stage* stage, ByteWriter& w);

/// Reads a blob written by SaveStageBlob into an identically named stage,
/// verifying the name and that LoadState consumed every byte.
Status LoadStageBlob(Stage* stage, ByteReader& r);

/// \brief A stage programmed with a declarative CQL query — the paper's
/// preferred programming model.
///
/// For Point stages, unwindowed references to point_input are rewritten to
/// `[Range By 'NOW']`: the paper's Query 4 is written without a window
/// because Point conceptually operates "over a single value in a receptor
/// stream", which in snapshot semantics is the instantaneous window.
class CqlStage : public Stage {
 public:
  static StatusOr<std::unique_ptr<CqlStage>> Create(StageKind kind,
                                                    std::string name,
                                                    const std::string& query);

  Status Bind(const cql::SchemaCatalog& inputs) override;
  Status Push(const std::string& input, stream::Tuple tuple) override;
  StatusOr<stream::Relation> Evaluate(Timestamp now) override;
  size_t buffered() const override {
    return cq_ == nullptr ? 0 : cq_->buffered();
  }
  Status SaveState(ByteWriter& w) const override;
  Status LoadState(ByteReader& r) override;

  /// The (possibly rewritten) query text this stage runs.
  const std::string& query_text() const { return query_text_; }

 private:
  CqlStage(StageKind kind, std::string name,
           std::unique_ptr<cql::SelectQuery> ast, std::string query_text)
      : Stage(kind, std::move(name)),
        ast_(std::move(ast)),
        query_text_(std::move(query_text)) {}

  std::unique_ptr<cql::SelectQuery> ast_;
  std::string query_text_;
  std::unique_ptr<cql::ContinuousQuery> cq_;
};

/// \brief A stage programmed with arbitrary code over window snapshots: the
/// UDF path. The function receives the materialized window of every
/// declared input (in declaration order) and the evaluation instant.
class FunctionStage : public Stage {
 public:
  struct Input {
    std::string stream;
    stream::WindowSpec window;
  };
  using Fn = std::function<StatusOr<stream::Relation>(
      const std::vector<stream::Relation>& windows, Timestamp now)>;

  /// `output_schema` is declared up front (code stages cannot be inferred).
  FunctionStage(StageKind kind, std::string name, std::vector<Input> inputs,
                stream::SchemaRef output_schema, Fn fn);

  Status Bind(const cql::SchemaCatalog& inputs) override;
  Status Push(const std::string& input, stream::Tuple tuple) override;
  StatusOr<stream::Relation> Evaluate(Timestamp now) override;
  size_t buffered() const override;
  Status SaveState(ByteWriter& w) const override;
  Status LoadState(ByteReader& r) override;

 private:
  struct BoundInput {
    Input declared;
    stream::WindowBuffer buffer;
  };

  std::vector<Input> declared_inputs_;
  std::vector<BoundInput> bound_;
  stream::SchemaRef declared_output_;
  Fn fn_;
  bool bound_called_ = false;
};

}  // namespace esp::core

#endif  // ESP_CORE_STAGE_H_
