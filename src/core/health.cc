#include "core/health.h"

#include <algorithm>

#include "common/string_util.h"

namespace esp::core {

const char* StageErrorPolicyToString(StageErrorPolicy policy) {
  switch (policy) {
    case StageErrorPolicy::kDegrade:
      return "degrade";
    case StageErrorPolicy::kFailFast:
      return "failfast";
  }
  return "?";
}

const char* ReceptorStateToString(ReceptorState state) {
  switch (state) {
    case ReceptorState::kHealthy:
      return "healthy";
    case ReceptorState::kSuspect:
      return "suspect";
    case ReceptorState::kQuarantined:
      return "quarantined";
  }
  return "?";
}

std::string PipelineHealth::ToString() const {
  std::string out;
  out += StrFormat(
      "pipeline health: %zu receptors (%zu suspect, %zu quarantined), "
      "%lld stage errors, %lld late admitted, %lld dropped late, "
      "%lld dropped in quarantine\n",
      receptors.size(), suspect_now, quarantined_now,
      static_cast<long long>(total_stage_errors),
      static_cast<long long>(total_late_admitted),
      static_cast<long long>(total_dropped_late),
      static_cast<long long>(total_dropped_quarantined));
  for (const ReceptorHealth& r : receptors) {
    if (r.state == ReceptorState::kHealthy && r.dropped_late == 0 &&
        r.late_admitted == 0 && r.quarantine_count == 0 &&
        r.last_error.empty()) {
      continue;  // Keep the report focused on receptors with a story.
    }
    out += StrFormat("  %s/%s: %s, delivered=%lld late=%lld dropped=%lld",
                     r.device_type.c_str(), r.receptor_id.c_str(),
                     ReceptorStateToString(r.state),
                     static_cast<long long>(r.delivered),
                     static_cast<long long>(r.late_admitted),
                     static_cast<long long>(r.dropped_late));
    if (r.quarantine_count > 0) {
      out += StrFormat(" quarantines=%lld revivals=%lld discarded=%lld",
                       static_cast<long long>(r.quarantine_count),
                       static_cast<long long>(r.revival_count),
                       static_cast<long long>(r.dropped_quarantined));
    }
    if (!r.last_error.empty()) out += " last_error=" + r.last_error;
    out += "\n";
  }
  for (const StageErrorStat& s : stage_errors) {
    out += StrFormat("  stage %s: %lld errors (last: %s)\n", s.stage.c_str(),
                     static_cast<long long>(s.errors),
                     s.last_message.c_str());
  }
  if (recovery.checkpoints_written > 0 || recovery.restores > 0 ||
      recovery.journal_records > 0) {
    out += "  recovery: " + recovery.ToString() + "\n";
  }
  if (columnar.active() || columnar.enabled) {
    out += "  columnar: " + columnar.ToString() + "\n";
  }
  if (queries.active()) {
    out += "  " + queries.ToString() + "\n";
  }
  if (ingest.active()) {
    out += "  ingest: " + ingest.ToString() + "\n";
    for (const ClientIngestStats& c : ingest.clients) {
      out += StrFormat(
          "    client %s: connects=%lld reconnects=%lld applied=%lld "
          "dup=%lld shed=%lld torn=%lld rejected=%lld seq=%llu\n",
          c.client_id.c_str(), static_cast<long long>(c.connects),
          static_cast<long long>(c.reconnects),
          static_cast<long long>(c.readings_applied),
          static_cast<long long>(c.duplicate_frames_dropped),
          static_cast<long long>(c.shed_readings),
          static_cast<long long>(c.torn_frames),
          static_cast<long long>(c.rejected_readings),
          static_cast<unsigned long long>(c.last_applied_seq));
    }
  }
  return out;
}

std::string ColumnarStats::ToString() const {
  return StrFormat(
      "enabled=%d avx2=%d vector_batches=%llu scalar_batches=%llu "
      "guard_fallbacks=%llu",
      enabled ? 1 : 0, avx2 ? 1 : 0,
      static_cast<unsigned long long>(vector_batches),
      static_cast<unsigned long long>(scalar_batches),
      static_cast<unsigned long long>(guard_fallbacks));
}

std::string IngestStats::ToString() const {
  return StrFormat(
      "conns=%lld (active=%lld rejected=%lld) reconnects=%lld "
      "superseded=%lld readings=%lld ticks=%lld dup_frames=%lld shed=%lld "
      "torn=%lld gaps=%lld rejected=%lld timeouts=%lld idle=%lld "
      "bytes=%lld",
      static_cast<long long>(connections_accepted),
      static_cast<long long>(active_connections),
      static_cast<long long>(connections_rejected),
      static_cast<long long>(reconnects),
      static_cast<long long>(superseded_closes),
      static_cast<long long>(readings_applied),
      static_cast<long long>(ticks_applied),
      static_cast<long long>(duplicate_frames_dropped),
      static_cast<long long>(shed_readings),
      static_cast<long long>(torn_frame_closes),
      static_cast<long long>(sequence_gap_closes),
      static_cast<long long>(rejected_readings),
      static_cast<long long>(read_timeout_closes),
      static_cast<long long>(idle_closes),
      static_cast<long long>(bytes_received));
}

ReceptorHealthTracker::ReceptorHealthTracker(std::string receptor_id,
                                             std::string device_type,
                                             const HealthPolicy* policy)
    : policy_(policy) {
  health_.receptor_id = std::move(receptor_id);
  health_.device_type = std::move(device_type);
}

ReceptorHealthTracker::Transition ReceptorHealthTracker::Observe(
    Timestamp now, std::optional<Timestamp> data_time) {
  if (!baseline_set_) {
    // Staleness for a receptor that never speaks is measured from the first
    // tick, not from the epoch.
    health_.last_seen = now;
    baseline_set_ = true;
  }
  if (data_time.has_value()) {
    health_.ever_delivered = true;
    health_.last_seen = std::max(health_.last_seen, *data_time);
  }
  if (!policy_->liveness_enabled()) return Transition::kNone;

  switch (health_.state) {
    case ReceptorState::kHealthy:
      if (!data_time.has_value() &&
          now - health_.last_seen > policy_->staleness_threshold) {
        health_.state = ReceptorState::kSuspect;
        health_.suspect_since = now;
        return Transition::kSuspect;
      }
      return Transition::kNone;

    case ReceptorState::kSuspect:
      if (data_time.has_value()) {
        health_.state = ReceptorState::kHealthy;
        return Transition::kRecover;
      }
      if (now - health_.suspect_since >= policy_->quarantine_timeout) {
        health_.state = ReceptorState::kQuarantined;
        health_.quarantined_since = now;
        health_.probe_backoff = policy_->revival_backoff;
        health_.next_probe = now + health_.probe_backoff;
        ++health_.quarantine_count;
        return Transition::kQuarantine;
      }
      return Transition::kNone;

    case ReceptorState::kQuarantined:
      if (now < health_.next_probe) return Transition::kNone;
      if (data_time.has_value()) {
        health_.state = ReceptorState::kHealthy;
        health_.probe_backoff = Duration::Zero();
        ++health_.revival_count;
        return Transition::kRevive;
      }
      health_.probe_backoff =
          std::min(health_.probe_backoff * 2.0, policy_->max_revival_backoff);
      health_.next_probe = now + health_.probe_backoff;
      return Transition::kProbeFailed;
  }
  return Transition::kNone;
}

void ReceptorHealthTracker::SaveState(ByteWriter& w) const {
  w.WriteU8(static_cast<uint8_t>(health_.state));
  w.WriteI64(health_.last_seen.micros());
  w.WriteBool(health_.ever_delivered);
  w.WriteI64(health_.suspect_since.micros());
  w.WriteI64(health_.quarantined_since.micros());
  w.WriteI64(health_.next_probe.micros());
  w.WriteI64(health_.probe_backoff.micros());
  w.WriteI64(health_.delivered);
  w.WriteI64(health_.late_admitted);
  w.WriteI64(health_.dropped_late);
  w.WriteI64(health_.dropped_quarantined);
  w.WriteI64(health_.quarantine_count);
  w.WriteI64(health_.revival_count);
  w.WriteString(health_.last_error);
  w.WriteBool(baseline_set_);
}

Status ReceptorHealthTracker::LoadState(ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(const uint8_t state_tag, r.ReadU8());
  if (state_tag > static_cast<uint8_t>(ReceptorState::kQuarantined)) {
    return Status::ParseError("unknown receptor state tag " +
                              std::to_string(state_tag));
  }
  health_.state = static_cast<ReceptorState>(state_tag);
  ESP_ASSIGN_OR_RETURN(int64_t micros, r.ReadI64());
  health_.last_seen = Timestamp::Micros(micros);
  ESP_ASSIGN_OR_RETURN(health_.ever_delivered, r.ReadBool());
  ESP_ASSIGN_OR_RETURN(micros, r.ReadI64());
  health_.suspect_since = Timestamp::Micros(micros);
  ESP_ASSIGN_OR_RETURN(micros, r.ReadI64());
  health_.quarantined_since = Timestamp::Micros(micros);
  ESP_ASSIGN_OR_RETURN(micros, r.ReadI64());
  health_.next_probe = Timestamp::Micros(micros);
  ESP_ASSIGN_OR_RETURN(micros, r.ReadI64());
  health_.probe_backoff = Duration::Micros(micros);
  ESP_ASSIGN_OR_RETURN(health_.delivered, r.ReadI64());
  ESP_ASSIGN_OR_RETURN(health_.late_admitted, r.ReadI64());
  ESP_ASSIGN_OR_RETURN(health_.dropped_late, r.ReadI64());
  ESP_ASSIGN_OR_RETURN(health_.dropped_quarantined, r.ReadI64());
  ESP_ASSIGN_OR_RETURN(health_.quarantine_count, r.ReadI64());
  ESP_ASSIGN_OR_RETURN(health_.revival_count, r.ReadI64());
  ESP_ASSIGN_OR_RETURN(health_.last_error, r.ReadString());
  ESP_ASSIGN_OR_RETURN(baseline_set_, r.ReadBool());
  return Status::OK();
}

}  // namespace esp::core
