#include "core/recovery.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "core/checkpoint.h"

namespace esp::core {

namespace {

constexpr const char* kJournalFile = "journal.wal";
constexpr const char* kLockFile = "LOCK";
constexpr const char* kSnapshotPrefix = "snap_";
constexpr const char* kSnapshotSuffix = ".ckpt";

/// Takes the directory's exclusive advisory lock. flock() is per open file
/// description and released by the kernel when the holder's last descriptor
/// closes — including via SIGKILL — so a dead session can never wedge the
/// directory, while a live one makes a concurrent Start/Resume fail with a
/// typed error instead of interleaving two journals.
StatusOr<int> AcquireDirectoryLock(const std::string& dir) {
  const std::string path = dir + "/" + kLockFile;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Status::FromErrno("open '" + path + "'", errno);
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    const int err = errno;
    ::close(fd);
    if (err == EWOULDBLOCK) {
      return Status::FailedPrecondition(
          "recovery directory '" + dir +
          "' is locked by another live session (double Start/Resume, or a "
          "fenced worker that has not been killed yet)");
    }
    return Status::FromErrno("flock '" + path + "'", err);
  }
  return fd;
}

/// Closes the lock fd on early-error paths; released into the coordinator on
/// success.
struct LockHolder {
  int fd = -1;
  ~LockHolder() {
    if (fd >= 0) ::close(fd);
  }
  int Release() {
    const int out = fd;
    fd = -1;
    return out;
  }
};

/// Parses "snap_<digits>.ckpt" into its sequence number.
bool ParseSnapshotName(const std::string& name, uint64_t* seq) {
  const size_t prefix_len = std::strlen(kSnapshotPrefix);
  const size_t suffix_len = std::strlen(kSnapshotSuffix);
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kSnapshotPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSnapshotSuffix) !=
      0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

/// All snapshots in `dir`, sorted ascending by sequence number.
StatusOr<std::vector<std::pair<uint64_t, std::string>>> ListSnapshots(
    const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Status::IoError("opendir '" + dir + "': " + std::strerror(errno));
  }
  std::vector<std::pair<uint64_t, std::string>> found;
  while (const dirent* entry = ::readdir(handle)) {
    uint64_t seq = 0;
    const std::string name = entry->d_name;
    if (ParseSnapshotName(name, &seq)) {
      found.emplace_back(seq, dir + "/" + name);
    }
  }
  ::closedir(handle);
  std::sort(found.begin(), found.end());
  return found;
}

Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IoError("mkdir '" + dir + "': " + std::strerror(errno));
}

JournalWriter::Options JournalOptions(const RecoveryOptions& options) {
  JournalWriter::Options journal;
  journal.fsync_on_flush = options.fsync;
  journal.flush_every_records = options.journal_flush_every;
  journal.fsync_every_flushes = options.journal_fsync_every;
  return journal;
}

Status ValidateOptions(const RecoveryOptions& options) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("recovery directory must be set");
  }
  if (options.retain_snapshots == 0) {
    return Status::InvalidArgument("retain_snapshots must be at least 1");
  }
  if (options.journal_flush_every == 0) {
    return Status::InvalidArgument("journal_flush_every must be at least 1");
  }
  if (options.journal_fsync_every == 0) {
    return Status::InvalidArgument("journal_fsync_every must be at least 1");
  }
  return Status::OK();
}

}  // namespace

std::string RecoveryCoordinator::JournalPath() const {
  return options_.directory + "/" + kJournalFile;
}

std::string RecoveryCoordinator::SnapshotPath(uint64_t seq) const {
  std::string digits = std::to_string(seq);
  while (digits.size() < 8) digits.insert(digits.begin(), '0');
  return options_.directory + "/" + kSnapshotPrefix + digits + kSnapshotSuffix;
}

StatusOr<std::unique_ptr<RecoveryCoordinator>> RecoveryCoordinator::Start(
    StreamEngine* processor, RecoveryOptions options) {
  ESP_RETURN_IF_ERROR(ValidateOptions(options));
  ESP_RETURN_IF_ERROR(EnsureDirectory(options.directory));
  LockHolder lock;
  ESP_ASSIGN_OR_RETURN(lock.fd, AcquireDirectoryLock(options.directory));
  // A fresh session owns the directory: snapshots from an earlier journal
  // would hold resume indexes into a history that no longer exists.
  ESP_ASSIGN_OR_RETURN(const auto stale, ListSnapshots(options.directory));
  for (const auto& [seq, path] : stale) {
    if (::unlink(path.c_str()) != 0) {
      return Status::IoError("unlink '" + path + "': " + std::strerror(errno));
    }
  }
  ESP_ASSIGN_OR_RETURN(
      std::unique_ptr<JournalWriter> journal,
      JournalWriter::Create(options.directory + "/" + kJournalFile,
                            JournalOptions(options)));
  return std::unique_ptr<RecoveryCoordinator>(
      new RecoveryCoordinator(processor, std::move(options),
                              std::move(journal), /*next_seq=*/1,
                              lock.Release()));
}

StatusOr<std::unique_ptr<RecoveryCoordinator>> RecoveryCoordinator::Resume(
    StreamEngine* processor, RecoveryOptions options, RestoreReport* report,
    const ReplayTickCallback& on_replayed_tick) {
  ESP_RETURN_IF_ERROR(ValidateOptions(options));
  // A crash can precede even the directory's creation; resuming from
  // nothing is a fresh start.
  ESP_RETURN_IF_ERROR(EnsureDirectory(options.directory));
  LockHolder lock;
  ESP_ASSIGN_OR_RETURN(lock.fd, AcquireDirectoryLock(options.directory));
  const std::string journal_path = options.directory + "/" + kJournalFile;

  // 1. Repair the journal: drop the torn tail a crash mid-append leaves. A
  // missing journal (crash before the session created it) scans as empty.
  JournalScan scan;
  {
    StatusOr<JournalScan> scanned =
        ScanJournal(journal_path, /*truncate_torn_tail=*/true);
    if (scanned.ok()) {
      scan = std::move(scanned).value();
    } else if (scanned.status().code() != StatusCode::kNotFound) {
      return scanned.status();
    }
  }

  RestoreReport local;
  RestoreReport* out = report != nullptr ? report : &local;
  *out = RestoreReport{};
  out->journal_torn_bytes = scan.torn_bytes;

  // 2. Load the newest snapshot that validates; corrupt ones (CRC
  // mismatch, truncation, bad sections) are skipped in favour of older
  // ones. With none usable, replay starts from the beginning of the
  // journal into the freshly started processor. A candidate can pass every
  // container CRC yet fail Restore partway (a semantically short section),
  // leaving the processor half mutated — so the fresh processor's pristine
  // state is captured up front and put back after a failed attempt, before
  // the next candidate (or the full-journal replay) runs.
  ESP_ASSIGN_OR_RETURN(auto snapshots, ListSnapshots(options.directory));
  uint64_t max_seq = 0;
  for (const auto& [seq, path] : snapshots) max_seq = std::max(max_seq, seq);
  std::string pristine_bytes;
  if (!snapshots.empty()) {
    CheckpointWriter pristine;
    ESP_RETURN_IF_ERROR(processor->Checkpoint(pristine));
    pristine_bytes = pristine.Serialize();
  }
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    StatusOr<CheckpointReader> reader = CheckpointReader::FromFile(it->second);
    if (reader.ok()) {
      auto try_load = [&]() -> Status {
        ESP_ASSIGN_OR_RETURN(const std::string_view payload,
                             reader->Section("recovery"));
        ByteReader r(payload);
        ESP_ASSIGN_OR_RETURN(const uint64_t resume_index, r.ReadU64());
        ESP_ASSIGN_OR_RETURN(const uint64_t seq, r.ReadU64());
        if (resume_index > scan.records.size()) {
          return Status::ParseError(
              "snapshot resume index " + std::to_string(resume_index) +
              " is past the journal's " +
              std::to_string(scan.records.size()) + " records");
        }
        ESP_RETURN_IF_ERROR(processor->Restore(*reader));
        out->from_snapshot = true;
        out->snapshot_seq = seq;
        out->resume_record_index = resume_index;
        return Status::OK();
      };
      if (try_load().ok()) break;
      ESP_ASSIGN_OR_RETURN(const CheckpointReader pristine,
                           CheckpointReader::Parse(pristine_bytes));
      ESP_RETURN_IF_ERROR(processor->Restore(pristine));
    }
    ++out->snapshots_skipped;
  }

  // 3. Replay the journal suffix. Inputs the live session rejected repeat
  // their rejection deterministically and are dropped just as the original
  // caller dropped them: Push rejections (late readings, unknown receptors)
  // via the ignored Push status, and records only journals written before
  // input validation can hold (unknown device type, schema mismatch,
  // non-monotonic tick) by tolerating their lookup/decode/Tick failures.
  // Anything else — e.g. an I/O error or a callback failure — still aborts.
  for (size_t i = out->resume_record_index; i < scan.records.size(); ++i) {
    const JournalRecord& record = scan.records[i];
    switch (record.kind) {
      case JournalRecord::Kind::kPush: {
        const StatusOr<stream::SchemaRef> schema =
            processor->TypeReadingSchema(record.device_type);
        if (!schema.ok()) {
          ++out->replay_rejected;
          break;
        }
        StatusOr<stream::Tuple> tuple =
            DecodeJournalTuple(record, schema.value());
        if (!tuple.ok()) {
          ++out->replay_rejected;
          break;
        }
        (void)processor->Push(record.device_type, std::move(tuple).value());
        ++out->replayed_pushes;
        break;
      }
      case JournalRecord::Kind::kBatch: {
        const StatusOr<stream::SchemaRef> schema =
            processor->TypeReadingSchema(record.device_type);
        if (!schema.ok()) {
          ++out->replay_rejected;
          break;
        }
        StatusOr<std::vector<stream::Tuple>> readings =
            DecodeJournalBatch(record, schema.value());
        if (!readings.ok()) {
          ++out->replay_rejected;
          break;
        }
        for (stream::Tuple& tuple : readings.value()) {
          (void)processor->Push(record.device_type, std::move(tuple));
          ++out->replayed_pushes;
        }
        break;
      }
      case JournalRecord::Kind::kTick: {
        StatusOr<TickResult> result =
            processor->Tick(record.tick_time);
        if (!result.ok()) {
          if (result.status().code() == StatusCode::kInvalidArgument) {
            ++out->replay_rejected;
            break;
          }
          return result.status();
        }
        if (on_replayed_tick != nullptr) {
          ESP_RETURN_IF_ERROR(
              on_replayed_tick(record.tick_time, result.value()));
        }
        ++out->replayed_ticks;
        break;
      }
    }
  }

  // 4. Reopen the journal for appending (recreate it when the crash
  // happened before even the header landed).
  std::unique_ptr<JournalWriter> journal;
  if (scan.valid_bytes > 0) {
    ESP_ASSIGN_OR_RETURN(journal,
                         JournalWriter::Append(journal_path,
                                               JournalOptions(options),
                                               scan.records.size(),
                                               scan.valid_bytes));
  } else {
    ESP_ASSIGN_OR_RETURN(
        journal, JournalWriter::Create(journal_path, JournalOptions(options)));
  }

  RecoveryStats& stats = processor->mutable_recovery_stats();
  ++stats.restores;
  stats.restore_replays +=
      static_cast<int64_t>(out->replayed_pushes + out->replayed_ticks);
  stats.corrupt_snapshots_skipped +=
      static_cast<int64_t>(out->snapshots_skipped);
  stats.journal_torn_bytes += static_cast<int64_t>(out->journal_torn_bytes);
  stats.journal_records = static_cast<int64_t>(journal->records_written());
  stats.journal_bytes = static_cast<int64_t>(journal->bytes_written());

  return std::unique_ptr<RecoveryCoordinator>(
      new RecoveryCoordinator(processor, std::move(options),
                              std::move(journal), max_seq + 1,
                              lock.Release()));
}

RecoveryCoordinator::~RecoveryCoordinator() {
  // Flush the journal's buffered tail before the lock drops, so no other
  // session can take the directory while this one still has bytes in
  // flight.
  journal_.reset();
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

void RecoveryCoordinator::SyncJournalStats() {
  RecoveryStats& stats = processor_->mutable_recovery_stats();
  stats.journal_records = static_cast<int64_t>(journal_->records_written());
  stats.journal_bytes = static_cast<int64_t>(journal_->bytes_written());
}

Status RecoveryCoordinator::Push(const std::string& device_type,
                                 stream::Tuple raw) {
  // Never journal what replay cannot decode: a push for an unknown device
  // type or with a mismatched schema fails schema lookup/decode during
  // Resume instead of repeating its live rejection, so it is rejected here
  // before it can reach the journal.
  ESP_ASSIGN_OR_RETURN(const stream::SchemaRef schema,
                       processor_->TypeReadingSchema(device_type));
  if (raw.schema() == nullptr || !raw.schema()->Equals(*schema)) {
    return Status::TypeError("raw reading schema mismatch for type '" +
                             device_type + "'");
  }
  // Journal-before-apply: the record must be in the journal's buffer before
  // the processor mutates state from it.
  ESP_RETURN_IF_ERROR(journal_->AppendPush(device_type, raw));
  SyncJournalStats();
  return processor_->Push(device_type, std::move(raw));
}

Status RecoveryCoordinator::PushBatch(const std::string& device_type,
                                      std::vector<stream::Tuple> readings,
                                      uint64_t* rejected) {
  if (rejected != nullptr) *rejected = 0;
  if (readings.empty()) return Status::OK();
  // Same pre-journal validation as Push: replay must be able to decode
  // every reading in the record.
  ESP_ASSIGN_OR_RETURN(const stream::SchemaRef schema,
                       processor_->TypeReadingSchema(device_type));
  for (const stream::Tuple& raw : readings) {
    if (raw.schema() == nullptr || !raw.schema()->Equals(*schema)) {
      return Status::TypeError("raw reading schema mismatch for type '" +
                               device_type + "'");
    }
  }
  // One framed record for the whole batch: either every reading below is
  // replayable after a crash, or (torn tail) none of them applied.
  ESP_RETURN_IF_ERROR(journal_->AppendBatch(device_type, readings));
  SyncJournalStats();
  for (stream::Tuple& raw : readings) {
    const Status pushed = processor_->Push(device_type, std::move(raw));
    // Per-reading rejections (late arrival, unknown receptor) are dropped
    // live exactly as replay will re-drop them; only count them.
    if (!pushed.ok() && rejected != nullptr) ++*rejected;
  }
  return Status::OK();
}

StatusOr<TickResult> RecoveryCoordinator::Tick(Timestamp now) {
  // Mirror the processor's monotonicity check before journaling — a
  // journaled-but-rejected tick would be skipped on every future replay,
  // bloating the journal for nothing.
  if (processor_->has_ticked() && now < processor_->last_tick()) {
    return Status::InvalidArgument("tick times must be non-decreasing");
  }
  ESP_RETURN_IF_ERROR(journal_->AppendTick(now));
  SyncJournalStats();
  ESP_ASSIGN_OR_RETURN(TickResult result,
                       processor_->Tick(now));
  ++ticks_since_checkpoint_;
  if (options_.checkpoint_interval_ticks > 0 &&
      ticks_since_checkpoint_ >= options_.checkpoint_interval_ticks) {
    ESP_RETURN_IF_ERROR(Checkpoint());
  }
  return result;
}

Status RecoveryCoordinator::Checkpoint() {
  // The journal must be durable up to the resume index the snapshot
  // records, or a crash right after the snapshot could strand it pointing
  // past the journal's tail. Sync() overrides any fsync batching cadence.
  ESP_RETURN_IF_ERROR(journal_->Sync());
  CheckpointWriter writer;
  ESP_RETURN_IF_ERROR(processor_->Checkpoint(writer));
  ByteWriter recovery;
  recovery.WriteU64(journal_->records_written());
  recovery.WriteU64(next_seq_);
  writer.AddSection("recovery", std::move(recovery));
  ESP_RETURN_IF_ERROR(writer.WriteToFile(SnapshotPath(next_seq_)));
  ++next_seq_;
  ticks_since_checkpoint_ = 0;
  RecoveryStats& stats = processor_->mutable_recovery_stats();
  ++stats.checkpoints_written;
  SyncJournalStats();
  return PruneSnapshots();
}

Status RecoveryCoordinator::PruneSnapshots() {
  ESP_ASSIGN_OR_RETURN(auto snapshots, ListSnapshots(options_.directory));
  if (snapshots.size() <= options_.retain_snapshots) return Status::OK();
  const size_t excess = snapshots.size() - options_.retain_snapshots;
  for (size_t i = 0; i < excess; ++i) {
    if (::unlink(snapshots[i].second.c_str()) != 0) {
      return Status::IoError("unlink '" + snapshots[i].second +
                             "': " + std::strerror(errno));
    }
  }
  return Status::OK();
}

}  // namespace esp::core
