#ifndef ESP_CORE_JOURNAL_H_
#define ESP_CORE_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "common/time.h"
#include "stream/tuple.h"

namespace esp::core {

/// \file
/// Write-ahead input journal for the durability subsystem
/// (docs/RECOVERY.md). Every reading pushed into the pipeline — and every
/// tick — is appended to the journal *before* it is applied, so after a
/// crash the pipeline is reconstructed as: latest valid snapshot + replay of
/// the journal suffix past the snapshot's record index. The file is:
///
///   magic "ESPJRNL1" | u32 version
///   per record: u32 payload_len | u32 payload_crc32 | payload
///
/// Record payloads start with a u8 kind tag. Appends are buffered and
/// flushed (write + optional fsync) every `flush_every_records` records; a
/// crash can therefore lose the unflushed tail, which is consistent because
/// the corresponding in-memory pipeline state died with the process. A
/// crash mid-write leaves a torn final record; recovery detects it by frame
/// length/CRC and truncates the file back to its last complete record.

inline constexpr uint32_t kJournalVersion = 1;

/// \brief One decoded journal record.
struct JournalRecord {
  enum class Kind : uint8_t { kPush = 1, kTick = 2, kBatch = 3 };

  Kind kind = Kind::kPush;
  // kPush fields: the device type and the serialized reading. The tuple
  // payload is decoded lazily against the reading schema (known only to the
  // deployment) via DecodeJournalTuple. A kBatch record reuses the same two
  // fields, with tuple_payload holding `u32 count | count tuples` decoded
  // via DecodeJournalBatch.
  std::string device_type;
  std::string tuple_payload;
  // kTick field.
  Timestamp tick_time;
};

/// Decodes a kPush record's reading against its device type's schema.
StatusOr<stream::Tuple> DecodeJournalTuple(const JournalRecord& record,
                                           const stream::SchemaRef& schema);

/// Decodes a kBatch record's readings against its device type's schema.
StatusOr<std::vector<stream::Tuple>> DecodeJournalBatch(
    const JournalRecord& record, const stream::SchemaRef& schema);

/// \brief Appends framed records to a journal file.
class JournalWriter {
 public:
  struct Options {
    /// fsync() the file when flushing. Turning this off trades crash
    /// durability (an OS crash may lose flushed-but-unsynced records) for
    /// throughput; a plain process crash loses nothing either way.
    bool fsync_on_flush = true;
    /// Auto-flush after this many buffered records. 1 = flush every append.
    uint64_t flush_every_records = 64;
    /// fsync() only every Nth flush (1 = every flush, the historical
    /// behaviour). Batching syncs trades OS-crash durability of the last
    /// N-1 flushes for throughput; checkpoints force a sync regardless via
    /// Sync(), so snapshot resume indexes never outrun the durable tail.
    /// Must be at least 1. Configurable per deployment through the
    /// [recovery] section's `journal_fsync_every` key.
    uint64_t fsync_every_flushes = 1;
  };

  /// Creates a new journal at `path` (truncating any existing file) and
  /// writes the header.
  static StatusOr<std::unique_ptr<JournalWriter>> Create(
      const std::string& path, Options options);

  /// Reopens an existing journal for appending. The caller must have run
  /// ScanJournal first so the tail is known-good; `existing_records` and
  /// `existing_bytes` are the recovered record count and byte size
  /// (JournalScan::valid_bytes), continuing the writer's record numbering
  /// and byte accounting.
  static StatusOr<std::unique_ptr<JournalWriter>> Append(
      const std::string& path, Options options, uint64_t existing_records,
      uint64_t existing_bytes);

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one raw reading (journalled before the processor sees it).
  Status AppendPush(const std::string& device_type,
                    const stream::Tuple& tuple);

  /// Appends a whole batch of readings for one device type as ONE framed
  /// record. Because the journal's CRC framing admits a record only when it
  /// is complete, a crash mid-append can never leave a half-journaled batch
  /// — the batch is either fully replayable or provably absent, which is
  /// what lets a cluster worker equate one applied wire frame with exactly
  /// one journal record (docs/DISTRIBUTED.md).
  Status AppendBatch(const std::string& device_type,
                     const std::vector<stream::Tuple>& readings);

  /// Appends one tick boundary.
  Status AppendTick(Timestamp now);

  /// Writes buffered records to the file (fsync per options, batched every
  /// `fsync_every_flushes` flushes).
  Status Flush();

  /// Flushes and unconditionally fsync()s (when fsync is enabled),
  /// regardless of the batching cadence. A checkpoint must call this before
  /// its snapshot lands, so the snapshot's record index never points past
  /// the journal's durable tail.
  Status Sync();

  /// Records appended so far, including any recovered prefix.
  uint64_t records_written() const { return records_written_; }
  /// Total journal bytes: the header, any recovered prefix, and the records
  /// appended by this writer (including ones still buffered).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  JournalWriter(int fd, std::string path, Options options,
                uint64_t existing_records, uint64_t existing_bytes)
      : fd_(fd),
        path_(std::move(path)),
        options_(options),
        records_written_(existing_records),
        bytes_written_(existing_bytes) {}

  Status AppendRecord(std::string_view payload);

  int fd_ = -1;
  std::string path_;
  Options options_;
  std::string pending_;
  uint64_t pending_records_ = 0;
  uint64_t flushes_since_sync_ = 0;
  uint64_t records_written_ = 0;
  uint64_t bytes_written_ = 0;
  /// Set after a write error: a failed write() may have landed a prefix of
  /// `pending_` on disk, so retrying the flush would duplicate those bytes
  /// and tear every frame after them. A poisoned writer refuses all further
  /// appends and flushes; the file stays valid up to its last complete
  /// frame and recovery truncates the rest.
  bool failed_ = false;
};

/// \brief Result of scanning (and possibly repairing) a journal.
struct JournalScan {
  std::vector<JournalRecord> records;
  /// Bytes holding the header plus all complete, CRC-valid records.
  uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes discarded as a torn tail (0 for a clean file).
  uint64_t torn_bytes = 0;
};

/// Reads every valid record of the journal at `path`, tolerating a torn
/// final record (the expected shape of a crash mid-append): parsing stops at
/// the first incomplete frame or CRC mismatch and reports the discarded
/// bytes. When `truncate_torn_tail` is set the file is ftruncate()d back to
/// `valid_bytes` so a subsequent JournalWriter::Append continues from a
/// clean tail. A file too short to hold the header scans as empty; a full
/// header with wrong magic/version is corruption and fails with kParseError.
StatusOr<JournalScan> ScanJournal(const std::string& path,
                                  bool truncate_torn_tail);

}  // namespace esp::core

#endif  // ESP_CORE_JOURNAL_H_
