#include "core/processor.h"

#include <algorithm>

#include "common/string_util.h"
#include "stream/arena.h"
#include "stream/column.h"
#include "stream/ops.h"
#include "stream/serialize.h"
#include "stream/simd_kernels.h"

namespace esp::core {

using stream::Relation;
using stream::SchemaRef;
using stream::Tuple;
using stream::Value;

std::string EspProcessor::QuarantineGroupId(const std::string& device_type) {
  return "__quarantine_" + device_type;
}

Status EspProcessor::AddProximityGroup(ProximityGroup group) {
  if (started_) return Status::Internal("processor already started");
  return granules_.AddGroup(std::move(group));
}

Status EspProcessor::SetHealthPolicy(HealthPolicy policy) {
  if (started_) return Status::Internal("processor already started");
  if (policy.liveness_enabled() &&
      policy.staleness_threshold <= policy.lateness_horizon) {
    return Status::InvalidArgument(
        "staleness threshold must exceed the lateness horizon (admitted-late "
        "readings make live receptors look up to one horizon stale)");
  }
  policy_ = policy;
  return Status::OK();
}

Status EspProcessor::AddPipeline(DeviceTypePipeline pipeline) {
  if (started_) return Status::Internal("processor already started");
  if (pipeline.reading_schema == nullptr) {
    return Status::InvalidArgument("pipeline for '" + pipeline.device_type +
                                   "' has no reading schema");
  }
  if (!pipeline.reading_schema->Contains(pipeline.receptor_id_column)) {
    return Status::InvalidArgument(
        "receptor id column '" + pipeline.receptor_id_column +
        "' not in reading schema for '" + pipeline.device_type + "'");
  }
  for (const TypeRuntime& type : types_) {
    if (StrEqualsIgnoreCase(type.config.device_type, pipeline.device_type)) {
      return Status::AlreadyExists("pipeline for '" + pipeline.device_type +
                                   "' already registered");
    }
  }
  if (pipeline.virtualize_input.empty()) {
    pipeline.virtualize_input = pipeline.device_type + "_input";
  }
  TypeRuntime runtime;
  runtime.config = std::move(pipeline);
  types_.push_back(std::move(runtime));
  return Status::OK();
}

void EspProcessor::SetVirtualize(std::unique_ptr<Stage> stage) {
  virtualize_ = std::move(stage);
}

StatusOr<SchemaRef> EspProcessor::AugmentSchema(const SchemaRef& schema) {
  if (schema->Contains(kSpatialGranuleColumn)) return schema;
  std::vector<stream::Field> fields = schema->fields();
  fields.push_back({kSpatialGranuleColumn, stream::DataType::kString});
  return stream::MakeSchema(std::move(fields));
}

Status EspProcessor::Start() {
  if (started_) return Status::Internal("processor already started");

  cql::SchemaCatalog virtualize_inputs;
  for (TypeRuntime& type : types_) {
    const DeviceTypePipeline& config = type.config;
    const auto groups = granules_.GroupsOfType(config.device_type);
    if (groups.empty()) {
      return Status::InvalidArgument("no proximity groups for device type '" +
                                     config.device_type + "'");
    }

    // Per-receptor chains: Point* -> Smooth.
    SchemaRef receptor_out;
    for (const ProximityGroup* group : groups) {
      for (const std::string& receptor_id : group->receptor_ids) {
        ReceptorChain chain;
        chain.receptor_id = receptor_id;
        chain.granule_id = group->granule.id;
        chain.home_group_id = group->id;
        chain.health = std::make_unique<ReceptorHealthTracker>(
            receptor_id, config.device_type, &policy_);
        SchemaRef current = config.reading_schema;
        for (const StageFactory& factory : config.point) {
          ESP_ASSIGN_OR_RETURN(std::unique_ptr<Stage> stage, factory());
          cql::SchemaCatalog catalog;
          catalog.AddStream(StageInputName(StageKind::kPoint), current);
          ESP_RETURN_IF_ERROR(stage->Bind(catalog));
          current = stage->output_schema();
          chain.point.push_back(std::move(stage));
        }
        if (config.smooth != nullptr) {
          ESP_ASSIGN_OR_RETURN(chain.smooth, config.smooth());
          cql::SchemaCatalog catalog;
          catalog.AddStream(StageInputName(StageKind::kSmooth), current);
          ESP_RETURN_IF_ERROR(chain.smooth->Bind(catalog));
          current = chain.smooth->output_schema();
        }
        if (receptor_out == nullptr) {
          receptor_out = current;
        } else if (!receptor_out->Equals(*current)) {
          return Status::Internal(
              "receptor chains of type '" + config.device_type +
              "' produced differing schemas");
        }
        type.receptors.push_back(std::move(chain));
      }
    }

    ESP_ASSIGN_OR_RETURN(type.augmented_schema, AugmentSchema(receptor_out));

    // Per-group Merge.
    SchemaRef group_out = type.augmented_schema;
    for (const ProximityGroup* group : groups) {
      GroupChain chain;
      chain.group_id = group->id;
      if (config.merge != nullptr) {
        ESP_ASSIGN_OR_RETURN(chain.merge, config.merge());
        cql::SchemaCatalog catalog;
        catalog.AddStream(StageInputName(StageKind::kMerge),
                          type.augmented_schema);
        ESP_RETURN_IF_ERROR(chain.merge->Bind(catalog));
        group_out = chain.merge->output_schema();
      }
      type.groups.push_back(std::move(chain));
    }

    // Arbitrate across groups.
    SchemaRef type_out = group_out;
    if (config.arbitrate != nullptr) {
      ESP_ASSIGN_OR_RETURN(type.arbitrate, config.arbitrate());
      cql::SchemaCatalog catalog;
      catalog.AddStream(StageInputName(StageKind::kArbitrate), group_out);
      ESP_RETURN_IF_ERROR(type.arbitrate->Bind(catalog));
      type_out = type.arbitrate->output_schema();
    }
    type.output_schema = type_out;
    virtualize_inputs.AddStream(config.virtualize_input, type_out);
  }

  if (virtualize_ != nullptr) {
    ESP_RETURN_IF_ERROR(virtualize_->Bind(virtualize_inputs));
  }
  started_ = true;
  return Status::OK();
}

StatusOr<EspProcessor::TypeRuntime*> EspProcessor::FindType(
    const std::string& device_type) {
  for (TypeRuntime& type : types_) {
    if (StrEqualsIgnoreCase(type.config.device_type, device_type)) {
      return &type;
    }
  }
  return Status::NotFound("no pipeline for device type '" + device_type +
                          "'");
}

Status EspProcessor::Push(const std::string& device_type, Tuple raw) {
  if (!started_) return Status::Internal("processor not started");
  ESP_ASSIGN_OR_RETURN(TypeRuntime * type, FindType(device_type));
  // Pointer identity short-circuits the field-by-field comparison on the
  // common path where the pusher holds the pipeline's own SchemaRef.
  if (raw.schema() == nullptr ||
      (raw.schema().get() != type->config.reading_schema.get() &&
       !raw.schema()->Equals(*type->config.reading_schema))) {
    return Status::TypeError("raw reading schema mismatch for type '" +
                             device_type + "'");
  }
  ESP_ASSIGN_OR_RETURN(const Value receptor,
                       raw.Get(type->config.receptor_id_column));
  if (receptor.type() != stream::DataType::kString) {
    return Status::TypeError("receptor id column must be a string");
  }
  for (ReceptorChain& chain : type->receptors) {
    if (!StrEqualsIgnoreCase(chain.receptor_id, receptor.string_value())) {
      continue;
    }
    // Validate the (previous tick, now] contract instead of trusting it:
    // anything at or before the previous tick's release watermark can never
    // be delivered in order again and is dropped loudly; later-but-within-
    // horizon readings go to the reorder buffer.
    if (has_ticked_) {
      const Timestamp watermark = last_tick_ - policy_.lateness_horizon;
      if (raw.timestamp() <= watermark) {
        chain.health->RecordDroppedLate(1);
        return Status::OutOfRange(
            "reading for receptor '" + chain.receptor_id + "' at " +
            raw.timestamp().ToString() + " is behind the release watermark " +
            watermark.ToString() + " (lateness horizon " +
            policy_.lateness_horizon.ToString() + ")");
      }
      if (raw.timestamp() <= last_tick_) chain.health->RecordLateAdmitted(1);
    }
    chain.pending.push_back(std::move(raw));
    return Status::OK();
  }
  return Status::NotFound("receptor '" + receptor.string_value() +
                          "' of type '" + device_type +
                          "' is in no proximity group");
}

void EspProcessor::RecordStageError(Stage* stage,
                                    const std::string& device_type,
                                    const std::string& owner_id,
                                    const Status& status) {
  const std::string label = device_type + "/" +
                            StageKindToString(stage->kind()) + "[" + owner_id +
                            "]";
  StageErrorStat& stat = stage_errors_[label];
  stat.stage = label;
  ++stat.errors;
  stat.last_message = status.ToString();
}

StatusOr<Relation> EspProcessor::RunStageGuarded(
    Stage* stage, const std::string& input_name, Relation input, Timestamp now,
    const std::string& device_type, const std::string& owner_id,
    ReceptorChain* chain) {
  stream::TupleArena& arena = stream::TupleArena::Local();
  auto run = [&]() -> StatusOr<Relation> {
    for (const Tuple& tuple : input.tuples()) {
      // Hand the stage an arena-backed copy: stage buffers (query histories,
      // windowed buffers) release evicted rows back to the arena, closing
      // the per-tick allocation loop. `input` stays intact for the degraded
      // pass-through below.
      std::vector<Value> values = arena.Acquire(tuple.num_fields());
      values.insert(values.end(), tuple.values().begin(),
                    tuple.values().end());
      ESP_RETURN_IF_ERROR(stage->Push(
          input_name,
          Tuple(tuple.schema(), std::move(values), tuple.timestamp())));
    }
    return stage->Evaluate(now);
  };
  StatusOr<Relation> out = run();
  if (out.ok()) {
    arena.Recycle(std::move(input));
    return out;
  }
  if (policy_.stage_error_policy == StageErrorPolicy::kFailFast) {
    return out.status();
  }
  RecordStageError(stage, device_type, owner_id, out.status());
  if (chain != nullptr) chain->health->RecordError(out.status());
  // Degrade: pass the input through when it already has the stage's output
  // shape; otherwise the stage contributes nothing this tick.
  if (input.schema() != nullptr && stage->output_schema() != nullptr &&
      input.schema()->Equals(*stage->output_schema())) {
    return input;
  }
  return Relation(stage->output_schema());
}

Status EspProcessor::EnsureQuarantineGroup(const std::string& device_type) {
  if (quarantine_groups_.contains(device_type)) return Status::OK();
  ProximityGroup parking;
  parking.id = QuarantineGroupId(device_type);
  parking.device_type = device_type;
  parking.granule.id = "__quarantined";
  ESP_RETURN_IF_ERROR(granules_.AddGroup(std::move(parking)));
  quarantine_groups_.insert(device_type);
  return Status::OK();
}

StatusOr<EspProcessor::TickResult> EspProcessor::Tick(Timestamp now) {
  if (!started_) return Status::Internal("processor not started");
  if (has_ticked_ && now < last_tick_) {
    return Status::InvalidArgument("tick times must be non-decreasing");
  }
  // Release watermark: everything at or before it flows into the stages
  // this tick; later readings stay in the reorder buffers so late arrivals
  // within the horizon can still be slotted in ahead of them. With the
  // default zero horizon the watermark is `now` and nothing is delayed.
  const Timestamp watermark = now - policy_.lateness_horizon;
  last_tick_ = now;
  has_ticked_ = true;

  TickResult result;
  for (TypeRuntime& type : types_) {
    // --- Per-receptor: Point chain, then Smooth. ---
    // Collected per group id for the Merge step.
    std::vector<Relation> group_streams(type.groups.size(),
                                        Relation(type.augmented_schema));
    for (ReceptorChain& chain : type.receptors) {
      // Release the reorder buffer up to the watermark.
      std::vector<Tuple> released;
      std::vector<Tuple> held;
      for (Tuple& tuple : chain.pending) {
        if (tuple.timestamp() <= watermark) {
          released.push_back(std::move(tuple));
        } else {
          held.push_back(std::move(tuple));
        }
      }
      chain.pending = std::move(held);
      std::sort(released.begin(), released.end(),
                [](const Tuple& a, const Tuple& b) {
                  return a.timestamp() < b.timestamp();
                });

      // Liveness state machine: suspect -> quarantine -> probe/revive.
      std::optional<Timestamp> data_time;
      if (!released.empty()) data_time = released.back().timestamp();
      using Transition = ReceptorHealthTracker::Transition;
      const Transition transition = chain.health->Observe(now, data_time);
      if (transition == Transition::kQuarantine) {
        ESP_RETURN_IF_ERROR(EnsureQuarantineGroup(type.config.device_type));
        ESP_RETURN_IF_ERROR(granules_.MoveReceptor(
            type.config.device_type, chain.receptor_id,
            QuarantineGroupId(type.config.device_type)));
      } else if (transition == Transition::kRevive) {
        ESP_RETURN_IF_ERROR(granules_.MoveReceptor(
            type.config.device_type, chain.receptor_id, chain.home_group_id));
      }
      if (chain.health->state() == ReceptorState::kQuarantined) {
        // Degraded mode: the receptor is out of its proximity group; its
        // readings (if any trickle in) are discarded until a probe revives
        // it, and Merge below runs over the surviving members only.
        chain.health->RecordDroppedQuarantined(
            static_cast<int64_t>(released.size()));
        continue;
      }
      chain.health->RecordDelivered(static_cast<int64_t>(released.size()));

      Relation current(type.config.reading_schema);
      for (Tuple& tuple : released) current.Add(std::move(tuple));

      for (std::unique_ptr<Stage>& stage : chain.point) {
        ESP_ASSIGN_OR_RETURN(
            current,
            RunStageGuarded(stage.get(), StageInputName(StageKind::kPoint),
                            std::move(current), now, type.config.device_type,
                            chain.receptor_id, &chain));
      }
      if (chain.smooth != nullptr) {
        ESP_ASSIGN_OR_RETURN(
            current, RunStageGuarded(chain.smooth.get(),
                                     StageInputName(StageKind::kSmooth),
                                     std::move(current), now,
                                     type.config.device_type,
                                     chain.receptor_id, &chain));
      }

      // Stamp the spatial granule (footnote 2) and route to the receptor's
      // group. The lookup goes through the GranuleMap so dynamic
      // MoveReceptor() remappings take effect between ticks.
      ESP_ASSIGN_OR_RETURN(
          const ProximityGroup* group_of,
          granules_.GroupOf(type.config.device_type, chain.receptor_id));
      size_t group_index = type.groups.size();
      for (size_t g = 0; g < type.groups.size(); ++g) {
        if (StrEqualsIgnoreCase(type.groups[g].group_id, group_of->id)) {
          group_index = g;
          break;
        }
      }
      if (group_index == type.groups.size()) {
        return Status::Internal("receptor '" + chain.receptor_id +
                                "' mapped to unknown group");
      }
      const bool already_has_granule =
          current.schema() != nullptr &&
          current.schema()->Contains(kSpatialGranuleColumn);
      stream::TupleArena& arena = stream::TupleArena::Local();
      for (Tuple& tuple : current.mutable_tuples()) {
        if (already_has_granule) {
          group_streams[group_index].Add(std::move(tuple));
          continue;
        }
        std::vector<Value> values = arena.Acquire(tuple.num_fields() + 1);
        for (Value& value : tuple.mutable_values()) {
          values.push_back(std::move(value));
        }
        values.push_back(Value::Interned(group_of->granule.id));
        arena.Release(std::move(tuple.mutable_values()));
        group_streams[group_index].Add(Tuple(
            type.augmented_schema, std::move(values), tuple.timestamp()));
      }
    }

    // --- Per-group Merge. ---
    std::vector<Relation> merged;
    merged.reserve(type.groups.size());
    for (size_t g = 0; g < type.groups.size(); ++g) {
      Relation& input = group_streams[g];
      std::stable_sort(input.mutable_tuples().begin(),
                       input.mutable_tuples().end(),
                       [](const Tuple& a, const Tuple& b) {
                         return a.timestamp() < b.timestamp();
                       });
      if (type.groups[g].merge == nullptr) {
        merged.push_back(std::move(input));
        continue;
      }
      ESP_ASSIGN_OR_RETURN(
          Relation out,
          RunStageGuarded(type.groups[g].merge.get(),
                          StageInputName(StageKind::kMerge), std::move(input),
                          now, type.config.device_type, type.groups[g].group_id,
                          nullptr));
      merged.push_back(std::move(out));
    }

    // --- Partial-aggregate export (cluster workers). The copies are taken
    // here — after Merge, before Union/Arbitrate — because this is the
    // exact hand-off point where a coordinator stitches workers' groups
    // back into the global registration order. ---
    if (export_group_partials_) {
      for (size_t g = 0; g < type.groups.size(); ++g) {
        result.group_partials.push_back(GroupPartial{
            type.config.device_type, type.groups[g].group_id, merged[g]});
      }
    }

    // --- Arbitrate across groups. ---
    Relation type_out;
    if (type.arbitrate != nullptr) {
      ESP_ASSIGN_OR_RETURN(Relation united, stream::Union(std::move(merged)));
      ESP_ASSIGN_OR_RETURN(
          type_out, RunStageGuarded(type.arbitrate.get(),
                                    StageInputName(StageKind::kArbitrate),
                                    std::move(united), now,
                                    type.config.device_type,
                                    type.config.device_type, nullptr));
    } else {
      ESP_ASSIGN_OR_RETURN(type_out, stream::Union(std::move(merged)));
    }

    // --- Feed Virtualize. ---
    if (virtualize_ != nullptr) {
      for (const Tuple& tuple : type_out.tuples()) {
        const Status pushed =
            virtualize_->Push(type.config.virtualize_input, tuple);
        if (!pushed.ok()) {
          if (policy_.stage_error_policy == StageErrorPolicy::kFailFast) {
            return pushed;
          }
          RecordStageError(virtualize_.get(), type.config.device_type,
                           type.config.virtualize_input, pushed);
          break;  // Skip the rest of this type's feed this tick.
        }
      }
    }
    result.per_type.emplace_back(type.config.device_type,
                                 std::move(type_out));
  }

  if (queries_.active()) {
    std::vector<std::pair<std::string, const Relation*>> inputs;
    inputs.reserve(types_.size());
    for (size_t i = 0; i < types_.size(); ++i) {
      inputs.emplace_back(types_[i].config.virtualize_input,
                          &result.per_type[i].second);
    }
    ESP_ASSIGN_OR_RETURN(result.query_results,
                         queries_.FeedAndTick(inputs, now));
  }

  if (virtualize_ != nullptr) {
    StatusOr<Relation> out = virtualize_->Evaluate(now);
    if (out.ok()) {
      result.virtualized = std::move(out).value();
    } else if (policy_.stage_error_policy == StageErrorPolicy::kFailFast) {
      return out.status();
    } else {
      RecordStageError(virtualize_.get(), "virtualize", "virtualize",
                       out.status());
      result.virtualized = Relation(virtualize_->output_schema());
    }
  }
  return result;
}

PipelineHealth EspProcessor::Health() const {
  PipelineHealth health;
  health.recovery = recovery_stats_;
  health.queries = queries_.Stats();
  health.columnar.enabled = stream::ColumnarEnabled();
  health.columnar.avx2 = stream::simd::Avx2Available();
  {
    const stream::simd::KernelStats kernels = stream::simd::GetKernelStats();
    health.columnar.vector_batches = kernels.vector_batches;
    health.columnar.scalar_batches = kernels.scalar_batches;
    health.columnar.guard_fallbacks = kernels.guard_fallbacks;
  }
  {
    std::lock_guard<std::mutex> lock(ingest_source_mu_);
    health.ingest = ingest_source_ ? ingest_source_() : ingest_stats_;
  }
  for (const TypeRuntime& type : types_) {
    for (const ReceptorChain& chain : type.receptors) {
      if (chain.health == nullptr) continue;
      const ReceptorHealth& r = chain.health->health();
      health.receptors.push_back(r);
      health.total_late_admitted += r.late_admitted;
      health.total_dropped_late += r.dropped_late;
      health.total_dropped_quarantined += r.dropped_quarantined;
      if (r.state == ReceptorState::kQuarantined) ++health.quarantined_now;
      if (r.state == ReceptorState::kSuspect) ++health.suspect_now;
    }
  }
  for (const auto& [label, stat] : stage_errors_) {
    health.stage_errors.push_back(stat);
    health.total_stage_errors += stat.errors;
  }
  return health;
}

StatusOr<SchemaRef> EspProcessor::TypeReadingSchema(
    const std::string& device_type) const {
  for (const TypeRuntime& type : types_) {
    if (StrEqualsIgnoreCase(type.config.device_type, device_type)) {
      return type.config.reading_schema;
    }
  }
  return Status::NotFound("no pipeline for device type '" + device_type +
                          "'");
}

size_t EspProcessor::BufferedTuples() const {
  size_t total = 0;
  for (const TypeRuntime& type : types_) {
    for (const ReceptorChain& chain : type.receptors) {
      total += chain.pending.size();
      for (const std::unique_ptr<Stage>& stage : chain.point) {
        total += stage->buffered();
      }
      if (chain.smooth != nullptr) total += chain.smooth->buffered();
    }
    for (const GroupChain& group : type.groups) {
      if (group.merge != nullptr) total += group.merge->buffered();
    }
    if (type.arbitrate != nullptr) total += type.arbitrate->buffered();
  }
  if (virtualize_ != nullptr) total += virtualize_->buffered();
  total += queries_.BufferedTuples();
  return total;
}

Status EspProcessor::Checkpoint(CheckpointWriter& out) const {
  if (!started_) return Status::Internal("processor not started");

  // --- config: a fingerprint of the deployed topology and policy. Restore
  // refuses a snapshot whose fingerprint differs, since stage state is only
  // meaningful against the exact same configuration.
  ByteWriter config;
  config.WriteU32(static_cast<uint32_t>(types_.size()));
  for (const TypeRuntime& type : types_) {
    config.WriteString(type.config.device_type);
    stream::WriteSchema(config, *type.config.reading_schema);
    config.WriteU32(static_cast<uint32_t>(type.receptors.size()));
    for (const ReceptorChain& chain : type.receptors) {
      config.WriteString(chain.receptor_id);
      config.WriteU32(static_cast<uint32_t>(chain.point.size()));
      config.WriteBool(chain.smooth != nullptr);
    }
    config.WriteU32(static_cast<uint32_t>(type.groups.size()));
    for (const GroupChain& group : type.groups) {
      config.WriteString(group.group_id);
      config.WriteBool(group.merge != nullptr);
    }
    config.WriteBool(type.arbitrate != nullptr);
    config.WriteString(type.config.virtualize_input);
  }
  config.WriteBool(virtualize_ != nullptr);
  config.WriteI64(policy_.staleness_threshold.micros());
  config.WriteI64(policy_.quarantine_timeout.micros());
  config.WriteI64(policy_.revival_backoff.micros());
  config.WriteI64(policy_.max_revival_backoff.micros());
  config.WriteI64(policy_.lateness_horizon.micros());
  config.WriteU8(static_cast<uint8_t>(policy_.stage_error_policy));
  out.AddSection("config", std::move(config));

  // --- clock.
  ByteWriter clock;
  clock.WriteBool(has_ticked_);
  clock.WriteI64(last_tick_.micros());
  out.AddSection("clock", std::move(clock));

  // --- receptors: reorder buffers, liveness state, and the (possibly
  // dynamically remapped or quarantine-parked) group assignment.
  ByteWriter receptors;
  for (const TypeRuntime& type : types_) {
    for (const ReceptorChain& chain : type.receptors) {
      const auto group = granules_.GroupOf(type.config.device_type,
                                           chain.receptor_id);
      ESP_RETURN_IF_ERROR(group.status());
      receptors.WriteString((*group)->id);
      ByteWriter health;
      chain.health->SaveState(health);
      receptors.WriteString(health.data());
      receptors.WriteU32(static_cast<uint32_t>(chain.pending.size()));
      for (const Tuple& tuple : chain.pending) {
        stream::WriteTuple(receptors, tuple);
      }
    }
  }
  out.AddSection("receptors", std::move(receptors));

  // --- stages: every stage's window/model state, in topology order.
  ByteWriter stages;
  for (const TypeRuntime& type : types_) {
    for (const ReceptorChain& chain : type.receptors) {
      for (const std::unique_ptr<Stage>& stage : chain.point) {
        ESP_RETURN_IF_ERROR(SaveStageBlob(stage.get(), stages));
      }
      if (chain.smooth != nullptr) {
        ESP_RETURN_IF_ERROR(SaveStageBlob(chain.smooth.get(), stages));
      }
    }
    for (const GroupChain& group : type.groups) {
      if (group.merge != nullptr) {
        ESP_RETURN_IF_ERROR(SaveStageBlob(group.merge.get(), stages));
      }
    }
    if (type.arbitrate != nullptr) {
      ESP_RETURN_IF_ERROR(SaveStageBlob(type.arbitrate.get(), stages));
    }
  }
  if (virtualize_ != nullptr) {
    ESP_RETURN_IF_ERROR(SaveStageBlob(virtualize_.get(), stages));
  }
  out.AddSection("stages", std::move(stages));

  // --- errors: the per-stage isolation tallies.
  ByteWriter errors;
  errors.WriteU32(static_cast<uint32_t>(stage_errors_.size()));
  for (const auto& [label, stat] : stage_errors_) {
    errors.WriteString(label);
    errors.WriteI64(stat.errors);
    errors.WriteString(stat.last_message);
  }
  out.AddSection("errors", std::move(errors));

  // --- queries: the multi-tenant serving layer (section absent while
  // inactive; never part of the config fingerprint — subscriptions are
  // runtime state).
  queries_.Checkpoint(out);
  return Status::OK();
}

Status EspProcessor::Restore(const CheckpointReader& in) {
  if (!started_) return Status::Internal("processor not started");

  // Validate the configuration fingerprint byte-for-byte: same deployment,
  // same policy, or the stage state below is meaningless.
  {
    CheckpointWriter own;
    ESP_RETURN_IF_ERROR(Checkpoint(own));
    // Cheap trick: our own Checkpoint() just serialized the current
    // fingerprint; compare it against the snapshot's.
    ESP_ASSIGN_OR_RETURN(CheckpointReader own_reader,
                         CheckpointReader::Parse(own.Serialize()));
    ESP_ASSIGN_OR_RETURN(const std::string_view own_config,
                         own_reader.Section("config"));
    ESP_ASSIGN_OR_RETURN(const std::string_view snap_config,
                         in.Section("config"));
    if (own_config != snap_config) {
      return Status::InvalidArgument(
          "snapshot does not match the deployed configuration (device "
          "types, receptors, groups, stages, or health policy differ)");
    }
  }

  // --- clock.
  {
    ESP_ASSIGN_OR_RETURN(const std::string_view payload, in.Section("clock"));
    ByteReader r(payload);
    ESP_ASSIGN_OR_RETURN(has_ticked_, r.ReadBool());
    ESP_ASSIGN_OR_RETURN(const int64_t micros, r.ReadI64());
    last_tick_ = Timestamp::Micros(micros);
  }

  // --- receptors.
  {
    ESP_ASSIGN_OR_RETURN(const std::string_view payload,
                         in.Section("receptors"));
    ByteReader r(payload);
    for (TypeRuntime& type : types_) {
      for (ReceptorChain& chain : type.receptors) {
        ESP_ASSIGN_OR_RETURN(const std::string group_id, r.ReadString());
        ESP_ASSIGN_OR_RETURN(const ProximityGroup* current,
                             granules_.GroupOf(type.config.device_type,
                                               chain.receptor_id));
        if (!StrEqualsIgnoreCase(current->id, group_id)) {
          if (group_id == QuarantineGroupId(type.config.device_type)) {
            ESP_RETURN_IF_ERROR(
                EnsureQuarantineGroup(type.config.device_type));
          }
          ESP_RETURN_IF_ERROR(granules_.MoveReceptor(
              type.config.device_type, chain.receptor_id, group_id));
        }
        ESP_ASSIGN_OR_RETURN(const std::string health_blob, r.ReadString());
        ByteReader health_reader(health_blob);
        ESP_RETURN_IF_ERROR(chain.health->LoadState(health_reader));
        if (!health_reader.exhausted()) {
          return Status::ParseError("receptor '" + chain.receptor_id +
                                    "' health state has trailing bytes");
        }
        ESP_ASSIGN_OR_RETURN(const uint32_t pending, r.ReadU32());
        chain.pending.clear();
        chain.pending.reserve(pending);
        for (uint32_t i = 0; i < pending; ++i) {
          ESP_ASSIGN_OR_RETURN(
              Tuple tuple,
              stream::ReadTuple(r, type.config.reading_schema));
          chain.pending.push_back(std::move(tuple));
        }
      }
    }
    if (!r.exhausted()) {
      return Status::ParseError("receptors section has trailing bytes");
    }
  }

  // --- stages.
  {
    ESP_ASSIGN_OR_RETURN(const std::string_view payload,
                         in.Section("stages"));
    ByteReader r(payload);
    for (TypeRuntime& type : types_) {
      for (ReceptorChain& chain : type.receptors) {
        for (std::unique_ptr<Stage>& stage : chain.point) {
          ESP_RETURN_IF_ERROR(LoadStageBlob(stage.get(), r));
        }
        if (chain.smooth != nullptr) {
          ESP_RETURN_IF_ERROR(LoadStageBlob(chain.smooth.get(), r));
        }
      }
      for (GroupChain& group : type.groups) {
        if (group.merge != nullptr) {
          ESP_RETURN_IF_ERROR(LoadStageBlob(group.merge.get(), r));
        }
      }
      if (type.arbitrate != nullptr) {
        ESP_RETURN_IF_ERROR(LoadStageBlob(type.arbitrate.get(), r));
      }
    }
    if (virtualize_ != nullptr) {
      ESP_RETURN_IF_ERROR(LoadStageBlob(virtualize_.get(), r));
    }
    if (!r.exhausted()) {
      return Status::ParseError("stages section has trailing bytes");
    }
  }

  // --- errors.
  {
    ESP_ASSIGN_OR_RETURN(const std::string_view payload,
                         in.Section("errors"));
    ByteReader r(payload);
    ESP_ASSIGN_OR_RETURN(const uint32_t count, r.ReadU32());
    stage_errors_.clear();
    for (uint32_t i = 0; i < count; ++i) {
      ESP_ASSIGN_OR_RETURN(std::string label, r.ReadString());
      StageErrorStat stat;
      stat.stage = label;
      ESP_ASSIGN_OR_RETURN(stat.errors, r.ReadI64());
      ESP_ASSIGN_OR_RETURN(stat.last_message, r.ReadString());
      stage_errors_.emplace(std::move(label), std::move(stat));
    }
    if (!r.exhausted()) {
      return Status::ParseError("errors section has trailing bytes");
    }
  }

  // --- queries (absent in snapshots without subscriptions).
  ESP_RETURN_IF_ERROR(queries_.Restore(in, QueryStreams()));
  return Status::OK();
}

QueryServingLayer::StreamLister EspProcessor::QueryStreams() const {
  return [this]() -> StatusOr<
                      std::vector<std::pair<std::string, SchemaRef>>> {
    if (!started_) return Status::Internal("processor not started");
    std::vector<std::pair<std::string, SchemaRef>> streams;
    streams.reserve(types_.size());
    for (const TypeRuntime& type : types_) {
      streams.emplace_back(type.config.virtualize_input, type.output_schema);
    }
    return streams;
  };
}

Status EspProcessor::RegisterQuery(const std::string& tenant,
                                   const std::string& name,
                                   const std::string& query_text) {
  if (!started_) return Status::Internal("processor not started");
  return queries_.Register(QueryStreams(), tenant, name, query_text);
}

Status EspProcessor::UnregisterQuery(const std::string& name) {
  return queries_.Unregister(name);
}

Status EspProcessor::SetTenantBudgets(const std::string& tenant,
                                      const cql::TenantBudgets& budgets) {
  return queries_.SetTenantBudgets(tenant, budgets);
}

StatusOr<SchemaRef> EspProcessor::TypeOutputSchema(
    const std::string& device_type) const {
  for (const TypeRuntime& type : types_) {
    if (StrEqualsIgnoreCase(type.config.device_type, device_type)) {
      if (!started_) return Status::Internal("processor not started");
      return type.output_schema;
    }
  }
  return Status::NotFound("no pipeline for device type '" + device_type +
                          "'");
}

}  // namespace esp::core
