#ifndef ESP_CORE_PROCESSOR_H_
#define ESP_CORE_PROCESSOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/granule.h"
#include "core/health.h"
#include "core/query_serving.h"
#include "core/stage.h"
#include "stream/tuple.h"

namespace esp::core {

/// \brief Configuration of one device type's cleaning pipeline — which of
/// the five stages are deployed and how (Figure 4). Stages may be omitted
/// (not all stages need be implemented, Section 3.3); omitted stages become
/// pass-throughs.
struct DeviceTypePipeline {
  /// Device type key, matching the proximity groups' device_type.
  std::string device_type;

  /// Schema of the raw readings pushed for this type.
  stream::SchemaRef reading_schema;

  /// Column of `reading_schema` holding the receptor id, used to route raw
  /// readings to per-receptor stage instances.
  std::string receptor_id_column;

  /// Point stages, applied per receptor in order (tuple-level filters and
  /// transforms). May be empty.
  std::vector<StageFactory> point;

  /// Smooth stage, instantiated per receptor (temporal-granule
  /// aggregation). Optional.
  StageFactory smooth;

  /// Merge stage, instantiated per proximity group over the union of its
  /// members' streams (spatial-granule aggregation). Optional — when
  /// omitted, members' streams are unioned unchanged. Either way ESP has
  /// already stamped each tuple with its spatial_granule attribute
  /// (footnote 2 of the paper).
  StageFactory merge;

  /// Arbitrate stage, one instance across all of this type's proximity
  /// groups (conflict resolution between spatial granules). Optional.
  StageFactory arbitrate;

  /// Stream name under which this type's cleaned output feeds the
  /// Virtualize stage; defaults to "<device_type>_input".
  std::string virtualize_input;
};

/// \brief The ESP Processor: initiates data flow from the receptors and
/// applies each stage in a Fjord-style manner as readings stream through
/// the pipeline (Section 3.3).
///
/// Usage: AddProximityGroup() the deployment's groups, AddPipeline() one
/// config per device type, optionally SetVirtualize(), then Start(). Per
/// tick: Push() raw readings (timestamps within (previous tick, now]), then
/// Tick(now) to run the cascade and obtain each type's cleaned relation
/// plus the virtualized output.
class EspProcessor : public StreamEngine {
 public:
  /// Name of the spatial-granule attribute ESP adds to every stream after
  /// the per-receptor stages.
  static constexpr const char* kSpatialGranuleColumn = "spatial_granule";

  EspProcessor() = default;
  EspProcessor(const EspProcessor&) = delete;
  EspProcessor& operator=(const EspProcessor&) = delete;

  /// Group id under which quarantined receptors of `device_type` are parked
  /// (registered lazily on first quarantine).
  static std::string QuarantineGroupId(const std::string& device_type);

  Status AddProximityGroup(ProximityGroup group);
  Status AddPipeline(DeviceTypePipeline pipeline);

  /// Installs the degraded-mode policy (liveness thresholds, lateness
  /// horizon, stage-error isolation). Must be called before Start(); the
  /// default-constructed policy preserves the strict historical behaviour.
  Status SetHealthPolicy(HealthPolicy policy);
  const HealthPolicy& health_policy() const { return policy_; }

  /// Installs the cross-device-type Virtualize stage. Its inputs must be
  /// the pipelines' virtualize_input names.
  void SetVirtualize(std::unique_ptr<Stage> stage);

  /// Instantiates and binds every stage. No further configuration after
  /// this.
  Status Start();

  /// Routes one raw reading to its receptor's chain.
  ///
  /// The reading's timestamp is validated against the `(previous tick, now]`
  /// contract: a reading at or before the release watermark of the previous
  /// tick (last tick minus the policy's lateness horizon) is dropped,
  /// counted in PipelineHealth, and reported as kOutOfRange; a reading that
  /// is late but within the horizon is admitted into the receptor's reorder
  /// buffer and released, in timestamp order, once the watermark passes it.
  Status Push(const std::string& device_type, stream::Tuple raw) override;

  /// One tick's outputs (now shared by every StreamEngine; the nested name
  /// is kept for source compatibility).
  using TickResult = core::TickResult;

  /// Runs the full cascade at time `now`. Tick times must be
  /// non-decreasing.
  StatusOr<TickResult> Tick(Timestamp now) override;

  /// See StreamEngine::SetExportGroupPartials.
  void SetExportGroupPartials(bool enabled) override {
    export_group_partials_ = enabled;
  }

  /// True once a tick has run (including via Restore of a ticked snapshot).
  bool has_ticked() const override { return has_ticked_; }

  /// Time of the most recent tick; meaningful only when has_ticked().
  Timestamp last_tick() const override { return last_tick_; }

  /// Cleaned-output schema of one device type; valid after Start().
  StatusOr<stream::SchemaRef> TypeOutputSchema(
      const std::string& device_type) const;

  /// Raw-reading schema of one device type (as configured in its pipeline).
  StatusOr<stream::SchemaRef> TypeReadingSchema(
      const std::string& device_type) const override;

  /// Total tuples buffered across every stage's windows plus un-ticked raw
  /// readings — bounded in steady state by window sizes, not stream length.
  size_t BufferedTuples() const;

  /// Snapshot of per-receptor liveness and per-stage error-isolation
  /// tallies. Valid after Start(); cheap enough to poll every tick.
  PipelineHealth Health() const override;

  /// Serializes the full mutable runtime state — reorder buffers, every
  /// stage's window/model state, receptor health, dynamic group
  /// assignments, stage-error tallies, and the tick clock — into named
  /// sections of `out` (docs/RECOVERY.md). Valid after Start(). The
  /// deployment configuration is NOT serialized; a config fingerprint is,
  /// so Restore() can reject snapshots from a different deployment.
  Status Checkpoint(CheckpointWriter& out) const override;

  /// Restores state saved by Checkpoint() into this processor, which must
  /// be identically configured and Start()ed (typically rebuilt from the
  /// same deployment spec). After Restore the processor behaves
  /// tick-for-tick identically to the one that was checkpointed.
  Status Restore(const CheckpointReader& in) override;

  /// Durability counters, written by the RecoveryCoordinator and reported
  /// through Health().
  RecoveryStats& mutable_recovery_stats() override { return recovery_stats_; }

  /// Networked-ingest counters reported through Health() when no source is
  /// installed (direct writes — tests, replay).
  IngestStats& mutable_ingest_stats() override { return ingest_stats_; }

  void SetIngestStatsSource(IngestStatsSource source) override {
    std::lock_guard<std::mutex> lock(ingest_source_mu_);
    ingest_source_ = std::move(source);
  }

  const GranuleMap& granules() const { return granules_; }

  /// Configures the multi-tenant serving layer (sharing toggles, default
  /// budgets) before the first subscription is registered. The deployment
  /// loader calls this for the [tenants] section.
  Status SetQueryServingOptions(cql::QueryRegistry::Options options) {
    return queries_.Configure(std::move(options));
  }

  /// Standing-query serving over the per-type cleaned output streams (the
  /// pipelines' virtualize_input names). Valid after Start(). See
  /// StreamEngine and cql/query_registry.h.
  Status RegisterQuery(const std::string& tenant, const std::string& name,
                       const std::string& query_text) override;
  Status UnregisterQuery(const std::string& name) override;
  Status SetTenantBudgets(const std::string& tenant,
                          const cql::TenantBudgets& budgets) override;

  /// The serving layer itself, for tests and benches (may be inactive).
  QueryServingLayer& query_serving() { return queries_; }

 private:
  struct ReceptorChain {
    std::string receptor_id;
    std::string granule_id;      // Spatial granule this receptor observes.
    std::string home_group_id;   // Group to rejoin on revival.
    std::vector<std::unique_ptr<Stage>> point;
    std::unique_ptr<Stage> smooth;  // May be null.
    /// Arrival + reorder buffer; tuples are released (sorted) once the tick
    /// watermark passes their timestamp.
    std::vector<stream::Tuple> pending;
    std::unique_ptr<ReceptorHealthTracker> health;  // Created at Start().
  };
  struct GroupChain {
    std::string group_id;
    std::unique_ptr<Stage> merge;  // May be null.
  };
  struct TypeRuntime {
    DeviceTypePipeline config;
    std::vector<ReceptorChain> receptors;
    std::vector<GroupChain> groups;
    std::unique_ptr<Stage> arbitrate;  // May be null.
    stream::SchemaRef augmented_schema;  // Smooth output + spatial_granule.
    stream::SchemaRef output_schema;
  };

  StatusOr<TypeRuntime*> FindType(const std::string& device_type);

  /// The streams the serving layer exposes to queries: each type's
  /// virtualize_input name with its cleaned-output schema.
  QueryServingLayer::StreamLister QueryStreams() const;

  /// Appends the spatial_granule attribute (unless already present).
  static StatusOr<stream::SchemaRef> AugmentSchema(
      const stream::SchemaRef& schema);

  /// Feeds `input` through `stage` and evaluates it at `now`. On a non-OK
  /// stage result under kDegrade, records the error (against `type` /
  /// `owner_id`, and `chain` when the stage belongs to a receptor) and
  /// degrades: the input passes through unchanged when its schema matches
  /// the stage's output schema, otherwise the stage contributes an empty
  /// relation. Under kFailFast the error propagates.
  StatusOr<stream::Relation> RunStageGuarded(Stage* stage,
                                             const std::string& input_name,
                                             stream::Relation input,
                                             Timestamp now,
                                             const std::string& device_type,
                                             const std::string& owner_id,
                                             ReceptorChain* chain);

  /// Records one stage error under its "<type>/<Kind>[owner]" label.
  void RecordStageError(Stage* stage, const std::string& device_type,
                        const std::string& owner_id, const Status& status);

  /// Registers the per-type quarantine parking group on first use.
  Status EnsureQuarantineGroup(const std::string& device_type);

  GranuleMap granules_;
  std::vector<TypeRuntime> types_;
  std::unique_ptr<Stage> virtualize_;
  HealthPolicy policy_;
  /// Stage-error tallies keyed by stage label (deterministic order).
  std::map<std::string, StageErrorStat> stage_errors_;
  /// Device types whose quarantine group has been registered.
  std::set<std::string> quarantine_groups_;
  RecoveryStats recovery_stats_;
  IngestStats ingest_stats_;
  /// Multi-tenant standing-query serving over the cleaned outputs.
  QueryServingLayer queries_;
  /// Guards ingest_source_: Health() may run concurrently with the ingest
  /// server installing / freezing its stats source.
  mutable std::mutex ingest_source_mu_;
  IngestStatsSource ingest_source_;
  bool started_ = false;
  bool has_ticked_ = false;
  bool export_group_partials_ = false;
  Timestamp last_tick_;
};

}  // namespace esp::core

#endif  // ESP_CORE_PROCESSOR_H_
