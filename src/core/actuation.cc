#include "core/actuation.h"

#include <algorithm>

#include "common/string_util.h"

namespace esp::core {

namespace {

int64_t GranuleIndexOf(Timestamp time, Duration granule) {
  // Granule g covers (g*granule, (g+1)*granule].
  const int64_t micros = time.micros();
  const int64_t width = granule.micros();
  int64_t index = micros / width;
  if (micros % width == 0) index -= 1;
  return index;
}

}  // namespace

SamplingController::SamplingController(Config config)
    : config_(std::move(config)) {}

Status SamplingController::AddReceptor(const std::string& receptor_id,
                                       Duration period) {
  if (config_.granule.micros() <= 0) {
    return Status::InvalidArgument("granule must be positive");
  }
  for (const ReceptorState& state : receptors_) {
    if (StrEqualsIgnoreCase(state.id, receptor_id)) {
      return Status::AlreadyExists("receptor '" + receptor_id +
                                   "' already registered");
    }
  }
  ReceptorState state;
  state.id = receptor_id;
  state.period = period;
  state.granule_index = -1;  // Nothing observed yet.
  receptors_.push_back(std::move(state));
  return Status::OK();
}

StatusOr<SamplingController::ReceptorState*> SamplingController::Find(
    const std::string& receptor_id) {
  for (ReceptorState& state : receptors_) {
    if (StrEqualsIgnoreCase(state.id, receptor_id)) return &state;
  }
  return Status::NotFound("unknown receptor '" + receptor_id + "'");
}

Status SamplingController::RecordReading(const std::string& receptor_id,
                                         Timestamp time) {
  ESP_ASSIGN_OR_RETURN(ReceptorState * state, Find(receptor_id));
  const int64_t index = GranuleIndexOf(time, config_.granule);
  if (index < state->granule_index) {
    return Status::InvalidArgument("reading timestamps must be non-decreasing");
  }
  if (index == state->granule_index) {
    ++state->readings_in_granule;
  } else {
    // Entering a new granule: archive the finished one's count (granules
    // skipped entirely implicitly count zero).
    if (state->readings_in_granule > 0) {
      state->prev_index = state->granule_index;
      state->prev_count = state->readings_in_granule;
    }
    state->granule_index = index;
    state->readings_in_granule = 1;
  }
  return Status::OK();
}

StatusOr<std::vector<SamplingController::Recommendation>>
SamplingController::Advise(Timestamp now) {
  // Granule g is completed once now >= (g+1)*granule. On an exact boundary
  // GranuleIndexOf(now) already names the granule that just closed.
  const int64_t last_completed =
      (now.micros() % config_.granule.micros() == 0)
          ? GranuleIndexOf(now, config_.granule)
          : GranuleIndexOf(now, config_.granule) - 1;
  std::vector<Recommendation> recommendations;
  for (ReceptorState& state : receptors_) {
    if (last_completed < 0) continue;
    if (state.last_advised >= last_completed) continue;
    state.last_advised = last_completed;
    // Count for the most recent completed granule: still "current" (it
    // ended exactly at `now`), already archived, or silent (zero).
    int64_t observed = 0;
    if (state.granule_index == last_completed) {
      observed = state.readings_in_granule;
      state.prev_index = state.granule_index;
      state.prev_count = state.readings_in_granule;
      state.granule_index = last_completed + 1;
      state.readings_in_granule = 0;
    } else if (state.prev_index == last_completed) {
      observed = state.prev_count;
    }
    Duration recommended = state.period;
    if (observed < config_.min_readings_per_granule) {
      recommended = state.period / config_.adjust_factor;
    } else if (observed > config_.max_readings_per_granule) {
      recommended = state.period * config_.adjust_factor;
    } else {
      continue;  // Healthy band: no actuation.
    }
    recommended = Duration::Micros(
        std::clamp(recommended.micros(), config_.min_period.micros(),
                   config_.max_period.micros()));
    if (recommended == state.period) continue;  // Clamped to no-op.
    recommendations.push_back(
        {state.id, state.period, recommended, observed});
  }
  return recommendations;
}

Status SamplingController::SetPeriod(const std::string& receptor_id,
                                     Duration period) {
  ESP_ASSIGN_OR_RETURN(ReceptorState * state, Find(receptor_id));
  if (period.micros() <= 0) {
    return Status::InvalidArgument("period must be positive");
  }
  state->period = period;
  return Status::OK();
}

StatusOr<Duration> SamplingController::PeriodOf(
    const std::string& receptor_id) const {
  for (const ReceptorState& state : receptors_) {
    if (StrEqualsIgnoreCase(state.id, receptor_id)) return state.period;
  }
  return Status::NotFound("unknown receptor '" + receptor_id + "'");
}

}  // namespace esp::core
