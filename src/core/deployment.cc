#include "core/deployment.h"

#include <set>
#include <vector>

#include "common/string_util.h"

namespace esp::core {

using stream::DataType;
using stream::Field;

StatusOr<stream::SchemaRef> ParseSchemaSpec(const std::string& spec) {
  std::vector<Field> fields;
  for (const std::string& piece : StrSplit(spec, ',')) {
    const std::string trimmed = StrTrim(piece);
    if (trimmed.empty()) continue;
    const std::vector<std::string> parts = StrSplit(trimmed, ':');
    if (parts.size() != 2) {
      return Status::ParseError("schema field must be 'name:type', got '" +
                                trimmed + "'");
    }
    Field field;
    field.name = StrTrim(parts[0]);
    const std::string type = StrToLower(StrTrim(parts[1]));
    if (field.name.empty()) {
      return Status::ParseError("empty column name in schema spec");
    }
    if (type == "bool") {
      field.type = DataType::kBool;
    } else if (type == "int64" || type == "int") {
      field.type = DataType::kInt64;
    } else if (type == "double" || type == "float") {
      field.type = DataType::kDouble;
    } else if (type == "string") {
      field.type = DataType::kString;
    } else if (type == "timestamp") {
      field.type = DataType::kTimestamp;
    } else {
      return Status::ParseError("unknown schema type '" + type + "'");
    }
    fields.push_back(std::move(field));
  }
  if (fields.empty()) {
    return Status::ParseError("schema spec declares no columns");
  }
  return stream::MakeSchema(std::move(fields));
}

namespace {

struct Section {
  std::string kind;  // "group", "pipeline", "virtualize", ...
  std::string name;  // Section argument (group id / device type).
  size_t line = 0;   // Line of the section header (1-based).
  // Ordered entries; keys may repeat (point chains).
  struct Entry {
    std::string key;
    std::string value;
    size_t line = 0;
  };
  std::vector<Entry> entries;

  std::string Label() const {
    return "[" + kind + (name.empty() ? "" : " " + name) + "]";
  }

  /// The single entry for `key`; NotFound when absent, InvalidArgument when
  /// repeated.
  StatusOr<const Entry*> SingleEntry(const std::string& key) const {
    const Entry* found = nullptr;
    for (const Entry& entry : entries) {
      if (StrEqualsIgnoreCase(entry.key, key)) {
        if (found != nullptr) {
          return Status::ParseError(
              "key '" + key + "' repeated in " + Label() + " at line " +
              std::to_string(entry.line));
        }
        found = &entry;
      }
    }
    if (found == nullptr) {
      return Status::NotFound("missing key '" + key + "' in " + Label());
    }
    return found;
  }

  StatusOr<std::string> Single(const std::string& key) const {
    ESP_ASSIGN_OR_RETURN(const Entry* entry, SingleEntry(key));
    return entry->value;
  }

  std::vector<std::string> All(const std::string& key) const {
    std::vector<std::string> values;
    for (const Entry& entry : entries) {
      if (StrEqualsIgnoreCase(entry.key, key)) values.push_back(entry.value);
    }
    return values;
  }

  /// Rejects any entry whose key is not in `allowed` — the strict-section
  /// contract of [health] and [recovery]: a typo'd knob must fail loudly,
  /// not silently leave the default in force.
  Status RejectUnknownKeys(
      const std::vector<std::string>& allowed) const {
    for (const Entry& entry : entries) {
      bool known = false;
      for (const std::string& key : allowed) {
        if (StrEqualsIgnoreCase(entry.key, key)) {
          known = true;
          break;
        }
      }
      if (!known) {
        return Status::ParseError("unknown key '" + entry.key + "' in " +
                                  Label() + " at line " +
                                  std::to_string(entry.line));
      }
    }
    return Status::OK();
  }
};

StatusOr<std::vector<Section>> ParseSections(const std::string& text) {
  std::vector<Section> sections;
  size_t line_number = 0;
  std::string pending_key;  // For continuation lines.
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    // Strip comments (a # not inside quotes; deployment values are CQL
    // which uses single quotes, so a plain find is safe enough for '#').
    std::string line = raw_line;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const bool continuation =
        !line.empty() && (line[0] == ' ' || line[0] == '\t');
    line = StrTrim(line);
    if (line.empty()) continue;

    // An indented line continues the previous value (multi-line CQL) —
    // checked first, since CQL text may itself start with '[' (windows).
    if (continuation && !pending_key.empty() && !sections.empty() &&
        !sections.back().entries.empty()) {
      sections.back().entries.back().value += " " + line;
      continue;
    }

    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::ParseError("unterminated section header at line " +
                                  std::to_string(line_number));
      }
      const std::string header = StrTrim(line.substr(1, line.size() - 2));
      const size_t space = header.find(' ');
      Section section;
      section.kind = StrToLower(
          space == std::string::npos ? header : header.substr(0, space));
      section.name =
          space == std::string::npos ? "" : StrTrim(header.substr(space + 1));
      section.line = line_number;
      if (section.kind != "group" && section.kind != "pipeline" &&
          section.kind != "virtualize" && section.kind != "health" &&
          section.kind != "recovery" && section.kind != "ingest" &&
          section.kind != "tenants" && section.kind != "tenant") {
        return Status::ParseError("unknown section kind '" + section.kind +
                                  "' at line " + std::to_string(line_number));
      }
      sections.push_back(std::move(section));
      pending_key.clear();
      continue;
    }
    if (sections.empty()) {
      return Status::ParseError("content before first section at line " +
                                std::to_string(line_number));
    }
    const size_t equals = line.find('=');
    if (equals == std::string::npos) {
      return Status::ParseError("expected 'key = value' at line " +
                                std::to_string(line_number));
    }
    pending_key = StrTrim(line.substr(0, equals));
    sections.back().entries.push_back(Section::Entry{
        pending_key, StrTrim(line.substr(equals + 1)), line_number});
  }
  return sections;
}

/// A line-numbered ParseError for a bad value in a strict section.
Status BadValue(const Section& section, const Section::Entry& entry,
                const std::string& detail) {
  return Status::ParseError("invalid value '" + entry.value + "' for '" +
                            entry.key + "' in " + section.Label() +
                            " at line " + std::to_string(entry.line) + ": " +
                            detail);
}

/// Parses a [health] section into a HealthPolicy. Durations use the CQL
/// window syntax ("2 sec", "500 msec"); omitted keys keep their defaults.
/// Unknown keys and malformed values fail with line-numbered errors.
StatusOr<HealthPolicy> ParseHealthSection(const Section& section) {
  HealthPolicy policy;
  struct DurationKey {
    const char* key;
    Duration* target;
  };
  const DurationKey duration_keys[] = {
      {"staleness_threshold", &policy.staleness_threshold},
      {"quarantine_timeout", &policy.quarantine_timeout},
      {"revival_backoff", &policy.revival_backoff},
      {"max_revival_backoff", &policy.max_revival_backoff},
      {"lateness_horizon", &policy.lateness_horizon},
  };
  ESP_RETURN_IF_ERROR(section.RejectUnknownKeys(
      {"staleness_threshold", "quarantine_timeout", "revival_backoff",
       "max_revival_backoff", "lateness_horizon", "stage_error_policy"}));
  for (const DurationKey& key : duration_keys) {
    auto entry = section.SingleEntry(key.key);
    if (!entry.ok()) {
      if (entry.status().code() == StatusCode::kNotFound) continue;
      return entry.status();
    }
    auto parsed = ParseDuration((*entry)->value);
    if (!parsed.ok()) {
      return BadValue(section, **entry, parsed.status().message());
    }
    *key.target = *parsed;
  }
  auto policy_entry = section.SingleEntry("stage_error_policy");
  if (policy_entry.ok()) {
    const std::string lowered = StrToLower(StrTrim((*policy_entry)->value));
    if (lowered == "degrade") {
      policy.stage_error_policy = StageErrorPolicy::kDegrade;
    } else if (lowered == "failfast" || lowered == "fail_fast") {
      policy.stage_error_policy = StageErrorPolicy::kFailFast;
    } else {
      return BadValue(section, **policy_entry,
                      "expected degrade or failfast");
    }
  } else if (policy_entry.status().code() != StatusCode::kNotFound) {
    return policy_entry.status();
  }
  return policy;
}

/// Parses a [recovery] section into RecoveryOptions (core/recovery.h), with
/// the same strictness as [health].
StatusOr<RecoveryOptions> ParseRecoverySection(const Section& section) {
  RecoveryOptions options;
  ESP_RETURN_IF_ERROR(section.RejectUnknownKeys(
      {"directory", "checkpoint_interval_ticks", "retain_snapshots", "fsync",
       "journal_flush_every", "journal_fsync_every"}));

  auto directory = section.SingleEntry("directory");
  if (!directory.ok()) {
    if (directory.status().code() == StatusCode::kNotFound) {
      return Status::ParseError("[recovery] at line " +
                                std::to_string(section.line) +
                                " requires a 'directory' key");
    }
    return directory.status();
  }
  options.directory = (*directory)->value;
  if (options.directory.empty()) {
    return BadValue(section, **directory, "directory must not be empty");
  }

  struct CountKey {
    const char* key;
    uint64_t* target;
    uint64_t minimum;
  };
  uint64_t retain = options.retain_snapshots;
  const CountKey count_keys[] = {
      {"checkpoint_interval_ticks", &options.checkpoint_interval_ticks, 0},
      {"retain_snapshots", &retain, 1},
      {"journal_flush_every", &options.journal_flush_every, 1},
      {"journal_fsync_every", &options.journal_fsync_every, 1},
  };
  for (const CountKey& key : count_keys) {
    auto entry = section.SingleEntry(key.key);
    if (!entry.ok()) {
      if (entry.status().code() == StatusCode::kNotFound) continue;
      return entry.status();
    }
    int64_t value = 0;
    if (!StrToInt64((*entry)->value, &value) || value < 0) {
      return BadValue(section, **entry, "expected a non-negative integer");
    }
    if (static_cast<uint64_t>(value) < key.minimum) {
      return BadValue(section, **entry,
                      "must be at least " + std::to_string(key.minimum));
    }
    *key.target = static_cast<uint64_t>(value);
  }
  options.retain_snapshots = static_cast<size_t>(retain);

  auto fsync_entry = section.SingleEntry("fsync");
  if (fsync_entry.ok()) {
    const std::string lowered = StrToLower(StrTrim((*fsync_entry)->value));
    if (lowered == "true" || lowered == "on" || lowered == "1") {
      options.fsync = true;
    } else if (lowered == "false" || lowered == "off" || lowered == "0") {
      options.fsync = false;
    } else {
      return BadValue(section, **fsync_entry, "expected true or false");
    }
  } else if (fsync_entry.status().code() != StatusCode::kNotFound) {
    return fsync_entry.status();
  }
  return options;
}

/// Parses an [ingest] section into IngestSpecOptions with the same
/// strictness as [health] and [recovery].
StatusOr<IngestSpecOptions> ParseIngestSection(const Section& section) {
  IngestSpecOptions options;
  ESP_RETURN_IF_ERROR(section.RejectUnknownKeys(
      {"bind_address", "port", "max_connections", "queue_limit_frames",
       "backpressure", "max_frame_bytes", "read_timeout", "idle_timeout",
       "backoff_initial", "backoff_max", "backoff_jitter"}));

  auto address = section.SingleEntry("bind_address");
  if (address.ok()) {
    options.bind_address = (*address)->value;
    if (options.bind_address.empty()) {
      return BadValue(section, **address, "bind_address must not be empty");
    }
  } else if (address.status().code() != StatusCode::kNotFound) {
    return address.status();
  }

  auto port = section.SingleEntry("port");
  if (port.ok()) {
    int64_t value = 0;
    if (!StrToInt64((*port)->value, &value) || value < 0 || value > 65535) {
      return BadValue(section, **port, "expected a port in [0, 65535]");
    }
    options.port = static_cast<uint16_t>(value);
  } else if (port.status().code() != StatusCode::kNotFound) {
    return port.status();
  }

  struct CountKey {
    const char* key;
    uint64_t* target;
    uint64_t minimum;
  };
  const CountKey count_keys[] = {
      {"max_connections", &options.max_connections, 1},
      {"queue_limit_frames", &options.queue_limit_frames, 1},
      {"max_frame_bytes", &options.max_frame_bytes, 64},
  };
  for (const CountKey& key : count_keys) {
    auto entry = section.SingleEntry(key.key);
    if (!entry.ok()) {
      if (entry.status().code() == StatusCode::kNotFound) continue;
      return entry.status();
    }
    int64_t value = 0;
    if (!StrToInt64((*entry)->value, &value) || value < 0) {
      return BadValue(section, **entry, "expected a non-negative integer");
    }
    if (static_cast<uint64_t>(value) < key.minimum) {
      return BadValue(section, **entry,
                      "must be at least " + std::to_string(key.minimum));
    }
    *key.target = static_cast<uint64_t>(value);
  }

  struct DurationKey {
    const char* key;
    Duration* target;
  };
  const DurationKey duration_keys[] = {
      {"read_timeout", &options.read_timeout},
      {"idle_timeout", &options.idle_timeout},
      {"backoff_initial", &options.backoff_initial},
      {"backoff_max", &options.backoff_max},
  };
  for (const DurationKey& key : duration_keys) {
    auto entry = section.SingleEntry(key.key);
    if (!entry.ok()) {
      if (entry.status().code() == StatusCode::kNotFound) continue;
      return entry.status();
    }
    if (StrTrim((*entry)->value) == "0") {
      *key.target = Duration::Zero();
      continue;
    }
    auto parsed = ParseDuration((*entry)->value);
    if (!parsed.ok()) {
      return BadValue(section, **entry, parsed.status().message());
    }
    if (*parsed < Duration::Zero()) {
      return BadValue(section, **entry, "timeouts must be non-negative");
    }
    *key.target = *parsed;
  }

  auto jitter = section.SingleEntry("backoff_jitter");
  if (jitter.ok()) {
    double value = 0.0;
    if (!StrToDouble((*jitter)->value, &value) || value < 0.0 ||
        value > 1.0) {
      return BadValue(section, **jitter,
                      "expected a jitter fraction in [0, 1]");
    }
    options.backoff_jitter = value;
  } else if (jitter.status().code() != StatusCode::kNotFound) {
    return jitter.status();
  }

  if (options.backoff_max < options.backoff_initial) {
    // A cross-field violation; anchor the diagnostic on whichever of the
    // two keys the spec actually wrote (backoff_max if both).
    auto anchor = section.SingleEntry("backoff_max");
    if (!anchor.ok()) anchor = section.SingleEntry("backoff_initial");
    if (anchor.ok()) {
      return BadValue(section, **anchor,
                      "backoff_max must be >= backoff_initial");
    }
    return Status::ParseError("[ingest] backoff_max must be >= backoff_initial");
  }

  auto policy = section.SingleEntry("backpressure");
  if (policy.ok()) {
    const std::string lowered = StrToLower(StrTrim((*policy)->value));
    if (lowered != "block" && lowered != "shed") {
      return BadValue(section, **policy, "expected block or shed");
    }
    options.backpressure = lowered;
  } else if (policy.status().code() != StatusCode::kNotFound) {
    return policy.status();
  }
  return options;
}

/// The single boolean entry for `key`; nullopt when absent, a
/// line-numbered error on anything but true/false spellings.
StatusOr<std::optional<bool>> BoolEntry(const Section& section,
                                        const char* key) {
  auto entry = section.SingleEntry(key);
  if (!entry.ok()) {
    if (entry.status().code() == StatusCode::kNotFound) {
      return std::optional<bool>();
    }
    return entry.status();
  }
  const std::string lowered = StrToLower(StrTrim((*entry)->value));
  if (lowered == "true" || lowered == "on" || lowered == "1") {
    return std::optional<bool>(true);
  }
  if (lowered == "false" || lowered == "off" || lowered == "0") {
    return std::optional<bool>(false);
  }
  return BadValue(section, **entry, "expected true or false");
}

/// Parses the budget keys shared by [tenants] (defaults) and [tenant <id>]
/// (overrides) into `budgets`, with the same strictness as [health]. Zero
/// means unlimited (cql/query_registry.h).
Status ParseBudgetKeys(const Section& section, cql::TenantBudgets* budgets) {
  struct CountKey {
    const char* key;
    uint64_t* target;
  };
  uint64_t max_rows = static_cast<uint64_t>(budgets->max_window_rows);
  const CountKey count_keys[] = {
      {"max_queries", &budgets->max_queries},
      {"max_window_rows", &max_rows},
  };
  for (const CountKey& key : count_keys) {
    auto entry = section.SingleEntry(key.key);
    if (!entry.ok()) {
      if (entry.status().code() == StatusCode::kNotFound) continue;
      return entry.status();
    }
    int64_t value = 0;
    if (!StrToInt64((*entry)->value, &value) || value < 0) {
      return BadValue(section, **entry, "expected a non-negative integer");
    }
    *key.target = static_cast<uint64_t>(value);
  }
  budgets->max_window_rows = static_cast<int64_t>(max_rows);

  struct DurationKey {
    const char* key;
    Duration* target;
  };
  const DurationKey duration_keys[] = {
      {"max_window_range", &budgets->max_window_range},
      {"max_eval_time", &budgets->max_eval_time},
  };
  for (const DurationKey& key : duration_keys) {
    auto entry = section.SingleEntry(key.key);
    if (!entry.ok()) {
      if (entry.status().code() == StatusCode::kNotFound) continue;
      return entry.status();
    }
    if (StrTrim((*entry)->value) == "0") {
      *key.target = Duration::Zero();
      continue;
    }
    auto parsed = ParseDuration((*entry)->value);
    if (!parsed.ok()) {
      return BadValue(section, **entry, parsed.status().message());
    }
    if (*parsed < Duration::Zero()) {
      return BadValue(section, **entry, "budgets must be non-negative");
    }
    *key.target = *parsed;
  }

  ESP_ASSIGN_OR_RETURN(const std::optional<bool> allow_unbounded,
                       BoolEntry(section, "allow_unbounded"));
  if (allow_unbounded.has_value()) {
    budgets->allow_unbounded = *allow_unbounded;
  }
  return Status::OK();
}

/// Parses a [tenants] section — the multi-tenant serving layer's sharing
/// toggles and default budgets — with the same strictness as [health].
StatusOr<cql::QueryRegistry::Options> ParseTenantsSection(
    const Section& section) {
  cql::QueryRegistry::Options options;
  ESP_RETURN_IF_ERROR(section.RejectUnknownKeys(
      {"share_plans", "share_windows", "max_queries", "max_window_range",
       "max_window_rows", "allow_unbounded", "max_eval_time"}));
  ESP_ASSIGN_OR_RETURN(const std::optional<bool> share_plans,
                       BoolEntry(section, "share_plans"));
  if (share_plans.has_value()) options.share_plans = *share_plans;
  ESP_ASSIGN_OR_RETURN(const std::optional<bool> share_windows,
                       BoolEntry(section, "share_windows"));
  if (share_windows.has_value()) options.share_windows = *share_windows;
  ESP_RETURN_IF_ERROR(ParseBudgetKeys(section, &options.default_budgets));
  return options;
}

/// Parses one [tenant <id>] override. Omitted keys keep the [tenants]
/// defaults (`seed`), so an override can tighten one budget without
/// re-declaring the rest.
StatusOr<cql::TenantBudgets> ParseTenantSection(
    const Section& section, const cql::TenantBudgets& seed) {
  if (section.name.empty()) {
    return Status::ParseError("[tenant] at line " +
                              std::to_string(section.line) +
                              " requires a tenant id");
  }
  ESP_RETURN_IF_ERROR(section.RejectUnknownKeys(
      {"max_queries", "max_window_range", "max_window_rows",
       "allow_unbounded", "max_eval_time"}));
  cql::TenantBudgets budgets = seed;
  ESP_RETURN_IF_ERROR(ParseBudgetKeys(section, &budgets));
  return budgets;
}

/// Builds a CQL stage factory from query text, validated lazily at Bind.
StageFactory DeclarativeStage(StageKind kind, std::string name,
                              std::string query) {
  return [kind, name = std::move(name),
          query = std::move(query)]() -> StatusOr<std::unique_ptr<Stage>> {
    ESP_ASSIGN_OR_RETURN(std::unique_ptr<CqlStage> stage,
                         CqlStage::Create(kind, name, query));
    return std::unique_ptr<Stage>(std::move(stage));
  };
}

}  // namespace

StatusOr<DeploymentBundle> LoadDeploymentBundle(const std::string& spec_text) {
  ESP_ASSIGN_OR_RETURN(std::vector<Section> sections,
                       ParseSections(spec_text));
  DeploymentBundle bundle;
  bundle.processor = std::make_unique<EspProcessor>();
  EspProcessor* processor_ptr = bundle.processor.get();
  auto& processor = bundle.processor;

  bool saw_pipeline = false;
  bool saw_virtualize = false;
  bool saw_health = false;
  std::optional<cql::QueryRegistry::Options> tenants_options;
  std::vector<const Section*> tenant_sections;
  for (const Section& section : sections) {
    if (section.kind == "tenants") {
      if (tenants_options.has_value()) {
        return Status::ParseError(
            "multiple [tenants] sections (second at line " +
            std::to_string(section.line) + ")");
      }
      ESP_ASSIGN_OR_RETURN(tenants_options, ParseTenantsSection(section));
    } else if (section.kind == "tenant") {
      // Deferred: overrides seed from the [tenants] defaults, which may
      // appear later in the file.
      tenant_sections.push_back(&section);
    } else if (section.kind == "health") {
      if (saw_health) {
        return Status::ParseError("multiple [health] sections (second at line " +
                                  std::to_string(section.line) + ")");
      }
      saw_health = true;
      ESP_ASSIGN_OR_RETURN(HealthPolicy policy, ParseHealthSection(section));
      ESP_RETURN_IF_ERROR(processor->SetHealthPolicy(policy));
    } else if (section.kind == "recovery") {
      if (bundle.recovery.has_value()) {
        return Status::ParseError(
            "multiple [recovery] sections (second at line " +
            std::to_string(section.line) + ")");
      }
      ESP_ASSIGN_OR_RETURN(bundle.recovery, ParseRecoverySection(section));
    } else if (section.kind == "ingest") {
      if (bundle.ingest.has_value()) {
        return Status::ParseError(
            "multiple [ingest] sections (second at line " +
            std::to_string(section.line) + ")");
      }
      ESP_ASSIGN_OR_RETURN(bundle.ingest, ParseIngestSection(section));
    } else if (section.kind == "group") {
      if (section.name.empty()) {
        return Status::ParseError("[group] requires a name");
      }
      ProximityGroup group;
      group.id = section.name;
      ESP_ASSIGN_OR_RETURN(group.device_type, section.Single("type"));
      ESP_ASSIGN_OR_RETURN(group.granule.id, section.Single("granule"));
      ESP_ASSIGN_OR_RETURN(const std::string receptors,
                           section.Single("receptors"));
      for (const std::string& receptor : StrSplit(receptors, ',')) {
        const std::string id = StrTrim(receptor);
        if (!id.empty()) group.receptor_ids.push_back(id);
      }
      if (group.receptor_ids.empty()) {
        return Status::ParseError("[group " + section.name +
                                  "] lists no receptors");
      }
      ESP_RETURN_IF_ERROR(processor->AddProximityGroup(std::move(group)));
    } else if (section.kind == "pipeline") {
      if (section.name.empty()) {
        return Status::ParseError("[pipeline] requires a device type");
      }
      saw_pipeline = true;
      DeviceTypePipeline pipeline;
      pipeline.device_type = section.name;
      ESP_ASSIGN_OR_RETURN(const std::string schema_spec,
                           section.Single("schema"));
      ESP_ASSIGN_OR_RETURN(pipeline.reading_schema,
                           ParseSchemaSpec(schema_spec));
      ESP_ASSIGN_OR_RETURN(pipeline.receptor_id_column,
                           section.Single("receptor_id_column"));
      for (const std::string& query : section.All("point")) {
        pipeline.point.push_back(DeclarativeStage(
            StageKind::kPoint, section.name + "_point", query));
      }
      for (const auto& [key, stage_kind] :
           std::vector<std::pair<const char*, StageKind>>{
               {"smooth", StageKind::kSmooth},
               {"merge", StageKind::kMerge},
               {"arbitrate", StageKind::kArbitrate}}) {
        auto query = section.Single(key);
        if (!query.ok()) {
          if (query.status().code() == StatusCode::kNotFound) continue;
          return query.status();
        }
        StageFactory factory = DeclarativeStage(
            stage_kind, section.name + "_" + key, *query);
        if (stage_kind == StageKind::kSmooth) {
          pipeline.smooth = std::move(factory);
        } else if (stage_kind == StageKind::kMerge) {
          pipeline.merge = std::move(factory);
        } else {
          pipeline.arbitrate = std::move(factory);
        }
      }
      auto virtualize_input = section.Single("virtualize_input");
      if (virtualize_input.ok()) {
        pipeline.virtualize_input = *virtualize_input;
      } else if (virtualize_input.status().code() != StatusCode::kNotFound) {
        return virtualize_input.status();
      }
      ESP_RETURN_IF_ERROR(processor->AddPipeline(std::move(pipeline)));
    } else {  // virtualize
      if (saw_virtualize) {
        return Status::ParseError("multiple [virtualize] sections");
      }
      saw_virtualize = true;
      ESP_ASSIGN_OR_RETURN(const std::string query, section.Single("query"));
      ESP_ASSIGN_OR_RETURN(
          std::unique_ptr<CqlStage> stage,
          CqlStage::Create(StageKind::kVirtualize, "virtualize", query));
      processor->SetVirtualize(std::move(stage));
    }
  }
  if (!saw_pipeline) {
    return Status::ParseError("deployment declares no [pipeline] sections");
  }

  if (tenants_options.has_value()) {
    ESP_RETURN_IF_ERROR(
        processor->SetQueryServingOptions(*tenants_options));
  }
  const cql::TenantBudgets default_budgets =
      tenants_options.has_value() ? tenants_options->default_budgets
                                  : cql::TenantBudgets{};
  std::set<std::string> seen_tenants;
  for (const Section* section : tenant_sections) {
    ESP_ASSIGN_OR_RETURN(const cql::TenantBudgets budgets,
                         ParseTenantSection(*section, default_budgets));
    if (!seen_tenants.insert(section->name).second) {
      return Status::ParseError("multiple [tenant " + section->name +
                                "] sections (second at line " +
                                std::to_string(section->line) + ")");
    }
    ESP_RETURN_IF_ERROR(processor->SetTenantBudgets(section->name, budgets));
  }

  ESP_RETURN_IF_ERROR(processor_ptr->Start());
  return bundle;
}

StatusOr<std::unique_ptr<EspProcessor>> LoadDeployment(
    const std::string& spec_text) {
  ESP_ASSIGN_OR_RETURN(DeploymentBundle bundle,
                       LoadDeploymentBundle(spec_text));
  return std::move(bundle.processor);
}

}  // namespace esp::core
