#include "core/deployment.h"

#include <vector>

#include "common/string_util.h"

namespace esp::core {

using stream::DataType;
using stream::Field;

StatusOr<stream::SchemaRef> ParseSchemaSpec(const std::string& spec) {
  std::vector<Field> fields;
  for (const std::string& piece : StrSplit(spec, ',')) {
    const std::string trimmed = StrTrim(piece);
    if (trimmed.empty()) continue;
    const std::vector<std::string> parts = StrSplit(trimmed, ':');
    if (parts.size() != 2) {
      return Status::ParseError("schema field must be 'name:type', got '" +
                                trimmed + "'");
    }
    Field field;
    field.name = StrTrim(parts[0]);
    const std::string type = StrToLower(StrTrim(parts[1]));
    if (field.name.empty()) {
      return Status::ParseError("empty column name in schema spec");
    }
    if (type == "bool") {
      field.type = DataType::kBool;
    } else if (type == "int64" || type == "int") {
      field.type = DataType::kInt64;
    } else if (type == "double" || type == "float") {
      field.type = DataType::kDouble;
    } else if (type == "string") {
      field.type = DataType::kString;
    } else if (type == "timestamp") {
      field.type = DataType::kTimestamp;
    } else {
      return Status::ParseError("unknown schema type '" + type + "'");
    }
    fields.push_back(std::move(field));
  }
  if (fields.empty()) {
    return Status::ParseError("schema spec declares no columns");
  }
  return stream::MakeSchema(std::move(fields));
}

namespace {

struct Section {
  std::string kind;  // "group", "pipeline", "virtualize".
  std::string name;  // Section argument (group id / device type).
  // Ordered key/value pairs; keys may repeat (point chains).
  std::vector<std::pair<std::string, std::string>> entries;

  /// The single value for `key`; NotFound when absent, InvalidArgument when
  /// repeated.
  StatusOr<std::string> Single(const std::string& key) const {
    const std::string* found = nullptr;
    for (const auto& [k, v] : entries) {
      if (StrEqualsIgnoreCase(k, key)) {
        if (found != nullptr) {
          return Status::InvalidArgument("key '" + key + "' repeated in [" +
                                         kind + " " + name + "]");
        }
        found = &v;
      }
    }
    if (found == nullptr) {
      return Status::NotFound("missing key '" + key + "' in [" + kind + " " +
                              name + "]");
    }
    return *found;
  }

  std::vector<std::string> All(const std::string& key) const {
    std::vector<std::string> values;
    for (const auto& [k, v] : entries) {
      if (StrEqualsIgnoreCase(k, key)) values.push_back(v);
    }
    return values;
  }
};

StatusOr<std::vector<Section>> ParseSections(const std::string& text) {
  std::vector<Section> sections;
  size_t line_number = 0;
  std::string pending_key;  // For continuation lines.
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    // Strip comments (a # not inside quotes; deployment values are CQL
    // which uses single quotes, so a plain find is safe enough for '#').
    std::string line = raw_line;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const bool continuation =
        !line.empty() && (line[0] == ' ' || line[0] == '\t');
    line = StrTrim(line);
    if (line.empty()) continue;

    // An indented line continues the previous value (multi-line CQL) —
    // checked first, since CQL text may itself start with '[' (windows).
    if (continuation && !pending_key.empty() && !sections.empty() &&
        !sections.back().entries.empty()) {
      sections.back().entries.back().second += " " + line;
      continue;
    }

    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::ParseError("unterminated section header at line " +
                                  std::to_string(line_number));
      }
      const std::string header = StrTrim(line.substr(1, line.size() - 2));
      const size_t space = header.find(' ');
      Section section;
      section.kind = StrToLower(
          space == std::string::npos ? header : header.substr(0, space));
      section.name =
          space == std::string::npos ? "" : StrTrim(header.substr(space + 1));
      if (section.kind != "group" && section.kind != "pipeline" &&
          section.kind != "virtualize" && section.kind != "health") {
        return Status::ParseError("unknown section kind '" + section.kind +
                                  "' at line " + std::to_string(line_number));
      }
      sections.push_back(std::move(section));
      pending_key.clear();
      continue;
    }
    if (sections.empty()) {
      return Status::ParseError("content before first section at line " +
                                std::to_string(line_number));
    }
    const size_t equals = line.find('=');
    if (equals == std::string::npos) {
      return Status::ParseError("expected 'key = value' at line " +
                                std::to_string(line_number));
    }
    pending_key = StrTrim(line.substr(0, equals));
    sections.back().entries.emplace_back(pending_key,
                                         StrTrim(line.substr(equals + 1)));
  }
  return sections;
}

/// Parses a [health] section into a HealthPolicy. Durations use the CQL
/// window syntax ("2 sec", "500 msec"); omitted keys keep their defaults.
StatusOr<HealthPolicy> ParseHealthSection(const Section& section) {
  HealthPolicy policy;
  struct DurationKey {
    const char* key;
    Duration* target;
  };
  const DurationKey duration_keys[] = {
      {"staleness_threshold", &policy.staleness_threshold},
      {"quarantine_timeout", &policy.quarantine_timeout},
      {"revival_backoff", &policy.revival_backoff},
      {"max_revival_backoff", &policy.max_revival_backoff},
      {"lateness_horizon", &policy.lateness_horizon},
  };
  for (const DurationKey& entry : duration_keys) {
    auto value = section.Single(entry.key);
    if (!value.ok()) {
      if (value.status().code() == StatusCode::kNotFound) continue;
      return value.status();
    }
    ESP_ASSIGN_OR_RETURN(*entry.target, ParseDuration(*value));
  }
  auto policy_text = section.Single("stage_error_policy");
  if (policy_text.ok()) {
    const std::string lowered = StrToLower(StrTrim(*policy_text));
    if (lowered == "degrade") {
      policy.stage_error_policy = StageErrorPolicy::kDegrade;
    } else if (lowered == "failfast" || lowered == "fail_fast") {
      policy.stage_error_policy = StageErrorPolicy::kFailFast;
    } else {
      return Status::ParseError("unknown stage_error_policy '" + *policy_text +
                                "' (expected degrade or failfast)");
    }
  } else if (policy_text.status().code() != StatusCode::kNotFound) {
    return policy_text.status();
  }
  return policy;
}

/// Builds a CQL stage factory from query text, validated lazily at Bind.
StageFactory DeclarativeStage(StageKind kind, std::string name,
                              std::string query) {
  return [kind, name = std::move(name),
          query = std::move(query)]() -> StatusOr<std::unique_ptr<Stage>> {
    ESP_ASSIGN_OR_RETURN(std::unique_ptr<CqlStage> stage,
                         CqlStage::Create(kind, name, query));
    return std::unique_ptr<Stage>(std::move(stage));
  };
}

}  // namespace

StatusOr<std::unique_ptr<EspProcessor>> LoadDeployment(
    const std::string& spec_text) {
  ESP_ASSIGN_OR_RETURN(std::vector<Section> sections,
                       ParseSections(spec_text));
  auto processor = std::make_unique<EspProcessor>();

  bool saw_pipeline = false;
  bool saw_virtualize = false;
  bool saw_health = false;
  for (const Section& section : sections) {
    if (section.kind == "health") {
      if (saw_health) {
        return Status::ParseError("multiple [health] sections");
      }
      saw_health = true;
      ESP_ASSIGN_OR_RETURN(HealthPolicy policy, ParseHealthSection(section));
      ESP_RETURN_IF_ERROR(processor->SetHealthPolicy(policy));
    } else if (section.kind == "group") {
      if (section.name.empty()) {
        return Status::ParseError("[group] requires a name");
      }
      ProximityGroup group;
      group.id = section.name;
      ESP_ASSIGN_OR_RETURN(group.device_type, section.Single("type"));
      ESP_ASSIGN_OR_RETURN(group.granule.id, section.Single("granule"));
      ESP_ASSIGN_OR_RETURN(const std::string receptors,
                           section.Single("receptors"));
      for (const std::string& receptor : StrSplit(receptors, ',')) {
        const std::string id = StrTrim(receptor);
        if (!id.empty()) group.receptor_ids.push_back(id);
      }
      if (group.receptor_ids.empty()) {
        return Status::ParseError("[group " + section.name +
                                  "] lists no receptors");
      }
      ESP_RETURN_IF_ERROR(processor->AddProximityGroup(std::move(group)));
    } else if (section.kind == "pipeline") {
      if (section.name.empty()) {
        return Status::ParseError("[pipeline] requires a device type");
      }
      saw_pipeline = true;
      DeviceTypePipeline pipeline;
      pipeline.device_type = section.name;
      ESP_ASSIGN_OR_RETURN(const std::string schema_spec,
                           section.Single("schema"));
      ESP_ASSIGN_OR_RETURN(pipeline.reading_schema,
                           ParseSchemaSpec(schema_spec));
      ESP_ASSIGN_OR_RETURN(pipeline.receptor_id_column,
                           section.Single("receptor_id_column"));
      for (const std::string& query : section.All("point")) {
        pipeline.point.push_back(DeclarativeStage(
            StageKind::kPoint, section.name + "_point", query));
      }
      for (const auto& [key, stage_kind] :
           std::vector<std::pair<const char*, StageKind>>{
               {"smooth", StageKind::kSmooth},
               {"merge", StageKind::kMerge},
               {"arbitrate", StageKind::kArbitrate}}) {
        auto query = section.Single(key);
        if (!query.ok()) {
          if (query.status().code() == StatusCode::kNotFound) continue;
          return query.status();
        }
        StageFactory factory = DeclarativeStage(
            stage_kind, section.name + "_" + key, *query);
        if (stage_kind == StageKind::kSmooth) {
          pipeline.smooth = std::move(factory);
        } else if (stage_kind == StageKind::kMerge) {
          pipeline.merge = std::move(factory);
        } else {
          pipeline.arbitrate = std::move(factory);
        }
      }
      auto virtualize_input = section.Single("virtualize_input");
      if (virtualize_input.ok()) {
        pipeline.virtualize_input = *virtualize_input;
      } else if (virtualize_input.status().code() != StatusCode::kNotFound) {
        return virtualize_input.status();
      }
      ESP_RETURN_IF_ERROR(processor->AddPipeline(std::move(pipeline)));
    } else {  // virtualize
      if (saw_virtualize) {
        return Status::ParseError("multiple [virtualize] sections");
      }
      saw_virtualize = true;
      ESP_ASSIGN_OR_RETURN(const std::string query, section.Single("query"));
      ESP_ASSIGN_OR_RETURN(
          std::unique_ptr<CqlStage> stage,
          CqlStage::Create(StageKind::kVirtualize, "virtualize", query));
      processor->SetVirtualize(std::move(stage));
    }
  }
  if (!saw_pipeline) {
    return Status::ParseError("deployment declares no [pipeline] sections");
  }
  ESP_RETURN_IF_ERROR(processor->Start());
  return processor;
}

}  // namespace esp::core
