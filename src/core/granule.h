#ifndef ESP_CORE_GRANULE_H_
#define ESP_CORE_GRANULE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace esp::core {

/// \brief The application's atomic unit of time (Section 3.1.1): readings
/// within one temporal granule are expected to be highly correlated, so ESP
/// may aggregate, sample, or detect outliers within it. Realized as the
/// sliding-window size of the Smooth stage.
struct TemporalGranule {
  Duration size;

  explicit TemporalGranule(Duration size) : size(size) {}
  std::string ToString() const { return size.ToString(); }
};

/// \brief The application's atomic unit of space (Section 3.1.2) — a shelf,
/// a room, a height band of a redwood. Identified by name; ESP stamps every
/// reading with the spatial granule it was observed in.
struct SpatialGranule {
  std::string id;

  bool operator==(const SpatialGranule&) const = default;
};

/// \brief A set of receptors of the same type monitoring the same spatial
/// granule (Section 3.1.2). Readings from devices in one proximity group are
/// processed together by the Merge stage.
struct ProximityGroup {
  std::string id;
  std::string device_type;  // e.g. "rfid", "mote", "x10".
  SpatialGranule granule;
  std::vector<std::string> receptor_ids;

  bool Contains(const std::string& receptor_id) const;
};

/// \brief Registry mapping receptors to proximity groups and spatial
/// granules. Relationships may be one-to-many, many-to-one, or many-to-many
/// across granules and may change dynamically (Section 3.1.2); within one
/// device type, a receptor belongs to exactly one group at a time.
class GranuleMap {
 public:
  /// Adds a group; rejects duplicate group ids and receptors already mapped
  /// to another group of the same device type.
  Status AddGroup(ProximityGroup group);

  /// Re-points a receptor at a different (existing) group of the same type —
  /// the dynamic remapping hook.
  Status MoveReceptor(const std::string& device_type,
                      const std::string& receptor_id,
                      const std::string& new_group_id);

  /// The group a receptor (of `device_type`) belongs to.
  StatusOr<const ProximityGroup*> GroupOf(const std::string& device_type,
                                          const std::string& receptor_id) const;

  /// All groups of one device type, in registration order.
  std::vector<const ProximityGroup*> GroupsOfType(
      const std::string& device_type) const;

  /// All receptor ids of one device type, in registration order.
  std::vector<std::string> ReceptorsOfType(
      const std::string& device_type) const;

  size_t num_groups() const { return groups_.size(); }

 private:
  std::vector<ProximityGroup> groups_;
};

}  // namespace esp::core

#endif  // ESP_CORE_GRANULE_H_
