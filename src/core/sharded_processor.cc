#include "core/sharded_processor.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/string_util.h"
#include "stream/serialize.h"

namespace esp::core {

using stream::Relation;
using stream::SchemaRef;
using stream::Tuple;
using stream::Value;

namespace {

// Composite routing key; the map's transparent case-insensitive hash makes
// lower-casing unnecessary, and the short concatenation stays within SSO on
// the Push hot path.
std::string RouteKey(const std::string& device_type,
                     const std::string& receptor_id) {
  std::string key;
  key.reserve(device_type.size() + 1 + receptor_id.size());
  key += device_type;
  key.push_back('\0');
  key += receptor_id;
  return key;
}

std::string ShardSectionName(size_t shard) {
  return "shard_" + std::to_string(shard);
}

}  // namespace

ShardedEspProcessor::ShardedEspProcessor(Options options)
    : options_(options) {}

Status ShardedEspProcessor::AddProximityGroup(ProximityGroup group) {
  if (started_) return Status::Internal("processor already started");
  return staged_granules_.AddGroup(std::move(group));
}

Status ShardedEspProcessor::SetHealthPolicy(HealthPolicy policy) {
  if (started_) return Status::Internal("processor already started");
  if (policy.liveness_enabled() &&
      policy.staleness_threshold <= policy.lateness_horizon) {
    return Status::InvalidArgument(
        "staleness threshold must exceed the lateness horizon (admitted-late "
        "readings make live receptors look up to one horizon stale)");
  }
  policy_ = policy;
  return Status::OK();
}

Status ShardedEspProcessor::AddPipeline(DeviceTypePipeline pipeline) {
  if (started_) return Status::Internal("processor already started");
  if (pipeline.reading_schema == nullptr) {
    return Status::InvalidArgument("pipeline for '" + pipeline.device_type +
                                   "' has no reading schema");
  }
  if (!pipeline.reading_schema->Contains(pipeline.receptor_id_column)) {
    return Status::InvalidArgument(
        "receptor id column '" + pipeline.receptor_id_column +
        "' not in reading schema for '" + pipeline.device_type + "'");
  }
  for (const TypeRuntime& type : types_) {
    if (StrEqualsIgnoreCase(type.config.device_type, pipeline.device_type)) {
      return Status::AlreadyExists("pipeline for '" + pipeline.device_type +
                                   "' already registered");
    }
  }
  if (pipeline.virtualize_input.empty()) {
    pipeline.virtualize_input = pipeline.device_type + "_input";
  }
  TypeRuntime runtime;
  runtime.config = std::move(pipeline);
  types_.push_back(std::move(runtime));
  return Status::OK();
}

void ShardedEspProcessor::SetVirtualize(std::unique_ptr<Stage> stage) {
  virtualize_ = std::move(stage);
}

Status ShardedEspProcessor::Start() {
  if (started_) return Status::Internal("processor already started");
  if (options_.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  const size_t num_shards = options_.num_shards;

  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(num_shards);
    pool_ = owned_pool_.get();
  }

  shards_.clear();
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<EspProcessor>());
    ESP_RETURN_IF_ERROR(shards_[s]->SetHealthPolicy(policy_));
    shards_[s]->SetExportGroupPartials(export_group_partials_);
  }

  // Partition each type's proximity groups into contiguous blocks in
  // registration order: with G groups over N shards, the first G % N shards
  // take ceil(G/N) groups, the rest floor(G/N). Contiguity is what makes
  // the shard-order merge reproduce the single processor's group-ordered
  // Union (see class comment).
  for (TypeRuntime& type : types_) {
    const auto groups = staged_granules_.GroupsOfType(type.config.device_type);
    if (groups.empty()) {
      return Status::InvalidArgument("no proximity groups for device type '" +
                                     type.config.device_type + "'");
    }
    const size_t g_count = groups.size();
    const size_t base = g_count / num_shards;
    const size_t extra = g_count % num_shards;
    size_t next = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t take = base + (s < extra ? 1 : 0);
      if (take == 0) continue;
      for (size_t i = 0; i < take; ++i, ++next) {
        const ProximityGroup* group = groups[next];
        ESP_RETURN_IF_ERROR(shards_[s]->AddProximityGroup(*group));
        for (const std::string& receptor_id : group->receptor_ids) {
          receptor_shard_[RouteKey(type.config.device_type, receptor_id)] = s;
        }
      }
      type.hosting_shards.push_back(s);
      // The shard runs everything through Merge; Arbitrate (cross-group)
      // and Virtualize (cross-type) stay in this wrapper.
      DeviceTypePipeline shard_pipeline = type.config;
      shard_pipeline.arbitrate = nullptr;
      ESP_RETURN_IF_ERROR(
          shards_[s]->AddPipeline(std::move(shard_pipeline)));
    }
  }

  cql::SchemaCatalog virtualize_inputs;
  for (size_t s = 0; s < num_shards; ++s) {
    ESP_RETURN_IF_ERROR(shards_[s]->Start());
  }
  for (TypeRuntime& type : types_) {
    ESP_ASSIGN_OR_RETURN(
        type.group_output_schema,
        shards_[type.hosting_shards.front()]->TypeOutputSchema(
            type.config.device_type));
    SchemaRef type_out = type.group_output_schema;
    if (type.config.arbitrate != nullptr) {
      ESP_ASSIGN_OR_RETURN(type.arbitrate, type.config.arbitrate());
      cql::SchemaCatalog catalog;
      catalog.AddStream(StageInputName(StageKind::kArbitrate),
                        type.group_output_schema);
      ESP_RETURN_IF_ERROR(type.arbitrate->Bind(catalog));
      type_out = type.arbitrate->output_schema();
    }
    type.output_schema = type_out;
    virtualize_inputs.AddStream(type.config.virtualize_input, type_out);
  }
  if (virtualize_ != nullptr) {
    ESP_RETURN_IF_ERROR(virtualize_->Bind(virtualize_inputs));
  }
  started_ = true;
  return Status::OK();
}

StatusOr<ShardedEspProcessor::TypeRuntime*> ShardedEspProcessor::FindType(
    const std::string& device_type) {
  for (TypeRuntime& type : types_) {
    if (StrEqualsIgnoreCase(type.config.device_type, device_type)) {
      return &type;
    }
  }
  return Status::NotFound("no pipeline for device type '" + device_type +
                          "'");
}

StatusOr<const ShardedEspProcessor::TypeRuntime*>
ShardedEspProcessor::FindType(const std::string& device_type) const {
  for (const TypeRuntime& type : types_) {
    if (StrEqualsIgnoreCase(type.config.device_type, device_type)) {
      return &type;
    }
  }
  return Status::NotFound("no pipeline for device type '" + device_type +
                          "'");
}

Status ShardedEspProcessor::Push(const std::string& device_type, Tuple raw) {
  if (!started_) return Status::Internal("processor not started");
  ESP_ASSIGN_OR_RETURN(TypeRuntime * type, FindType(device_type));
  // Same validation order as EspProcessor::Push, so a reading that is wrong
  // in several ways gets the same verdict from either engine.
  if (raw.schema() == nullptr ||
      (raw.schema().get() != type->config.reading_schema.get() &&
       !raw.schema()->Equals(*type->config.reading_schema))) {
    return Status::TypeError("raw reading schema mismatch for type '" +
                             device_type + "'");
  }
  ESP_ASSIGN_OR_RETURN(const Value receptor,
                       raw.Get(type->config.receptor_id_column));
  if (receptor.type() != stream::DataType::kString) {
    return Status::TypeError("receptor id column must be a string");
  }
  const auto it = receptor_shard_.find(
      RouteKey(device_type, receptor.string_value()));
  if (it == receptor_shard_.end()) {
    return Status::NotFound("receptor '" + receptor.string_value() +
                            "' of type '" + device_type +
                            "' is in no proximity group");
  }
  // The shard re-runs the cheap validations (the schema check hits the
  // pointer fast path) and applies the watermark contract against its own
  // clock, which ticks in lockstep with ours.
  return shards_[it->second]->Push(device_type, std::move(raw));
}

void ShardedEspProcessor::RecordStageError(Stage* stage,
                                           const std::string& device_type,
                                           const std::string& owner_id,
                                           const Status& status) {
  const std::string label = device_type + "/" +
                            StageKindToString(stage->kind()) + "[" + owner_id +
                            "]";
  StageErrorStat& stat = stage_errors_[label];
  stat.stage = label;
  ++stat.errors;
  stat.last_message = status.ToString();
}

StatusOr<Relation> ShardedEspProcessor::RunStageGuarded(
    Stage* stage, const std::string& input_name, Relation input, Timestamp now,
    const std::string& device_type, const std::string& owner_id) {
  auto run = [&]() -> StatusOr<Relation> {
    for (const Tuple& tuple : input.tuples()) {
      ESP_RETURN_IF_ERROR(stage->Push(input_name, tuple));
    }
    return stage->Evaluate(now);
  };
  StatusOr<Relation> out = run();
  if (out.ok()) return out;
  if (policy_.stage_error_policy == StageErrorPolicy::kFailFast) {
    return out.status();
  }
  RecordStageError(stage, device_type, owner_id, out.status());
  if (input.schema() != nullptr && stage->output_schema() != nullptr &&
      input.schema()->Equals(*stage->output_schema())) {
    return input;
  }
  return Relation(stage->output_schema());
}

void ShardedEspProcessor::SetExportGroupPartials(bool enabled) {
  export_group_partials_ = enabled;
  for (std::unique_ptr<EspProcessor>& shard : shards_) {
    shard->SetExportGroupPartials(enabled);
  }
}

StatusOr<TickResult> ShardedEspProcessor::Tick(Timestamp now) {
  if (!started_) return Status::Internal("processor not started");
  if (has_ticked_ && now < last_tick_) {
    return Status::InvalidArgument("tick times must be non-decreasing");
  }
  last_tick_ = now;
  has_ticked_ = true;

  // Fan the shard cascades out on the pool. Each slot is written by exactly
  // one worker; errors are surfaced in shard order for determinism.
  std::vector<std::optional<StatusOr<TickResult>>> shard_results(
      shards_.size());
  pool_->ParallelFor(shards_.size(), [&](size_t s) {
    shard_results[s] = shards_[s]->Tick(now);
  });
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shard_results[s]->ok()) return shard_results[s]->status();
  }

  TickResult result;
  if (export_group_partials_) {
    for (TypeRuntime& type : types_) {
      for (const size_t s : type.hosting_shards) {
        for (GroupPartial& partial :
             shard_results[s]->value().group_partials) {
          if (!StrEqualsIgnoreCase(partial.device_type,
                                   type.config.device_type)) {
            continue;
          }
          result.group_partials.push_back(std::move(partial));
        }
      }
    }
  }
  for (TypeRuntime& type : types_) {
    // Concatenate the shards' per-type outputs in shard order — block
    // contiguity makes this the single processor's group-ordered Union.
    Relation merged(type.group_output_schema);
    for (const size_t s : type.hosting_shards) {
      TickResult& shard_result = shard_results[s]->value();
      for (auto& [name, relation] : shard_result.per_type) {
        if (!StrEqualsIgnoreCase(name, type.config.device_type)) continue;
        auto& tuples = relation.mutable_tuples();
        merged.mutable_tuples().insert(
            merged.mutable_tuples().end(),
            std::make_move_iterator(tuples.begin()),
            std::make_move_iterator(tuples.end()));
        break;
      }
    }

    Relation type_out;
    if (type.arbitrate != nullptr) {
      ESP_ASSIGN_OR_RETURN(
          type_out, RunStageGuarded(type.arbitrate.get(),
                                    StageInputName(StageKind::kArbitrate),
                                    std::move(merged), now,
                                    type.config.device_type,
                                    type.config.device_type));
    } else {
      type_out = std::move(merged);
    }

    if (virtualize_ != nullptr) {
      for (const Tuple& tuple : type_out.tuples()) {
        const Status pushed =
            virtualize_->Push(type.config.virtualize_input, tuple);
        if (!pushed.ok()) {
          if (policy_.stage_error_policy == StageErrorPolicy::kFailFast) {
            return pushed;
          }
          RecordStageError(virtualize_.get(), type.config.device_type,
                           type.config.virtualize_input, pushed);
          break;  // Skip the rest of this type's feed this tick.
        }
      }
    }
    result.per_type.emplace_back(type.config.device_type,
                                 std::move(type_out));
  }

  if (queries_.active()) {
    std::vector<std::pair<std::string, const Relation*>> inputs;
    inputs.reserve(types_.size());
    for (size_t i = 0; i < types_.size(); ++i) {
      inputs.emplace_back(types_[i].config.virtualize_input,
                          &result.per_type[i].second);
    }
    ESP_ASSIGN_OR_RETURN(result.query_results,
                         queries_.FeedAndTick(inputs, now));
  }

  if (virtualize_ != nullptr) {
    StatusOr<Relation> out = virtualize_->Evaluate(now);
    if (out.ok()) {
      result.virtualized = std::move(out).value();
    } else if (policy_.stage_error_policy == StageErrorPolicy::kFailFast) {
      return out.status();
    } else {
      RecordStageError(virtualize_.get(), "virtualize", "virtualize",
                       out.status());
      result.virtualized = Relation(virtualize_->output_schema());
    }
  }
  return result;
}

PipelineHealth ShardedEspProcessor::Health() const {
  PipelineHealth health;
  health.recovery = recovery_stats_;
  health.queries = queries_.Stats();
  {
    std::lock_guard<std::mutex> lock(ingest_source_mu_);
    health.ingest = ingest_source_ ? ingest_source_() : ingest_stats_;
  }

  std::vector<PipelineHealth> shard_health;
  shard_health.reserve(shards_.size());
  for (const std::unique_ptr<EspProcessor>& shard : shards_) {
    shard_health.push_back(shard->Health());
  }

  // Receptors in the single processor's order: types in registration order,
  // receptors in group-block order — i.e. each type's hosting shards in
  // ascending order, each shard's receptors of that type in its local
  // (block-contiguous) order.
  for (const TypeRuntime& type : types_) {
    for (const size_t s : type.hosting_shards) {
      for (const ReceptorHealth& r : shard_health[s].receptors) {
        if (!StrEqualsIgnoreCase(r.device_type, type.config.device_type)) {
          continue;
        }
        health.receptors.push_back(r);
        health.total_late_admitted += r.late_admitted;
        health.total_dropped_late += r.dropped_late;
        health.total_dropped_quarantined += r.dropped_quarantined;
        if (r.state == ReceptorState::kQuarantined) ++health.quarantined_now;
        if (r.state == ReceptorState::kSuspect) ++health.suspect_now;
      }
    }
  }

  // One label-sorted error list: shard-local labels (receptor/group owners
  // are disjoint across shards) plus the wrapper's Arbitrate / Virtualize
  // labels — matching the single processor's sorted map.
  std::map<std::string, StageErrorStat> merged(stage_errors_);
  for (const PipelineHealth& sh : shard_health) {
    for (const StageErrorStat& stat : sh.stage_errors) {
      merged[stat.stage] = stat;
    }
  }
  for (const auto& [label, stat] : merged) {
    health.stage_errors.push_back(stat);
    health.total_stage_errors += stat.errors;
  }
  return health;
}

StatusOr<SchemaRef> ShardedEspProcessor::TypeReadingSchema(
    const std::string& device_type) const {
  ESP_ASSIGN_OR_RETURN(const TypeRuntime* type, FindType(device_type));
  return type->config.reading_schema;
}

StatusOr<SchemaRef> ShardedEspProcessor::TypeOutputSchema(
    const std::string& device_type) const {
  ESP_ASSIGN_OR_RETURN(const TypeRuntime* type, FindType(device_type));
  if (!started_) return Status::Internal("processor not started");
  return type->output_schema;
}

size_t ShardedEspProcessor::BufferedTuples() const {
  size_t total = 0;
  for (const std::unique_ptr<EspProcessor>& shard : shards_) {
    total += shard->BufferedTuples();
  }
  for (const TypeRuntime& type : types_) {
    if (type.arbitrate != nullptr) total += type.arbitrate->buffered();
  }
  if (virtualize_ != nullptr) total += virtualize_->buffered();
  total += queries_.BufferedTuples();
  return total;
}

QueryServingLayer::StreamLister ShardedEspProcessor::QueryStreams() const {
  return [this]() -> StatusOr<
                      std::vector<std::pair<std::string, SchemaRef>>> {
    if (!started_) return Status::Internal("processor not started");
    std::vector<std::pair<std::string, SchemaRef>> streams;
    streams.reserve(types_.size());
    for (const TypeRuntime& type : types_) {
      streams.emplace_back(type.config.virtualize_input, type.output_schema);
    }
    return streams;
  };
}

Status ShardedEspProcessor::RegisterQuery(const std::string& tenant,
                                          const std::string& name,
                                          const std::string& query_text) {
  if (!started_) return Status::Internal("processor not started");
  return queries_.Register(QueryStreams(), tenant, name, query_text);
}

Status ShardedEspProcessor::UnregisterQuery(const std::string& name) {
  return queries_.Unregister(name);
}

Status ShardedEspProcessor::SetTenantBudgets(
    const std::string& tenant, const cql::TenantBudgets& budgets) {
  return queries_.SetTenantBudgets(tenant, budgets);
}

ByteWriter ShardedEspProcessor::ConfigFingerprint() const {
  ByteWriter config;
  config.WriteU32(static_cast<uint32_t>(options_.num_shards));
  config.WriteU32(static_cast<uint32_t>(types_.size()));
  for (const TypeRuntime& type : types_) {
    config.WriteString(type.config.device_type);
    stream::WriteSchema(config, *type.config.reading_schema);
    const auto groups = staged_granules_.GroupsOfType(type.config.device_type);
    config.WriteU32(static_cast<uint32_t>(groups.size()));
    for (const ProximityGroup* group : groups) {
      config.WriteString(group->id);
      config.WriteU32(static_cast<uint32_t>(group->receptor_ids.size()));
      for (const std::string& receptor_id : group->receptor_ids) {
        config.WriteString(receptor_id);
      }
    }
    config.WriteU32(static_cast<uint32_t>(type.config.point.size()));
    config.WriteBool(type.config.smooth != nullptr);
    config.WriteBool(type.config.merge != nullptr);
    config.WriteBool(type.arbitrate != nullptr);
    config.WriteString(type.config.virtualize_input);
  }
  config.WriteBool(virtualize_ != nullptr);
  config.WriteI64(policy_.staleness_threshold.micros());
  config.WriteI64(policy_.quarantine_timeout.micros());
  config.WriteI64(policy_.revival_backoff.micros());
  config.WriteI64(policy_.max_revival_backoff.micros());
  config.WriteI64(policy_.lateness_horizon.micros());
  config.WriteU8(static_cast<uint8_t>(policy_.stage_error_policy));
  return config;
}

Status ShardedEspProcessor::Checkpoint(CheckpointWriter& out) const {
  if (!started_) return Status::Internal("processor not started");

  out.AddSection("config", ConfigFingerprint());

  ByteWriter clock;
  clock.WriteBool(has_ticked_);
  clock.WriteI64(last_tick_.micros());
  out.AddSection("clock", std::move(clock));

  // Every shard's full snapshot (its own config fingerprint, clock,
  // receptors, stages, errors) nests as one opaque section.
  for (size_t s = 0; s < shards_.size(); ++s) {
    CheckpointWriter shard_out;
    ESP_RETURN_IF_ERROR(shards_[s]->Checkpoint(shard_out));
    ByteWriter nested;
    nested.WriteString(shard_out.Serialize());
    out.AddSection(ShardSectionName(s), std::move(nested));
  }

  // The wrapper-owned stages: per-type Arbitrate, then Virtualize.
  ByteWriter stages;
  for (const TypeRuntime& type : types_) {
    if (type.arbitrate != nullptr) {
      ESP_RETURN_IF_ERROR(SaveStageBlob(type.arbitrate.get(), stages));
    }
  }
  if (virtualize_ != nullptr) {
    ESP_RETURN_IF_ERROR(SaveStageBlob(virtualize_.get(), stages));
  }
  out.AddSection("stages", std::move(stages));

  ByteWriter errors;
  errors.WriteU32(static_cast<uint32_t>(stage_errors_.size()));
  for (const auto& [label, stat] : stage_errors_) {
    errors.WriteString(label);
    errors.WriteI64(stat.errors);
    errors.WriteString(stat.last_message);
  }
  out.AddSection("errors", std::move(errors));

  // The serving layer (absent while no subscriptions exist; not part of
  // the config fingerprint).
  queries_.Checkpoint(out);
  return Status::OK();
}

Status ShardedEspProcessor::Restore(const CheckpointReader& in) {
  if (!started_) return Status::Internal("processor not started");

  {
    ESP_ASSIGN_OR_RETURN(const std::string_view snap_config,
                         in.Section("config"));
    const ByteWriter own = ConfigFingerprint();
    if (std::string_view(own.data()) != snap_config) {
      return Status::InvalidArgument(
          "snapshot does not match the deployed configuration (shard count, "
          "device types, receptors, groups, stages, or health policy "
          "differ)");
    }
  }

  {
    ESP_ASSIGN_OR_RETURN(const std::string_view payload, in.Section("clock"));
    ByteReader r(payload);
    ESP_ASSIGN_OR_RETURN(has_ticked_, r.ReadBool());
    ESP_ASSIGN_OR_RETURN(const int64_t micros, r.ReadI64());
    last_tick_ = Timestamp::Micros(micros);
  }

  for (size_t s = 0; s < shards_.size(); ++s) {
    ESP_ASSIGN_OR_RETURN(const std::string_view payload,
                         in.Section(ShardSectionName(s)));
    ByteReader r(payload);
    ESP_ASSIGN_OR_RETURN(const std::string nested, r.ReadString());
    if (!r.exhausted()) {
      return Status::ParseError(ShardSectionName(s) +
                                " section has trailing bytes");
    }
    ESP_ASSIGN_OR_RETURN(CheckpointReader shard_in,
                         CheckpointReader::Parse(nested));
    ESP_RETURN_IF_ERROR(shards_[s]->Restore(shard_in));
  }

  {
    ESP_ASSIGN_OR_RETURN(const std::string_view payload,
                         in.Section("stages"));
    ByteReader r(payload);
    for (TypeRuntime& type : types_) {
      if (type.arbitrate != nullptr) {
        ESP_RETURN_IF_ERROR(LoadStageBlob(type.arbitrate.get(), r));
      }
    }
    if (virtualize_ != nullptr) {
      ESP_RETURN_IF_ERROR(LoadStageBlob(virtualize_.get(), r));
    }
    if (!r.exhausted()) {
      return Status::ParseError("stages section has trailing bytes");
    }
  }

  {
    ESP_ASSIGN_OR_RETURN(const std::string_view payload,
                         in.Section("errors"));
    ByteReader r(payload);
    ESP_ASSIGN_OR_RETURN(const uint32_t count, r.ReadU32());
    stage_errors_.clear();
    for (uint32_t i = 0; i < count; ++i) {
      ESP_ASSIGN_OR_RETURN(std::string label, r.ReadString());
      StageErrorStat stat;
      stat.stage = label;
      ESP_ASSIGN_OR_RETURN(stat.errors, r.ReadI64());
      ESP_ASSIGN_OR_RETURN(stat.last_message, r.ReadString());
      stage_errors_.emplace(std::move(label), std::move(stat));
    }
    if (!r.exhausted()) {
      return Status::ParseError("errors section has trailing bytes");
    }
  }

  ESP_RETURN_IF_ERROR(queries_.Restore(in, QueryStreams()));
  return Status::OK();
}

}  // namespace esp::core
