#include "core/toolkit.h"

#include <unordered_map>

#include "common/string_util.h"
#include "stream/ops.h"

namespace esp::core {

using stream::DataType;
using stream::Relation;
using stream::SchemaRef;
using stream::Tuple;
using stream::Value;
using stream::WindowSpec;

namespace {

/// Builds a factory producing CqlStage instances of `kind` from query text.
StageFactory CqlFactory(StageKind kind, std::string name, std::string query) {
  return [kind, name = std::move(name), query = std::move(query)]()
             -> StatusOr<std::unique_ptr<Stage>> {
    ESP_ASSIGN_OR_RETURN(std::unique_ptr<CqlStage> stage,
                         CqlStage::Create(kind, name, query));
    return std::unique_ptr<Stage>(std::move(stage));
  };
}

std::string QuoteLiteral(const std::string& value) {
  std::string quoted = "'";
  for (char c : value) {
    if (c == '\'') quoted += '\'';
    quoted += c;
  }
  quoted += "'";
  return quoted;
}

std::string RangeClause(const TemporalGranule& granule) {
  return "[Range By '" + std::to_string(granule.size.seconds()) + " sec']";
}

}  // namespace

// --- Point ------------------------------------------------------------------

StageFactory PointFilter(std::string predicate) {
  return CqlFactory(StageKind::kPoint, "point_filter",
                    "SELECT * FROM point_input WHERE " + predicate);
}

StageFactory PointValueFilter(std::string column,
                              std::vector<std::string> allowed) {
  std::string list;
  for (size_t i = 0; i < allowed.size(); ++i) {
    if (i > 0) list += ", ";
    list += QuoteLiteral(allowed[i]);
  }
  return CqlFactory(
      StageKind::kPoint, "point_value_filter",
      "SELECT * FROM point_input WHERE " + column + " IN (" + list + ")");
}

StageFactory PointQuery(std::string query) {
  return CqlFactory(StageKind::kPoint, "point_query", std::move(query));
}

// --- Smooth -----------------------------------------------------------------

StageFactory SmoothPresenceCount(TemporalGranule granule,
                                 std::string key_column) {
  return CqlFactory(StageKind::kSmooth, "smooth_presence_count",
                    "SELECT " + key_column + ", count(*) AS reads " +
                        "FROM smooth_input " + RangeClause(granule) +
                        " GROUP BY " + key_column);
}

StageFactory SmoothWindowedAverage(TemporalGranule granule,
                                   std::string key_column,
                                   std::string value_column) {
  return CqlFactory(StageKind::kSmooth, "smooth_windowed_average",
                    "SELECT " + key_column + ", avg(" + value_column +
                        ") AS " + value_column + " FROM smooth_input " +
                        RangeClause(granule) + " GROUP BY " + key_column);
}

StageFactory SmoothWindowedMedian(TemporalGranule granule,
                                  std::string key_column,
                                  std::string value_column) {
  return CqlFactory(StageKind::kSmooth, "smooth_windowed_median",
                    "SELECT " + key_column + ", median(" + value_column +
                        ") AS " + value_column + " FROM smooth_input " +
                        RangeClause(granule) + " GROUP BY " + key_column);
}

StageFactory NativeSmoothPresenceCount(TemporalGranule granule,
                                       std::string key_column) {
  return [granule, key_column]() -> StatusOr<std::unique_ptr<Stage>> {
    // The key column's type is unknown until Bind; a custom stage defers
    // schema construction so the output mirrors the declarative operator.
    class NativePresence : public Stage {
     public:
      NativePresence(TemporalGranule granule, std::string key)
          : Stage(StageKind::kSmooth, "native_smooth_presence_count"),
            granule_(granule),
            key_(std::move(key)) {}

      Status Bind(const cql::SchemaCatalog& inputs) override {
        ESP_ASSIGN_OR_RETURN(SchemaRef in,
                             inputs.Find(StageInputName(StageKind::kSmooth)));
        ESP_ASSIGN_OR_RETURN(const size_t key_index, in->ResolveIndex(key_));
        output_schema_ = stream::MakeSchema(
            {{key_, in->field(key_index).type}, {"reads", DataType::kInt64}});
        buffer_.emplace(WindowSpec::Range(granule_.size), in);
        return Status::OK();
      }

      Status Push(const std::string& input, Tuple tuple) override {
        if (!StrEqualsIgnoreCase(input, StageInputName(StageKind::kSmooth))) {
          return Status::NotFound("no input '" + input + "'");
        }
        return buffer_->Insert(std::move(tuple));
      }

      StatusOr<Relation> Evaluate(Timestamp now) override {
        Relation window = buffer_->Snapshot(now);
        buffer_->EvictBefore(now);
        const SchemaRef out = output_schema_;
        return stream::GroupBy(
            window, {key_}, out,
            [&](const std::vector<Value>& key,
                const std::vector<const Tuple*>& rows) -> StatusOr<Tuple> {
              return Tuple(
                  out,
                  {key[0], Value::Int64(static_cast<int64_t>(rows.size()))},
                  now);
            });
      }

      size_t buffered() const override {
        return buffer_.has_value() ? buffer_->buffered() : 0;
      }
      Status SaveState(ByteWriter& w) const override {
        if (!buffer_.has_value()) return Status::Internal("stage not bound");
        buffer_->SaveState(w);
        return Status::OK();
      }
      Status LoadState(ByteReader& r) override {
        if (!buffer_.has_value()) return Status::Internal("stage not bound");
        return buffer_->LoadState(r);
      }

     private:
      TemporalGranule granule_;
      std::string key_;
      std::optional<stream::WindowBuffer> buffer_;
    };
    return std::unique_ptr<Stage>(
        new NativePresence(granule, key_column));
  };
}

StageFactory NativeSmoothWindowedAverage(TemporalGranule granule,
                                         std::string key_column,
                                         std::string value_column) {
  return [granule, key_column,
          value_column]() -> StatusOr<std::unique_ptr<Stage>> {
    class NativeAverage : public Stage {
     public:
      NativeAverage(TemporalGranule granule, std::string key,
                    std::string value)
          : Stage(StageKind::kSmooth, "native_smooth_windowed_average"),
            granule_(granule),
            key_(std::move(key)),
            value_(std::move(value)) {}

      Status Bind(const cql::SchemaCatalog& inputs) override {
        ESP_ASSIGN_OR_RETURN(SchemaRef in,
                             inputs.Find(StageInputName(StageKind::kSmooth)));
        ESP_ASSIGN_OR_RETURN(const size_t key_index, in->ResolveIndex(key_));
        ESP_RETURN_IF_ERROR(in->ResolveIndex(value_).status());
        output_schema_ = stream::MakeSchema(
            {{key_, in->field(key_index).type},
             {value_, DataType::kDouble}});
        buffer_.emplace(WindowSpec::Range(granule_.size), in);
        return Status::OK();
      }

      Status Push(const std::string& input, Tuple tuple) override {
        if (!StrEqualsIgnoreCase(input, StageInputName(StageKind::kSmooth))) {
          return Status::NotFound("no input '" + input + "'");
        }
        return buffer_->Insert(std::move(tuple));
      }

      StatusOr<Relation> Evaluate(Timestamp now) override {
        Relation window = buffer_->Snapshot(now);
        buffer_->EvictBefore(now);
        const SchemaRef out = output_schema_;
        const std::string value_column = value_;
        return stream::GroupBy(
            window, {key_}, out,
            [&, value_column](const std::vector<Value>& key,
                              const std::vector<const Tuple*>& rows)
                -> StatusOr<Tuple> {
              double sum = 0;
              int64_t n = 0;
              for (const Tuple* row : rows) {
                ESP_ASSIGN_OR_RETURN(const Value v, row->Get(value_column));
                if (v.is_null()) continue;
                ESP_ASSIGN_OR_RETURN(const double d, v.AsDouble());
                sum += d;
                ++n;
              }
              return Tuple(out,
                           {key[0], n == 0 ? Value::Null()
                                           : Value::Double(sum / n)},
                           now);
            });
      }

      size_t buffered() const override {
        return buffer_.has_value() ? buffer_->buffered() : 0;
      }
      Status SaveState(ByteWriter& w) const override {
        if (!buffer_.has_value()) return Status::Internal("stage not bound");
        buffer_->SaveState(w);
        return Status::OK();
      }
      Status LoadState(ByteReader& r) override {
        if (!buffer_.has_value()) return Status::Internal("stage not bound");
        return buffer_->LoadState(r);
      }

     private:
      TemporalGranule granule_;
      std::string key_;
      std::string value_;
      std::optional<stream::WindowBuffer> buffer_;
    };
    return std::unique_ptr<Stage>(
        new NativeAverage(granule, key_column, value_column));
  };
}

// --- Merge ------------------------------------------------------------------

StageFactory MergeUnion() {
  return CqlFactory(StageKind::kMerge, "merge_union",
                    "SELECT * FROM merge_input [Range By 'NOW']");
}

StageFactory MergeWindowedAverage(TemporalGranule granule,
                                  std::string value_column) {
  return CqlFactory(
      StageKind::kMerge, "merge_windowed_average",
      "SELECT spatial_granule, avg(" + value_column + ") AS " + value_column +
          " FROM merge_input " + RangeClause(granule) +
          " GROUP BY spatial_granule");
}

StageFactory MergeOutlierRejectingAverage(TemporalGranule granule,
                                          std::string value_column) {
  const std::string range = RangeClause(granule);
  // The corrected Query 5: readings outside mean ± stdev of the window are
  // discarded before averaging.
  return CqlFactory(
      StageKind::kMerge, "merge_outlier_rejecting_average",
      "SELECT s.spatial_granule, avg(s." + value_column + ") AS " +
          value_column + " FROM merge_input s " + range +
          ", (SELECT spatial_granule, avg(" + value_column +
          ") AS mean, stdev(" + value_column + ") AS sd FROM merge_input " +
          range + " GROUP BY spatial_granule) a " +
          "WHERE a.spatial_granule = s.spatial_granule AND s." +
          value_column + " <= a.mean + a.sd AND s." + value_column +
          " >= a.mean - a.sd GROUP BY s.spatial_granule");
}

StageFactory MergeVoteThreshold(TemporalGranule granule,
                                std::string receptor_column,
                                int64_t min_receptors) {
  return CqlFactory(
      StageKind::kMerge, "merge_vote_threshold",
      "SELECT spatial_granule, count(distinct " + receptor_column +
          ") AS votes FROM merge_input " + RangeClause(granule) +
          " GROUP BY spatial_granule HAVING count(distinct " +
          receptor_column + ") >= " + std::to_string(min_receptors));
}

// --- Arbitrate --------------------------------------------------------------

StageFactory ArbitrateMaxCount(std::string key_column,
                               std::string count_column) {
  // Query 3, adapted: the comparison is on the smoothed read counts carried
  // in `count_column` (the paper's count(*) counts raw readings; after
  // Smooth, each (granule, key) pair has one row per instant whose
  // `count_column` holds that number).
  return CqlFactory(
      StageKind::kArbitrate, "arbitrate_max_count",
      "SELECT spatial_granule, " + key_column + ", max(" + count_column +
          ") AS " + count_column +
          " FROM arbitrate_input ai1 [Range By 'NOW'] GROUP BY "
          "spatial_granule, " +
          key_column + " HAVING max(" + count_column +
          ") >= ALL(SELECT max(" + count_column +
          ") FROM arbitrate_input ai2 [Range By 'NOW'] WHERE ai1." +
          key_column + " = ai2." + key_column + " GROUP BY spatial_granule)");
}

StageFactory ArbitrateMaxCountCalibrated(std::string key_column,
                                         std::string count_column,
                                         std::string weak_granule) {
  return [key_column, count_column,
          weak_granule]() -> StatusOr<std::unique_ptr<Stage>> {
    /// Arbitrary-code Arbitrate implementing the crude calibration of
    /// Section 4.3.1: ties are attributed to the weaker antenna.
    class CalibratedArbitrate : public Stage {
     public:
      CalibratedArbitrate(std::string key, std::string count,
                          std::string weak)
          : Stage(StageKind::kArbitrate, "arbitrate_max_count_calibrated"),
            key_(std::move(key)),
            count_(std::move(count)),
            weak_(std::move(weak)) {}

      Status Bind(const cql::SchemaCatalog& inputs) override {
        ESP_ASSIGN_OR_RETURN(
            SchemaRef in, inputs.Find(StageInputName(StageKind::kArbitrate)));
        ESP_ASSIGN_OR_RETURN(const size_t key_index, in->ResolveIndex(key_));
        ESP_RETURN_IF_ERROR(in->ResolveIndex(count_).status());
        ESP_RETURN_IF_ERROR(
            in->ResolveIndex(EspProcessorGranuleColumn()).status());
        output_schema_ = stream::MakeSchema(
            {{EspProcessorGranuleColumn(), DataType::kString},
             {key_, in->field(key_index).type},
             {count_, DataType::kInt64}});
        buffer_.emplace(WindowSpec::Now(), in);
        return Status::OK();
      }

      Status Push(const std::string& input, Tuple tuple) override {
        if (!StrEqualsIgnoreCase(input,
                                 StageInputName(StageKind::kArbitrate))) {
          return Status::NotFound("no input '" + input + "'");
        }
        return buffer_->Insert(std::move(tuple));
      }

      StatusOr<Relation> Evaluate(Timestamp now) override {
        Relation window = buffer_->Snapshot(now);
        buffer_->EvictBefore(now);
        // Per key: pick the granule with the highest count; ties go to the
        // weak granule if it participates, else keep all tying granules.
        struct Claim {
          std::string granule;
          int64_t count;
        };
        std::vector<std::pair<Value, std::vector<Claim>>> keys;
        for (const Tuple& row : window.tuples()) {
          ESP_ASSIGN_OR_RETURN(const Value key, row.Get(key_));
          ESP_ASSIGN_OR_RETURN(const Value granule,
                               row.Get(EspProcessorGranuleColumn()));
          ESP_ASSIGN_OR_RETURN(const Value count_value, row.Get(count_));
          ESP_ASSIGN_OR_RETURN(const int64_t count, count_value.AsInt64());
          bool found = false;
          for (auto& [existing, claims] : keys) {
            if (existing.Equals(key)) {
              claims.push_back({granule.string_value(), count});
              found = true;
              break;
            }
          }
          if (!found) {
            keys.push_back({key, {{granule.string_value(), count}}});
          }
        }
        Relation out(output_schema_);
        for (const auto& [key, claims] : keys) {
          int64_t best = 0;
          for (const Claim& claim : claims) {
            best = std::max(best, claim.count);
          }
          // Does the weak granule tie for the max?
          bool weak_ties = false;
          for (const Claim& claim : claims) {
            if (claim.count == best &&
                StrEqualsIgnoreCase(claim.granule, weak_)) {
              weak_ties = true;
            }
          }
          for (const Claim& claim : claims) {
            if (claim.count != best) continue;
            if (weak_ties && !StrEqualsIgnoreCase(claim.granule, weak_)) {
              continue;  // Calibration: the weak antenna wins ties.
            }
            out.Add(Tuple(output_schema_,
                          {Value::Interned(claim.granule), key,
                           Value::Int64(claim.count)},
                          now));
          }
        }
        return out;
      }

      size_t buffered() const override {
        return buffer_.has_value() ? buffer_->buffered() : 0;
      }
      Status SaveState(ByteWriter& w) const override {
        if (!buffer_.has_value()) return Status::Internal("stage not bound");
        buffer_->SaveState(w);
        return Status::OK();
      }
      Status LoadState(ByteReader& r) override {
        if (!buffer_.has_value()) return Status::Internal("stage not bound");
        return buffer_->LoadState(r);
      }

     private:
      static const char* EspProcessorGranuleColumn() {
        return "spatial_granule";
      }

      std::string key_;
      std::string count_;
      std::string weak_;
      std::optional<stream::WindowBuffer> buffer_;
    };
    return std::unique_ptr<Stage>(new CalibratedArbitrate(
        key_column, count_column, weak_granule));
  };
}

// --- Virtualize -------------------------------------------------------------

StatusOr<std::unique_ptr<Stage>> VirtualizeVote(std::vector<VoteInput> inputs,
                                                int64_t threshold,
                                                std::string event_label) {
  if (inputs.empty()) {
    return Status::InvalidArgument("VirtualizeVote requires inputs");
  }
  // The Query 6 pattern, made robust to empty windows: each modality's vote
  // is a scalar subquery evaluating to 0/1, and the event row is emitted
  // when the votes sum to the threshold.
  std::string votes;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i > 0) votes += " + ";
    votes += "(SELECT CASE WHEN count(*) > 0 THEN 1 ELSE 0 END FROM " +
             inputs[i].stream + " [Range By 'NOW'] WHERE " +
             inputs[i].condition + ")";
  }
  const std::string query = "SELECT " + QuoteLiteral(event_label) +
                            " AS event WHERE " + votes +
                            " >= " + std::to_string(threshold);
  ESP_ASSIGN_OR_RETURN(
      std::unique_ptr<CqlStage> stage,
      CqlStage::Create(StageKind::kVirtualize, "virtualize_vote", query));
  return std::unique_ptr<Stage>(std::move(stage));
}

}  // namespace esp::core
