#ifndef ESP_CORE_HEALTH_H_
#define ESP_CORE_HEALTH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "common/time.h"
#include "core/metrics.h"
#include "cql/query_registry.h"

namespace esp::core {

/// \brief What the processor does when a stage returns non-OK mid-tick.
enum class StageErrorPolicy {
  /// Record the error in PipelineHealth and keep the cascade running: the
  /// failing stage passes its input through unchanged when the schemas
  /// match, or contributes an empty relation otherwise. The default.
  kDegrade,
  /// Abort the tick and surface the stage's Status to the caller — the
  /// pre-hardening behaviour, kept for tests and debugging.
  kFailFast,
};

const char* StageErrorPolicyToString(StageErrorPolicy policy);

/// \brief Liveness states of one receptor as tracked by the processor.
///
/// healthy --(silent > staleness_threshold)--> suspect
/// suspect --(data arrives)-----------------> healthy
/// suspect --(silent > quarantine_timeout)--> quarantined
/// quarantined --(data at a revival probe)--> healthy
///
/// While quarantined, the receptor's readings are discarded (and counted)
/// except at revival probes, which are scheduled with exponential backoff.
enum class ReceptorState { kHealthy, kSuspect, kQuarantined };

const char* ReceptorStateToString(ReceptorState state);

/// \brief Degraded-mode knobs of the processor. The zero-valued defaults
/// disable liveness tracking and lateness tolerance, preserving the strict
/// historical contract; deployments opt in via EspProcessor::SetHealthPolicy
/// or a `[health]` section in the deployment spec.
struct HealthPolicy {
  /// A receptor silent for longer than this is marked suspect. Zero
  /// disables liveness tracking (no receptor ever leaves kHealthy). Must be
  /// larger than `lateness_horizon`, since admitted-late readings make a
  /// live receptor's newest data appear up to one horizon old.
  Duration staleness_threshold = Duration::Zero();

  /// A suspect receptor still silent after this long is quarantined:
  /// removed from its proximity group (Merge degrades to the surviving
  /// members) and its readings discarded until a revival probe succeeds.
  Duration quarantine_timeout = Duration::Zero();

  /// Delay until the first revival probe after quarantine; doubles after
  /// every failed probe up to `max_revival_backoff`.
  Duration revival_backoff = Duration::Seconds(1);
  Duration max_revival_backoff = Duration::Seconds(60);

  /// Readings older than the previous tick are admitted (buffered and
  /// released in timestamp order) as long as they are at most this late;
  /// beyond the horizon they are dropped, counted, and Push returns
  /// kOutOfRange. Non-zero horizons delay the release of *all* readings by
  /// the horizon (watermark semantics), which keeps every stage's input
  /// streams ordered even under reordering and clock-skew faults.
  Duration lateness_horizon = Duration::Zero();

  /// Per-stage error isolation policy (see StageErrorPolicy).
  StageErrorPolicy stage_error_policy = StageErrorPolicy::kDegrade;

  bool liveness_enabled() const {
    return staleness_threshold > Duration::Zero();
  }
};

/// \brief Health snapshot of one receptor.
struct ReceptorHealth {
  std::string receptor_id;
  std::string device_type;
  ReceptorState state = ReceptorState::kHealthy;

  /// Newest reading timestamp seen (initialized to the first tick time so
  /// staleness is measured from experiment start for silent receptors).
  Timestamp last_seen;
  bool ever_delivered = false;

  Timestamp suspect_since;      // Valid while suspect.
  Timestamp quarantined_since;  // Valid while quarantined.
  Timestamp next_probe;         // Valid while quarantined.
  Duration probe_backoff;       // Current probe backoff while quarantined.

  int64_t delivered = 0;            // Readings released into the pipeline.
  int64_t late_admitted = 0;        // Late but within the horizon.
  int64_t dropped_late = 0;         // Beyond the horizon; rejected at Push.
  int64_t dropped_quarantined = 0;  // Discarded while quarantined.
  int64_t quarantine_count = 0;     // Times the receptor was quarantined.
  int64_t revival_count = 0;        // Times it was revived by a probe.
  std::string last_error;           // Last stage error attributed to it.
};

/// \brief Error tally for one stage instance (e.g. "rfid/Smooth[reader_0]").
struct StageErrorStat {
  std::string stage;
  int64_t errors = 0;
  std::string last_message;
};

/// \brief Per-client ingest accounting for the networked front door
/// (net/ingest_server.h), keyed by the client id presented in the wire
/// handshake. A "client" persists across reconnects of the same id.
struct ClientIngestStats {
  std::string client_id;
  int64_t connects = 0;    // Connections that completed the handshake.
  int64_t reconnects = 0;  // Handshakes after the first (resume path).
  int64_t batches_applied = 0;
  int64_t readings_applied = 0;
  int64_t ticks_applied = 0;
  /// Frames whose sequence number the server had already applied —
  /// retransmissions after a reconnect or wire-level duplicate delivery.
  int64_t duplicate_frames_dropped = 0;
  int64_t shed_batches = 0;  // Dropped by the shed backpressure policy.
  int64_t shed_readings = 0;
  int64_t torn_frames = 0;  // Undecodable frames (CRC/oversize/garbage).
  /// Readings the sink rejected (late arrival, unknown receptor); they are
  /// acked — replay of a journaling sink re-rejects them identically.
  int64_t rejected_readings = 0;
  uint64_t last_applied_seq = 0;
};

/// \brief Aggregate counters of the networked ingest server, written by
/// net::IngestServer on its event-loop thread and surfaced through
/// EspProcessor::Health() next to liveness and durability (zero unless an
/// ingest server fronts the engine).
struct IngestStats {
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t connections_rejected = 0;  // Over the max_connections cap.
  /// Older connection evicted because its client id reconnected; the
  /// evicted connection's queued-but-unapplied frames are dropped without
  /// committing (the new connection's resume covers them).
  int64_t superseded_closes = 0;
  int64_t active_connections = 0;
  int64_t reconnects = 0;
  int64_t bytes_received = 0;
  int64_t frames_decoded = 0;
  int64_t batches_applied = 0;
  int64_t readings_applied = 0;
  int64_t ticks_applied = 0;
  int64_t duplicate_frames_dropped = 0;
  int64_t sequence_gap_closes = 0;  // Seq jumped forward: conn closed.
  int64_t torn_frame_closes = 0;    // Undecodable input: conn closed.
  int64_t protocol_error_closes = 0;  // E.g. data before the handshake.
  int64_t shed_batches = 0;
  int64_t shed_readings = 0;
  int64_t rejected_readings = 0;
  int64_t rejected_ticks = 0;
  int64_t read_timeout_closes = 0;  // Slow-loris reaping (partial frame).
  int64_t idle_closes = 0;
  /// Per-client breakdown, sorted by client id.
  std::vector<ClientIngestStats> clients;

  /// True once any connection was attempted — gates health reporting.
  bool active() const {
    return connections_accepted > 0 || connections_rejected > 0;
  }

  /// One-line summary for health reports.
  std::string ToString() const;
};

/// Pull source for the ingest counters surfaced by Health(): installed by
/// net::IngestServer (backed by its mutex-guarded snapshot while running,
/// a frozen copy after Stop()) so live Health() calls never race the
/// server's event loop.
using IngestStatsSource = std::function<IngestStats()>;

/// Columnar data-plane counters (stream/column.h, stream/simd_kernels.h):
/// whether the columnar toggle is on and how the aggregate/predicate kernels
/// have been dispatching process-wide since the last stats reset.
struct ColumnarStats {
  bool enabled = false;
  bool avx2 = false;  // Runtime CPU support (not whether it was used).
  uint64_t vector_batches = 0;
  uint64_t scalar_batches = 0;
  uint64_t guard_fallbacks = 0;

  bool active() const { return vector_batches + scalar_batches > 0; }
  std::string ToString() const;
};

/// \brief Queryable health snapshot of the whole pipeline, aggregated by
/// EspProcessor::Health(): per-receptor liveness plus per-stage error
/// isolation tallies.
struct PipelineHealth {
  std::vector<ReceptorHealth> receptors;
  std::vector<StageErrorStat> stage_errors;

  /// Columnar execution counters (process-wide kernel dispatch tallies).
  ColumnarStats columnar;

  /// Durability counters (zero unless a RecoveryCoordinator drives the
  /// processor).
  RecoveryStats recovery;

  /// Networked-ingest counters (zero unless an IngestServer fronts the
  /// engine).
  IngestStats ingest;

  /// Multi-tenant query-serving counters (zero unless standing queries are
  /// registered; cql/query_registry.h).
  cql::QueryServingStats queries;

  int64_t total_stage_errors = 0;
  int64_t total_late_admitted = 0;
  int64_t total_dropped_late = 0;
  int64_t total_dropped_quarantined = 0;
  size_t quarantined_now = 0;
  size_t suspect_now = 0;

  /// Human-readable multi-line report (used by the chaos benches).
  std::string ToString() const;
};

/// \brief The per-receptor liveness/quarantine state machine.
///
/// Deterministic: driven exclusively by reading timestamps and tick times.
/// The processor owns one tracker per receptor chain and calls Observe()
/// exactly once per tick; the class is exposed for direct unit testing.
class ReceptorHealthTracker {
 public:
  /// `policy` must outlive the tracker.
  ReceptorHealthTracker(std::string receptor_id, std::string device_type,
                        const HealthPolicy* policy);

  /// State transition taken by one Observe() call.
  enum class Transition {
    kNone,
    kSuspect,      // healthy -> suspect
    kRecover,      // suspect -> healthy (data arrived in time)
    kQuarantine,   // suspect -> quarantined
    kProbeFailed,  // quarantined, probe due, still silent: backoff doubles
    kRevive,       // quarantined -> healthy (data arrived at a probe)
  };

  /// Advances the state machine to tick time `now`. `data_time` is the
  /// newest reading timestamp released this tick (nullopt when the receptor
  /// delivered nothing). At most one transition occurs per call.
  Transition Observe(Timestamp now, std::optional<Timestamp> data_time);

  // Accounting hooks (Push/release paths).
  void RecordDelivered(int64_t count) { health_.delivered += count; }
  void RecordLateAdmitted(int64_t count) { health_.late_admitted += count; }
  void RecordDroppedLate(int64_t count) { health_.dropped_late += count; }
  void RecordDroppedQuarantined(int64_t count) {
    health_.dropped_quarantined += count;
  }
  void RecordError(const Status& status) {
    health_.last_error = status.ToString();
  }

  const ReceptorHealth& health() const { return health_; }
  ReceptorState state() const { return health_.state; }

  /// Serializes / restores the tracker's mutable state for a pipeline
  /// checkpoint (receptor id, device type, and policy are configuration and
  /// are not serialized).
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  const HealthPolicy* policy_;
  ReceptorHealth health_;
  bool baseline_set_ = false;
};

}  // namespace esp::core

#endif  // ESP_CORE_HEALTH_H_
