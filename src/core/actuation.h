#ifndef ESP_CORE_ACTUATION_H_
#define ESP_CORE_ACTUATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace esp::core {

/// \brief Receptor actuation advisor (Section 5.3.1).
///
/// In the redwood deployment, ESP's effectiveness was limited by the
/// collection parameters: samples arrived as sparsely as the temporal
/// granule itself, forcing the Smooth window to expand to 30 minutes.
/// "Ideally, ESP should be able to actuate the sensors to increase the
/// number of readings within a temporal granule such that it can
/// effectively smooth with a window the same size as the granule."
///
/// SamplingController implements that feedback loop: it watches how many
/// readings each receptor actually lands inside each temporal granule and
/// recommends sample-period changes — faster when granules are starved
/// (lossy receptors), slower when they are saturated (wasted energy and
/// radio traffic). The deployment applies a recommendation to the physical
/// device (or simulator) and acknowledges it with SetPeriod().
class SamplingController {
 public:
  struct Config {
    /// The application's temporal granule.
    Duration granule;
    /// Readings per granule the Smooth stage wants (lower bound of the
    /// healthy band).
    int64_t min_readings_per_granule = 2;
    /// Upper bound of the healthy band; above it the controller backs off.
    int64_t max_readings_per_granule = 8;
    /// Multiplicative step for period adjustments.
    double adjust_factor = 2.0;
    /// Hard limits on the recommended period.
    Duration min_period = Duration::Millis(100);
    Duration max_period = Duration::Hours(1);
  };

  struct Recommendation {
    std::string receptor_id;
    Duration current_period;
    Duration recommended_period;
    int64_t observed_readings = 0;  // In the last full granule.
  };

  explicit SamplingController(Config config);

  /// Registers a receptor with its current sample period.
  Status AddReceptor(const std::string& receptor_id, Duration period);

  /// Records that a reading from `receptor_id` arrived at `time` (call for
  /// every delivered reading; times non-decreasing per receptor).
  Status RecordReading(const std::string& receptor_id, Timestamp time);

  /// Closes every granule that ended at or before `now` and returns one
  /// recommendation per receptor whose observed reading count left the
  /// healthy band. Recommendations are advisory; the controller assumes
  /// the old period until SetPeriod() acknowledges a change.
  StatusOr<std::vector<Recommendation>> Advise(Timestamp now);

  /// Acknowledges an applied actuation.
  Status SetPeriod(const std::string& receptor_id, Duration period);

  /// Current (acknowledged) period of a receptor.
  StatusOr<Duration> PeriodOf(const std::string& receptor_id) const;

 private:
  struct ReceptorState {
    std::string id;
    Duration period;
    int64_t granule_index = 0;  // The granule currently being filled.
    int64_t readings_in_granule = 0;
    int64_t prev_index = -1;  // Most recently *finished* granule with data.
    int64_t prev_count = 0;
    int64_t last_advised = -1;  // Last completed granule already advised on.
  };

  StatusOr<ReceptorState*> Find(const std::string& receptor_id);

  Config config_;
  std::vector<ReceptorState> receptors_;
};

}  // namespace esp::core

#endif  // ESP_CORE_ACTUATION_H_
