#include "core/granule.h"

#include "common/string_util.h"

namespace esp::core {

bool ProximityGroup::Contains(const std::string& receptor_id) const {
  for (const std::string& id : receptor_ids) {
    if (StrEqualsIgnoreCase(id, receptor_id)) return true;
  }
  return false;
}

Status GranuleMap::AddGroup(ProximityGroup group) {
  for (const ProximityGroup& existing : groups_) {
    if (StrEqualsIgnoreCase(existing.id, group.id)) {
      return Status::AlreadyExists("proximity group '" + group.id +
                                   "' already registered");
    }
    if (StrEqualsIgnoreCase(existing.device_type, group.device_type)) {
      for (const std::string& receptor : group.receptor_ids) {
        if (existing.Contains(receptor)) {
          return Status::AlreadyExists(
              "receptor '" + receptor + "' already belongs to group '" +
              existing.id + "'");
        }
      }
    }
  }
  groups_.push_back(std::move(group));
  return Status::OK();
}

Status GranuleMap::MoveReceptor(const std::string& device_type,
                                const std::string& receptor_id,
                                const std::string& new_group_id) {
  ProximityGroup* source = nullptr;
  ProximityGroup* target = nullptr;
  for (ProximityGroup& group : groups_) {
    if (!StrEqualsIgnoreCase(group.device_type, device_type)) continue;
    if (group.Contains(receptor_id)) source = &group;
    if (StrEqualsIgnoreCase(group.id, new_group_id)) target = &group;
  }
  if (source == nullptr) {
    return Status::NotFound("receptor '" + receptor_id +
                            "' is not mapped for type '" + device_type + "'");
  }
  if (target == nullptr) {
    return Status::NotFound("no group '" + new_group_id + "' of type '" +
                            device_type + "'");
  }
  if (source == target) return Status::OK();
  auto& ids = source->receptor_ids;
  for (auto it = ids.begin(); it != ids.end(); ++it) {
    if (StrEqualsIgnoreCase(*it, receptor_id)) {
      ids.erase(it);
      break;
    }
  }
  target->receptor_ids.push_back(receptor_id);
  return Status::OK();
}

StatusOr<const ProximityGroup*> GranuleMap::GroupOf(
    const std::string& device_type, const std::string& receptor_id) const {
  for (const ProximityGroup& group : groups_) {
    if (StrEqualsIgnoreCase(group.device_type, device_type) &&
        group.Contains(receptor_id)) {
      return &group;
    }
  }
  return Status::NotFound("receptor '" + receptor_id +
                          "' has no proximity group for type '" +
                          device_type + "'");
}

std::vector<const ProximityGroup*> GranuleMap::GroupsOfType(
    const std::string& device_type) const {
  std::vector<const ProximityGroup*> result;
  for (const ProximityGroup& group : groups_) {
    if (StrEqualsIgnoreCase(group.device_type, device_type)) {
      result.push_back(&group);
    }
  }
  return result;
}

std::vector<std::string> GranuleMap::ReceptorsOfType(
    const std::string& device_type) const {
  std::vector<std::string> result;
  for (const ProximityGroup& group : groups_) {
    if (StrEqualsIgnoreCase(group.device_type, device_type)) {
      for (const std::string& receptor : group.receptor_ids) {
        result.push_back(receptor);
      }
    }
  }
  return result;
}

}  // namespace esp::core
