#ifndef ESP_CORE_RECOVERY_H_
#define ESP_CORE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/engine.h"
#include "core/journal.h"
#include "stream/tuple.h"

namespace esp::core {

/// \brief Knobs of the durability layer (docs/RECOVERY.md). Set in code or
/// via a `[recovery]` section in the deployment spec.
struct RecoveryOptions {
  /// Directory holding the journal (`journal.wal`) and snapshots
  /// (`snap_<seq>.ckpt`). Created if missing (one level).
  std::string directory;

  /// Automatic checkpoint every N successful ticks; 0 = only explicit
  /// Checkpoint() calls.
  uint64_t checkpoint_interval_ticks = 0;

  /// Snapshots retained on disk; older ones are pruned after each
  /// checkpoint. At least 2 gives fallback when the newest is corrupt.
  size_t retain_snapshots = 3;

  /// fsync journal flushes and snapshot writes (see JournalWriter::Options).
  bool fsync = true;

  /// Journal auto-flush cadence in records (1 = every append).
  uint64_t journal_flush_every = 1;

  /// Journal fsync batching: sync the file only every Nth flush (1 = every
  /// flush). Checkpoints always force a sync, so snapshot resume indexes
  /// never point past the durable tail (see JournalWriter::Options).
  uint64_t journal_fsync_every = 1;
};

/// \brief What a Resume() did to bring the pipeline back.
struct RestoreReport {
  /// False when no usable snapshot existed and the whole journal was
  /// replayed into the freshly started processor.
  bool from_snapshot = false;
  uint64_t snapshot_seq = 0;
  /// Snapshots that failed CRC/parse validation and were skipped (newest
  /// first) before one loaded.
  size_t snapshots_skipped = 0;
  /// Journal record index the snapshot covered; replay started here.
  uint64_t resume_record_index = 0;
  uint64_t replayed_pushes = 0;
  uint64_t replayed_ticks = 0;
  /// Journal records skipped during replay because the processor rejected
  /// them at lookup/decode/validation (unknown device type, schema
  /// mismatch, non-monotonic tick) — inputs the live session rejected
  /// identically. Current writers validate before journaling, so these only
  /// appear in journals written before that validation existed.
  uint64_t replay_rejected = 0;
  /// Bytes cut from the journal's torn tail (crash mid-append).
  uint64_t journal_torn_bytes = 0;
};

/// \brief Orchestrates the durability protocol around a StreamEngine
/// (single-threaded EspProcessor or ShardedEspProcessor alike):
/// journal-before-apply on every Push/Tick, periodic snapshots, retention,
/// and crash recovery (latest valid snapshot + journal suffix replay).
///
/// Invariants making replay exact (docs/RECOVERY.md):
///  - every input reaches the journal before the processor sees it, so the
///    journal is never behind the in-memory state it would rebuild;
///  - a checkpoint flushes the journal before its snapshot lands, so the
///    snapshot's resume index never points past the journal's durable tail;
///  - snapshots are written atomically and the journal is only ever
///    truncated at its torn tail, so falling back to snapshot N-1 still
///    finds every record its replay needs.
///
/// Each coordinator holds an exclusive advisory lock (flock on
/// `<directory>/LOCK`) for its whole lifetime. A second Start()/Resume() on
/// the same directory — a double-resume bug, or a fenced-off zombie worker
/// racing its replacement — fails with a typed kFailedPrecondition instead
/// of two sessions interleaving appends into one journal. The kernel drops
/// the lock automatically when the holder dies (including SIGKILL), so a
/// crashed session never needs manual cleanup.
class RecoveryCoordinator {
 public:
  /// Called for each tick replayed during Resume, with the recomputed
  /// outputs — exactly what the pre-crash run returned for that tick.
  using ReplayTickCallback =
      std::function<Status(Timestamp now, const TickResult& result)>;

  /// Begins a fresh durable session for `processor` (configured and
  /// Start()ed): creates `options.directory` if missing, truncates the
  /// journal, and removes stale snapshots from earlier sessions.
  static StatusOr<std::unique_ptr<RecoveryCoordinator>> Start(
      StreamEngine* processor, RecoveryOptions options);

  /// Recovers a crashed session into `processor`, which must be freshly
  /// configured and Start()ed from the same deployment: repairs the
  /// journal's torn tail, loads the newest valid snapshot (falling back
  /// past corrupt ones), replays the journal suffix, and reopens the
  /// journal for appending. `report` (optional) receives what happened;
  /// `on_replayed_tick` (optional) observes each replayed tick's outputs.
  static StatusOr<std::unique_ptr<RecoveryCoordinator>> Resume(
      StreamEngine* processor, RecoveryOptions options,
      RestoreReport* report = nullptr,
      const ReplayTickCallback& on_replayed_tick = nullptr);

  /// Validates the reading's device type and schema, journals it, then
  /// pushes it into the processor. Returns the processor's verdict (journal
  /// I/O errors take precedence). Readings the *processor* rejects (late
  /// arrival, unknown receptor) stay in the journal — replay re-rejects
  /// them identically; readings replay could not even decode (unknown
  /// device type, schema mismatch) are rejected before journaling.
  Status Push(const std::string& device_type, stream::Tuple raw);

  /// Pushes a whole batch of readings for one device type atomically with
  /// respect to the journal: all readings land in ONE framed record before
  /// any of them reaches the processor, so a crash mid-batch replays either
  /// the entire batch or none of it. Individual readings the processor
  /// rejects (late arrival, unknown receptor) are dropped live and re-drop
  /// identically on replay; `rejected` (optional) counts them. An empty
  /// batch is a no-op.
  Status PushBatch(const std::string& device_type,
                   std::vector<stream::Tuple> readings,
                   uint64_t* rejected = nullptr);

  /// Journals the tick boundary (rejecting non-monotonic tick times before
  /// they reach the journal), runs the cascade, and — every
  /// `checkpoint_interval_ticks` successful ticks — takes a checkpoint.
  StatusOr<TickResult> Tick(Timestamp now);

  /// Flushes the journal and atomically writes snapshot N, then prunes
  /// snapshots older than the retention window.
  Status Checkpoint();

  /// Records currently in the journal (appended + recovered prefix).
  uint64_t journal_records() const { return journal_->records_written(); }

  /// Sequence number the next checkpoint will use.
  uint64_t next_snapshot_seq() const { return next_seq_; }

  const RecoveryOptions& options() const { return options_; }

  /// Releases the directory lock (after a best-effort journal flush), so a
  /// later session can Start()/Resume() on the same directory.
  ~RecoveryCoordinator();
  RecoveryCoordinator(const RecoveryCoordinator&) = delete;
  RecoveryCoordinator& operator=(const RecoveryCoordinator&) = delete;

 private:
  RecoveryCoordinator(StreamEngine* processor, RecoveryOptions options,
                      std::unique_ptr<JournalWriter> journal,
                      uint64_t next_seq, int lock_fd)
      : processor_(processor),
        options_(std::move(options)),
        journal_(std::move(journal)),
        next_seq_(next_seq),
        lock_fd_(lock_fd) {}

  std::string JournalPath() const;
  std::string SnapshotPath(uint64_t seq) const;
  Status PruneSnapshots();
  void SyncJournalStats();

  StreamEngine* processor_;
  RecoveryOptions options_;
  std::unique_ptr<JournalWriter> journal_;
  uint64_t next_seq_ = 1;
  uint64_t ticks_since_checkpoint_ = 0;
  int lock_fd_ = -1;
};

}  // namespace esp::core

#endif  // ESP_CORE_RECOVERY_H_
