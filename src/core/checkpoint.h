#ifndef ESP_CORE_CHECKPOINT_H_
#define ESP_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/binio.h"
#include "common/status.h"

namespace esp::core {

/// \file
/// Versioned binary snapshot container for pipeline checkpoints
/// (docs/RECOVERY.md). A checkpoint file is:
///
///   magic "ESPCKPT1" | u32 version | u32 section_count
///   per section: name (len-prefixed) | u32 payload_len | u32 payload_crc32
///                | payload bytes
///   trailing u32 crc32 over everything before it (the manifest checksum)
///
/// Every section payload carries its own CRC32, so corruption is localized
/// and reported by section name; the trailing file checksum additionally
/// catches truncation after the last complete section. Files are written
/// atomically (tmp + fsync + rename), so a crash mid-write leaves the
/// previous snapshot untouched and never a torn one under the final name.

/// Current container version. Readers accept exactly this version; payload
/// evolution happens inside sections (type tags are append-only).
inline constexpr uint32_t kCheckpointVersion = 1;

/// \brief Accumulates named sections and serializes them into the container
/// format above.
class CheckpointWriter {
 public:
  /// Adds one named section. Names must be unique; order is preserved.
  void AddSection(std::string name, std::string payload);

  /// Convenience: adds a section from a ByteWriter, consuming its buffer.
  void AddSection(std::string name, ByteWriter&& w) {
    AddSection(std::move(name), std::move(w).Release());
  }

  /// Serializes the container to a byte string.
  std::string Serialize() const;

  /// Writes the container to `path` atomically: the bytes land in
  /// `path.tmp`, are fsync()ed, and are rename()d over `path` (the parent
  /// directory is fsync()ed too, so the rename itself is durable).
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// \brief Parses and validates a checkpoint container.
///
/// Parse/FromFile verify the magic, version, manifest checksum, and every
/// section's CRC32 up front; a reader that constructs successfully holds a
/// fully verified snapshot.
class CheckpointReader {
 public:
  /// Parses an in-memory container (takes ownership of the bytes).
  static StatusOr<CheckpointReader> Parse(std::string bytes);

  /// Reads and parses `path`.
  static StatusOr<CheckpointReader> FromFile(const std::string& path);

  bool HasSection(const std::string& name) const;

  /// Payload of a named section; kNotFound when absent. The view is into
  /// the reader's owned buffer and is invalidated by moving the reader.
  StatusOr<std::string_view> Section(const std::string& name) const;

  /// Section names in file order.
  const std::vector<std::string>& section_names() const { return names_; }

 private:
  CheckpointReader() = default;

  std::string bytes_;
  std::vector<std::string> names_;
  // Parallel to names_: (offset, length) of each payload within bytes_.
  std::vector<std::pair<size_t, size_t>> spans_;
};

/// Reads an entire file into a string. kNotFound when the file does not
/// exist; kInternal for other I/O errors.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `path` atomically (tmp + fsync + rename + dir fsync).
Status AtomicWriteFile(const std::string& path, std::string_view data);

}  // namespace esp::core

#endif  // ESP_CORE_CHECKPOINT_H_
