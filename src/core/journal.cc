#include "core/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/checkpoint.h"
#include "stream/serialize.h"

namespace esp::core {

namespace {

constexpr char kMagic[8] = {'E', 'S', 'P', 'J', 'R', 'N', 'L', '1'};
constexpr size_t kHeaderBytes = sizeof(kMagic) + sizeof(uint32_t);
constexpr size_t kFrameBytes = 2 * sizeof(uint32_t);

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::FromErrno(what + " '" + path + "'", errno);
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

StatusOr<stream::Tuple> DecodeJournalTuple(const JournalRecord& record,
                                           const stream::SchemaRef& schema) {
  if (record.kind != JournalRecord::Kind::kPush) {
    return Status::InvalidArgument("journal record is not a push record");
  }
  ByteReader r(record.tuple_payload);
  ESP_ASSIGN_OR_RETURN(stream::Tuple tuple, stream::ReadTuple(r, schema));
  if (!r.exhausted()) {
    return Status::ParseError("journal push record has trailing bytes");
  }
  return tuple;
}

StatusOr<std::vector<stream::Tuple>> DecodeJournalBatch(
    const JournalRecord& record, const stream::SchemaRef& schema) {
  if (record.kind != JournalRecord::Kind::kBatch) {
    return Status::InvalidArgument("journal record is not a batch record");
  }
  ByteReader r(record.tuple_payload);
  ESP_ASSIGN_OR_RETURN(const uint32_t count, r.ReadU32());
  std::vector<stream::Tuple> readings;
  readings.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ESP_ASSIGN_OR_RETURN(stream::Tuple tuple, stream::ReadTuple(r, schema));
    readings.push_back(std::move(tuple));
  }
  if (!r.exhausted()) {
    return Status::ParseError("journal batch record has trailing bytes");
  }
  return readings;
}

StatusOr<std::unique_ptr<JournalWriter>> JournalWriter::Create(
    const std::string& path, Options options) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  std::unique_ptr<JournalWriter> writer(
      new JournalWriter(fd, path, options, /*existing_records=*/0,
                        /*existing_bytes=*/kHeaderBytes));
  ByteWriter header;
  header.WriteBytes(std::string_view(kMagic, sizeof(kMagic)));
  header.WriteU32(kJournalVersion);
  ESP_RETURN_IF_ERROR(WriteAll(fd, header.data(), path));
  if (options.fsync_on_flush && ::fsync(fd) != 0) {
    return ErrnoStatus("fsync", path);
  }
  return writer;
}

StatusOr<std::unique_ptr<JournalWriter>> JournalWriter::Append(
    const std::string& path, Options options, uint64_t existing_records,
    uint64_t existing_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return ErrnoStatus("open for append", path);
  return std::unique_ptr<JournalWriter>(
      new JournalWriter(fd, path, options, existing_records, existing_bytes));
}

JournalWriter::~JournalWriter() {
  // Best-effort flush; callers that care about the Status call Flush()
  // explicitly before destruction. A poisoned writer must not retry (see
  // failed_), so its buffered tail is dropped.
  if (fd_ >= 0) {
    if (!pending_.empty() && !failed_) (void)Flush();
    ::close(fd_);
  }
}

Status JournalWriter::AppendRecord(std::string_view payload) {
  if (failed_) {
    return Status::Internal("journal writer '" + path_ +
                            "' is poisoned by an earlier write failure");
  }
  ByteWriter frame;
  frame.WriteU32(static_cast<uint32_t>(payload.size()));
  frame.WriteU32(Crc32(payload));
  frame.WriteBytes(payload);
  pending_.append(frame.data());
  ++pending_records_;
  ++records_written_;
  bytes_written_ += frame.size();
  if (pending_records_ >= options_.flush_every_records) {
    return Flush();
  }
  return Status::OK();
}

Status JournalWriter::AppendPush(const std::string& device_type,
                                 const stream::Tuple& tuple) {
  ByteWriter payload;
  payload.WriteU8(static_cast<uint8_t>(JournalRecord::Kind::kPush));
  payload.WriteString(device_type);
  stream::WriteTuple(payload, tuple);
  return AppendRecord(payload.data());
}

Status JournalWriter::AppendBatch(const std::string& device_type,
                                  const std::vector<stream::Tuple>& readings) {
  ByteWriter payload;
  payload.WriteU8(static_cast<uint8_t>(JournalRecord::Kind::kBatch));
  payload.WriteString(device_type);
  payload.WriteU32(static_cast<uint32_t>(readings.size()));
  for (const stream::Tuple& tuple : readings) {
    stream::WriteTuple(payload, tuple);
  }
  return AppendRecord(payload.data());
}

Status JournalWriter::AppendTick(Timestamp now) {
  ByteWriter payload;
  payload.WriteU8(static_cast<uint8_t>(JournalRecord::Kind::kTick));
  payload.WriteI64(now.micros());
  return AppendRecord(payload.data());
}

Status JournalWriter::Flush() {
  if (fd_ < 0) return Status::Internal("journal writer is closed");
  if (failed_) {
    return Status::Internal("journal writer '" + path_ +
                            "' is poisoned by an earlier write failure");
  }
  if (!pending_.empty()) {
    const Status wrote = WriteAll(fd_, pending_, path_);
    if (!wrote.ok()) {
      // Part of pending_ may have reached the fd; a retry would re-append
      // those bytes, duplicating frames and tearing every record after
      // them. Poison the writer instead — the file stays valid up to its
      // last complete frame.
      failed_ = true;
      return wrote;
    }
    pending_.clear();
  }
  pending_records_ = 0;
  if (!options_.fsync_on_flush) return Status::OK();
  // Batched syncs: only every Nth flush actually reaches the platter; the
  // in-between flushes are plain write()s whose durability a checkpoint can
  // force at any moment via Sync().
  ++flushes_since_sync_;
  const uint64_t cadence =
      options_.fsync_every_flushes == 0 ? 1 : options_.fsync_every_flushes;
  if (flushes_since_sync_ < cadence) return Status::OK();
  flushes_since_sync_ = 0;
  if (::fsync(fd_) != 0) {
    return ErrnoStatus("fsync", path_);
  }
  return Status::OK();
}

Status JournalWriter::Sync() {
  ESP_RETURN_IF_ERROR(Flush());
  flushes_since_sync_ = 0;
  if (options_.fsync_on_flush && ::fsync(fd_) != 0) {
    return ErrnoStatus("fsync", path_);
  }
  return Status::OK();
}

StatusOr<JournalScan> ScanJournal(const std::string& path,
                                  bool truncate_torn_tail) {
  ESP_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  JournalScan scan;

  if (bytes.size() < kHeaderBytes) {
    // Crash before the header landed: the journal holds nothing.
    scan.torn_bytes = bytes.size();
  } else {
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
      return Status::ParseError("journal has bad magic (not an ESPJRNL1 file)");
    }
    ByteReader header(
        std::string_view(bytes.data() + sizeof(kMagic), sizeof(uint32_t)));
    ESP_ASSIGN_OR_RETURN(const uint32_t version, header.ReadU32());
    if (version != kJournalVersion) {
      return Status::ParseError("unsupported journal version " +
                                std::to_string(version) + " (expected " +
                                std::to_string(kJournalVersion) + ")");
    }
    scan.valid_bytes = kHeaderBytes;

    ByteReader r(std::string_view(bytes).substr(kHeaderBytes));
    while (!r.exhausted()) {
      // A frame that does not fully parse and checksum is the torn tail.
      if (r.remaining() < kFrameBytes) break;
      ESP_ASSIGN_OR_RETURN(const uint32_t len, r.ReadU32());
      ESP_ASSIGN_OR_RETURN(const uint32_t stored_crc, r.ReadU32());
      if (r.remaining() < len) break;
      ESP_ASSIGN_OR_RETURN(const std::string_view payload, r.ReadBytes(len));
      if (Crc32(payload) != stored_crc) break;

      ByteReader body(payload);
      ESP_ASSIGN_OR_RETURN(const uint8_t kind_tag, body.ReadU8());
      JournalRecord record;
      switch (static_cast<JournalRecord::Kind>(kind_tag)) {
        case JournalRecord::Kind::kPush:
        case JournalRecord::Kind::kBatch: {
          record.kind = static_cast<JournalRecord::Kind>(kind_tag);
          ESP_ASSIGN_OR_RETURN(record.device_type, body.ReadString());
          record.tuple_payload.assign(body.ReadBytes(body.remaining())
                                          .value());  // Cannot fail.
          break;
        }
        case JournalRecord::Kind::kTick: {
          record.kind = JournalRecord::Kind::kTick;
          ESP_ASSIGN_OR_RETURN(const int64_t micros, body.ReadI64());
          record.tick_time = Timestamp::Micros(micros);
          break;
        }
        default:
          return Status::ParseError("journal record " +
                                    std::to_string(scan.records.size()) +
                                    " has unknown kind tag " +
                                    std::to_string(kind_tag));
      }
      scan.records.push_back(std::move(record));
      scan.valid_bytes = kHeaderBytes + (bytes.size() - kHeaderBytes) -
                         r.remaining();
    }
    scan.torn_bytes = bytes.size() - scan.valid_bytes;
  }

  if (truncate_torn_tail && scan.torn_bytes > 0) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) return ErrnoStatus("open for repair", path);
    const int rc = ::ftruncate(fd, static_cast<off_t>(scan.valid_bytes));
    const int sync_rc = rc == 0 ? ::fsync(fd) : 0;
    ::close(fd);
    if (rc != 0) return ErrnoStatus("ftruncate", path);
    if (sync_rc != 0) return ErrnoStatus("fsync", path);
  }
  return scan;
}

}  // namespace esp::core
