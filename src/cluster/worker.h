#ifndef ESP_CLUSTER_WORKER_H_
#define ESP_CLUSTER_WORKER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/time.h"
#include "core/engine.h"
#include "core/recovery.h"
#include "net/wire.h"

namespace esp::cluster {

/// Builds a freshly configured, Start()ed engine for one worker — the
/// slot's proximity groups, its pipelines with Arbitrate stripped (the
/// coordinator runs the cross-group stages centrally), and the deployment's
/// health policy. Invoked once per worker lifetime, inside the worker
/// process for fork-based supervision.
using EngineFactory =
    std::function<StatusOr<std::unique_ptr<core::StreamEngine>>()>;

struct WorkerOptions {
  /// Identity: which slot of the cluster this worker serves, and the epoch
  /// it was spawned under. Both are fixed for the process's lifetime — a
  /// replacement worker is a new process with a bumped epoch.
  uint32_t slot = 0;
  uint64_t epoch = 1;

  /// True for a replacement adopting a dead predecessor's storage: repairs
  /// and replays the journal before accepting traffic. False on the first
  /// spawn of a fresh cluster.
  bool resume = false;

  /// Durability knobs; `directory` is the slot's storage directory. The
  /// worker forces checkpoint_interval_ticks to 0 — cluster checkpoints are
  /// coordinator-driven (only AFTER a tick's result has been merged), which
  /// is what guarantees any tick the coordinator may still be awaiting lies
  /// in the journal suffix a replacement replays.
  core::RecoveryOptions recovery;

  std::string bind_address = "127.0.0.1";
  /// 0 picks a free port; the bound port is reported via port_report_fd.
  uint16_t port = 0;
  /// When >= 0: the bound port is written (2 bytes, little-endian) to this
  /// fd once the worker is recovered and listening, then the fd is closed.
  /// Writing only after recovery makes "the port arrived" the supervisor's
  /// ready signal.
  int port_report_fd = -1;

  Duration heartbeat_interval = Duration::Millis(50);
  Duration write_timeout = Duration::Seconds(5);
  size_t max_frame_bytes = net::kDefaultMaxFrameBytes;

  /// Optional external stop flag for in-process (thread-hosted) workers;
  /// process-hosted workers simply die by signal. Checked once per poll
  /// pass. Must outlive RunWorker.
  const std::atomic<bool>* stop = nullptr;
};

/// \brief Runs one cluster worker to completion: recover (or start fresh),
/// listen, and serve the coordinator's framed stream — kBatch/kTick with
/// exactly-once sequence admission, journal-before-apply via
/// RecoveryCoordinator, per-tick partial-aggregate replies, coordinator-
/// driven checkpoints, and periodic heartbeats.
///
/// Connection model: at most one live session; a new accept supersedes the
/// old connection (the coordinator redialing after a network error). Every
/// session starts with a ClusterHello carrying the worker's own (slot,
/// epoch) — anything else is refused, which fences a stale coordinator
/// link. The reply Welcome carries last_applied == journal_records(): one
/// applied wire frame is exactly one journal record (batches are journaled
/// atomically, ticks as tick records), so the journal length IS the resume
/// cursor.
///
/// After every Welcome the worker re-sends its most recent tick result
/// (live or recovered via replay) — the coordinator dedups by tick time —
/// so a result that died in flight with the previous connection (or the
/// previous worker) is never lost.
///
/// Returns only on the stop flag (OK) or a fatal local error (journal I/O,
/// storage lock held by a live predecessor).
Status RunWorker(const WorkerOptions& options, const EngineFactory& factory);

}  // namespace esp::cluster

#endif  // ESP_CLUSTER_WORKER_H_
