#include "cluster/coordinator.h"

#include <sys/stat.h>

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "cql/analyzer.h"
#include "core/stage.h"

namespace esp::cluster {

namespace {

using core::GroupPartial;
using core::TickResult;
using net::FrameDecoder;
using net::MessageKind;
using stream::Relation;
using stream::SchemaRef;
using stream::Tuple;

/// Composite case-insensitive key for the routing maps.
std::string Key(const std::string& device_type, const std::string& name) {
  std::string key = StrToLower(device_type);
  key.push_back('\0');
  key += StrToLower(name);
  return key;
}

/// FNV-1a over the lowered group key — a stable, platform-independent
/// group -> slot assignment (hash order must not depend on std::hash).
uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr Duration kRecvSlice = Duration::Millis(20);

}  // namespace

ClusterCoordinator::ClusterCoordinator(ClusterOptions options)
    : options_(std::move(options)),
      membership_(options_.heartbeat_deadline) {
  if (!options_.clock) options_.clock = [] { return SteadyNow(); };
}

ClusterCoordinator::~ClusterCoordinator() { (void)Stop(); }

Status ClusterCoordinator::AddProximityGroup(core::ProximityGroup group) {
  if (started_) return Status::Internal("cluster already started");
  groups_.push_back(std::move(group));
  return Status::OK();
}

Status ClusterCoordinator::AddPipeline(core::DeviceTypePipeline pipeline) {
  if (started_) return Status::Internal("cluster already started");
  if (pipeline.virtualize_input.empty()) {
    pipeline.virtualize_input = pipeline.device_type + "_input";
  }
  TypeRuntime type;
  type.config = std::move(pipeline);
  types_.push_back(std::move(type));
  return Status::OK();
}

Status ClusterCoordinator::SetHealthPolicy(core::HealthPolicy policy) {
  if (started_) return Status::Internal("cluster already started");
  policy_ = policy;
  return Status::OK();
}

void ClusterCoordinator::SetVirtualize(std::unique_ptr<core::Stage> stage) {
  virtualize_ = std::move(stage);
}

StatusOr<ClusterCoordinator::TypeRuntime*> ClusterCoordinator::FindType(
    const std::string& device_type) {
  for (TypeRuntime& type : types_) {
    if (StrEqualsIgnoreCase(type.config.device_type, device_type)) {
      return &type;
    }
  }
  return Status::NotFound("no pipeline for device type '" + device_type +
                          "'");
}

uint32_t ClusterCoordinator::AssignSlot(const std::string& device_type,
                                        const std::string& group_id) const {
  return static_cast<uint32_t>(Fnv1a(Key(device_type, group_id)) %
                               options_.num_workers);
}

WorkerSpawnSpec ClusterCoordinator::MakeSpawnSpec(uint32_t slot,
                                                  uint64_t epoch,
                                                  bool resume) const {
  // The worker gets exactly its slot's groups and, for each device type
  // with at least one of them, the pipeline with Arbitrate stripped — the
  // cross-group stages stay here.
  std::vector<core::ProximityGroup> slot_groups;
  for (const core::ProximityGroup& group : groups_) {
    if (AssignSlot(group.device_type, group.id) == slot) {
      slot_groups.push_back(group);
    }
  }
  std::vector<core::DeviceTypePipeline> pipelines;
  for (const TypeRuntime& type : types_) {
    const bool hosted = std::any_of(
        slot_groups.begin(), slot_groups.end(),
        [&](const core::ProximityGroup& g) {
          return StrEqualsIgnoreCase(g.device_type, type.config.device_type);
        });
    if (!hosted) continue;
    core::DeviceTypePipeline pipeline = type.config;
    pipeline.arbitrate = nullptr;
    pipelines.push_back(std::move(pipeline));
  }

  WorkerSpawnSpec spec;
  spec.options.slot = slot;
  spec.options.epoch = epoch;
  spec.options.resume = resume;
  spec.options.recovery.directory =
      options_.storage_root + "/slot_" + std::to_string(slot);
  spec.options.recovery.fsync = options_.fsync;
  spec.options.recovery.retain_snapshots = options_.retain_snapshots;
  spec.options.heartbeat_interval = options_.heartbeat_interval;
  spec.options.write_timeout = options_.write_timeout;
  spec.options.max_frame_bytes = options_.max_frame_bytes;
  spec.factory = [slot_groups = std::move(slot_groups),
                  pipelines = std::move(pipelines), policy = policy_]()
      -> StatusOr<std::unique_ptr<core::StreamEngine>> {
    auto engine = std::make_unique<core::EspProcessor>();
    ESP_RETURN_IF_ERROR(engine->SetHealthPolicy(policy));
    for (const core::ProximityGroup& group : slot_groups) {
      ESP_RETURN_IF_ERROR(engine->AddProximityGroup(group));
    }
    for (const core::DeviceTypePipeline& pipeline : pipelines) {
      ESP_RETURN_IF_ERROR(engine->AddPipeline(pipeline));
    }
    ESP_RETURN_IF_ERROR(engine->Start());
    return std::unique_ptr<core::StreamEngine>(std::move(engine));
  };
  return spec;
}

Status ClusterCoordinator::Start(WorkerSupervisor* supervisor) {
  if (started_) return Status::Internal("cluster already started");
  if (supervisor == nullptr) {
    return Status::InvalidArgument("cluster needs a worker supervisor");
  }
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be at least 1");
  }
  if (options_.storage_root.empty()) {
    return Status::InvalidArgument("storage_root must be set");
  }
  supervisor_ = supervisor;

  if (::mkdir(options_.storage_root.c_str(), 0775) != 0 &&
      errno != EEXIST) {
    return Status::FromErrno("mkdir " + options_.storage_root, errno);
  }

  // The schema oracle: an arbitrate-stripped, never-fed local twin whose
  // TypeOutputSchema IS the workers' per-group partial schema and whose
  // TypeReadingSchema validates pushes before they cross the wire.
  oracle_ = std::make_unique<core::EspProcessor>();
  ESP_RETURN_IF_ERROR(oracle_->SetHealthPolicy(policy_));
  for (const core::ProximityGroup& group : groups_) {
    ESP_RETURN_IF_ERROR(oracle_->AddProximityGroup(group));
    for (const std::string& receptor_id : group.receptor_ids) {
      receptor_group_[Key(group.device_type, receptor_id)] = group.id;
    }
    group_slot_[Key(group.device_type, group.id)] =
        AssignSlot(group.device_type, group.id);
  }
  for (TypeRuntime& type : types_) {
    core::DeviceTypePipeline stripped = type.config;
    stripped.arbitrate = nullptr;
    ESP_RETURN_IF_ERROR(oracle_->AddPipeline(std::move(stripped)));
    for (const core::ProximityGroup& group : groups_) {
      if (StrEqualsIgnoreCase(group.device_type, type.config.device_type)) {
        type.group_order.push_back(group.id);
      }
    }
    if (type.group_order.empty()) {
      return Status::InvalidArgument("no proximity groups for device type '" +
                                     type.config.device_type + "'");
    }
  }
  ESP_RETURN_IF_ERROR(oracle_->Start());

  // Wrapper Arbitrate / Virtualize, bound exactly as the sharded engine
  // binds its own copies (bitwise-identical central stages).
  cql::SchemaCatalog virtualize_inputs;
  for (TypeRuntime& type : types_) {
    ESP_ASSIGN_OR_RETURN(type.group_output_schema,
                         oracle_->TypeOutputSchema(type.config.device_type));
    SchemaRef type_out = type.group_output_schema;
    if (type.config.arbitrate != nullptr) {
      ESP_ASSIGN_OR_RETURN(type.arbitrate, type.config.arbitrate());
      cql::SchemaCatalog catalog;
      catalog.AddStream(core::StageInputName(core::StageKind::kArbitrate),
                        type.group_output_schema);
      ESP_RETURN_IF_ERROR(type.arbitrate->Bind(catalog));
      type_out = type.arbitrate->output_schema();
    }
    type.output_schema = type_out;
    virtualize_inputs.AddStream(type.config.virtualize_input, type_out);
  }
  if (virtualize_ != nullptr) {
    ESP_RETURN_IF_ERROR(virtualize_->Bind(virtualize_inputs));
  }

  links_.resize(options_.num_workers);
  for (uint32_t slot = 0; slot < options_.num_workers; ++slot) {
    WorkerLink& link = links_[slot];
    link.slot = slot;
    link.epoch = 1;
    ESP_RETURN_IF_ERROR(SpawnAndConnect(link, /*resume=*/false));
  }
  started_ = true;
  return Status::OK();
}

Status ClusterCoordinator::SpawnAndConnect(WorkerLink& link, bool resume) {
  const WorkerSpawnSpec spec = MakeSpawnSpec(link.slot, link.epoch, resume);
  ESP_ASSIGN_OR_RETURN(const WorkerEndpoint endpoint,
                       supervisor_->Spawn(spec));
  ++stats_.workers_spawned;
  link.pid = endpoint.pid;
  link.port = endpoint.port;
  link.decoder = FrameDecoder(options_.max_frame_bytes);

  ESP_ASSIGN_OR_RETURN(
      link.fd,
      net::TcpConnect("127.0.0.1", link.port, options_.connect_timeout));

  net::ClusterHelloMessage hello;
  hello.slot = link.slot;
  hello.epoch = link.epoch;
  ESP_RETURN_IF_ERROR(net::SendAll(link.fd.get(),
                                   net::EncodeClusterHello(hello),
                                   options_.write_timeout));

  // Read until the Welcome arrives; the worker's buffered result (if any)
  // follows it and stays in the decoder for the next drain.
  for (;;) {
    ESP_ASSIGN_OR_RETURN(std::optional<std::string> payload,
                         link.decoder.Next());
    if (payload.has_value()) {
      ESP_ASSIGN_OR_RETURN(const MessageKind kind, net::PeekKind(*payload));
      if (kind == MessageKind::kError) {
        ESP_ASSIGN_OR_RETURN(const net::ErrorMessage err,
                             net::DecodeError(*payload));
        return Status::FailedPrecondition("worker slot " +
                                          std::to_string(link.slot) +
                                          " refused handshake: " +
                                          err.message);
      }
      ESP_ASSIGN_OR_RETURN(const net::WelcomeMessage welcome,
                           net::DecodeWelcome(*payload));
      if (welcome.last_applied_seq > link.last_acked) {
        link.last_acked = welcome.last_applied_seq;
      }
      while (!link.unacked.empty() &&
             link.unacked.front().seq <= link.last_acked) {
        link.unacked.pop_front();
      }
      // Exactly-once resume: everything past the worker's journal cursor,
      // in order. The worker's SequenceTracker drops any stragglers.
      for (const UnackedFrame& frame : link.unacked) {
        ESP_RETURN_IF_ERROR(
            net::SendAll(link.fd.get(), frame.bytes, options_.write_timeout));
      }
      membership_.Seat(link.slot, link.epoch, options_.clock());
      return Status::OK();
    }
    ESP_ASSIGN_OR_RETURN(
        const std::string bytes,
        net::RecvSome(link.fd.get(), 64 * 1024, options_.connect_timeout));
    if (bytes.empty()) {
      return Status::ConnectionReset("worker slot " +
                                     std::to_string(link.slot) +
                                     " closed during the handshake");
    }
    link.decoder.Feed(bytes);
  }
}

Status ClusterCoordinator::Failover(WorkerLink& link) {
  const Timestamp t0 = options_.clock();
  ++stats_.worker_deaths;
  link.epoch = membership_.Fence(link.slot);
  link.fd.reset();
  if (link.pid >= 0) {
    // Make death certain before the replacement touches the slot's storage
    // (the dead worker's flock releases with the process).
    ESP_RETURN_IF_ERROR(supervisor_->Kill(link.pid));
    link.pid = -1;
  }
  ESP_RETURN_IF_ERROR(SpawnAndConnect(link, /*resume=*/true));
  stats_.recovery_ms.push_back((options_.clock() - t0).micros() / 1000.0);
  return Status::OK();
}

Status ClusterCoordinator::Push(const std::string& device_type, Tuple raw) {
  if (!started_) return Status::Internal("cluster not started");
  ESP_ASSIGN_OR_RETURN(TypeRuntime * type, FindType(device_type));
  ESP_ASSIGN_OR_RETURN(
      const SchemaRef schema,
      oracle_->TypeReadingSchema(type->config.device_type));
  if (raw.schema() == nullptr || !raw.schema()->Equals(*schema)) {
    return Status::InvalidArgument("reading schema does not match pipeline '" +
                                   type->config.device_type + "'");
  }
  ESP_ASSIGN_OR_RETURN(const stream::Value receptor,
                       raw.Get(type->config.receptor_id_column));
  if (receptor.type() != stream::DataType::kString) {
    return Status::TypeError("receptor id column '" +
                             type->config.receptor_id_column +
                             "' must be a string");
  }
  const auto group_it = receptor_group_.find(
      Key(type->config.device_type, receptor.string_value()));
  if (group_it == receptor_group_.end()) {
    return Status::NotFound("receptor '" + receptor.string_value() +
                            "' is not in any proximity group of type '" +
                            type->config.device_type + "'");
  }
  const uint32_t slot =
      group_slot_.at(Key(type->config.device_type, group_it->second));
  links_[slot].pending.push_back(
      PendingReading{type->config.device_type, std::move(raw)});
  ++stats_.readings_routed;
  return Status::OK();
}

void ClusterCoordinator::SendSequenced(
    WorkerLink& link,
    const std::function<std::string(uint64_t seq)>& encode) {
  UnackedFrame frame;
  frame.seq = link.next_seq++;
  frame.bytes = encode(frame.seq);
  link.unacked.push_back(std::move(frame));
  if (link.fd.valid()) {
    const Status sent = net::SendAll(link.fd.get(),
                                     link.unacked.back().bytes,
                                     options_.write_timeout);
    // A failed transmit only drops the link; the frame is in the resume
    // window and goes out again after failover.
    if (!sent.ok()) link.fd.reset();
  }
}

void ClusterCoordinator::FlushPushes(WorkerLink& link) {
  size_t i = 0;
  while (i < link.pending.size()) {
    // One batch per run of consecutive same-type readings: preserves the
    // caller's push order within the slot, which is what the monolith saw.
    size_t j = i + 1;
    while (j < link.pending.size() &&
           link.pending[j].device_type == link.pending[i].device_type) {
      ++j;
    }
    std::vector<Tuple> readings;
    readings.reserve(j - i);
    for (size_t k = i; k < j; ++k) {
      readings.push_back(std::move(link.pending[k].reading));
    }
    const std::string& device_type = link.pending[i].device_type;
    SendSequenced(link, [&](uint64_t seq) {
      return net::EncodeBatch(seq, device_type, readings);
    });
    ++stats_.batches_sent;
    i = j;
  }
  link.pending.clear();
}

Status ClusterCoordinator::HandleWorkerFrame(
    WorkerLink& link, const std::string& payload,
    const std::optional<Timestamp>& awaiting) {
  ESP_ASSIGN_OR_RETURN(const MessageKind kind, net::PeekKind(payload));
  const auto prune = [&](uint64_t applied) {
    if (applied > link.last_acked) link.last_acked = applied;
    while (!link.unacked.empty() &&
           link.unacked.front().seq <= link.last_acked) {
      link.unacked.pop_front();
    }
  };
  switch (kind) {
    case MessageKind::kAck: {
      ESP_ASSIGN_OR_RETURN(const net::AckMessage ack,
                           net::DecodeAck(payload));
      prune(ack.last_applied_seq);
      return Status::OK();
    }
    case MessageKind::kWelcome: {
      // A duplicated handshake reply; its cursor is still a valid ack.
      ESP_ASSIGN_OR_RETURN(const net::WelcomeMessage welcome,
                           net::DecodeWelcome(payload));
      prune(welcome.last_applied_seq);
      return Status::OK();
    }
    case MessageKind::kHeartbeat: {
      ESP_ASSIGN_OR_RETURN(const net::HeartbeatMessage beat,
                           net::DecodeHeartbeat(payload));
      if (beat.slot != link.slot || beat.epoch != link.epoch) {
        ++stats_.fenced_frames;
        return Status::OK();
      }
      ++stats_.heartbeats_received;
      (void)membership_.RecordHeartbeat(beat.slot, beat.epoch,
                                        options_.clock());
      prune(beat.last_applied_seq);
      return Status::OK();
    }
    case MessageKind::kTickResult: {
      ESP_ASSIGN_OR_RETURN(
          net::TickResultMessage result,
          net::DecodeTickResult(payload, [this](const std::string& type) {
            return oracle_->TypeOutputSchema(type);
          }));
      if (result.slot != link.slot || result.epoch != link.epoch) {
        ++stats_.fenced_frames;
        return Status::OK();
      }
      if (awaiting.has_value() && result.tick_time == *awaiting) {
        // First result wins; a re-sent duplicate is bitwise-identical by
        // the recovery equivalence guarantee.
        if (!link.result.has_value()) {
          link.result = std::move(result.partials);
        } else {
          ++stats_.duplicate_results;
        }
        return Status::OK();
      }
      if (has_ticked_ && result.tick_time <= last_tick_) {
        ++stats_.duplicate_results;  // Re-offered after a reconnect.
        return Status::OK();
      }
      return Status::Internal("worker slot " + std::to_string(link.slot) +
                              " sent a result for an unknown tick");
    }
    case MessageKind::kError: {
      ESP_ASSIGN_OR_RETURN(const net::ErrorMessage err,
                           net::DecodeError(payload));
      return Status::ConnectionReset("worker slot " +
                                     std::to_string(link.slot) +
                                     " error: " + err.message);
    }
    default:
      return Status::ConnectionReset("unexpected worker message kind");
  }
}

Status ClusterCoordinator::DrainLink(
    WorkerLink& link, const std::optional<Timestamp>& awaiting) {
  for (;;) {
    StatusOr<std::optional<std::string>> next = link.decoder.Next();
    if (!next.ok()) {
      link.fd.reset();  // Framing lost; failover redials cleanly.
      return Status::OK();
    }
    if (!next->has_value()) break;
    const Status handled = HandleWorkerFrame(link, **next, awaiting);
    if (handled.code() == StatusCode::kConnectionReset) {
      link.fd.reset();
      return Status::OK();
    }
    ESP_RETURN_IF_ERROR(handled);
  }
  if (!link.fd.valid()) return Status::OK();
  for (;;) {
    StatusOr<std::string> bytes =
        net::RecvSome(link.fd.get(), 64 * 1024, Duration::Zero());
    if (!bytes.ok()) {
      if (bytes.status().code() == StatusCode::kTimedOut) return Status::OK();
      link.fd.reset();
      return Status::OK();
    }
    if (bytes->empty()) {
      link.fd.reset();
      return Status::OK();
    }
    link.decoder.Feed(*bytes);
    for (;;) {
      StatusOr<std::optional<std::string>> next = link.decoder.Next();
      if (!next.ok()) {
        link.fd.reset();
        return Status::OK();
      }
      if (!next->has_value()) break;
      const Status handled = HandleWorkerFrame(link, **next, awaiting);
      if (handled.code() == StatusCode::kConnectionReset) {
        link.fd.reset();
        return Status::OK();
      }
      ESP_RETURN_IF_ERROR(handled);
    }
  }
}

Status ClusterCoordinator::AwaitResult(WorkerLink& link, Timestamp now) {
  size_t failovers = 0;
  Timestamp deadline = options_.clock() + options_.reply_timeout;
  for (;;) {
    if (!link.fd.valid()) {
      if (failovers++ >= options_.max_failovers_per_tick) {
        return Status::Unavailable(
            "worker slot " + std::to_string(link.slot) + " failed " +
            std::to_string(failovers) + " times within one tick");
      }
      ESP_RETURN_IF_ERROR(Failover(link));
      deadline = options_.clock() + options_.reply_timeout;
    }
    ESP_RETURN_IF_ERROR(DrainLink(link, now));
    if (link.result.has_value()) return Status::OK();
    if (!link.fd.valid()) continue;  // Died during the drain.

    StatusOr<std::string> bytes =
        net::RecvSome(link.fd.get(), 64 * 1024, kRecvSlice);
    if (bytes.ok()) {
      if (bytes->empty()) {
        link.fd.reset();  // EOF — the worker is gone.
        continue;
      }
      link.decoder.Feed(*bytes);
      continue;
    }
    if (bytes.status().code() != StatusCode::kTimedOut) {
      link.fd.reset();
      continue;
    }
    if (options_.clock() > deadline) {
      // Silent past the reply deadline: declared dead.
      link.fd.reset();
    }
  }
}

StatusOr<Relation> ClusterCoordinator::RunStageGuarded(
    core::Stage* stage, const std::string& input_name, Relation input,
    Timestamp now) {
  auto run = [&]() -> StatusOr<Relation> {
    for (const Tuple& tuple : input.tuples()) {
      ESP_RETURN_IF_ERROR(stage->Push(input_name, tuple));
    }
    return stage->Evaluate(now);
  };
  StatusOr<Relation> out = run();
  if (out.ok()) return out;
  if (policy_.stage_error_policy == core::StageErrorPolicy::kFailFast) {
    return out.status();
  }
  ++stats_.stage_errors;
  if (input.schema() != nullptr && stage->output_schema() != nullptr &&
      input.schema()->Equals(*stage->output_schema())) {
    return input;
  }
  return Relation(stage->output_schema());
}

StatusOr<TickResult> ClusterCoordinator::Tick(Timestamp now) {
  if (!started_) return Status::Internal("cluster not started");
  if (has_ticked_ && now <= last_tick_) {
    // Strictly increasing: the tick time is the cluster-wide result key.
    return Status::InvalidArgument(
        "cluster tick times must be strictly increasing");
  }

  for (WorkerLink& link : links_) {
    link.result.reset();
    FlushPushes(link);
    SendSequenced(link,
                  [&](uint64_t seq) { return net::EncodeTick(seq, now); });
  }
  for (WorkerLink& link : links_) {
    ESP_RETURN_IF_ERROR(AwaitResult(link, now));
  }

  TickResult result;
  for (TypeRuntime& type : types_) {
    // Gather this type's partials across slots (slot order), then replay
    // them in global group-registration order — the monolith's Union
    // order. Groups the static config does not know (a worker's lazily
    // registered quarantine group) append after, in slot order.
    std::vector<net::WirePartial*> gathered;
    for (WorkerLink& link : links_) {
      for (net::WirePartial& partial : *link.result) {
        if (StrEqualsIgnoreCase(partial.device_type,
                                type.config.device_type)) {
          gathered.push_back(&partial);
        }
      }
    }
    Relation merged(type.group_output_schema);
    std::vector<bool> used(gathered.size(), false);
    const auto append = [&merged](net::WirePartial* partial) {
      auto& tuples = partial->relation.mutable_tuples();
      merged.mutable_tuples().insert(merged.mutable_tuples().end(),
                                     std::make_move_iterator(tuples.begin()),
                                     std::make_move_iterator(tuples.end()));
    };
    for (const std::string& group_id : type.group_order) {
      for (size_t i = 0; i < gathered.size(); ++i) {
        if (!used[i] &&
            StrEqualsIgnoreCase(gathered[i]->group_id, group_id)) {
          used[i] = true;
          append(gathered[i]);
          break;
        }
      }
    }
    for (size_t i = 0; i < gathered.size(); ++i) {
      if (!used[i]) append(gathered[i]);
    }

    Relation type_out;
    if (type.arbitrate != nullptr) {
      ESP_ASSIGN_OR_RETURN(
          type_out,
          RunStageGuarded(type.arbitrate.get(),
                          core::StageInputName(core::StageKind::kArbitrate),
                          std::move(merged), now));
    } else {
      type_out = std::move(merged);
    }

    if (virtualize_ != nullptr) {
      for (const Tuple& tuple : type_out.tuples()) {
        const Status pushed =
            virtualize_->Push(type.config.virtualize_input, tuple);
        if (!pushed.ok()) {
          if (policy_.stage_error_policy ==
              core::StageErrorPolicy::kFailFast) {
            return pushed;
          }
          ++stats_.stage_errors;
          break;
        }
      }
    }
    result.per_type.emplace_back(type.config.device_type,
                                 std::move(type_out));
  }

  if (virtualize_ != nullptr) {
    StatusOr<Relation> out = virtualize_->Evaluate(now);
    if (out.ok()) {
      result.virtualized = std::move(out).value();
    } else if (policy_.stage_error_policy ==
               core::StageErrorPolicy::kFailFast) {
      return out.status();
    } else {
      ++stats_.stage_errors;
      result.virtualized = Relation(virtualize_->output_schema());
    }
  }

  last_tick_ = now;
  has_ticked_ = true;
  ++stats_.ticks;

  if (options_.checkpoint_interval_ticks > 0 &&
      ++ticks_since_checkpoint_ >= options_.checkpoint_interval_ticks) {
    ticks_since_checkpoint_ = 0;
    ESP_RETURN_IF_ERROR(Checkpoint());
  }
  return result;
}

Status ClusterCoordinator::Checkpoint() {
  if (!started_) return Status::Internal("cluster not started");
  // Unsequenced and fire-and-forget: a checkpoint is an optimization, and
  // requesting it only after the covered tick merged keeps the recovery
  // invariant (see worker.h). A dead link just skips a checkpoint.
  const std::string request = net::EncodeCheckpointRequest();
  for (WorkerLink& link : links_) {
    if (!link.fd.valid()) continue;
    const Status sent =
        net::SendAll(link.fd.get(), request, options_.write_timeout);
    if (!sent.ok()) link.fd.reset();
  }
  return Status::OK();
}

Status ClusterCoordinator::CheckLiveness() {
  if (!started_) return Status::Internal("cluster not started");
  for (WorkerLink& link : links_) {
    ESP_RETURN_IF_ERROR(DrainLink(link, std::nullopt));
  }
  for (const uint32_t slot : membership_.ExpiredSlots(options_.clock())) {
    ESP_RETURN_IF_ERROR(Failover(links_[slot]));
  }
  return Status::OK();
}

Status ClusterCoordinator::Stop() {
  Status first = Status::OK();
  for (WorkerLink& link : links_) {
    link.fd.reset();
    if (link.pid >= 0 && supervisor_ != nullptr) {
      const Status killed = supervisor_->Kill(link.pid);
      if (!killed.ok() && first.ok()) first = killed;
      link.pid = -1;
    }
  }
  return first;
}

StatusOr<uint32_t> ClusterCoordinator::SlotOfGroup(
    const std::string& device_type, const std::string& group_id) const {
  const auto it = group_slot_.find(Key(device_type, group_id));
  if (it == group_slot_.end()) {
    return Status::NotFound("no group '" + group_id + "' of type '" +
                            device_type + "'");
  }
  return it->second;
}

int64_t ClusterCoordinator::worker_pid(uint32_t slot) const {
  return slot < links_.size() ? links_[slot].pid : -1;
}

uint64_t ClusterCoordinator::worker_epoch(uint32_t slot) const {
  return slot < links_.size() ? links_[slot].epoch : 0;
}

}  // namespace esp::cluster
