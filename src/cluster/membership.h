#ifndef ESP_CLUSTER_MEMBERSHIP_H_
#define ESP_CLUSTER_MEMBERSHIP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace esp::cluster {

/// Monotonic wall-clock reading mapped onto the Timestamp axis — the time
/// source the coordinator feeds MembershipTable by default. Distinct from
/// the experiment's virtual tick clock: liveness deadlines are real time.
Timestamp SteadyNow();

/// \brief Liveness and fencing bookkeeping for the coordinator's worker
/// slots (docs/DISTRIBUTED.md).
///
/// Each slot carries an epoch, starting at 1 and bumped by Fence() every
/// time the slot's worker is declared dead. A frame stamped with an old
/// epoch belongs to a fenced (presumed-dead) worker and must be dropped by
/// the receiver. Time is always injected by the caller — the table never
/// reads a clock — so deadline logic is deterministic under test.
class MembershipTable {
 public:
  explicit MembershipTable(Duration heartbeat_deadline)
      : deadline_(heartbeat_deadline) {}

  /// Seats a worker in `slot` at `epoch`, alive as of `now`. Grows the
  /// table as needed; re-seating an existing slot replaces its tenant.
  void Seat(uint32_t slot, uint64_t epoch, Timestamp now);

  /// Refreshes a slot's liveness. kFailedPrecondition when the heartbeat
  /// carries a fenced (non-current) epoch or the slot is unseated — the
  /// caller drops such frames without effect.
  Status RecordHeartbeat(uint32_t slot, uint64_t epoch, Timestamp now);

  /// Seated slots whose last sign of life is more than the heartbeat
  /// deadline before `now` — candidates for failover, ascending.
  std::vector<uint32_t> ExpiredSlots(Timestamp now) const;

  /// Declares the slot's worker dead: bumps and returns the slot's epoch
  /// (the replacement's epoch) and unseats it until the next Seat(). Every
  /// frame stamped with an older epoch is fenced from here on.
  uint64_t Fence(uint32_t slot);

  /// The slot's current epoch (0 when the slot has never been seated).
  uint64_t epoch(uint32_t slot) const;

  bool seated(uint32_t slot) const;

  Duration heartbeat_deadline() const { return deadline_; }

 private:
  struct Member {
    uint64_t epoch = 0;
    Timestamp last_heard;
    bool seated = false;
  };

  void EnsureSlot(uint32_t slot);

  Duration deadline_;
  std::vector<Member> members_;  // Indexed by slot.
};

}  // namespace esp::cluster

#endif  // ESP_CLUSTER_MEMBERSHIP_H_
