#include "cluster/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

namespace esp::cluster {

StatusOr<WorkerEndpoint> ForkWorkerSupervisor::Spawn(
    const WorkerSpawnSpec& spec) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return Status::FromErrno("pipe", errno);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return Status::FromErrno("fork", errno);
  }

  if (pid == 0) {
    // Child: become the worker. _exit (not exit) on every path — the
    // parent's atexit handlers and stdio buffers must not replay here.
    ::close(pipe_fds[0]);
    WorkerOptions options = spec.options;
    options.port_report_fd = pipe_fds[1];
    const Status status = RunWorker(options, spec.factory);
    _exit(status.ok() ? 0 : 1);
  }

  // Parent: the port arriving on the pipe is the ready signal.
  ::close(pipe_fds[1]);
  unsigned char bytes[2];
  size_t got = 0;
  while (got < sizeof(bytes)) {
    const ssize_t n =
        ::read(pipe_fds[0], bytes + got, sizeof(bytes) - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // Worker died before reporting ready.
    got += static_cast<size_t>(n);
  }
  ::close(pipe_fds[0]);
  if (got < sizeof(bytes)) {
    // Reap the corpse and surface the failure.
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return Status::Unavailable("worker slot " +
                               std::to_string(spec.options.slot) +
                               " died before reporting ready");
  }

  WorkerEndpoint endpoint;
  endpoint.pid = pid;
  endpoint.port = static_cast<uint16_t>(bytes[0]) |
                  (static_cast<uint16_t>(bytes[1]) << 8);
  return endpoint;
}

Status ForkWorkerSupervisor::Kill(int64_t pid) {
  if (pid <= 0) return Status::OK();
  // ESRCH means it is already gone (possibly killed by the chaos harness
  // and reaped) — that is the state Kill wants.
  if (::kill(static_cast<pid_t>(pid), SIGKILL) != 0 && errno != ESRCH) {
    return Status::FromErrno("kill", errno);
  }
  while (::waitpid(static_cast<pid_t>(pid), nullptr, 0) < 0) {
    if (errno == EINTR) continue;
    if (errno == ECHILD) break;  // Already reaped or not our child.
    return Status::FromErrno("waitpid", errno);
  }
  return Status::OK();
}

}  // namespace esp::cluster
