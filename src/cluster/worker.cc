#include "cluster/worker.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "net/socket.h"

namespace esp::cluster {

namespace {

using core::RecoveryCoordinator;
using net::FrameDecoder;
using net::MessageKind;
using net::SequenceTracker;

/// Encodes one tick's partial aggregates as the kTickResult frame this
/// worker would (re)send for it.
std::string EncodeResultFrame(const WorkerOptions& options, Timestamp now,
                              const core::TickResult& result) {
  net::TickResultMessage msg;
  msg.slot = options.slot;
  msg.epoch = options.epoch;
  msg.tick_time = now;
  msg.partials.reserve(result.group_partials.size());
  for (const core::GroupPartial& partial : result.group_partials) {
    msg.partials.push_back(net::WirePartial{partial.device_type,
                                            partial.group_id,
                                            partial.relation});
  }
  return net::EncodeTickResult(msg);
}

/// One live coordinator session.
struct Session {
  net::UniqueFd fd;
  FrameDecoder decoder;
  bool welcomed = false;

  explicit Session(size_t max_frame_bytes) : decoder(max_frame_bytes) {}
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Status RunWorker(const WorkerOptions& options, const EngineFactory& factory) {
  ESP_ASSIGN_OR_RETURN(std::unique_ptr<core::StreamEngine> engine, factory());
  engine->SetExportGroupPartials(true);

  core::RecoveryOptions ropts = options.recovery;
  // Cluster invariant: checkpoints happen only on coordinator request,
  // after the tick they cover has been merged (see worker.h).
  ropts.checkpoint_interval_ticks = 0;

  // The most recent tick result, kept encoded for re-send after the next
  // Welcome. Replay rebuilds it for a replacement worker.
  std::optional<std::string> last_result_frame;

  std::unique_ptr<RecoveryCoordinator> recovery;
  if (options.resume) {
    const auto on_replayed =
        [&](Timestamp now, const core::TickResult& result) -> Status {
      last_result_frame = EncodeResultFrame(options, now, result);
      return Status::OK();
    };
    ESP_ASSIGN_OR_RETURN(recovery,
                         RecoveryCoordinator::Resume(engine.get(), ropts,
                                                     /*report=*/nullptr,
                                                     on_replayed));
  } else {
    ESP_ASSIGN_OR_RETURN(recovery,
                         RecoveryCoordinator::Start(engine.get(), ropts));
  }

  ESP_ASSIGN_OR_RETURN(net::ListenSocket listener,
                       net::TcpListen(options.bind_address, options.port));
  if (options.port_report_fd >= 0) {
    const uint16_t port = listener.port;
    const char bytes[2] = {static_cast<char>(port & 0xff),
                           static_cast<char>((port >> 8) & 0xff)};
    size_t written = 0;
    while (written < sizeof(bytes)) {
      const ssize_t n = ::write(options.port_report_fd, bytes + written,
                                sizeof(bytes) - written);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // Supervisor gone; keep serving regardless.
      written += static_cast<size_t>(n);
    }
    ::close(options.port_report_fd);
  }

  // One applied sequenced frame == one journal record, so the journal
  // length is the resume cursor a fresh OR recovered worker hands back.
  SequenceTracker tracker;
  tracker.Reset(recovery->journal_records());

  std::optional<Session> session;
  auto last_beat = std::chrono::steady_clock::now();

  const auto send = [&](const std::string& frame) -> bool {
    if (!session.has_value()) return false;
    const Status sent =
        net::SendAll(session->fd.get(), frame, options.write_timeout);
    if (!sent.ok()) session.reset();  // Coordinator redials; we keep state.
    return sent.ok();
  };

  const auto heartbeat = [&] {
    if (!session.has_value() || !session->welcomed) return;
    net::HeartbeatMessage beat;
    beat.slot = options.slot;
    beat.epoch = options.epoch;
    beat.last_applied_seq = tracker.last_applied();
    send(net::EncodeHeartbeat(beat));
    last_beat = std::chrono::steady_clock::now();
  };

  // Handles one decoded payload; returns false when the session must be
  // torn down (protocol violation or sequence gap — the coordinator's
  // reconnect resumes from the Welcome cursor).
  const auto handle = [&](const std::string& payload) -> StatusOr<bool> {
    ESP_ASSIGN_OR_RETURN(const MessageKind kind, net::PeekKind(payload));

    if (!session->welcomed) {
      if (kind != MessageKind::kClusterHello) return false;
      ESP_ASSIGN_OR_RETURN(const net::ClusterHelloMessage hello,
                           net::DecodeClusterHello(payload));
      if (hello.slot != options.slot || hello.epoch != options.epoch) {
        // A zombie coordinator link (stale epoch) or a mis-routed dial:
        // refuse loudly, then drop the connection.
        send(net::EncodeError(Status::FailedPrecondition(
            "cluster hello for slot " + std::to_string(hello.slot) +
            " epoch " + std::to_string(hello.epoch) + ", this worker is slot " +
            std::to_string(options.slot) + " epoch " +
            std::to_string(options.epoch))));
        return false;
      }
      net::WelcomeMessage welcome;
      welcome.last_applied_seq = tracker.last_applied();
      if (!send(net::EncodeWelcome(welcome))) return false;
      // Re-offer the latest result; the coordinator dedups by tick time.
      if (last_result_frame.has_value() && !send(*last_result_frame)) {
        return false;
      }
      session->welcomed = true;
      heartbeat();
      return true;
    }

    switch (kind) {
      case MessageKind::kBatch: {
        std::string_view tuple_bytes;
        ESP_ASSIGN_OR_RETURN(const net::BatchHeader header,
                             net::DecodeBatchHeader(payload, &tuple_bytes));
        const Status admit = tracker.Check(header.seq);
        if (admit.code() == StatusCode::kAlreadyExists) {
          return send(net::EncodeAck(tracker.last_applied()));
        }
        if (!admit.ok()) return false;  // Gap: force a resume.
        ESP_ASSIGN_OR_RETURN(const stream::SchemaRef schema,
                             engine->TypeReadingSchema(header.device_type));
        ESP_ASSIGN_OR_RETURN(
            std::vector<stream::Tuple> readings,
            net::DecodeBatchTuples(header, tuple_bytes, schema));
        // Journal I/O failure is fatal — better a dead worker (the
        // coordinator fences and respawns) than an unjournaled apply.
        ESP_RETURN_IF_ERROR(
            recovery->PushBatch(header.device_type, std::move(readings)));
        tracker.Commit(header.seq);
        return send(net::EncodeAck(tracker.last_applied()));
      }
      case MessageKind::kTick: {
        ESP_ASSIGN_OR_RETURN(const net::TickMessage tick,
                             net::DecodeTick(payload));
        const Status admit = tracker.Check(tick.seq);
        if (admit.code() == StatusCode::kAlreadyExists) {
          return send(net::EncodeAck(tracker.last_applied()));
        }
        if (!admit.ok()) return false;
        ESP_ASSIGN_OR_RETURN(const core::TickResult result,
                             recovery->Tick(tick.time));
        tracker.Commit(tick.seq);
        last_result_frame = EncodeResultFrame(options, tick.time, result);
        if (!send(*last_result_frame)) return false;
        return send(net::EncodeAck(tracker.last_applied()));
      }
      case MessageKind::kCheckpointRequest: {
        ESP_RETURN_IF_ERROR(net::DecodeCheckpointRequest(payload));
        // Unsequenced and idempotent; TCP ordering puts it after the tick
        // it covers. No reply — the coordinator never waits on it.
        ESP_RETURN_IF_ERROR(recovery->Checkpoint());
        return true;
      }
      default:
        return false;  // Protocol violation.
    }
  };

  for (;;) {
    if (options.stop != nullptr && options.stop->load()) return Status::OK();

    struct pollfd fds[2];
    fds[0] = {listener.fd.get(), POLLIN, 0};
    nfds_t nfds = 1;
    if (session.has_value()) {
      fds[1] = {session->fd.get(), POLLIN, 0};
      nfds = 2;
    }
    const int poll_ms = static_cast<int>(
        std::max<int64_t>(1, options.heartbeat_interval.micros() / 1000 / 2));
    const int n = ::poll(fds, nfds, poll_ms);
    if (n < 0 && errno != EINTR) return Status::FromErrno("poll", errno);

    if (n > 0 && (fds[0].revents & POLLIN)) {
      net::UniqueFd accepted(
          ::accept4(listener.fd.get(), nullptr, nullptr, SOCK_CLOEXEC));
      if (accepted.valid()) {
        // The newest dial wins: the coordinator only redials after it gave
        // up on the previous connection.
        session.emplace(options.max_frame_bytes);
        session->fd = std::move(accepted);
      }
    }

    if (session.has_value() && nfds == 2 &&
        (fds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
      char buf[64 * 1024];
      for (;;) {
        const ssize_t got =
            ::recv(session->fd.get(), buf, sizeof(buf), MSG_DONTWAIT);
        if (got > 0) {
          session->decoder.Feed(
              std::string_view(buf, static_cast<size_t>(got)));
          continue;
        }
        if (got == 0) {
          session.reset();  // Orderly close; await the redial.
        } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          session.reset();
        }
        break;
      }
      while (session.has_value()) {
        StatusOr<std::optional<std::string>> next = session->decoder.Next();
        if (!next.ok()) {
          session.reset();  // Framing lost; the redial starts clean.
          break;
        }
        if (!next->has_value()) break;
        StatusOr<bool> keep = handle(**next);
        if (!keep.ok()) return keep.status();  // Fatal (journal I/O).
        if (!*keep) {
          session.reset();
          break;
        }
      }
    }

    if (SecondsSince(last_beat) >=
        options.heartbeat_interval.seconds()) {
      heartbeat();
    }
  }
}

}  // namespace esp::cluster
