#ifndef ESP_CLUSTER_COORDINATOR_H_
#define ESP_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "cluster/supervisor.h"
#include "common/status.h"
#include "common/time.h"
#include "core/processor.h"
#include "net/socket.h"
#include "net/wire.h"

namespace esp::cluster {

struct ClusterOptions {
  /// Worker slots; proximity groups are assigned slot = hash(group) % N.
  size_t num_workers = 2;

  /// Root directory for per-slot worker storage (`<root>/slot_<i>`);
  /// created if missing (one level).
  std::string storage_root;

  /// Worker durability knobs (each slot's RecoveryOptions inherits these).
  bool fsync = true;
  size_t retain_snapshots = 3;

  /// Broadcast a checkpoint request to every worker each N merged ticks
  /// (0 = never). Checkpoints are requested only AFTER the covered tick's
  /// results were merged, so a replacement's journal suffix always reaches
  /// any tick the coordinator may still be awaiting.
  uint64_t checkpoint_interval_ticks = 0;

  Duration heartbeat_interval = Duration::Millis(50);
  /// A worker silent for longer than this is fenced and replaced.
  Duration heartbeat_deadline = Duration::Millis(750);
  /// How long Tick() waits for one worker's result before declaring the
  /// worker dead and failing over.
  Duration reply_timeout = Duration::Seconds(10);
  Duration connect_timeout = Duration::Seconds(5);
  Duration write_timeout = Duration::Seconds(5);
  size_t max_frame_bytes = net::kDefaultMaxFrameBytes;

  /// Failovers of one slot within a single Tick() before giving up — the
  /// crash-loop brake (a worker that dies during every recovery is a
  /// persistent fault no respawn fixes).
  size_t max_failovers_per_tick = 4;

  /// Liveness clock; injected for deterministic tests. Defaults to
  /// SteadyNow(). Distinct from the virtual tick clock.
  std::function<Timestamp()> clock;
};

struct ClusterStats {
  int64_t ticks = 0;
  int64_t batches_sent = 0;
  int64_t readings_routed = 0;
  int64_t worker_deaths = 0;
  int64_t workers_spawned = 0;
  /// Frames dropped because they carried a fenced (stale) epoch.
  int64_t fenced_frames = 0;
  /// Tick results dropped as duplicates of an already-merged tick (the
  /// worker re-offering its buffered result after a reconnect).
  int64_t duplicate_results = 0;
  int64_t heartbeats_received = 0;
  int64_t stage_errors = 0;
  /// One sample per failover: death detection -> replacement recovered,
  /// welcomed, and unacked traffic resent. Milliseconds.
  std::vector<double> recovery_ms;
};

/// \brief The cluster head: routes device streams to worker processes by
/// proximity-group hash, drives the shared tick clock, collects each
/// worker's post-Merge partial aggregates, and runs the cross-group
/// Arbitrate and cross-type Virtualize centrally — the distributed
/// deployment of the paper's pipeline with the same bitwise-equivalence
/// guarantee the sharded engine proves in-process (docs/DISTRIBUTED.md).
///
/// Failure model: workers heartbeat over their coordinator link; a worker
/// that misses the heartbeat deadline, drops its connection, or fails to
/// answer a tick is fenced (its epoch is bumped — every frame it may still
/// emit is dropped on arrival), killed, and replaced by a new process that
/// recovers from the slot's checkpoint + journal suffix. In-flight frames
/// for the dead epoch are either replayed exactly once (the replacement's
/// Welcome cursor tells the coordinator what to resend) or provably
/// discarded (fenced).
///
/// Configuration mirrors EspProcessor: AddProximityGroup / AddPipeline /
/// SetHealthPolicy / SetVirtualize, then Start(supervisor). Per tick: Push
/// readings, then Tick(now) — tick times must be STRICTLY increasing (the
/// tick time doubles as the cluster-wide result key). Single-threaded; one
/// owner drives it.
class ClusterCoordinator {
 public:
  explicit ClusterCoordinator(ClusterOptions options);
  ~ClusterCoordinator();
  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  Status AddProximityGroup(core::ProximityGroup group);
  Status AddPipeline(core::DeviceTypePipeline pipeline);
  Status SetHealthPolicy(core::HealthPolicy policy);
  void SetVirtualize(std::unique_ptr<core::Stage> stage);

  /// Spawns and connects every worker (fresh storage, epoch 1). The
  /// supervisor must outlive the coordinator.
  Status Start(WorkerSupervisor* supervisor);

  /// Routes one reading to its proximity group's worker (buffered; flushed
  /// as atomic batches at the next Tick). Validates type, schema, and
  /// receptor membership up front.
  Status Push(const std::string& device_type, stream::Tuple raw);

  /// Flushes routed readings, ticks every worker, awaits and reassembles
  /// their partials in global group-registration order, then runs
  /// Arbitrate/Virtualize — returning exactly what a single EspProcessor
  /// over the same inputs would. Fails over dead workers as needed.
  StatusOr<core::TickResult> Tick(Timestamp now);

  /// Broadcasts an (unsequenced, idempotent) checkpoint request.
  Status Checkpoint();

  /// Drains heartbeats and fails over any slot past the heartbeat
  /// deadline — the between-ticks death detector. Cheap when all is well.
  Status CheckLiveness();

  /// Kills every worker. Idempotent; also run by the destructor.
  Status Stop();

  /// Which slot a proximity group lives on (valid after Start).
  StatusOr<uint32_t> SlotOfGroup(const std::string& device_type,
                                 const std::string& group_id) const;

  /// The live worker process handle for a slot — the chaos harness's
  /// SIGKILL target. -1 when unseated.
  int64_t worker_pid(uint32_t slot) const;

  uint64_t worker_epoch(uint32_t slot) const;

  const ClusterStats& stats() const { return stats_; }

 private:
  struct PendingReading {
    std::string device_type;  // Canonical (pipeline) spelling.
    stream::Tuple reading;
  };

  struct UnackedFrame {
    uint64_t seq = 0;
    std::string bytes;
  };

  /// Coordinator-side state of one worker slot.
  struct WorkerLink {
    uint32_t slot = 0;
    uint64_t epoch = 0;
    int64_t pid = -1;
    uint16_t port = 0;
    net::UniqueFd fd;
    net::FrameDecoder decoder;
    uint64_t next_seq = 1;
    uint64_t last_acked = 0;
    std::deque<UnackedFrame> unacked;
    std::vector<PendingReading> pending;
    /// Partials received for the tick currently being awaited.
    std::optional<std::vector<net::WirePartial>> result;

    WorkerLink() : decoder(net::kDefaultMaxFrameBytes) {}
  };

  /// Per-type wrapper state, mirroring ShardedEspProcessor::TypeRuntime.
  struct TypeRuntime {
    core::DeviceTypePipeline config;
    /// Global registration order of this type's groups — the reassembly
    /// order that reproduces the monolith's group-ordered Union.
    std::vector<std::string> group_order;
    std::unique_ptr<core::Stage> arbitrate;  // May be null.
    stream::SchemaRef group_output_schema;
    stream::SchemaRef output_schema;
  };

  StatusOr<TypeRuntime*> FindType(const std::string& device_type);
  uint32_t AssignSlot(const std::string& device_type,
                      const std::string& group_id) const;
  WorkerSpawnSpec MakeSpawnSpec(uint32_t slot, uint64_t epoch,
                                bool resume) const;

  /// Spawns (or respawns) the slot's worker and completes the handshake:
  /// dial, ClusterHello, Welcome, prune acked, resend unacked in order.
  Status SpawnAndConnect(WorkerLink& link, bool resume);

  /// Fences, kills, respawns, and resumes one slot; records a recovery
  /// sample.
  Status Failover(WorkerLink& link);

  /// Queues one sequenced frame and attempts transmission (a failure only
  /// drops the connection; the frame is resent after failover).
  void SendSequenced(WorkerLink& link,
                     const std::function<std::string(uint64_t seq)>& encode);

  /// Encodes and sends the slot's pending readings as per-type batches.
  void FlushPushes(WorkerLink& link);

  /// Processes one frame from a worker. `awaiting` is the tick time Tick()
  /// is currently collecting (nullopt outside Tick).
  Status HandleWorkerFrame(WorkerLink& link, const std::string& payload,
                           const std::optional<Timestamp>& awaiting);

  /// Reads until the link has produced a result for `now`, failing over on
  /// death. Bounded by reply_timeout per attempt and
  /// max_failovers_per_tick.
  Status AwaitResult(WorkerLink& link, Timestamp now);

  /// Non-blocking drain of whatever the link's socket holds.
  Status DrainLink(WorkerLink& link,
                   const std::optional<Timestamp>& awaiting);

  StatusOr<stream::Relation> RunStageGuarded(core::Stage* stage,
                                             const std::string& input_name,
                                             stream::Relation input,
                                             Timestamp now);

  ClusterOptions options_;
  WorkerSupervisor* supervisor_ = nullptr;
  MembershipTable membership_;
  ClusterStats stats_;

  // Deployment configuration (pre-Start).
  std::vector<core::ProximityGroup> groups_;
  core::HealthPolicy policy_;
  std::unique_ptr<core::Stage> virtualize_;
  std::vector<TypeRuntime> types_;

  /// Arbitrate-stripped, never-ticked local twin of the deployment: the
  /// schema oracle for reading schemas (Push validation) and group output
  /// schemas (partial decoding), never fed any data.
  std::unique_ptr<core::EspProcessor> oracle_;

  /// receptor -> group id, per device type (keys are "type\0receptor").
  std::map<std::string, std::string> receptor_group_;
  /// "type\0group" -> slot.
  std::map<std::string, uint32_t> group_slot_;

  std::vector<WorkerLink> links_;
  bool started_ = false;
  bool has_ticked_ = false;
  Timestamp last_tick_;
  uint64_t ticks_since_checkpoint_ = 0;
};

}  // namespace esp::cluster

#endif  // ESP_CLUSTER_COORDINATOR_H_
