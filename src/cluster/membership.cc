#include "cluster/membership.h"

#include <chrono>

namespace esp::cluster {

Timestamp SteadyNow() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return Timestamp::Micros(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

void MembershipTable::EnsureSlot(uint32_t slot) {
  if (members_.size() <= slot) members_.resize(slot + 1);
}

void MembershipTable::Seat(uint32_t slot, uint64_t epoch, Timestamp now) {
  EnsureSlot(slot);
  members_[slot].epoch = epoch;
  members_[slot].last_heard = now;
  members_[slot].seated = true;
}

Status MembershipTable::RecordHeartbeat(uint32_t slot, uint64_t epoch,
                                        Timestamp now) {
  if (slot >= members_.size() || !members_[slot].seated) {
    return Status::FailedPrecondition("heartbeat for unseated slot " +
                                      std::to_string(slot));
  }
  Member& member = members_[slot];
  if (epoch != member.epoch) {
    return Status::FailedPrecondition(
        "fenced heartbeat: slot " + std::to_string(slot) + " epoch " +
        std::to_string(epoch) + " != current " +
        std::to_string(member.epoch));
  }
  if (now > member.last_heard) member.last_heard = now;
  return Status::OK();
}

std::vector<uint32_t> MembershipTable::ExpiredSlots(Timestamp now) const {
  std::vector<uint32_t> expired;
  for (uint32_t slot = 0; slot < members_.size(); ++slot) {
    const Member& member = members_[slot];
    if (member.seated && now - member.last_heard > deadline_) {
      expired.push_back(slot);
    }
  }
  return expired;
}

uint64_t MembershipTable::Fence(uint32_t slot) {
  EnsureSlot(slot);
  members_[slot].seated = false;
  return ++members_[slot].epoch;
}

uint64_t MembershipTable::epoch(uint32_t slot) const {
  return slot < members_.size() ? members_[slot].epoch : 0;
}

bool MembershipTable::seated(uint32_t slot) const {
  return slot < members_.size() && members_[slot].seated;
}

}  // namespace esp::cluster
