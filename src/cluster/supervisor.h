#ifndef ESP_CLUSTER_SUPERVISOR_H_
#define ESP_CLUSTER_SUPERVISOR_H_

#include <cstdint>

#include "cluster/worker.h"
#include "common/status.h"

namespace esp::cluster {

/// Everything needed to bring one worker to life. `options.port_report_fd`
/// is owned by the supervisor (it wires up the ready-signal channel);
/// callers leave it at -1.
struct WorkerSpawnSpec {
  WorkerOptions options;
  EngineFactory factory;
};

struct WorkerEndpoint {
  /// Supervisor-scoped handle for Kill(); the process id for the fork
  /// supervisor.
  int64_t pid = -1;
  /// Port the worker is listening on, reported only after its recovery
  /// completed — a successful dial implies a ready worker.
  uint16_t port = 0;
};

/// \brief How the coordinator creates and destroys worker processes —
/// injected so tests can substitute their own lifecycle (and so the chaos
/// harness can SIGKILL workers behind the coordinator's back).
class WorkerSupervisor {
 public:
  virtual ~WorkerSupervisor() = default;

  /// Spawns a worker and blocks until it reports ready (recovered and
  /// listening). A worker that dies during recovery surfaces as an error.
  virtual StatusOr<WorkerEndpoint> Spawn(const WorkerSpawnSpec& spec) = 0;

  /// Forcibly terminates a worker (SIGKILL semantics: no cleanup runs; the
  /// kernel releases its storage lock). Idempotent — killing an
  /// already-dead worker reaps it and succeeds.
  virtual Status Kill(int64_t pid) = 0;
};

/// \brief fork()-based supervision: each worker is a child process running
/// RunWorker() and nothing else. The child never returns into the parent's
/// code — it _exit()s directly (no atexit handlers, no stdio flush), so a
/// forked worker cannot corrupt the parent's buffered state. The bound port
/// travels back over a pipe, written by the worker only after recovery.
class ForkWorkerSupervisor : public WorkerSupervisor {
 public:
  StatusOr<WorkerEndpoint> Spawn(const WorkerSpawnSpec& spec) override;
  Status Kill(int64_t pid) override;
};

}  // namespace esp::cluster

#endif  // ESP_CLUSTER_SUPERVISOR_H_
