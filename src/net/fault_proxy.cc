#include "net/fault_proxy.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

namespace esp::net {

namespace {

constexpr int kPollMs = 20;
constexpr size_t kChunkBytes = 16 * 1024;

bool SendAllBlocking(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

FaultProxy::FaultProxy(FaultProxyOptions options)
    : options_(std::move(options)),
      client_to_server_{&options_.client_to_server,
                        Rng(options_.client_to_server.seed),
                        &FaultProxyStats::client_to_server},
      server_to_client_{&options_.server_to_client,
                        Rng(options_.server_to_client.seed),
                        &FaultProxyStats::server_to_client} {}

FaultProxy::~FaultProxy() { Stop(); }

StatusOr<std::unique_ptr<FaultProxy>> FaultProxy::Start(
    FaultProxyOptions options) {
  std::unique_ptr<FaultProxy> proxy(new FaultProxy(std::move(options)));
  ESP_RETURN_IF_ERROR(proxy->Init());
  proxy->running_.store(true);
  proxy->loop_ = std::thread([raw = proxy.get()] { raw->Loop(); });
  return proxy;
}

Status FaultProxy::Init() {
  ESP_ASSIGN_OR_RETURN(
      ListenSocket listener,
      TcpListen(options_.bind_address, options_.listen_port));
  listen_fd_ = std::move(listener.fd);
  port_ = listener.port;
  return Status::OK();
}

void FaultProxy::Stop() {
  running_.store(false);
  if (loop_.joinable()) loop_.join();
  pairs_.clear();
}

FaultProxyStats FaultProxy::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void FaultProxy::Loop() {
  while (running_.load()) {
    std::vector<struct pollfd> fds;
    fds.push_back({listen_fd_.get(), POLLIN, 0});
    for (const Pair& pair : pairs_) {
      fds.push_back({pair.client.get(), POLLIN, 0});
      fds.push_back({pair.upstream.get(), POLLIN, 0});
    }
    const int n = ::poll(fds.data(), fds.size(), kPollMs);
    if (n < 0 && errno != EINTR) break;
    if (n <= 0) continue;

    if (fds[0].revents & POLLIN) HandleAccept();

    // Walk the pairs; tear down any whose forwarding failed. Index math:
    // pair i owns fds[1 + 2i] (client) and fds[2 + 2i] (upstream).
    std::vector<size_t> dead;
    for (size_t i = 0; i < pairs_.size(); ++i) {
      const size_t ci = 1 + 2 * i;
      const size_t ui = ci + 1;
      if (ci >= fds.size() || ui >= fds.size()) break;  // Accepted this pass.
      bool alive = true;
      if (fds[ci].revents & (POLLIN | POLLHUP | POLLERR)) {
        alive = ForwardChunk(pairs_[i].client.get(),
                             pairs_[i].upstream.get(), client_to_server_);
      }
      if (alive && (fds[ui].revents & (POLLIN | POLLHUP | POLLERR))) {
        alive = ForwardChunk(pairs_[i].upstream.get(),
                             pairs_[i].client.get(), server_to_client_);
      }
      if (!alive) dead.push_back(i);
    }
    for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
      pairs_.erase(pairs_.begin() + static_cast<ptrdiff_t>(*it));
    }
  }
}

void FaultProxy::HandleAccept() {
  for (;;) {
    UniqueFd client(::accept4(listen_fd_.get(), nullptr, nullptr,
                              SOCK_CLOEXEC));
    if (!client.valid()) return;  // EAGAIN or transient error: next pass.
    StatusOr<UniqueFd> upstream = TcpConnect(
        options_.target_host, options_.target_port, Duration::Seconds(5));
    if (!upstream.ok()) continue;  // Drop the client; it will retry.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.connections++;
    }
    Pair pair;
    pair.client = std::move(client);
    pair.upstream = std::move(*upstream);
    pairs_.push_back(std::move(pair));
  }
}

bool FaultProxy::ForwardChunk(int from, int to, Direction& dir) {
  char buf[kChunkBytes];
  const ssize_t n = ::recv(from, buf, sizeof(buf), MSG_DONTWAIT);
  if (n == 0) return false;  // EOF: tear down the pair.
  if (n < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  std::string_view chunk(buf, static_cast<size_t>(n));
  const FaultDirectionOptions& knobs = *dir.options;
  FaultDirectionStats& tally = stats_.*(dir.stats);

  if (knobs.any()) {
    if (dir.rng.Bernoulli(knobs.p_reset)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      tally.resets++;
      return false;  // Mid-stream reset: nothing forwarded.
    }
    if (dir.rng.Bernoulli(knobs.p_truncate)) {
      // Deliver a strict prefix (possibly cutting a frame in half), then
      // kill the pair — the mid-frame-cut shape.
      const size_t keep = static_cast<size_t>(
          dir.rng.UniformInt(0, static_cast<int64_t>(chunk.size()) - 1));
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        tally.truncations++;
      }
      if (keep > 0) SendAllBlocking(to, chunk.substr(0, keep));
      return false;
    }
    std::string mutated;
    if (dir.rng.Bernoulli(knobs.p_corrupt)) {
      mutated.assign(chunk);
      const size_t at = static_cast<size_t>(
          dir.rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[at] = static_cast<char>(mutated[at] ^ 0x5a);
      chunk = mutated;
      std::lock_guard<std::mutex> lock(stats_mu_);
      tally.corruptions++;
    }
    if (dir.rng.Bernoulli(knobs.p_stall)) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        tally.stalls++;
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(knobs.stall.micros()));
    }
    const bool duplicate = dir.rng.Bernoulli(knobs.p_duplicate);
    if (!SendAllBlocking(to, chunk)) return false;
    if (duplicate) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        tally.duplicates++;
      }
      if (!SendAllBlocking(to, chunk)) return false;
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    tally.chunks_forwarded++;
    return true;
  }

  if (!SendAllBlocking(to, chunk)) return false;
  std::lock_guard<std::mutex> lock(stats_mu_);
  tally.chunks_forwarded++;
  return true;
}

}  // namespace esp::net
