#ifndef ESP_NET_INGEST_SERVER_H_
#define ESP_NET_INGEST_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/deployment.h"
#include "core/engine.h"
#include "core/recovery.h"
#include "net/socket.h"
#include "net/wire.h"

namespace esp::net {

/// \brief Where the ingest server delivers decoded input — either straight
/// into a StreamEngine or through a RecoveryCoordinator so every networked
/// reading is journaled before it is applied. All calls happen on the
/// server's event-loop thread.
class IngestSink {
 public:
  virtual ~IngestSink() = default;

  virtual Status Push(const std::string& device_type, stream::Tuple raw) = 0;
  virtual StatusOr<core::TickResult> Tick(Timestamp now) = 0;

  /// Raw-reading schema used to decode batch tuple bytes.
  virtual StatusOr<stream::SchemaRef> ReadingSchema(
      const std::string& device_type) const = 0;

  /// Installs (or replaces) the pull source the engine's Health() reads its
  /// ingest counters from; a no-op for sinks with no engine to report
  /// through. The server installs its thread-safe live snapshot at Start()
  /// and a frozen final copy at Stop().
  virtual void SetStatsSource(core::IngestStatsSource source) = 0;
};

/// Delivers directly into a StreamEngine (no durability).
class EngineSink : public IngestSink {
 public:
  explicit EngineSink(core::StreamEngine* engine) : engine_(engine) {}

  Status Push(const std::string& device_type, stream::Tuple raw) override {
    return engine_->Push(device_type, std::move(raw));
  }
  StatusOr<core::TickResult> Tick(Timestamp now) override {
    return engine_->Tick(now);
  }
  StatusOr<stream::SchemaRef> ReadingSchema(
      const std::string& device_type) const override {
    return engine_->TypeReadingSchema(device_type);
  }
  void SetStatsSource(core::IngestStatsSource source) override {
    engine_->SetIngestStatsSource(std::move(source));
  }

 private:
  core::StreamEngine* engine_;
};

/// Delivers through a RecoveryCoordinator (journal-before-apply), so a
/// crashed networked session replays to the same state.
class RecoverySink : public IngestSink {
 public:
  RecoverySink(core::RecoveryCoordinator* recovery,
               core::StreamEngine* engine)
      : recovery_(recovery), engine_(engine) {}

  Status Push(const std::string& device_type, stream::Tuple raw) override {
    return recovery_->Push(device_type, std::move(raw));
  }
  StatusOr<core::TickResult> Tick(Timestamp now) override {
    return recovery_->Tick(now);
  }
  StatusOr<stream::SchemaRef> ReadingSchema(
      const std::string& device_type) const override {
    return engine_->TypeReadingSchema(device_type);
  }
  void SetStatsSource(core::IngestStatsSource source) override {
    engine_->SetIngestStatsSource(std::move(source));
  }

 private:
  core::RecoveryCoordinator* recovery_;
  core::StreamEngine* engine_;
};

/// What the server does when a connection's pending-frame queue is full.
enum class BackpressurePolicy {
  /// Stop reading from the connection (EPOLLIN interest is dropped) until
  /// the queue drains. TCP flow control propagates the stall to the client;
  /// nothing is lost.
  kBlock,
  /// Drop the excess batch frame but advance its sequence number and ack it,
  /// counting the deliberate loss in shed_batches / shed_readings. Ticks are
  /// never shed — they carry the experiment clock.
  kShed,
};

StatusOr<BackpressurePolicy> ParseBackpressurePolicy(const std::string& text);

struct IngestServerOptions;

/// Converts a deployment spec's [ingest] section (core/deployment.h) into
/// runnable server options.
StatusOr<IngestServerOptions> MakeIngestServerOptions(
    const core::IngestSpecOptions& spec);

struct IngestServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks a free port; read it back via IngestServer::port().
  uint16_t port = 0;

  size_t max_connections = 64;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Batches above this reading count are a protocol error (closes the
  /// connection) even when their frame fits max_frame_bytes.
  size_t max_batch_readings = 100000;

  /// Per-connection pending-frame queue bound, and what happens at it.
  size_t queue_limit_frames = 256;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  /// Decoded frames applied per connection per loop pass; 0 drains fully.
  /// Small budgets make backpressure observable under test load.
  size_t apply_budget_frames = 0;

  /// A connection holding a partial frame longer than this is reaped
  /// (slow-loris defence). Zero disables.
  Duration read_timeout = Duration::Seconds(10);
  /// A connection with no traffic at all for this long is reaped. Zero
  /// disables.
  Duration idle_timeout = Duration::Seconds(60);

  /// Observes every applied tick's outputs on the event-loop thread (the
  /// chaos harness fingerprints them here).
  std::function<void(Timestamp, const core::TickResult&)> on_tick;
};

/// \brief Epoll-based non-blocking TCP front door feeding an IngestSink.
///
/// Single event-loop thread; all sink and engine-stats access happens there,
/// so the engine below needs no locking. Frames apply in exactly the order
/// each client sent them (sequence-checked), which is what makes a
/// networked run bitwise-identical to an in-process run of the same inputs.
///
/// Protocol, backpressure, and resume semantics: docs/NETWORKING.md.
class IngestServer {
 public:
  /// Binds, spawns the event loop, and returns a running server.
  static StatusOr<std::unique_ptr<IngestServer>> Start(
      IngestSink* sink, IngestServerOptions options);

  ~IngestServer();
  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// The bound port (useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// Stops the event loop and closes every connection. Idempotent.
  void Stop();

  /// Thread-safe copy of the aggregate + per-client counters.
  core::IngestStats StatsSnapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Frame queued behind the apply budget: a decoded batch envelope (tuple
  /// bytes still raw) or a tick.
  struct PendingFrame {
    bool is_tick = false;
    /// Shed at admission (kShed policy): applies as a counted no-op — the
    /// sequence still commits and acks, so the loss is deliberate and
    /// visible, never silent.
    bool shed = false;
    uint64_t seq = 0;
    // Batch:
    std::string device_type;
    uint32_t count = 0;
    std::string tuple_bytes;
    // Tick:
    Timestamp tick_time;
  };

  /// Durable per-client-id state: survives reconnects of the same id.
  struct ClientState {
    SequenceTracker tracker;
    core::ClientIngestStats stats;
  };

  struct Connection {
    UniqueFd fd;
    /// Monotonic accept counter, packed into epoll_event.data.u64 next to
    /// the fd. Events carrying a stale generation (the kernel recycled the
    /// fd number for a new connection within one event pass) are ignored
    /// instead of being applied to the wrong connection.
    uint64_t generation = 0;
    FrameDecoder decoder;
    std::string client_id;        // Empty until the handshake completes.
    ClientState* client = nullptr;  // Set with client_id.
    /// Next admissible sequence: tracker.last_applied + 1 + |pending|.
    /// Admission checks run against this, commits against the tracker, so
    /// queued-but-unapplied frames are neither re-admitted nor acked early.
    uint64_t next_expected = 0;
    std::deque<PendingFrame> pending;
    std::string outbuf;           // Unsent welcome/ack/error bytes.
    bool reads_paused = false;    // EPOLLIN interest dropped (kBlock).
    bool writes_armed = false;    // EPOLLOUT interest raised.
    bool closing = false;         // Error sent; close once outbuf drains.
    Clock::time_point last_byte;  // Last time any byte arrived.
    Clock::time_point partial_since;  // Valid while a partial frame waits.

    explicit Connection(UniqueFd socket, size_t max_frame_bytes,
                        Clock::time_point now)
        : fd(std::move(socket)),
          decoder(max_frame_bytes),
          last_byte(now),
          partial_since(now) {}
  };

  IngestServer(IngestSink* sink, IngestServerOptions options);

  Status Init();
  void Loop();

  void HandleAccept();
  /// Closes any OTHER live connection claiming `client_id`, dropping its
  /// queued-but-unapplied frames without committing them — a reconnect
  /// supersedes the stale connection, and the fresh Welcome (computed from
  /// the tracker afterwards) re-admits exactly the un-applied sequences.
  void EvictSupersededConnection(const Connection& keep,
                                 const std::string& client_id);
  /// Reads and decodes; returns false when the connection died.
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  /// Decodes frames out of conn's buffer into pending until the queue limit
  /// or the buffer runs dry.
  void DrainDecoder(Connection& conn);
  /// Routes one decoded payload. Returns false to close the connection.
  bool HandlePayload(Connection& conn, const std::string& payload);
  bool HandleHello(Connection& conn, const std::string& payload);
  bool EnqueueBatch(Connection& conn, const std::string& payload);
  bool EnqueueTick(Connection& conn, const std::string& payload);
  /// Applies up to the budget from conn.pending into the sink.
  void ApplyPending(Connection& conn);
  void ApplyBatch(Connection& conn, PendingFrame& frame);
  void ApplyTick(Connection& conn, PendingFrame& frame);

  void SendFrame(Connection& conn, std::string frame);
  void SendErrorAndClose(Connection& conn, const Status& status);
  void FlushOutbuf(Connection& conn);
  void PauseReads(Connection& conn);
  void ResumeReads(Connection& conn);
  void CloseConnection(int fd, bool count_close = true);
  void ReapTimeouts(Clock::time_point now);
  void UpdateEpoll(Connection& conn, bool want_read, bool want_write);

  /// Refreshes the mutex-guarded stats_ snapshot (event-loop thread). The
  /// engine's Health() pulls it through the IngestStatsSource installed at
  /// Start(), so no engine state is written while the loop runs.
  void PublishStats();

  IngestSink* sink_;
  IngestServerOptions options_;
  uint16_t port_ = 0;

  UniqueFd listen_fd_;
  UniqueFd epoll_fd_;
  UniqueFd wake_fd_;  // eventfd: Stop() wakes the loop.

  std::thread loop_;
  std::atomic<bool> running_{false};

  std::map<int, std::unique_ptr<Connection>> connections_;  // By fd.
  std::map<std::string, ClientState> clients_;              // By client id.
  uint64_t next_generation_ = 0;  // Tags epoll events (see Connection).

  /// Event-loop-thread working counters (no clients vector; that is built
  /// from clients_ at publish time). Mutated lock-free on the loop thread.
  core::IngestStats work_;

  mutable std::mutex stats_mu_;
  core::IngestStats stats_;  // Guarded by stats_mu_ for cross-thread reads.
};

}  // namespace esp::net

#endif  // ESP_NET_INGEST_SERVER_H_
