#ifndef ESP_NET_SOCKET_H_
#define ESP_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "common/time.h"

namespace esp::net {

/// \brief Owns a POSIX file descriptor; closes it on destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Marks `fd` non-blocking (O_NONBLOCK).
Status SetNonBlocking(int fd);

/// A freshly bound listening socket and the port it actually bound
/// (meaningful when the caller asked for port 0).
struct ListenSocket {
  UniqueFd fd;
  uint16_t port = 0;
};

/// Opens a non-blocking TCP listener on `address`:`port` (IPv4 dotted quad;
/// port 0 picks a free port). SO_REUSEADDR is set so tests can rebind
/// quickly.
StatusOr<ListenSocket> TcpListen(const std::string& address, uint16_t port,
                                 int backlog = 128);

/// Connects to `host`:`port` with a deadline. The returned socket is left in
/// BLOCKING mode (the IngestClient layers poll()-based timeouts on top via
/// SendAll/RecvSome). kTimedOut when the deadline elapses, kConnectionReset
/// when the peer refuses.
StatusOr<UniqueFd> TcpConnect(const std::string& host, uint16_t port,
                              Duration timeout);

/// Writes all of `data`, polling for writability up to `timeout` per
/// syscall. MSG_NOSIGNAL is used throughout so a dead peer surfaces as
/// kConnectionReset rather than SIGPIPE.
Status SendAll(int fd, std::string_view data, Duration timeout);

/// Reads at most `max_bytes` once the descriptor becomes readable, waiting
/// up to `timeout`. Returns the bytes read; an empty string means the peer
/// performed an orderly shutdown (EOF). kTimedOut when nothing arrives in
/// time.
StatusOr<std::string> RecvSome(int fd, size_t max_bytes, Duration timeout);

}  // namespace esp::net

#endif  // ESP_NET_SOCKET_H_
