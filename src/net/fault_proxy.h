#ifndef ESP_NET_FAULT_PROXY_H_
#define ESP_NET_FAULT_PROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "net/socket.h"

namespace esp::net {

/// \brief Fault-injection knobs for ONE direction of the proxied stream.
/// Each probability is evaluated per forwarded chunk with that direction's
/// own deterministic seeded Rng, so client->server faults (torn uploads,
/// duplicated batches) and server->client faults (corrupted acks, cut
/// welcome frames — or, in a cluster, mangled worker replies) can be chaos-
/// tested independently and reproducibly.
struct FaultDirectionOptions {
  uint64_t seed = 1;

  /// Deliver only a random prefix of the chunk, then reset both sides —
  /// the canonical torn / mid-frame-cut fault.
  double p_truncate = 0.0;
  /// Flip one byte of the chunk before forwarding (CRC must catch it).
  double p_corrupt = 0.0;
  /// Pause the whole proxy for `stall` before forwarding (slow network /
  /// slow-loris shape).
  double p_stall = 0.0;
  /// Forward the chunk twice (wire-level duplicate delivery).
  double p_duplicate = 0.0;
  /// Drop the connection pair without forwarding anything.
  double p_reset = 0.0;

  Duration stall = Duration::Millis(20);

  bool any() const {
    return p_truncate > 0 || p_corrupt > 0 || p_stall > 0 ||
           p_duplicate > 0 || p_reset > 0;
  }
};

struct FaultProxyOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t listen_port = 0;  // 0 picks a free port.
  std::string target_host = "127.0.0.1";
  uint16_t target_port = 0;

  /// Faults injected into bytes flowing client -> server (uploads).
  FaultDirectionOptions client_to_server;
  /// Faults injected into bytes flowing server -> client (acks/replies).
  /// Default-constructed = forwarded verbatim, the historical behaviour.
  FaultDirectionOptions server_to_client;
};

/// Per-direction fault tallies.
struct FaultDirectionStats {
  int64_t chunks_forwarded = 0;
  int64_t truncations = 0;
  int64_t corruptions = 0;
  int64_t stalls = 0;
  int64_t duplicates = 0;
  int64_t resets = 0;

  int64_t faults() const {
    return truncations + corruptions + stalls + duplicates + resets;
  }
};

struct FaultProxyStats {
  int64_t connections = 0;
  FaultDirectionStats client_to_server;
  FaultDirectionStats server_to_client;

  int64_t faults() const {
    return client_to_server.faults() + server_to_client.faults();
  }
  int64_t chunks_forwarded() const {
    return client_to_server.chunks_forwarded +
           server_to_client.chunks_forwarded;
  }
};

/// \brief A TCP proxy that forwards client connections to a target server
/// while injecting byte-level faults, for chaos-testing the ingest stack
/// (bench/chaos_ingest.cc) and cluster links (bench/chaos_cluster.cc).
/// Single poll()-based thread; deterministic given the seeds and the byte
/// stream (chunk boundaries do depend on kernel timing, so determinism here
/// means "reproducible fault mix", not a bit-exact schedule).
class FaultProxy {
 public:
  static StatusOr<std::unique_ptr<FaultProxy>> Start(
      FaultProxyOptions options);

  ~FaultProxy();
  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// The port clients should connect to.
  uint16_t port() const { return port_; }

  void Stop();

  FaultProxyStats StatsSnapshot() const;

 private:
  explicit FaultProxy(FaultProxyOptions options);

  struct Pair {
    UniqueFd client;
    UniqueFd upstream;
  };

  /// One direction's injection state: its knobs, its independent Rng, and
  /// which stats bucket it charges.
  struct Direction {
    const FaultDirectionOptions* options;
    Rng rng;
    FaultDirectionStats FaultProxyStats::* stats;
  };

  Status Init();
  void Loop();
  void HandleAccept();
  /// Forwards one chunk from `from` to `to` through `dir`'s fault lens.
  /// Returns false when the pair must be torn down.
  bool ForwardChunk(int from, int to, Direction& dir);

  FaultProxyOptions options_;
  uint16_t port_ = 0;
  UniqueFd listen_fd_;
  std::thread loop_;
  std::atomic<bool> running_{false};

  std::vector<Pair> pairs_;
  Direction client_to_server_;
  Direction server_to_client_;

  mutable std::mutex stats_mu_;
  FaultProxyStats stats_;
};

}  // namespace esp::net

#endif  // ESP_NET_FAULT_PROXY_H_
