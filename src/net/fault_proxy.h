#ifndef ESP_NET_FAULT_PROXY_H_
#define ESP_NET_FAULT_PROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "net/socket.h"

namespace esp::net {

/// \brief Fault injection knobs. Each probability is evaluated per
/// client-to-server chunk with a deterministic seeded Rng; the server-to-
/// client direction (acks) is forwarded verbatim, so every injected fault
/// exercises the ingest path's recovery rather than the client's.
struct FaultProxyOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t listen_port = 0;  // 0 picks a free port.
  std::string target_host = "127.0.0.1";
  uint16_t target_port = 0;

  uint64_t seed = 1;

  /// Deliver only a random prefix of the chunk, then reset both sides —
  /// the canonical torn / mid-frame-cut fault.
  double p_truncate = 0.0;
  /// Flip one byte of the chunk before forwarding (CRC must catch it).
  double p_corrupt = 0.0;
  /// Pause the whole proxy for `stall` before forwarding (slow network /
  /// slow-loris shape).
  double p_stall = 0.0;
  /// Forward the chunk twice (wire-level duplicate delivery).
  double p_duplicate = 0.0;
  /// Drop the connection pair without forwarding anything.
  double p_reset = 0.0;

  Duration stall = Duration::Millis(20);
};

struct FaultProxyStats {
  int64_t connections = 0;
  int64_t chunks_forwarded = 0;
  int64_t truncations = 0;
  int64_t corruptions = 0;
  int64_t stalls = 0;
  int64_t duplicates = 0;
  int64_t resets = 0;

  int64_t faults() const {
    return truncations + corruptions + stalls + duplicates + resets;
  }
};

/// \brief A TCP proxy that forwards client connections to a target server
/// while injecting byte-level faults, for chaos-testing the ingest stack
/// (bench/chaos_ingest.cc). Single poll()-based thread; deterministic given
/// the seed and the byte stream (chunk boundaries do depend on kernel
/// timing, so determinism here means "reproducible fault mix", not a
/// bit-exact schedule).
class FaultProxy {
 public:
  static StatusOr<std::unique_ptr<FaultProxy>> Start(
      FaultProxyOptions options);

  ~FaultProxy();
  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// The port clients should connect to.
  uint16_t port() const { return port_; }

  void Stop();

  FaultProxyStats StatsSnapshot() const;

 private:
  explicit FaultProxy(FaultProxyOptions options);

  struct Pair {
    UniqueFd client;
    UniqueFd upstream;
  };

  Status Init();
  void Loop();
  void HandleAccept();
  /// Forwards one chunk from `from` to `to`, maybe injecting a fault.
  /// Returns false when the pair must be torn down.
  bool ForwardChunk(int from, int to, bool inject);

  FaultProxyOptions options_;
  uint16_t port_ = 0;
  UniqueFd listen_fd_;
  std::thread loop_;
  std::atomic<bool> running_{false};

  std::vector<Pair> pairs_;
  Rng rng_;

  mutable std::mutex stats_mu_;
  FaultProxyStats stats_;
};

}  // namespace esp::net

#endif  // ESP_NET_FAULT_PROXY_H_
