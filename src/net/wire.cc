#include "net/wire.h"

#include <utility>

#include "stream/serialize.h"

namespace esp::net {

namespace {

/// Wraps a finished payload in the frame header.
std::string Frame(ByteWriter payload) {
  ByteWriter frame;
  frame.WriteU32(static_cast<uint32_t>(payload.size()));
  frame.WriteU32(Crc32(payload.data()));
  frame.WriteBytes(payload.data());
  return std::move(frame).Release();
}

Status CheckExhausted(const ByteReader& r, const char* what) {
  if (!r.exhausted()) {
    return Status::ParseError(std::string(what) +
                              " payload has trailing bytes");
  }
  return Status::OK();
}

StatusOr<ByteReader> ReaderFor(std::string_view payload, MessageKind want) {
  ByteReader r(payload);
  ESP_ASSIGN_OR_RETURN(const uint8_t tag, r.ReadU8());
  if (static_cast<MessageKind>(tag) != want) {
    return Status::ParseError("unexpected message kind " +
                              std::to_string(tag));
  }
  return r;
}

}  // namespace

std::string EncodeHello(const HelloMessage& msg) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageKind::kHello));
  w.WriteU32(msg.protocol_version);
  w.WriteString(msg.client_id);
  return Frame(std::move(w));
}

std::string EncodeWelcome(const WelcomeMessage& msg) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageKind::kWelcome));
  w.WriteU64(msg.last_applied_seq);
  return Frame(std::move(w));
}

std::string EncodeBatch(uint64_t seq, const std::string& device_type,
                        const std::vector<stream::Tuple>& readings) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageKind::kBatch));
  w.WriteU64(seq);
  w.WriteString(device_type);
  w.WriteU32(static_cast<uint32_t>(readings.size()));
  for (const stream::Tuple& tuple : readings) stream::WriteTuple(w, tuple);
  return Frame(std::move(w));
}

std::string EncodeTick(uint64_t seq, Timestamp now) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageKind::kTick));
  w.WriteU64(seq);
  w.WriteI64(now.micros());
  return Frame(std::move(w));
}

std::string EncodeAck(uint64_t last_applied_seq) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageKind::kAck));
  w.WriteU64(last_applied_seq);
  return Frame(std::move(w));
}

std::string EncodeError(const Status& status) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageKind::kError));
  w.WriteU8(static_cast<uint8_t>(status.code()));
  w.WriteString(status.message());
  return Frame(std::move(w));
}

std::string EncodeClusterHello(const ClusterHelloMessage& msg) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageKind::kClusterHello));
  w.WriteU32(msg.protocol_version);
  w.WriteU32(msg.slot);
  w.WriteU64(msg.epoch);
  return Frame(std::move(w));
}

std::string EncodeTickResult(const TickResultMessage& msg) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageKind::kTickResult));
  w.WriteU32(msg.slot);
  w.WriteU64(msg.epoch);
  w.WriteI64(msg.tick_time.micros());
  w.WriteU32(static_cast<uint32_t>(msg.partials.size()));
  for (const WirePartial& partial : msg.partials) {
    w.WriteString(partial.device_type);
    w.WriteString(partial.group_id);
    w.WriteU32(static_cast<uint32_t>(partial.relation.tuples().size()));
    for (const stream::Tuple& tuple : partial.relation.tuples()) {
      stream::WriteTuple(w, tuple);
    }
  }
  return Frame(std::move(w));
}

std::string EncodeHeartbeat(const HeartbeatMessage& msg) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageKind::kHeartbeat));
  w.WriteU32(msg.slot);
  w.WriteU64(msg.epoch);
  w.WriteU64(msg.last_applied_seq);
  return Frame(std::move(w));
}

std::string EncodeCheckpointRequest() {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageKind::kCheckpointRequest));
  return Frame(std::move(w));
}

StatusOr<MessageKind> PeekKind(std::string_view payload) {
  ByteReader r(payload);
  ESP_ASSIGN_OR_RETURN(const uint8_t tag, r.ReadU8());
  switch (static_cast<MessageKind>(tag)) {
    case MessageKind::kHello:
    case MessageKind::kWelcome:
    case MessageKind::kBatch:
    case MessageKind::kTick:
    case MessageKind::kAck:
    case MessageKind::kError:
    case MessageKind::kClusterHello:
    case MessageKind::kTickResult:
    case MessageKind::kHeartbeat:
    case MessageKind::kCheckpointRequest:
      return static_cast<MessageKind>(tag);
  }
  return Status::ParseError("unknown message kind tag " + std::to_string(tag));
}

StatusOr<HelloMessage> DecodeHello(std::string_view payload) {
  ESP_ASSIGN_OR_RETURN(ByteReader r, ReaderFor(payload, MessageKind::kHello));
  HelloMessage msg;
  ESP_ASSIGN_OR_RETURN(msg.protocol_version, r.ReadU32());
  ESP_ASSIGN_OR_RETURN(msg.client_id, r.ReadString());
  ESP_RETURN_IF_ERROR(CheckExhausted(r, "hello"));
  if (msg.protocol_version != kWireProtocolVersion) {
    return Status::InvalidArgument(
        "unsupported wire protocol version " +
        std::to_string(msg.protocol_version) + " (expected " +
        std::to_string(kWireProtocolVersion) + ")");
  }
  if (msg.client_id.empty()) {
    return Status::InvalidArgument("hello carries an empty client id");
  }
  return msg;
}

StatusOr<WelcomeMessage> DecodeWelcome(std::string_view payload) {
  ESP_ASSIGN_OR_RETURN(ByteReader r,
                       ReaderFor(payload, MessageKind::kWelcome));
  WelcomeMessage msg;
  ESP_ASSIGN_OR_RETURN(msg.last_applied_seq, r.ReadU64());
  ESP_RETURN_IF_ERROR(CheckExhausted(r, "welcome"));
  return msg;
}

StatusOr<BatchHeader> DecodeBatchHeader(std::string_view payload,
                                        std::string_view* tuple_bytes) {
  ESP_ASSIGN_OR_RETURN(ByteReader r, ReaderFor(payload, MessageKind::kBatch));
  BatchHeader header;
  ESP_ASSIGN_OR_RETURN(header.seq, r.ReadU64());
  ESP_ASSIGN_OR_RETURN(header.device_type, r.ReadString());
  ESP_ASSIGN_OR_RETURN(header.count, r.ReadU32());
  if (header.count == 0) {
    return Status::InvalidArgument("batch frame carries zero readings");
  }
  if (header.seq == 0) {
    return Status::InvalidArgument("batch sequence numbers start at 1");
  }
  if (tuple_bytes != nullptr) {
    *tuple_bytes = r.ReadBytes(r.remaining()).value();  // Cannot fail.
  }
  return header;
}

StatusOr<std::vector<stream::Tuple>> DecodeBatchTuples(
    const BatchHeader& header, std::string_view tuple_bytes,
    const stream::SchemaRef& schema) {
  ByteReader r(tuple_bytes);
  std::vector<stream::Tuple> readings;
  readings.reserve(header.count);
  for (uint32_t i = 0; i < header.count; ++i) {
    ESP_ASSIGN_OR_RETURN(stream::Tuple tuple, stream::ReadTuple(r, schema));
    readings.push_back(std::move(tuple));
  }
  ESP_RETURN_IF_ERROR(CheckExhausted(r, "batch"));
  return readings;
}

StatusOr<DecodedBatch> DecodeBatch(std::string_view payload,
                                   const stream::SchemaRef& schema) {
  std::string_view tuple_bytes;
  ESP_ASSIGN_OR_RETURN(BatchHeader header,
                       DecodeBatchHeader(payload, &tuple_bytes));
  DecodedBatch batch;
  batch.seq = header.seq;
  batch.device_type = std::move(header.device_type);
  ESP_ASSIGN_OR_RETURN(batch.readings,
                       DecodeBatchTuples(header, tuple_bytes, schema));
  return batch;
}

StatusOr<TickMessage> DecodeTick(std::string_view payload) {
  ESP_ASSIGN_OR_RETURN(ByteReader r, ReaderFor(payload, MessageKind::kTick));
  TickMessage msg;
  ESP_ASSIGN_OR_RETURN(msg.seq, r.ReadU64());
  ESP_ASSIGN_OR_RETURN(const int64_t micros, r.ReadI64());
  msg.time = Timestamp::Micros(micros);
  ESP_RETURN_IF_ERROR(CheckExhausted(r, "tick"));
  if (msg.seq == 0) {
    return Status::InvalidArgument("tick sequence numbers start at 1");
  }
  return msg;
}

StatusOr<AckMessage> DecodeAck(std::string_view payload) {
  ESP_ASSIGN_OR_RETURN(ByteReader r, ReaderFor(payload, MessageKind::kAck));
  AckMessage msg;
  ESP_ASSIGN_OR_RETURN(msg.last_applied_seq, r.ReadU64());
  ESP_RETURN_IF_ERROR(CheckExhausted(r, "ack"));
  return msg;
}

StatusOr<ErrorMessage> DecodeError(std::string_view payload) {
  ESP_ASSIGN_OR_RETURN(ByteReader r, ReaderFor(payload, MessageKind::kError));
  ErrorMessage msg;
  ESP_ASSIGN_OR_RETURN(msg.code, r.ReadU8());
  ESP_ASSIGN_OR_RETURN(msg.message, r.ReadString());
  ESP_RETURN_IF_ERROR(CheckExhausted(r, "error"));
  return msg;
}

StatusOr<ClusterHelloMessage> DecodeClusterHello(std::string_view payload) {
  ESP_ASSIGN_OR_RETURN(ByteReader r,
                       ReaderFor(payload, MessageKind::kClusterHello));
  ClusterHelloMessage msg;
  ESP_ASSIGN_OR_RETURN(msg.protocol_version, r.ReadU32());
  ESP_ASSIGN_OR_RETURN(msg.slot, r.ReadU32());
  ESP_ASSIGN_OR_RETURN(msg.epoch, r.ReadU64());
  ESP_RETURN_IF_ERROR(CheckExhausted(r, "cluster hello"));
  if (msg.protocol_version != kWireProtocolVersion) {
    return Status::InvalidArgument(
        "unsupported wire protocol version " +
        std::to_string(msg.protocol_version) + " (expected " +
        std::to_string(kWireProtocolVersion) + ")");
  }
  if (msg.epoch == 0) {
    return Status::InvalidArgument("cluster epochs start at 1");
  }
  return msg;
}

StatusOr<TickResultMessage> DecodeTickResult(
    std::string_view payload, const PartialSchemaLookup& lookup) {
  ESP_ASSIGN_OR_RETURN(ByteReader r,
                       ReaderFor(payload, MessageKind::kTickResult));
  TickResultMessage msg;
  ESP_ASSIGN_OR_RETURN(msg.slot, r.ReadU32());
  ESP_ASSIGN_OR_RETURN(msg.epoch, r.ReadU64());
  ESP_ASSIGN_OR_RETURN(const int64_t micros, r.ReadI64());
  msg.tick_time = Timestamp::Micros(micros);
  ESP_ASSIGN_OR_RETURN(const uint32_t partial_count, r.ReadU32());
  msg.partials.reserve(partial_count);
  for (uint32_t p = 0; p < partial_count; ++p) {
    WirePartial partial;
    ESP_ASSIGN_OR_RETURN(partial.device_type, r.ReadString());
    ESP_ASSIGN_OR_RETURN(partial.group_id, r.ReadString());
    ESP_ASSIGN_OR_RETURN(const stream::SchemaRef schema,
                         lookup(partial.device_type));
    ESP_ASSIGN_OR_RETURN(const uint32_t tuple_count, r.ReadU32());
    partial.relation = stream::Relation(schema);
    for (uint32_t t = 0; t < tuple_count; ++t) {
      ESP_ASSIGN_OR_RETURN(stream::Tuple tuple, stream::ReadTuple(r, schema));
      partial.relation.Add(std::move(tuple));
    }
    msg.partials.push_back(std::move(partial));
  }
  ESP_RETURN_IF_ERROR(CheckExhausted(r, "tick result"));
  return msg;
}

StatusOr<HeartbeatMessage> DecodeHeartbeat(std::string_view payload) {
  ESP_ASSIGN_OR_RETURN(ByteReader r,
                       ReaderFor(payload, MessageKind::kHeartbeat));
  HeartbeatMessage msg;
  ESP_ASSIGN_OR_RETURN(msg.slot, r.ReadU32());
  ESP_ASSIGN_OR_RETURN(msg.epoch, r.ReadU64());
  ESP_ASSIGN_OR_RETURN(msg.last_applied_seq, r.ReadU64());
  ESP_RETURN_IF_ERROR(CheckExhausted(r, "heartbeat"));
  return msg;
}

Status DecodeCheckpointRequest(std::string_view payload) {
  ESP_ASSIGN_OR_RETURN(ByteReader r,
                       ReaderFor(payload, MessageKind::kCheckpointRequest));
  return CheckExhausted(r, "checkpoint request");
}

StatusOr<std::optional<std::string>> FrameDecoder::Next() {
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > 64 * 1024)) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t available = buffer_.size() - pos_;
  if (available < kFrameHeaderBytes) return std::optional<std::string>();
  ByteReader header(std::string_view(buffer_).substr(pos_, kFrameHeaderBytes));
  const uint32_t len = header.ReadU32().value();        // Cannot fail.
  const uint32_t stored_crc = header.ReadU32().value();  // Cannot fail.
  if (len > max_frame_bytes_) {
    return Status::OutOfRange(
        "frame length " + std::to_string(len) + " exceeds the " +
        std::to_string(max_frame_bytes_) + "-byte limit");
  }
  if (available < kFrameHeaderBytes + len) return std::optional<std::string>();
  const std::string_view payload =
      std::string_view(buffer_).substr(pos_ + kFrameHeaderBytes, len);
  if (Crc32(payload) != stored_crc) {
    return Status::ParseError("frame CRC mismatch (torn or corrupted frame)");
  }
  std::string out(payload);
  pos_ += kFrameHeaderBytes + len;
  return std::optional<std::string>(std::move(out));
}

bool FrameDecoder::has_incomplete_frame() const {
  size_t p = pos_;
  for (;;) {
    const size_t available = buffer_.size() - p;
    if (available == 0) return false;
    if (available < kFrameHeaderBytes) return true;
    ByteReader header(std::string_view(buffer_).substr(p, kFrameHeaderBytes));
    const uint32_t len = header.ReadU32().value();  // Cannot fail.
    // A garbage length prefix is a protocol error Next() reports
    // immediately — not a frame the peer is still slowly completing.
    if (len > max_frame_bytes_) return false;
    if (available < kFrameHeaderBytes + len) return true;
    p += kFrameHeaderBytes + len;
  }
}

Status FrameDecoder::Finish() const {
  if (has_incomplete_frame()) {
    return Status::ConnectionReset(
        "stream ended with " + std::to_string(buffered_bytes()) +
        " bytes of a torn frame");
  }
  return Status::OK();
}

}  // namespace esp::net
