#include "net/ingest_client.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <thread>
#include <utility>

namespace esp::net {

namespace {

/// Connection-level failures trigger reconnect + resume; everything else
/// (protocol rejections, bad arguments) surfaces to the caller.
bool IsConnectionFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kConnectionReset:
    case StatusCode::kTimedOut:
    case StatusCode::kIoError:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

/// Pulls the next inbound frame, downgrading decoder errors (CRC mismatch,
/// oversized length prefix) to kConnectionReset: once framing is lost the
/// only sound recovery is to drop the socket and resume from the last ack,
/// exactly as for a torn connection. Without this, one corrupted ack byte
/// on the return path would kill the client instead of costing a reconnect.
StatusOr<std::optional<std::string>> NextFrameOrReset(FrameDecoder& decoder) {
  StatusOr<std::optional<std::string>> next = decoder.Next();
  if (!next.ok()) {
    return Status::ConnectionReset("inbound stream corrupted: " +
                                   next.status().message());
  }
  return next;
}

}  // namespace

IngestClientOptions MakeIngestClientOptions(
    const core::IngestSpecOptions& spec) {
  IngestClientOptions options;
  options.host = spec.bind_address;
  options.port = spec.port;
  options.max_frame_bytes = static_cast<size_t>(spec.max_frame_bytes);
  options.backoff_initial = spec.backoff_initial;
  options.backoff_max = spec.backoff_max;
  options.backoff_jitter = spec.backoff_jitter;
  return options;
}

IngestClient::IngestClient(IngestClientOptions options)
    : options_(std::move(options)),
      decoder_(options_.max_frame_bytes),
      jitter_(options_.jitter_seed) {}

StatusOr<std::unique_ptr<IngestClient>> IngestClient::Connect(
    IngestClientOptions options) {
  if (options.client_id.empty()) {
    return Status::InvalidArgument("client_id must be non-empty");
  }
  std::unique_ptr<IngestClient> client(new IngestClient(std::move(options)));
  ESP_RETURN_IF_ERROR(client->EstablishAndResume());
  return client;
}

Duration IngestClient::NextBackoff() {
  Duration base = options_.backoff_initial;
  for (size_t i = 0; i < backoff_attempt_ && base < options_.backoff_max;
       ++i) {
    base = base * 2.0;
  }
  if (base > options_.backoff_max) base = options_.backoff_max;
  const double jitter = options_.backoff_jitter;
  const double factor = jitter > 0.0 ? jitter_.Uniform(1.0 - jitter,
                                                       1.0 + jitter)
                                     : 1.0;
  ++backoff_attempt_;
  Duration delay = base * factor;
  if (delay < Duration::Zero()) delay = Duration::Zero();
  return delay;
}

Status IngestClient::EstablishAndResume() {
  fd_.reset();
  decoder_ = FrameDecoder(options_.max_frame_bytes);

  ESP_ASSIGN_OR_RETURN(
      fd_, TcpConnect(options_.host, options_.port, options_.connect_timeout));

  HelloMessage hello;
  hello.client_id = options_.client_id;
  ESP_RETURN_IF_ERROR(
      SendAll(fd_.get(), EncodeHello(hello), options_.write_timeout));

  // Read until the Welcome arrives.
  for (;;) {
    ESP_ASSIGN_OR_RETURN(std::optional<std::string> payload,
                         NextFrameOrReset(decoder_));
    if (payload.has_value()) {
      ESP_ASSIGN_OR_RETURN(const MessageKind kind, PeekKind(*payload));
      if (kind == MessageKind::kError) {
        ESP_ASSIGN_OR_RETURN(ErrorMessage err, DecodeError(*payload));
        last_server_error_ = err.message;
        return Status::ConnectionReset("server rejected handshake: " +
                                       err.message);
      }
      ESP_ASSIGN_OR_RETURN(const WelcomeMessage welcome,
                           DecodeWelcome(*payload));
      if (welcome.last_applied_seq < last_acked_) {
        // The server acknowledges less than it already acked on a previous
        // connection: it restarted with fresh trackers, and the frames the
        // earlier acks let us prune are unrecoverable. Resending from here
        // would only produce sequence-gap closes until the retry budget
        // dies — fail fast with a non-retryable, data-loss-shaped status.
        return Status::FailedPrecondition(
            "server lost acknowledged state: welcome acks sequence " +
            std::to_string(welcome.last_applied_seq) +
            " but this client already pruned through " +
            std::to_string(last_acked_));
      }
      // Resume: drop what the server already applied, resend the rest.
      if (welcome.last_applied_seq > last_acked_) {
        last_acked_ = welcome.last_applied_seq;
      }
      while (!unacked_.empty() && unacked_.front().seq <= last_acked_) {
        unacked_.pop_front();
      }
      for (const UnackedFrame& frame : unacked_) {
        ESP_RETURN_IF_ERROR(
            SendAll(fd_.get(), frame.bytes, options_.write_timeout));
      }
      ++reconnects_;
      backoff_attempt_ = 0;
      return Status::OK();
    }
    ESP_ASSIGN_OR_RETURN(
        std::string bytes,
        RecvSome(fd_.get(), 64 * 1024, options_.read_timeout));
    if (bytes.empty()) {
      return Status::ConnectionReset(
          "server closed the connection during the handshake");
    }
    decoder_.Feed(bytes);
  }
}

template <typename Fn>
Status IngestClient::WithRetries(Fn&& attempt) {
  if (closed_) return Status::InvalidArgument("client is closed");
  Status last = Status::OK();
  for (size_t tries = 0; tries <= options_.max_reconnect_attempts; ++tries) {
    if (!fd_.valid()) {
      last = EstablishAndResume();
      if (!last.ok()) {
        fd_.reset();
        if (!IsConnectionFailure(last)) return last;
        const Duration delay = NextBackoff();
        if (!delay.IsZero()) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(delay.micros()));
        }
        continue;
      }
    }
    last = attempt();
    if (last.ok()) return last;
    if (!IsConnectionFailure(last)) return last;
    // The connection died mid-operation: tear down and resume.
    fd_.reset();
  }
  return last;
}

Status IngestClient::HandleServerPayload(const std::string& payload) {
  ESP_ASSIGN_OR_RETURN(const MessageKind kind, PeekKind(payload));
  switch (kind) {
    case MessageKind::kAck:
    case MessageKind::kWelcome: {
      // A stray Welcome (duplicate delivery of the handshake reply) carries
      // the same cumulative high-water mark an ack does; treat it as one
      // instead of dying on it.
      uint64_t applied = 0;
      if (kind == MessageKind::kAck) {
        ESP_ASSIGN_OR_RETURN(const AckMessage ack, DecodeAck(payload));
        applied = ack.last_applied_seq;
      } else {
        ESP_ASSIGN_OR_RETURN(const WelcomeMessage welcome,
                             DecodeWelcome(payload));
        applied = welcome.last_applied_seq;
      }
      if (applied > last_acked_) {
        last_acked_ = applied;
        while (!unacked_.empty() && unacked_.front().seq <= last_acked_) {
          unacked_.pop_front();
        }
      }
      return Status::OK();
    }
    case MessageKind::kError: {
      ESP_ASSIGN_OR_RETURN(ErrorMessage err, DecodeError(payload));
      last_server_error_ = err.message;
      // The server closes after an Error frame; treat it as a dropped
      // connection so the retry loop resumes from the last ack.
      return Status::ConnectionReset("server error: " + err.message);
    }
    default:
      return Status::ParseError("unexpected server message kind");
  }
}

Status IngestClient::DrainAcks(uint64_t min_acked) {
  for (;;) {
    // Consume whatever frames are already buffered.
    for (;;) {
      ESP_ASSIGN_OR_RETURN(std::optional<std::string> payload,
                           NextFrameOrReset(decoder_));
      if (!payload.has_value()) break;
      ESP_RETURN_IF_ERROR(HandleServerPayload(*payload));
    }
    if (min_acked == 0) {
      // Opportunistic mode: pull whatever the kernel has without blocking.
      char buf[64 * 1024];
      const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
        continue;
      }
      if (n == 0) {
        return Status::ConnectionReset("server closed the connection");
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
      if (errno == EINTR) continue;
      return Status::FromErrno("recv", errno);
    }
    if (last_acked_ >= min_acked) return Status::OK();

    // Need more: block up to the read timeout.
    ESP_ASSIGN_OR_RETURN(
        std::string bytes,
        RecvSome(fd_.get(), 64 * 1024, options_.read_timeout));
    if (bytes.empty()) {
      return Status::ConnectionReset("server closed while acks were pending");
    }
    decoder_.Feed(bytes);
  }
}

Status IngestClient::Send(uint64_t seq, std::string frame) {
  return WithRetries([&]() -> Status {
    // A retry can land after the frame was already acked (the failure hit a
    // later step) — then there is nothing left to do.
    if (last_acked_ >= seq) return Status::OK();
    // The frame joins the resume window before the first transmission
    // attempt, so a failure anywhere below resends it after reconnect. On a
    // retry the entry already exists (reconnect resent it); don't duplicate.
    if (unacked_.empty() || unacked_.back().seq < seq) {
      UnackedFrame entry;
      entry.seq = seq;
      entry.bytes = std::move(frame);
      unacked_.push_back(std::move(entry));
      ESP_RETURN_IF_ERROR(SendAll(fd_.get(), unacked_.back().bytes,
                                  options_.write_timeout));
    }
    // Opportunistic non-blocking ack drain keeps the window tight.
    ESP_RETURN_IF_ERROR(DrainAcks(0));
    if (unacked_.size() > options_.max_unacked_frames) {
      // Window full: block until the oldest outstanding frame is acked.
      ESP_RETURN_IF_ERROR(DrainAcks(unacked_.front().seq));
    }
    return Status::OK();
  });
}

Status IngestClient::PushBatch(const std::string& device_type,
                               const std::vector<stream::Tuple>& readings) {
  if (readings.empty()) {
    return Status::InvalidArgument(
        "empty batches are not representable on the wire");
  }
  const uint64_t seq = next_seq_++;
  return Send(seq, EncodeBatch(seq, device_type, readings));
}

Status IngestClient::PushTick(Timestamp now) {
  const uint64_t seq = next_seq_++;
  return Send(seq, EncodeTick(seq, now));
}

Status IngestClient::Flush() {
  if (next_seq_ == 1) return Status::OK();  // Nothing ever sent.
  const uint64_t target = next_seq_ - 1;
  return WithRetries([&]() -> Status { return DrainAcks(target); });
}

Status IngestClient::Close() {
  if (closed_) return Status::OK();
  const Status status = Flush();
  fd_.reset();
  closed_ = true;
  return status;
}

void IngestClient::SimulateConnectionLoss() { fd_.reset(); }

}  // namespace esp::net
