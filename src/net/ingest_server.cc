#include "net/ingest_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

namespace esp::net {

namespace {

constexpr int kEpollWaitMs = 20;
constexpr size_t kRecvChunkBytes = 64 * 1024;

/// Epoll event tag: the fd in the low 32 bits, the connection generation in
/// the high 32 (0 for the listener and wakeup fds, which are never
/// recycled while the loop runs).
uint64_t EpollTag(int fd, uint64_t generation) {
  return (generation << 32) | static_cast<uint32_t>(fd);
}

}  // namespace

StatusOr<BackpressurePolicy> ParseBackpressurePolicy(const std::string& text) {
  if (text == "block") return BackpressurePolicy::kBlock;
  if (text == "shed") return BackpressurePolicy::kShed;
  return Status::InvalidArgument("unknown backpressure policy '" + text +
                                 "' (expected 'block' or 'shed')");
}

StatusOr<IngestServerOptions> MakeIngestServerOptions(
    const core::IngestSpecOptions& spec) {
  IngestServerOptions options;
  options.bind_address = spec.bind_address;
  options.port = spec.port;
  options.max_connections = static_cast<size_t>(spec.max_connections);
  options.queue_limit_frames = static_cast<size_t>(spec.queue_limit_frames);
  options.max_frame_bytes = static_cast<size_t>(spec.max_frame_bytes);
  options.read_timeout = spec.read_timeout;
  options.idle_timeout = spec.idle_timeout;
  ESP_ASSIGN_OR_RETURN(options.backpressure,
                       ParseBackpressurePolicy(spec.backpressure));
  return options;
}

IngestServer::IngestServer(IngestSink* sink, IngestServerOptions options)
    : sink_(sink), options_(std::move(options)) {}

IngestServer::~IngestServer() { Stop(); }

StatusOr<std::unique_ptr<IngestServer>> IngestServer::Start(
    IngestSink* sink, IngestServerOptions options) {
  if (sink == nullptr) {
    return Status::InvalidArgument("ingest server needs a sink");
  }
  if (options.queue_limit_frames == 0) {
    return Status::InvalidArgument("queue_limit_frames must be positive");
  }
  std::unique_ptr<IngestServer> server(
      new IngestServer(sink, std::move(options)));
  ESP_RETURN_IF_ERROR(server->Init());
  // Engine Health() pulls counters through the mutex-guarded snapshot, so
  // it is safe from any thread while the loop runs. Stop() freezes a final
  // copy before the server (and this lambda's target) can go away.
  sink->SetStatsSource(
      [raw = server.get()] { return raw->StatsSnapshot(); });
  server->running_.store(true);
  server->loop_ = std::thread([raw = server.get()] { raw->Loop(); });
  return server;
}

Status IngestServer::Init() {
  ESP_ASSIGN_OR_RETURN(
      ListenSocket listener,
      TcpListen(options_.bind_address, options_.port));
  listen_fd_ = std::move(listener.fd);
  port_ = listener.port;

  epoll_fd_.reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) return Status::FromErrno("epoll_create1", errno);
  wake_fd_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_fd_.valid()) return Status::FromErrno("eventfd", errno);

  struct epoll_event ev;
  ev.events = EPOLLIN;
  ev.data.u64 = EpollTag(listen_fd_.get(), 0);
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev) <
      0) {
    return Status::FromErrno("epoll_ctl(listen)", errno);
  }
  ev.data.u64 = EpollTag(wake_fd_.get(), 0);
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) < 0) {
    return Status::FromErrno("epoll_ctl(wakeup)", errno);
  }
  return Status::OK();
}

void IngestServer::Stop() {
  const bool was_running = running_.exchange(false);
  if (was_running) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(wake_fd_.get(), &one, sizeof(one));
  }
  if (loop_.joinable()) loop_.join();
  if (was_running) {
    // Replace the live source (which points at this server) with a frozen
    // copy of the final counters, so Health() keeps working after the
    // server is destroyed.
    sink_->SetStatsSource(
        [final = StatsSnapshot()] { return final; });
  }
}

core::IngestStats IngestServer::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void IngestServer::Loop() {
  struct epoll_event events[64];
  while (running_.load()) {
    const int n = ::epoll_wait(epoll_fd_.get(), events, 64, kEpollWaitMs);
    if (n < 0 && errno != EINTR) break;
    const Clock::time_point now = Clock::now();
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      const int fd = static_cast<int>(tag & 0xffffffffu);
      const uint64_t generation = tag >> 32;
      if (fd == wake_fd_.get()) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_.get(), &drained, sizeof(drained));
        continue;
      }
      if (fd == listen_fd_.get()) {
        HandleAccept();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // Closed earlier this pass.
      // A connection closed earlier this pass may have had its fd number
      // recycled by an accept in the same pass; events queued for the old
      // connection must not hit the new one.
      if (it->second->generation != generation) continue;
      Connection& conn = *it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        if (conn.decoder.has_incomplete_frame()) {
          work_.torn_frame_closes++;
          if (conn.client != nullptr) conn.client->stats.torn_frames++;
        }
        CloseConnection(fd);
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
      if (connections_.count(fd) == 0) continue;
      if (events[i].events & EPOLLIN) HandleReadable(conn);
    }

    // Apply queued frames (bounded per connection by the budget), then
    // resume any connection kBlock paused once its queue drained.
    std::vector<int> fds;
    fds.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
    for (int fd : fds) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      ApplyPending(*it->second);
    }

    ReapTimeouts(now);
    PublishStats();
  }

  // Shutdown: close every connection (counted) and publish finals.
  std::vector<int> fds;
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) CloseConnection(fd);
  PublishStats();
}

void IngestServer::HandleAccept() {
  for (;;) {
    UniqueFd fd(::accept4(listen_fd_.get(), nullptr, nullptr,
                          SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (!fd.valid()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // Transient accept errors: drop and retry next wakeup.
    }
    if (connections_.size() >= options_.max_connections) {
      work_.connections_rejected++;
      continue;  // UniqueFd closes it.
    }
    const int raw = fd.get();
    auto conn = std::make_unique<Connection>(
        std::move(fd), options_.max_frame_bytes, Clock::now());
    conn->generation = ++next_generation_;
    struct epoll_event ev;
    ev.events = EPOLLIN;
    ev.data.u64 = EpollTag(raw, conn->generation);
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, raw, &ev) < 0) {
      work_.connections_rejected++;
      continue;
    }
    work_.connections_accepted++;
    connections_.emplace(raw, std::move(conn));
  }
}

void IngestServer::HandleReadable(Connection& conn) {
  const int fd = conn.fd.get();
  char buf[kRecvChunkBytes];
  bool eof = false;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      work_.bytes_received += n;
      conn.last_byte = Clock::now();
      conn.decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      DrainDecoder(conn);
      if (connections_.count(fd) == 0) return;  // Closed on protocol error.
      if (conn.reads_paused) return;            // kBlock: stop consuming.
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    // ECONNRESET and friends: the peer vanished.
    if (conn.decoder.has_incomplete_frame()) {
      work_.torn_frame_closes++;
      if (conn.client != nullptr) conn.client->stats.torn_frames++;
    }
    CloseConnection(fd);
    return;
  }
  // Track how long the stream has ended mid-frame (slow-loris signal).
  // Complete-but-undecoded frames parked by kBlock backpressure do not
  // count as partial — the tail sits on a frame boundary.
  if (!conn.decoder.has_incomplete_frame()) conn.partial_since = Clock::now();
  if (eof) {
    if (conn.decoder.has_incomplete_frame()) {
      work_.torn_frame_closes++;
      if (conn.client != nullptr) conn.client->stats.torn_frames++;
    }
    ApplyPending(conn);  // Don't drop fully received work.
    CloseConnection(fd);
  }
}

void IngestServer::DrainDecoder(Connection& conn) {
  const int fd = conn.fd.get();
  for (;;) {
    if (!conn.pending.empty() &&
        conn.pending.size() >= options_.queue_limit_frames &&
        options_.backpressure == BackpressurePolicy::kBlock) {
      PauseReads(conn);
      return;  // Leave undecoded bytes buffered; resume after apply.
    }
    StatusOr<std::optional<std::string>> next = conn.decoder.Next();
    if (!next.ok()) {
      // Oversized length prefix or CRC mismatch: framing is gone.
      work_.torn_frame_closes++;
      if (conn.client != nullptr) conn.client->stats.torn_frames++;
      SendErrorAndClose(conn, next.status());
      return;
    }
    if (!next.value().has_value()) return;  // Need more bytes.
    work_.frames_decoded++;
    if (!HandlePayload(conn, *next.value())) return;
    if (connections_.count(fd) == 0) return;
  }
}

bool IngestServer::HandlePayload(Connection& conn,
                                 const std::string& payload) {
  StatusOr<MessageKind> kind = PeekKind(payload);
  if (!kind.ok()) {
    work_.protocol_error_closes++;
    SendErrorAndClose(conn, kind.status());
    return false;
  }
  if (conn.client == nullptr) {
    if (kind.value() != MessageKind::kHello) {
      work_.protocol_error_closes++;
      SendErrorAndClose(
          conn, Status::InvalidArgument(
                    "expected a hello frame before any other traffic"));
      return false;
    }
    return HandleHello(conn, payload);
  }
  switch (kind.value()) {
    case MessageKind::kBatch:
      return EnqueueBatch(conn, payload);
    case MessageKind::kTick:
      return EnqueueTick(conn, payload);
    case MessageKind::kHello:
      work_.protocol_error_closes++;
      SendErrorAndClose(conn, Status::InvalidArgument(
                                  "duplicate hello on an open connection"));
      return false;
    default:
      work_.protocol_error_closes++;
      SendErrorAndClose(
          conn, Status::InvalidArgument(
                    "server-only message kind received from a client"));
      return false;
  }
}

bool IngestServer::HandleHello(Connection& conn, const std::string& payload) {
  StatusOr<HelloMessage> hello = DecodeHello(payload);
  if (!hello.ok()) {
    work_.protocol_error_closes++;
    SendErrorAndClose(conn, hello.status());
    return false;
  }
  // A reconnect supersedes any still-open connection for this client id.
  // Evict it BEFORE reading the tracker: its queued-but-unapplied frames
  // are dropped without committing, so the Welcome below reflects exactly
  // what the sink has applied and the client's resends of those sequences
  // are re-admitted once — never applied twice.
  EvictSupersededConnection(conn, hello.value().client_id);
  ClientState& client = clients_[hello.value().client_id];
  client.stats.client_id = hello.value().client_id;
  client.stats.connects++;
  if (client.stats.connects > 1) {
    client.stats.reconnects++;
    work_.reconnects++;
  }
  conn.client_id = hello.value().client_id;
  conn.client = &client;
  conn.next_expected = client.tracker.last_applied() + 1;
  WelcomeMessage welcome;
  welcome.last_applied_seq = client.tracker.last_applied();
  SendFrame(conn, EncodeWelcome(welcome));
  return true;
}

void IngestServer::EvictSupersededConnection(const Connection& keep,
                                             const std::string& client_id) {
  std::vector<int> stale;
  for (const auto& [fd, conn] : connections_) {
    if (conn.get() != &keep && conn->client_id == client_id) {
      stale.push_back(fd);
    }
  }
  for (int fd : stale) {
    work_.superseded_closes++;
    CloseConnection(fd);  // Pending frames die with it, uncommitted.
  }
}

bool IngestServer::EnqueueBatch(Connection& conn,
                                const std::string& payload) {
  std::string_view tuple_bytes;
  StatusOr<BatchHeader> header = DecodeBatchHeader(payload, &tuple_bytes);
  if (!header.ok()) {
    work_.protocol_error_closes++;
    SendErrorAndClose(conn, header.status());
    return false;
  }
  if (header.value().count > options_.max_batch_readings) {
    work_.protocol_error_closes++;
    SendErrorAndClose(
        conn, Status::OutOfRange(
                  "batch of " + std::to_string(header.value().count) +
                  " readings exceeds the " +
                  std::to_string(options_.max_batch_readings) + " cap"));
    return false;
  }
  const uint64_t seq = header.value().seq;
  if (seq < conn.next_expected) {
    // Already applied (or already queued): a resend after reconnect or a
    // wire-level duplicate. Re-ack so the client prunes it.
    work_.duplicate_frames_dropped++;
    conn.client->stats.duplicate_frames_dropped++;
    SendFrame(conn, EncodeAck(conn.client->tracker.last_applied()));
    return true;
  }
  if (seq > conn.next_expected) {
    work_.sequence_gap_closes++;
    SendErrorAndClose(
        conn, Status::OutOfRange("sequence gap: got " + std::to_string(seq) +
                                 ", expected " +
                                 std::to_string(conn.next_expected)));
    return false;
  }
  PendingFrame frame;
  frame.seq = seq;
  frame.device_type = std::move(header.value().device_type);
  frame.count = header.value().count;
  if (conn.pending.size() >= options_.queue_limit_frames &&
      options_.backpressure == BackpressurePolicy::kShed) {
    frame.shed = true;
    work_.shed_batches++;
    work_.shed_readings += frame.count;
    conn.client->stats.shed_batches++;
    conn.client->stats.shed_readings += frame.count;
  } else {
    frame.tuple_bytes = std::string(tuple_bytes);
  }
  conn.next_expected = seq + 1;
  conn.pending.push_back(std::move(frame));
  return true;
}

bool IngestServer::EnqueueTick(Connection& conn, const std::string& payload) {
  StatusOr<TickMessage> tick = DecodeTick(payload);
  if (!tick.ok()) {
    work_.protocol_error_closes++;
    SendErrorAndClose(conn, tick.status());
    return false;
  }
  const uint64_t seq = tick.value().seq;
  if (seq < conn.next_expected) {
    work_.duplicate_frames_dropped++;
    conn.client->stats.duplicate_frames_dropped++;
    SendFrame(conn, EncodeAck(conn.client->tracker.last_applied()));
    return true;
  }
  if (seq > conn.next_expected) {
    work_.sequence_gap_closes++;
    SendErrorAndClose(
        conn, Status::OutOfRange("sequence gap: got " + std::to_string(seq) +
                                 ", expected " +
                                 std::to_string(conn.next_expected)));
    return false;
  }
  // Ticks carry the experiment clock and are never shed, even over-limit.
  PendingFrame frame;
  frame.is_tick = true;
  frame.seq = seq;
  frame.tick_time = tick.value().time;
  conn.next_expected = seq + 1;
  conn.pending.push_back(std::move(frame));
  return true;
}

void IngestServer::ApplyPending(Connection& conn) {
  const int fd = conn.fd.get();
  size_t applied = 0;
  const size_t budget = options_.apply_budget_frames;
  while (!conn.pending.empty() && (budget == 0 || applied < budget)) {
    PendingFrame frame = std::move(conn.pending.front());
    conn.pending.pop_front();
    ++applied;
    if (frame.is_tick) {
      ApplyTick(conn, frame);
    } else {
      ApplyBatch(conn, frame);
    }
    if (connections_.count(fd) == 0) return;  // Closed mid-apply.
  }
  if (applied > 0) {
    SendFrame(conn, EncodeAck(conn.client->tracker.last_applied()));
    if (connections_.count(fd) == 0) return;  // Peer died mid-ack.
  }
  // kBlock backpressure: decode what buffered while paused, then re-arm.
  if (conn.reads_paused &&
      conn.pending.size() < options_.queue_limit_frames) {
    DrainDecoder(conn);
    if (connections_.count(fd) == 0) return;
    if (conn.pending.size() < options_.queue_limit_frames) {
      ResumeReads(conn);
    }
  }
}

void IngestServer::ApplyBatch(Connection& conn, PendingFrame& frame) {
  ClientState& client = *conn.client;
  if (frame.seq <= client.tracker.last_applied()) {
    // Defence in depth behind the eviction in HandleHello: a frame that was
    // admitted before this client's tracker advanced through another
    // connection must not reach the sink a second time.
    work_.duplicate_frames_dropped++;
    client.stats.duplicate_frames_dropped++;
    return;
  }
  if (frame.shed) {
    client.tracker.Commit(frame.seq);
    client.stats.last_applied_seq = frame.seq;
    return;
  }
  StatusOr<stream::SchemaRef> schema = sink_->ReadingSchema(frame.device_type);
  if (!schema.ok()) {
    // Unknown device type: an application-level reject, applied (and thus
    // acked) as "drop all readings" — deterministic under replay.
    work_.rejected_readings += frame.count;
    client.stats.rejected_readings += frame.count;
    client.tracker.Commit(frame.seq);
    client.stats.last_applied_seq = frame.seq;
    return;
  }
  BatchHeader header;
  header.seq = frame.seq;
  header.device_type = frame.device_type;
  header.count = frame.count;
  StatusOr<std::vector<stream::Tuple>> readings =
      DecodeBatchTuples(header, frame.tuple_bytes, schema.value());
  if (!readings.ok()) {
    // CRC passed but the tuples don't decode against the declared schema:
    // the client is speaking a different dialect. Unrecoverable.
    work_.protocol_error_closes++;
    SendErrorAndClose(conn, readings.status());
    return;
  }
  int64_t ok_count = 0;
  for (stream::Tuple& tuple : readings.value()) {
    const Status status = sink_->Push(frame.device_type, std::move(tuple));
    if (status.ok()) {
      ++ok_count;
    } else {
      work_.rejected_readings++;
      client.stats.rejected_readings++;
    }
  }
  work_.batches_applied++;
  work_.readings_applied += ok_count;
  client.stats.batches_applied++;
  client.stats.readings_applied += ok_count;
  client.tracker.Commit(frame.seq);
  client.stats.last_applied_seq = frame.seq;
}

void IngestServer::ApplyTick(Connection& conn, PendingFrame& frame) {
  ClientState& client = *conn.client;
  if (frame.seq <= client.tracker.last_applied()) {
    work_.duplicate_frames_dropped++;
    client.stats.duplicate_frames_dropped++;
    return;
  }
  StatusOr<core::TickResult> result = sink_->Tick(frame.tick_time);
  if (result.ok()) {
    work_.ticks_applied++;
    client.stats.ticks_applied++;
    if (options_.on_tick) options_.on_tick(frame.tick_time, result.value());
  } else {
    work_.rejected_ticks++;
  }
  client.tracker.Commit(frame.seq);
  client.stats.last_applied_seq = frame.seq;
}

void IngestServer::SendFrame(Connection& conn, std::string frame) {
  conn.outbuf.append(frame);
  FlushOutbuf(conn);
}

void IngestServer::SendErrorAndClose(Connection& conn, const Status& status) {
  conn.outbuf.append(EncodeError(status));
  conn.closing = true;
  // FlushOutbuf closes the connection once the buffer drains (immediately
  // when the kernel takes it all, via EPOLLOUT otherwise).
  FlushOutbuf(conn);
}

void IngestServer::FlushOutbuf(Connection& conn) {
  const int fd = conn.fd.get();
  while (!conn.outbuf.empty()) {
    const ssize_t n = ::send(fd, conn.outbuf.data(), conn.outbuf.size(),
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateEpoll(conn, !conn.reads_paused && !conn.closing, true);
      conn.writes_armed = true;
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    // Peer is gone; nothing further to deliver.
    CloseConnection(fd);
    return;
  }
  if (conn.writes_armed) {
    conn.writes_armed = false;
    UpdateEpoll(conn, !conn.reads_paused && !conn.closing, false);
  }
  if (conn.closing) CloseConnection(fd);
}

void IngestServer::HandleWritable(Connection& conn) { FlushOutbuf(conn); }

void IngestServer::PauseReads(Connection& conn) {
  if (conn.reads_paused) return;
  conn.reads_paused = true;
  UpdateEpoll(conn, false, conn.writes_armed);
}

void IngestServer::ResumeReads(Connection& conn) {
  if (!conn.reads_paused) return;
  conn.reads_paused = false;
  // The slow-loris clock was frozen while paused (the peer was not allowed
  // to make progress); restart it so the resumed connection gets the full
  // read timeout again.
  conn.partial_since = Clock::now();
  UpdateEpoll(conn, true, conn.writes_armed);
}

void IngestServer::UpdateEpoll(Connection& conn, bool want_read,
                               bool want_write) {
  struct epoll_event ev;
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = EpollTag(conn.fd.get(), conn.generation);
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

void IngestServer::CloseConnection(int fd, bool count_close) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  connections_.erase(it);  // UniqueFd closes the socket.
  if (count_close) work_.connections_closed++;
}

void IngestServer::ReapTimeouts(Clock::time_point now) {
  std::vector<int> reap_read;
  std::vector<int> reap_idle;
  for (const auto& [fd, conn] : connections_) {
    // reads_paused means WE stopped reading (kBlock backpressure): the
    // client cannot make progress, so the stalled stream is the server's
    // doing, not a slow loris.
    if (!options_.read_timeout.IsZero() && !conn->reads_paused &&
        conn->decoder.has_incomplete_frame() &&
        now - conn->partial_since >=
            std::chrono::microseconds(options_.read_timeout.micros())) {
      reap_read.push_back(fd);
      continue;
    }
    if (!options_.idle_timeout.IsZero() &&
        now - conn->last_byte >=
            std::chrono::microseconds(options_.idle_timeout.micros())) {
      reap_idle.push_back(fd);
    }
  }
  for (int fd : reap_read) {
    work_.read_timeout_closes++;
    auto it = connections_.find(fd);
    if (it != connections_.end() && it->second->client != nullptr) {
      it->second->client->stats.torn_frames++;
    }
    CloseConnection(fd);
  }
  for (int fd : reap_idle) {
    work_.idle_closes++;
    CloseConnection(fd);
  }
}

void IngestServer::PublishStats() {
  work_.active_connections = static_cast<int64_t>(connections_.size());
  core::IngestStats snapshot = work_;
  snapshot.clients.reserve(clients_.size());
  for (const auto& [id, client] : clients_) {
    snapshot.clients.push_back(client.stats);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = std::move(snapshot);
}

}  // namespace esp::net
