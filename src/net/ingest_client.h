#ifndef ESP_NET_INGEST_CLIENT_H_
#define ESP_NET_INGEST_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "core/deployment.h"
#include "net/socket.h"
#include "net/wire.h"
#include "stream/tuple.h"

namespace esp::net {

struct IngestClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Resume key: the server keeps the last applied sequence per client id
  /// across reconnects. Must be non-empty and stable for the stream's life.
  std::string client_id = "default";

  Duration connect_timeout = Duration::Seconds(5);
  Duration read_timeout = Duration::Seconds(5);
  Duration write_timeout = Duration::Seconds(5);

  /// Reconnect backoff: delay doubles from `backoff_initial` up to
  /// `backoff_max`, each delay multiplied by a uniform factor in
  /// [1 - jitter, 1 + jitter] drawn from a deterministic Rng.
  Duration backoff_initial = Duration::Millis(10);
  Duration backoff_max = Duration::Seconds(2);
  double backoff_jitter = 0.5;
  uint64_t jitter_seed = 0x16e5742ULL;

  /// Consecutive failed reconnect attempts before an operation gives up and
  /// surfaces the connection error.
  size_t max_reconnect_attempts = 32;

  /// Sent-but-unacked frames held for resume. Pushing past this blocks on
  /// acks (bounded client memory).
  size_t max_unacked_frames = 1024;

  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Converts a deployment spec's [ingest] section (core/deployment.h) into
/// client options: the server's address plus the reconnect-backoff knobs.
/// The caller still supplies client_id (and may override timeouts).
IngestClientOptions MakeIngestClientOptions(
    const core::IngestSpecOptions& spec);

/// \brief Synchronous TCP client for the ingest wire protocol, with
/// exactly-once delivery across connection loss.
///
/// Every PushBatch/PushTick gets the next sequence number and is retained
/// until the server's cumulative ack covers it. On any connection failure
/// the client reconnects with jittered exponential backoff, re-handshakes,
/// prunes frames the server already applied (per the Welcome), and resends
/// the rest in order — so the server applies every frame exactly once no
/// matter where the connection tore. Not thread-safe; one owner drives it.
class IngestClient {
 public:
  /// Connects and completes the handshake.
  static StatusOr<std::unique_ptr<IngestClient>> Connect(
      IngestClientOptions options);

  /// Sends one batch (readings must be non-empty).
  Status PushBatch(const std::string& device_type,
                   const std::vector<stream::Tuple>& readings);

  /// Sends one tick boundary.
  Status PushTick(Timestamp now);

  /// Blocks until every sent frame is acked (or the retry budget dies).
  Status Flush();

  /// Orderly shutdown: Flush, then close the socket.
  Status Close();

  /// Tears the socket down without telling the server — the tests' and
  /// chaos harness's hook for exercising the resume path. The next
  /// operation reconnects transparently.
  void SimulateConnectionLoss();

  uint64_t next_seq() const { return next_seq_; }
  uint64_t last_acked() const { return last_acked_; }
  int64_t reconnects() const { return reconnects_; }
  /// Last Error frame the server sent (empty when none).
  const std::string& last_server_error() const { return last_server_error_; }

 private:
  explicit IngestClient(IngestClientOptions options);

  struct UnackedFrame {
    uint64_t seq = 0;
    std::string bytes;  // The full encoded frame, resent verbatim.
  };

  /// Appends to unacked_, transmits, and opportunistically drains acks.
  Status Send(uint64_t seq, std::string frame);

  /// (Re)establishes the connection: socket + Hello/Welcome + resume
  /// (prune acked, resend unacked). Called with no live socket.
  Status EstablishAndResume();

  /// Runs `attempt` under the reconnect loop: on a connection-level
  /// failure, tears down, backs off, resumes, and retries.
  template <typename Fn>
  Status WithRetries(Fn&& attempt);

  /// Reads server frames until `min_acked` is covered (blocking) or, with
  /// min_acked == 0, drains whatever is already buffered without blocking.
  Status DrainAcks(uint64_t min_acked);

  /// Handles one server payload (ack or error).
  Status HandleServerPayload(const std::string& payload);

  Duration NextBackoff();

  IngestClientOptions options_;
  UniqueFd fd_;
  FrameDecoder decoder_;
  Rng jitter_;

  uint64_t next_seq_ = 1;     // Sequence the next frame will carry.
  uint64_t last_acked_ = 0;   // Cumulative server ack.
  std::deque<UnackedFrame> unacked_;

  size_t backoff_attempt_ = 0;
  int64_t reconnects_ = -1;  // First EstablishAndResume is the connect.
  std::string last_server_error_;
  bool closed_ = false;
};

}  // namespace esp::net

#endif  // ESP_NET_INGEST_CLIENT_H_
