#ifndef ESP_NET_WIRE_H_
#define ESP_NET_WIRE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "common/time.h"
#include "stream/tuple.h"

namespace esp::net {

/// \file
/// Wire protocol for networked ingestion (docs/NETWORKING.md §1).
///
/// Every message travels in a length-prefixed frame using exactly the
/// journal's framing, so the wire, the write-ahead journal, and checkpoints
/// share one encoding layer (common/binio + stream/serialize):
///
///   frame   := u32 payload_len | u32 crc32(payload) | payload
///   payload := u8 kind | body            (little-endian throughout)
///
/// State-mutating messages (kBatch, kTick) carry a per-connection-stream
/// monotonic sequence number assigned by the client, starting at 1. The
/// server applies a frame exactly when seq == last_applied + 1, acks
/// cumulatively, drops already-applied sequences as duplicates, and treats
/// a forward jump as data loss (the connection is closed; the client
/// reconnects and resumes from the acked sequence). This makes delivery
/// exactly-once end to end even under truncation, duplication, and
/// mid-frame resets.

inline constexpr uint32_t kWireProtocolVersion = 1;

/// Bytes of the frame header (payload length + CRC32).
inline constexpr size_t kFrameHeaderBytes = 2 * sizeof(uint32_t);

/// Default cap on a frame's payload size. Oversized length prefixes are
/// rejected before any allocation, so a garbage header cannot balloon
/// memory.
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

enum class MessageKind : uint8_t {
  kHello = 1,    // client -> server: version + client id (resume key)
  kWelcome = 2,  // server -> client: last applied sequence for that id
  kBatch = 3,    // client -> server: seq + device type + readings
  kTick = 4,     // client -> server: seq + tick timestamp
  kAck = 5,      // server -> client: cumulative last applied sequence
  kError = 6,    // server -> client: status code + message, then close
  // Cluster control plane (docs/DISTRIBUTED.md). Every cluster frame
  // carries the worker's (slot, epoch) pair; a frame whose epoch differs
  // from the receiver's current epoch for that slot is FENCED — dropped
  // without effect — which is what makes a SIGKILLed worker's stragglers
  // harmless once its replacement has been seated.
  kClusterHello = 7,       // coordinator -> worker: version + slot + epoch
  kTickResult = 8,         // worker -> coordinator: partial aggregates
  kHeartbeat = 9,          // worker -> coordinator: liveness + progress
  kCheckpointRequest = 10,  // coordinator -> worker: unsequenced, idempotent
};

struct HelloMessage {
  uint32_t protocol_version = kWireProtocolVersion;
  std::string client_id;
};

struct WelcomeMessage {
  uint64_t last_applied_seq = 0;
};

struct DecodedBatch {
  uint64_t seq = 0;
  std::string device_type;
  std::vector<stream::Tuple> readings;
};

/// A batch's envelope without its readings — the server splits the header
/// off first, looks up the device type's schema, and decodes the tuple
/// bytes only when the frame is actually applied (shed frames never pay for
/// tuple decoding).
struct BatchHeader {
  uint64_t seq = 0;
  std::string device_type;
  uint32_t count = 0;
};

struct TickMessage {
  uint64_t seq = 0;
  Timestamp time;
};

struct AckMessage {
  uint64_t last_applied_seq = 0;
};

struct ErrorMessage {
  uint8_t code = 0;
  std::string message;
};

/// Coordinator-side handshake on a (re)connect to a worker. The worker
/// accepts only its own slot and its own current epoch; a stale epoch means
/// the dialer is a zombie coordinator link and the connection is refused.
struct ClusterHelloMessage {
  uint32_t protocol_version = kWireProtocolVersion;
  uint32_t slot = 0;
  uint64_t epoch = 0;
};

/// One proximity group's post-Merge partial relation inside a kTickResult.
struct WirePartial {
  std::string device_type;
  std::string group_id;
  stream::Relation relation;
};

/// Worker -> coordinator: the partial aggregates of one tick, identified by
/// the tick's timestamp (the cluster requires strictly increasing tick
/// times, so the timestamp is a unique tick key the coordinator dedups
/// re-sent results by).
struct TickResultMessage {
  uint32_t slot = 0;
  uint64_t epoch = 0;
  Timestamp tick_time;
  std::vector<WirePartial> partials;
};

/// Worker -> coordinator liveness beacon, carrying the worker's applied
/// high-water mark (== its journal record count; see docs/DISTRIBUTED.md).
struct HeartbeatMessage {
  uint32_t slot = 0;
  uint64_t epoch = 0;
  uint64_t last_applied_seq = 0;
};

// --- Encoders: each returns one complete frame (header + payload). ---

std::string EncodeHello(const HelloMessage& msg);
std::string EncodeWelcome(const WelcomeMessage& msg);
/// `readings` must be non-empty: empty batches are a protocol error (see
/// DecodeBatchHeader) and are never produced by IngestClient.
std::string EncodeBatch(uint64_t seq, const std::string& device_type,
                        const std::vector<stream::Tuple>& readings);
std::string EncodeTick(uint64_t seq, Timestamp now);
std::string EncodeAck(uint64_t last_applied_seq);
std::string EncodeError(const Status& status);
std::string EncodeClusterHello(const ClusterHelloMessage& msg);
std::string EncodeTickResult(const TickResultMessage& msg);
std::string EncodeHeartbeat(const HeartbeatMessage& msg);
/// Checkpoint requests carry no body and — deliberately — no sequence
/// number: they are idempotent, applied in TCP order, and excluding them
/// from the sequence stream preserves the worker's "one applied frame ==
/// one journal record" identity.
std::string EncodeCheckpointRequest();

// --- Payload decoders (over the bytes FrameDecoder yields). ---

/// Reads the payload's kind tag; kParseError on an empty payload or an
/// unknown tag.
StatusOr<MessageKind> PeekKind(std::string_view payload);

StatusOr<HelloMessage> DecodeHello(std::string_view payload);
StatusOr<WelcomeMessage> DecodeWelcome(std::string_view payload);

/// Splits a batch payload into its header and the raw tuple bytes
/// (`*tuple_bytes` views into `payload`). An empty batch (count == 0) is a
/// typed kInvalidArgument error — the protocol never carries one, so its
/// appearance means a corrupted or hostile peer.
StatusOr<BatchHeader> DecodeBatchHeader(std::string_view payload,
                                        std::string_view* tuple_bytes);

/// Decodes the readings split off by DecodeBatchHeader against `schema`.
/// Fails (kParseError / kTypeError) on count/arity mismatch or trailing
/// bytes.
StatusOr<std::vector<stream::Tuple>> DecodeBatchTuples(
    const BatchHeader& header, std::string_view tuple_bytes,
    const stream::SchemaRef& schema);

/// Convenience composition of the two halves above.
StatusOr<DecodedBatch> DecodeBatch(std::string_view payload,
                                   const stream::SchemaRef& schema);

StatusOr<TickMessage> DecodeTick(std::string_view payload);
StatusOr<AckMessage> DecodeAck(std::string_view payload);
StatusOr<ErrorMessage> DecodeError(std::string_view payload);
StatusOr<ClusterHelloMessage> DecodeClusterHello(std::string_view payload);

/// Resolves a device type to the schema its partial relations decode
/// against (the type's post-Merge group output schema).
using PartialSchemaLookup =
    std::function<StatusOr<stream::SchemaRef>(const std::string& device_type)>;

/// Decodes a tick-result payload, re-attaching each partial's schema via
/// `lookup` (the wire carries type-tagged values, so the schema supplies
/// names the frame does not repeat).
StatusOr<TickResultMessage> DecodeTickResult(std::string_view payload,
                                             const PartialSchemaLookup& lookup);
StatusOr<HeartbeatMessage> DecodeHeartbeat(std::string_view payload);
Status DecodeCheckpointRequest(std::string_view payload);

/// \brief Incremental frame reassembly over an arbitrary byte stream.
///
/// Feed() whatever the socket yields; Next() returns one complete,
/// CRC-verified payload at a time, std::nullopt when more bytes are needed,
/// or a typed error on an unrecoverable stream corruption:
///  - kOutOfRange: the length prefix exceeds `max_frame_bytes` (garbage or
///    hostile header — rejected before any allocation);
///  - kParseError: the payload's CRC32 does not match its header.
/// After an error the stream is unusable (framing is lost); the owner must
/// close the connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// One frame payload, nullopt for "need more bytes", or a typed error.
  StatusOr<std::optional<std::string>> Next();

  /// Validates end-of-stream: kConnectionReset when the peer closed
  /// mid-frame (a torn frame — the shape of a mid-frame disconnect), OK on
  /// a clean frame boundary.
  Status Finish() const;

  /// True only when the buffered bytes end **mid-frame**: a header shorter
  /// than kFrameHeaderBytes, or a payload shorter than its declared length.
  /// Complete frames that merely have not been pulled through Next() yet do
  /// NOT count — a backpressure-paused connection whose buffer stops at a
  /// frame boundary is neither torn nor a slow loris. This is the signal
  /// the server's read-timeout reaping and torn-frame accounting key off.
  bool has_incomplete_frame() const;

  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  size_t pos_ = 0;  // Consumed prefix; compacted between Next() calls.
};

/// \brief Exactly-once admission bookkeeping for one client's sequence
/// stream (shared by server connections and tests).
///
/// Check() classifies a sequence number against the last applied one:
///  - OK: the next expected sequence (last_applied + 1) — apply it;
///  - kAlreadyExists: at or below last_applied — a duplicate delivery or a
///    resend after reconnect; ack it again but do not re-apply;
///  - kOutOfRange: a forward jump — frames were lost in flight, the
///    connection must be closed so the client resumes from the ack.
/// Commit() advances last_applied once the frame's effect (including a shed
/// decision) is final.
class SequenceTracker {
 public:
  Status Check(uint64_t seq) const {
    if (seq == last_applied_ + 1) return Status::OK();
    if (seq <= last_applied_) {
      return Status::AlreadyExists(
          "duplicate sequence " + std::to_string(seq) +
          " (last applied " + std::to_string(last_applied_) + ")");
    }
    return Status::OutOfRange("sequence gap: got " + std::to_string(seq) +
                              ", expected " +
                              std::to_string(last_applied_ + 1));
  }

  /// Monotonic: committing at or below last_applied is a no-op, so a stale
  /// frame (e.g. one queued on a connection that was superseded by a
  /// reconnect) can never move the high-water mark backward and re-admit
  /// already-applied sequences.
  void Commit(uint64_t seq) {
    if (seq > last_applied_) last_applied_ = seq;
  }
  void Reset(uint64_t last_applied) { last_applied_ = last_applied; }
  uint64_t last_applied() const { return last_applied_; }

 private:
  uint64_t last_applied_ = 0;
};

}  // namespace esp::net

#endif  // ESP_NET_WIRE_H_
