#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace esp::net {

namespace {

/// poll() one descriptor for `events` with a deadline; OK when ready,
/// kTimedOut when the deadline passes, errno-mapped otherwise. EINTR is
/// retried with the remaining budget (coarsely: the full timeout again —
/// signals are rare enough that the slack does not matter here).
Status PollFor(int fd, short events, Duration timeout, const char* what) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int timeout_ms =
      timeout.micros() < 0
          ? -1
          : static_cast<int>((timeout.micros() + 999) / 1000);
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::TimedOut(std::string(what) + " timed out after " +
                              timeout.ToString());
    }
    if (errno == EINTR) continue;
    return Status::FromErrno(std::string(what) + ": poll", errno);
  }
}

StatusOr<struct sockaddr_in> MakeAddr(const std::string& address,
                                      uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 dotted-quad address: '" +
                                   address + "'");
  }
  return addr;
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::FromErrno("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::FromErrno("fcntl(F_SETFL, O_NONBLOCK)", errno);
  }
  return Status::OK();
}

StatusOr<ListenSocket> TcpListen(const std::string& address, uint16_t port,
                                 int backlog) {
  ESP_ASSIGN_OR_RETURN(struct sockaddr_in addr, MakeAddr(address, port));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::FromErrno("socket", errno);
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Status::FromErrno("setsockopt(SO_REUSEADDR)", errno);
  }
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Status::FromErrno("bind " + address + ":" + std::to_string(port),
                             errno);
  }
  if (::listen(fd.get(), backlog) < 0) {
    return Status::FromErrno("listen", errno);
  }
  ESP_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) < 0) {
    return Status::FromErrno("getsockname", errno);
  }
  ListenSocket result;
  result.fd = std::move(fd);
  result.port = ntohs(bound.sin_port);
  return result;
}

StatusOr<UniqueFd> TcpConnect(const std::string& host, uint16_t port,
                              Duration timeout) {
  ESP_ASSIGN_OR_RETURN(struct sockaddr_in addr, MakeAddr(host, port));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::FromErrno("socket", errno);
  // Connect non-blocking so the timeout is enforceable, then restore
  // blocking mode: callers layer poll()-based deadlines via SendAll/RecvSome.
  ESP_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      if (errno == ECONNREFUSED) {
        return Status::ConnectionReset("connect " + host + ":" +
                                       std::to_string(port) +
                                       ": connection refused");
      }
      return Status::FromErrno(
          "connect " + host + ":" + std::to_string(port), errno);
    }
    ESP_RETURN_IF_ERROR(PollFor(fd.get(), POLLOUT, timeout, "connect"));
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
      return Status::FromErrno("getsockopt(SO_ERROR)", errno);
    }
    if (err != 0) {
      if (err == ECONNREFUSED) {
        return Status::ConnectionReset("connect " + host + ":" +
                                       std::to_string(port) +
                                       ": connection refused");
      }
      return Status::FromErrno(
          "connect " + host + ":" + std::to_string(port), err);
    }
  }
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) return Status::FromErrno("fcntl(F_GETFL)", errno);
  if (::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) < 0) {
    return Status::FromErrno("fcntl(F_SETFL)", errno);
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SendAll(int fd, std::string_view data, Duration timeout) {
  while (!data.empty()) {
    const ssize_t n =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ESP_RETURN_IF_ERROR(PollFor(fd, POLLOUT, timeout, "send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::FromErrno("send", errno);
  }
  return Status::OK();
}

StatusOr<std::string> RecvSome(int fd, size_t max_bytes, Duration timeout) {
  ESP_RETURN_IF_ERROR(PollFor(fd, POLLIN, timeout, "recv"));
  std::string buf(max_bytes, '\0');
  for (;;) {
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n >= 0) {
      buf.resize(static_cast<size_t>(n));
      return buf;
    }
    if (errno == EINTR) continue;
    return Status::FromErrno("recv", errno);
  }
}

}  // namespace esp::net
