#include "stream/type.h"

namespace esp::stream {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

bool IsNumericType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

DataType PromoteNumeric(DataType a, DataType b) {
  if (a == DataType::kDouble || b == DataType::kDouble) {
    return DataType::kDouble;
  }
  return DataType::kInt64;
}

}  // namespace esp::stream
