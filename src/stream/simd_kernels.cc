#include "stream/simd_kernels.h"

#include <atomic>

#if defined(ESP_ENABLE_AVX2) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define ESP_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define ESP_HAVE_AVX2_KERNELS 0
#endif

namespace esp::stream::simd {

namespace {

std::atomic<bool> g_force_scalar{false};
std::atomic<uint64_t> g_vector_batches{0};
std::atomic<uint64_t> g_scalar_batches{0};
std::atomic<uint64_t> g_guard_fallbacks{0};

/// Largest running sum of |value| for which every prefix of the legacy
/// sequential double fold is exactly representable (see incremental_exec.cc,
/// which proves the same bound for the delta engine).
constexpr int64_t kMaxExactAbs = int64_t{1} << 52;

inline bool IsNullBit(const uint64_t* nulls, size_t bit0, size_t i) {
  const size_t bit = bit0 + i;
  return (nulls[bit / 64] >> (bit % 64)) & 1;
}

inline void CountVector() {
  g_vector_batches.fetch_add(1, std::memory_order_relaxed);
}
inline void CountScalar() {
  g_scalar_batches.fetch_add(1, std::memory_order_relaxed);
}

bool UseAvx2() {
#if ESP_HAVE_AVX2_KERNELS
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported && !g_force_scalar.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// AVX2 variants (null-free, maskless fast paths only; everything else takes
// the scalar path below, which is the reference implementation).
// ---------------------------------------------------------------------------
#if ESP_HAVE_AVX2_KERNELS

__attribute__((target("avx2"))) void CompareF64Avx2(const double* v, size_t n,
                                                    CmpOp op, double rhs,
                                                    Trit* out) {
  const __m256d c = _mm256_set1_pd(rhs);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    __m256d m = _mm256_setzero_pd();
    switch (op) {
      case CmpOp::kEq:
        m = _mm256_cmp_pd(x, c, _CMP_EQ_OQ);
        break;
      case CmpOp::kNe:
        m = _mm256_cmp_pd(x, c, _CMP_NEQ_UQ);
        break;
      case CmpOp::kLt:
        m = _mm256_cmp_pd(x, c, _CMP_LT_OQ);
        break;
      case CmpOp::kLe:
        // Legacy <= is !(a > b): true under NaN (three-way compare says 0).
        m = _mm256_cmp_pd(x, c, _CMP_NGT_UQ);
        break;
      case CmpOp::kGt:
        m = _mm256_cmp_pd(x, c, _CMP_GT_OQ);
        break;
      case CmpOp::kGe:
        m = _mm256_cmp_pd(x, c, _CMP_NLT_UQ);
        break;
    }
    const int bits = _mm256_movemask_pd(m);
    out[i + 0] = (bits >> 0) & 1;
    out[i + 1] = (bits >> 1) & 1;
    out[i + 2] = (bits >> 2) & 1;
    out[i + 3] = (bits >> 3) & 1;
  }
  for (; i < n; ++i) {
    const double x = v[i];
    bool t = false;
    switch (op) {
      case CmpOp::kEq:
        t = x == rhs;
        break;
      case CmpOp::kNe:
        t = !(x == rhs);
        break;
      case CmpOp::kLt:
        t = x < rhs;
        break;
      case CmpOp::kLe:
        t = !(x > rhs);
        break;
      case CmpOp::kGt:
        t = x > rhs;
        break;
      case CmpOp::kGe:
        t = !(x < rhs);
        break;
    }
    out[i] = t ? kTrue : kFalse;
  }
}

__attribute__((target("avx2"))) void EqI64Avx2(const int64_t* v, size_t n,
                                               bool negated, int64_t rhs,
                                               Trit* out) {
  const __m256i c = _mm256_set1_epi64x(rhs);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i eq = _mm256_cmpeq_epi64(x, c);
    int bits = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    if (negated) bits = ~bits;
    out[i + 0] = (bits >> 0) & 1;
    out[i + 1] = (bits >> 1) & 1;
    out[i + 2] = (bits >> 2) & 1;
    out[i + 3] = (bits >> 3) & 1;
  }
  for (; i < n; ++i) {
    out[i] = ((v[i] == rhs) != negated) ? kTrue : kFalse;
  }
}

/// Lane-parallel int64 sum with the 2^52 exactness guard. Returns false when
/// the guard trips (caller restarts with the sequential double fold).
__attribute__((target("avx2"))) bool SumI64Avx2(const int64_t* v, size_t n,
                                                double* out_sum) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i limit = _mm256_set1_epi64x(kMaxExactAbs);
  __m256i lane_sum = zero;
  int64_t total = 0;
  int64_t total_mag = 0;
  size_t i = 0;
  constexpr size_t kChunk = 1024;
  while (i + 4 <= n) {
    const size_t remaining = ((n - i) / 4) * 4;
    const size_t chunk_end = i + (remaining < kChunk ? remaining : kChunk);
    __m256i mag_sum = zero;
    for (; i + 4 <= chunk_end; i += 4) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
      // |x| via sign-mask trick (AVX2 has no 64-bit abs or arithmetic
      // shift): mag = (x ^ sign) - sign, sign = all-ones when negative.
      const __m256i sign = _mm256_cmpgt_epi64(zero, x);
      const __m256i mag = _mm256_sub_epi64(_mm256_xor_si256(x, sign), sign);
      // Any lane already past the bound (INT64_MIN stays negative and also
      // trips via the sign test) ends the fast path.
      const __m256i too_big = _mm256_or_si256(_mm256_cmpgt_epi64(mag, limit),
                                              _mm256_cmpgt_epi64(zero, mag));
      if (_mm256_movemask_epi8(too_big) != 0) return false;
      lane_sum = _mm256_add_epi64(lane_sum, x);
      mag_sum = _mm256_add_epi64(mag_sum, mag);
    }
    // Per-lane magnitude sums stay < kChunk/4 * 2^52 < 2^61: no overflow.
    alignas(32) int64_t mags[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(mags), mag_sum);
    total_mag += mags[0] + mags[1] + mags[2] + mags[3];
    if (total_mag > kMaxExactAbs) return false;
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), lane_sum);
  total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    const int64_t x = v[i];
    if (x == INT64_MIN) return false;
    const int64_t mag = x < 0 ? -x : x;
    if (mag > kMaxExactAbs - total_mag) return false;
    total_mag += mag;
    total += x;
  }
  // Every partial sum of the legacy fold is bounded by total_mag <= 2^52,
  // hence exact; the fold therefore equals the integer total in any order.
  *out_sum = static_cast<double>(total);
  return true;
}

#endif  // ESP_HAVE_AVX2_KERNELS

}  // namespace

bool Avx2Available() {
#if ESP_HAVE_AVX2_KERNELS
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

void SetForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool ForceScalar() { return g_force_scalar.load(std::memory_order_relaxed); }

KernelStats GetKernelStats() {
  KernelStats stats;
  stats.vector_batches = g_vector_batches.load(std::memory_order_relaxed);
  stats.scalar_batches = g_scalar_batches.load(std::memory_order_relaxed);
  stats.guard_fallbacks = g_guard_fallbacks.load(std::memory_order_relaxed);
  return stats;
}

void ResetKernelStats() {
  g_vector_batches.store(0, std::memory_order_relaxed);
  g_scalar_batches.store(0, std::memory_order_relaxed);
  g_guard_fallbacks.store(0, std::memory_order_relaxed);
}

int64_t CountNonNull(size_t n, const uint64_t* nulls, size_t bit0,
                     const uint8_t* mask) {
  CountScalar();
  if (mask == nullptr) {
    if (nulls == nullptr) return static_cast<int64_t>(n);
    int64_t nulls_seen = 0;
    for (size_t i = 0; i < n; ++i) {
      nulls_seen += IsNullBit(nulls, bit0, i);
    }
    return static_cast<int64_t>(n) - nulls_seen;
  }
  int64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (mask[i] && (nulls == nullptr || !IsNullBit(nulls, bit0, i))) ++count;
  }
  return count;
}

SumResult SumI64(const int64_t* v, size_t n, const uint64_t* nulls,
                 size_t bit0, const uint8_t* mask) {
  SumResult result;
  if (nulls == nullptr && mask == nullptr) {
    result.nonnull = static_cast<int64_t>(n);
#if ESP_HAVE_AVX2_KERNELS
    if (UseAvx2() && n >= 8) {
      if (SumI64Avx2(v, n, &result.sum)) {
        CountVector();
        return result;
      }
      g_guard_fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
#endif
    CountScalar();
    // Scalar fast path: integer partial sums under the same 2^52 guard.
    int64_t total = 0;
    int64_t total_mag = 0;
    bool exact = true;
    for (size_t i = 0; i < n; ++i) {
      const int64_t x = v[i];
      if (x == INT64_MIN) {
        exact = false;
        break;
      }
      const int64_t mag = x < 0 ? -x : x;
      if (mag > kMaxExactAbs - total_mag) {
        exact = false;
        break;
      }
      total_mag += mag;
      total += x;
    }
    if (exact) {
      result.sum = static_cast<double>(total);
      return result;
    }
    g_guard_fallbacks.fetch_add(1, std::memory_order_relaxed);
    // Past the guard: replicate the legacy fold verbatim (sequential,
    // order-dependent double accumulation).
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += static_cast<double>(v[i]);
    result.sum = sum;
    return result;
  }
  CountScalar();
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (mask != nullptr && !mask[i]) continue;
    if (nulls != nullptr && IsNullBit(nulls, bit0, i)) continue;
    sum += static_cast<double>(v[i]);
    ++result.nonnull;
  }
  result.sum = sum;
  return result;
}

SumResult SumF64(const double* v, size_t n, const uint64_t* nulls,
                 size_t bit0, const uint8_t* mask) {
  CountScalar();
  SumResult result;
  // Strictly sequential — FP addition is order-dependent and the legacy
  // SumAggregator folds in window order. Never vectorized by design.
  double sum = 0.0;
  if (nulls == nullptr && mask == nullptr) {
    for (size_t i = 0; i < n; ++i) sum += v[i];
    result.nonnull = static_cast<int64_t>(n);
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (mask != nullptr && !mask[i]) continue;
      if (nulls != nullptr && IsNullBit(nulls, bit0, i)) continue;
      sum += v[i];
      ++result.nonnull;
    }
  }
  result.sum = sum;
  return result;
}

ptrdiff_t ExtremumI64(const int64_t* v, size_t n, const uint64_t* nulls,
                      size_t bit0, const uint8_t* mask, bool is_min) {
  CountScalar();
  ptrdiff_t best = -1;
  double dbest = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (mask != nullptr && !mask[i]) continue;
    if (nulls != nullptr && IsNullBit(nulls, bit0, i)) continue;
    // Value::Compare widens int64 to double, so the replacement test must
    // too: above 2^53 distinct integers can compare equal, and the legacy
    // aggregator keeps the FIRST of equals.
    const double dv = static_cast<double>(v[i]);
    if (best < 0 || (is_min ? dv < dbest : dv > dbest)) {
      best = static_cast<ptrdiff_t>(i);
      dbest = dv;
    }
  }
  return best;
}

ptrdiff_t ExtremumF64(const double* v, size_t n, const uint64_t* nulls,
                      size_t bit0, const uint8_t* mask, bool is_min) {
  CountScalar();
  ptrdiff_t best = -1;
  double dbest = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (mask != nullptr && !mask[i]) continue;
    if (nulls != nullptr && IsNullBit(nulls, bit0, i)) continue;
    const double dv = v[i];
    // Strict < / > replicates the three-way compare: ties (including NaN,
    // which compares unordered, and -0.0 vs +0.0) keep the first winner.
    if (best < 0 || (is_min ? dv < dbest : dv > dbest)) {
      best = static_cast<ptrdiff_t>(i);
      dbest = dv;
    }
  }
  return best;
}

namespace {

template <typename T, typename Cmp>
void CompareLoop(const T* v, size_t n, const uint64_t* nulls, size_t bit0,
                 Cmp cmp, Trit* out) {
  if (nulls == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = cmp(v[i]) ? kTrue : kFalse;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = IsNullBit(nulls, bit0, i) ? kNull : (cmp(v[i]) ? kTrue : kFalse);
  }
}

template <typename T>
void DispatchOrdering(const T* v, size_t n, const uint64_t* nulls, size_t bit0,
                      CmpOp op, double rhs, Trit* out) {
  // Ordering per the legacy three-way compare over doubles: < and > are the
  // IEEE predicates; <= and >= are their negations (NaN compares "equal",
  // so NaN <= c is TRUE — the trichotomy value is 0).
  switch (op) {
    case CmpOp::kLt:
      CompareLoop(v, n, nulls, bit0,
                  [rhs](T x) { return static_cast<double>(x) < rhs; }, out);
      break;
    case CmpOp::kLe:
      CompareLoop(v, n, nulls, bit0,
                  [rhs](T x) { return !(static_cast<double>(x) > rhs); },
                  out);
      break;
    case CmpOp::kGt:
      CompareLoop(v, n, nulls, bit0,
                  [rhs](T x) { return static_cast<double>(x) > rhs; }, out);
      break;
    case CmpOp::kGe:
      CompareLoop(v, n, nulls, bit0,
                  [rhs](T x) { return !(static_cast<double>(x) < rhs); },
                  out);
      break;
    default:
      break;
  }
}

}  // namespace

void CompareI64WithI64(const int64_t* v, size_t n, const uint64_t* nulls,
                       size_t bit0, CmpOp op, int64_t rhs, Trit* out) {
  if (op == CmpOp::kEq || op == CmpOp::kNe) {
    const bool negated = op == CmpOp::kNe;
#if ESP_HAVE_AVX2_KERNELS
    if (nulls == nullptr && UseAvx2() && n >= 8) {
      CountVector();
      EqI64Avx2(v, n, negated, rhs, out);
      return;
    }
#endif
    CountScalar();
    // Same-type equality is exact integer equality (Value::Equals).
    CompareLoop(v, n, nulls, bit0,
                [rhs, negated](int64_t x) { return (x == rhs) != negated; },
                out);
    return;
  }
  CountScalar();
  DispatchOrdering(v, n, nulls, bit0, op, static_cast<double>(rhs), out);
}

void CompareI64WithF64(const int64_t* v, size_t n, const uint64_t* nulls,
                       size_t bit0, CmpOp op, double rhs, Trit* out) {
  CountScalar();
  if (op == CmpOp::kEq || op == CmpOp::kNe) {
    const bool negated = op == CmpOp::kNe;
    // Cross-type equality widens the int64 side (Value::Equals).
    CompareLoop(
        v, n, nulls, bit0,
        [rhs, negated](int64_t x) {
          return (static_cast<double>(x) == rhs) != negated;
        },
        out);
    return;
  }
  DispatchOrdering(v, n, nulls, bit0, op, rhs, out);
}

void CompareF64(const double* v, size_t n, const uint64_t* nulls, size_t bit0,
                CmpOp op, double rhs, Trit* out) {
#if ESP_HAVE_AVX2_KERNELS
  if (nulls == nullptr && UseAvx2() && n >= 8) {
    CountVector();
    CompareF64Avx2(v, n, op, rhs, out);
    return;
  }
#endif
  CountScalar();
  if (op == CmpOp::kEq || op == CmpOp::kNe) {
    const bool negated = op == CmpOp::kNe;
    CompareLoop(v, n, nulls, bit0,
                [rhs, negated](double x) { return (x == rhs) != negated; },
                out);
    return;
  }
  DispatchOrdering(v, n, nulls, bit0, op, rhs, out);
}

void IsNullTrits(size_t n, const uint64_t* nulls, size_t bit0, bool negated,
                 Trit* out) {
  CountScalar();
  if (nulls == nullptr) {
    const Trit fill = negated ? kTrue : kFalse;
    for (size_t i = 0; i < n; ++i) out[i] = fill;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = (IsNullBit(nulls, bit0, i) != negated) ? kTrue : kFalse;
  }
}

void TritAnd(const Trit* a, const Trit* b, size_t n, Trit* out) {
  for (size_t i = 0; i < n; ++i) {
    const Trit x = a[i];
    const Trit y = b[i];
    // Kleene AND: false dominates, then null, then true.
    out[i] = (x == kFalse || y == kFalse)
                 ? kFalse
                 : ((x == kNull || y == kNull) ? kNull : kTrue);
  }
}

void TritOr(const Trit* a, const Trit* b, size_t n, Trit* out) {
  for (size_t i = 0; i < n; ++i) {
    const Trit x = a[i];
    const Trit y = b[i];
    out[i] = (x == kTrue || y == kTrue)
                 ? kTrue
                 : ((x == kNull || y == kNull) ? kNull : kFalse);
  }
}

void TritNot(const Trit* a, size_t n, Trit* out) {
  for (size_t i = 0; i < n; ++i) {
    const Trit x = a[i];
    out[i] = x == kNull ? kNull : (x == kFalse ? kTrue : kFalse);
  }
}

}  // namespace esp::stream::simd
