#include "stream/schema.h"

#include "common/string_util.h"

namespace esp::stream {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (StrEqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return std::nullopt;
}

StatusOr<size_t> Schema::ResolveIndex(const std::string& name) const {
  auto index = IndexOf(name);
  if (!index.has_value()) {
    return Status::NotFound("no column named '" + name + "' in schema [" +
                            ToString() + "]");
  }
  return *index;
}

bool Schema::Equals(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (!StrEqualsIgnoreCase(fields_[i].name, other.fields_[i].name) ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string result;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) result += ", ";
    result += fields_[i].name;
    result += ':';
    result += DataTypeToString(fields_[i].type);
  }
  return result;
}

SchemaRef MakeSchema(std::vector<Field> fields) {
  return std::make_shared<const Schema>(std::move(fields));
}

}  // namespace esp::stream
