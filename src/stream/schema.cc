#include "stream/schema.h"

#include "common/string_util.h"

namespace esp::stream {

void Schema::BuildIndex() {
  index_by_name_.reserve(fields_.size());
  for (size_t i = 0; i < fields_.size(); ++i) {
    // try_emplace keeps the first occurrence, matching the historical
    // first-match semantics of the linear scan on duplicate names.
    index_by_name_.try_emplace(fields_[i].name, i);
  }
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  const auto it = index_by_name_.find(std::string_view(name));
  if (it == index_by_name_.end()) return std::nullopt;
  return it->second;
}

StatusOr<size_t> Schema::ResolveIndex(const std::string& name) const {
  auto index = IndexOf(name);
  if (!index.has_value()) {
    return Status::NotFound("no column named '" + name + "' in schema [" +
                            ToString() + "]");
  }
  return *index;
}

bool Schema::Equals(const Schema& other) const {
  if (this == &other) return true;
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (!StrEqualsIgnoreCase(fields_[i].name, other.fields_[i].name) ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string result;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) result += ", ";
    result += fields_[i].name;
    result += ':';
    result += DataTypeToString(fields_[i].type);
  }
  return result;
}

SchemaRef MakeSchema(std::vector<Field> fields) {
  return std::make_shared<const Schema>(std::move(fields));
}

}  // namespace esp::stream
