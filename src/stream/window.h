#ifndef ESP_STREAM_WINDOW_H_
#define ESP_STREAM_WINDOW_H_

#include <deque>
#include <string>
#include <utility>

#include "common/binio.h"
#include "common/status.h"
#include "common/time.h"
#include "stream/column.h"
#include "stream/tuple.h"

namespace esp::stream {

/// \brief The kind of window attached to a stream reference in a query.
enum class WindowKind {
  /// Time-based sliding window: `[Range By '5 sec']`. The window at time t
  /// contains tuples with timestamp in (t - range, t].
  kRange,
  /// The instantaneous window: `[Range By 'NOW']` — tuples with timestamp
  /// exactly t.
  kNow,
  /// Count-based window: `[Rows 100]` — the most recent n tuples.
  kRows,
  /// The unbounded window (no window clause on a stream treated as a
  /// relation snapshot so far).
  kUnbounded,
};

/// \brief Parsed window clause.
struct WindowSpec {
  WindowKind kind = WindowKind::kUnbounded;
  Duration range;   // Valid when kind == kRange.
  /// Optional slide for kRange: when non-zero, the window's contents only
  /// advance at multiples of `slide` — the result at time t is the window
  /// at the greatest slide boundary <= t (CQL `[Range ... Slide ...]`).
  Duration slide;
  int64_t rows = 0;  // Valid when kind == kRows.

  static WindowSpec Range(Duration d) {
    // CQL's `[Range By 'NOW']` is spelled as a zero range.
    if (d.IsZero()) return Now();
    WindowSpec spec;
    spec.kind = WindowKind::kRange;
    spec.range = d;
    return spec;
  }
  static WindowSpec RangeSlide(Duration d, Duration slide) {
    WindowSpec spec = Range(d);
    if (spec.kind == WindowKind::kRange) spec.slide = slide;
    return spec;
  }

  /// The evaluation instant this window actually reflects at time t.
  Timestamp EffectiveTime(Timestamp t) const {
    if (kind != WindowKind::kRange || slide.micros() <= 0) return t;
    const int64_t width = slide.micros();
    int64_t quantized = t.micros() / width * width;
    if (quantized > t.micros()) quantized -= width;  // Negative times.
    return Timestamp::Micros(quantized);
  }
  static WindowSpec Now() {
    WindowSpec spec;
    spec.kind = WindowKind::kNow;
    return spec;
  }
  static WindowSpec Rows(int64_t n) {
    WindowSpec spec;
    spec.kind = WindowKind::kRows;
    spec.rows = n;
    return spec;
  }
  static WindowSpec Unbounded() { return WindowSpec{}; }

  std::string ToString() const;
  bool operator==(const WindowSpec&) const = default;
};

/// \brief Maintains the live contents of one window over one input stream.
///
/// Tuples must be inserted in non-decreasing timestamp order (receptor
/// streams are naturally ordered; the ESP processor enforces this). At any
/// time t, Snapshot(t) returns the relation the window defines at t.
class WindowBuffer {
 public:
  WindowBuffer(WindowSpec spec, SchemaRef schema)
      : spec_(spec), schema_(std::move(schema)) {}

  const WindowSpec& spec() const { return spec_; }
  const SchemaRef& schema() const { return schema_; }

  /// Inserts a tuple. Returns InvalidArgument on out-of-order timestamps.
  Status Insert(Tuple tuple);

  /// Drops tuples that can no longer appear in any window at or after t.
  void EvictBefore(Timestamp t);

  /// Materializes the window contents at time t. For kRange this is tuples
  /// with timestamp in (t - range, t]; for kNow, timestamp == t; for kRows,
  /// the last n tuples with timestamp <= t; for kUnbounded, everything
  /// not yet evicted with timestamp <= t.
  Relation Snapshot(Timestamp t) const;

  size_t buffered() const { return buffer_.size(); }

  /// The columnar mirror of the buffered tuples (see stream/column.h).
  /// Built lazily on first access; once built, Insert/EvictBefore keep it
  /// incrementally up to date (while ColumnarEnabled()), so steady-state
  /// access is O(delta). Valid until the next mutation.
  const ColumnarWindow& Columns() const;

  /// Live-row index range [lo, hi) of Columns() covered by the window at
  /// time t — the columnar equivalent of Snapshot(t). Implies Columns().
  std::pair<size_t, size_t> ColumnsRange(Timestamp t) const;

  /// Observability: full materializations per representation. A row
  /// snapshot rebuild must not be forced by columnar access and vice versa
  /// — the caches invalidate per-representation.
  size_t snapshot_rebuilds() const { return snapshot_rebuilds_; }
  size_t column_rebuilds() const { return column_rebuilds_; }

  /// Monotonic mutation counter: bumped by every Insert, every EvictBefore
  /// that removes a tuple, and LoadState. Both the row-snapshot cache and
  /// the columnar mirror record the generation they were built (or last
  /// synced) at and are trusted only while it still matches, so multiple
  /// plans reading one shared buffer can never observe a snapshot from
  /// before an interleaved mutation — the invalidation contract is the
  /// counter, not the mutators remembering to clear every flag.
  uint64_t generation() const { return generation_; }

  /// Serializes the live contents (tuples + insertion clock) for the
  /// durability subsystem. The spec and schema are NOT serialized: they are
  /// configuration, reconstructed by whoever owns the buffer.
  void SaveState(ByteWriter& w) const;

  /// Restores contents saved by SaveState into a freshly-configured buffer
  /// (same spec/schema). Any existing contents are replaced.
  Status LoadState(ByteReader& r);

 private:
  /// True when the cached snapshot answers Snapshot(t) exactly.
  bool CacheHit(Timestamp t) const;
  /// Materializes the window contents at time t (the pre-cache Snapshot).
  Relation Rebuild(Timestamp t) const;

  WindowSpec spec_;
  SchemaRef schema_;
  std::deque<Tuple> buffer_;
  Timestamp last_insert_time_;
  bool has_inserted_ = false;
  uint64_t generation_ = 0;  // See generation().

  /// Snapshot cache: Snapshot() re-materialized a full Relation on every
  /// call even when nothing entered or expired since the last one. The
  /// cache is keyed on the evaluation instant (the slide-quantized
  /// effective time for kRange) and invalidated by Insert/EvictBefore/
  /// LoadState. For kRows/kUnbounded a cached result that covered the whole
  /// buffer stays valid at any later t (the `<= t` filter can only re-admit
  /// the same tuples).
  mutable bool cache_valid_ = false;
  mutable bool cache_covers_all_ = false;
  mutable Timestamp cache_key_;
  mutable Relation cache_;
  mutable size_t snapshot_rebuilds_ = 0;
  mutable uint64_t cache_generation_ = 0;  // generation_ when cache_ built.

  /// Columnar mirror, maintained independently of the row snapshot cache:
  /// mutations update (or lazily stale-mark) the columns without touching
  /// `cache_`, and a columnar rebuild never invalidates the row snapshot.
  mutable ColumnarWindow columns_;
  mutable bool columns_synced_ = false;
  mutable size_t column_rebuilds_ = 0;
  mutable uint64_t columns_generation_ = 0;  // generation_ at last sync.
};

}  // namespace esp::stream

#endif  // ESP_STREAM_WINDOW_H_
