#include "stream/column.h"

#include <algorithm>
#include <atomic>

namespace esp::stream {

namespace {
std::atomic<bool> g_columnar_enabled{true};

/// Rows evicted before physical compaction kicks in. Compaction erases from
/// the vector fronts (a memmove), so it runs rarely and only when the dead
/// prefix dominates the live contents.
constexpr size_t kCompactMinDead = 4096;
}  // namespace

void SetColumnarEnabled(bool enabled) {
  g_columnar_enabled.store(enabled, std::memory_order_relaxed);
}

bool ColumnarEnabled() {
  return g_columnar_enabled.load(std::memory_order_relaxed);
}

ColumnarWindow::ColKind ColumnarWindow::KindForType(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return ColKind::kI64;
    case DataType::kDouble:
      return ColKind::kF64;
    case DataType::kBool:
      return ColKind::kBool;
    default:
      return ColKind::kValue;
  }
}

void ColumnarWindow::Reset(SchemaRef schema) {
  schema_ = std::move(schema);
  columns_.clear();
  ts_.clear();
  head_ = 0;
  total_rows_ = 0;
  ++revision_;
  if (schema_ == nullptr) return;
  columns_.resize(schema_->num_fields());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].kind = KindForType(schema_->field(c).type);
  }
}

void ColumnarWindow::Clear() {
  for (Column& col : columns_) {
    col.i64.clear();
    col.f64.clear();
    col.b8.clear();
    col.vals.clear();
    col.nulls.clear();
    col.null_count = 0;
    // Demotions stick only while the demoting values are live.
    if (schema_ != nullptr) {
      col.kind = KindForType(schema_->field(&col - columns_.data()).type);
    }
  }
  ts_.clear();
  head_ = 0;
  total_rows_ = 0;
  ++revision_;
}

void ColumnarWindow::Demote(Column& col) {
  // Convert the physical storage to Value cells. Dead rows (before head_)
  // only need placeholders; live rows convert faithfully.
  const size_t col_index = static_cast<size_t>(&col - columns_.data());
  std::vector<Value> vals(total_rows_);
  for (size_t p = head_; p < total_rows_; ++p) {
    const size_t bit = p;
    const bool null = (col.nulls[bit / 64] >> (bit % 64)) & 1;
    if (null) continue;  // Already Value::Null().
    switch (col.kind) {
      case ColKind::kI64:
        vals[p] = Value::Int64(col.i64[p]);
        break;
      case ColKind::kF64:
        vals[p] = Value::Double(col.f64[p]);
        break;
      case ColKind::kBool:
        vals[p] = Value::Bool(col.b8[p] != 0);
        break;
      case ColKind::kValue:
        vals[p] = std::move(col.vals[p]);
        break;
    }
  }
  col.vals = std::move(vals);
  col.i64.clear();
  col.i64.shrink_to_fit();
  col.f64.clear();
  col.f64.shrink_to_fit();
  col.b8.clear();
  col.b8.shrink_to_fit();
  col.kind = ColKind::kValue;
  (void)col_index;
}

void ColumnarWindow::AppendRow(const std::vector<Value>& values,
                               Timestamp ts) {
  const size_t p = total_rows_;
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column& col = columns_[c];
    const Value* v = c < values.size() ? &values[c] : nullptr;
    const bool null = v == nullptr || v->is_null();
    if (!null && col.kind != ColKind::kValue &&
        col.kind != KindForType(v->type())) {
      Demote(col);  // Type drift: fall back to Value cells for this column.
    }
    if (p / 64 >= col.nulls.size()) col.nulls.push_back(0);
    if (null) {
      col.nulls[p / 64] |= uint64_t{1} << (p % 64);
      ++col.null_count;
    }
    switch (col.kind) {
      case ColKind::kI64:
        col.i64.push_back(null ? 0 : v->int64_value());
        break;
      case ColKind::kF64:
        col.f64.push_back(null ? 0.0 : v->double_value());
        break;
      case ColKind::kBool:
        col.b8.push_back(null ? 0 : (v->bool_value() ? 1 : 0));
        break;
      case ColKind::kValue:
        col.vals.push_back(null ? Value::Null() : *v);
        break;
    }
  }
  ts_.push_back(ts.micros());
  ++total_rows_;
  ++revision_;
}

void ColumnarWindow::Append(const Tuple& tuple) {
  AppendRow(tuple.values(), tuple.timestamp());
}

void ColumnarWindow::PopFront(size_t n) {
  n = std::min(n, size());
  if (n == 0) return;
  for (Column& col : columns_) {
    if (col.null_count > 0) {
      for (size_t p = head_; p < head_ + n; ++p) {
        if ((col.nulls[p / 64] >> (p % 64)) & 1) --col.null_count;
      }
    }
    if (col.kind == ColKind::kValue) {
      // Release string payloads eagerly; the slots are dead.
      for (size_t p = head_; p < head_ + n; ++p) col.vals[p] = Value();
    }
  }
  head_ += n;
  ++revision_;
  MaybeCompact();
}

void ColumnarWindow::MaybeCompact() {
  if (head_ < kCompactMinDead || head_ < size()) return;
  // Erase a 64-row-aligned prefix so null bitmap words shift whole.
  const size_t drop = head_ & ~size_t{63};
  if (drop == 0) return;
  for (Column& col : columns_) {
    switch (col.kind) {
      case ColKind::kI64:
        col.i64.erase(col.i64.begin(), col.i64.begin() + drop);
        break;
      case ColKind::kF64:
        col.f64.erase(col.f64.begin(), col.f64.begin() + drop);
        break;
      case ColKind::kBool:
        col.b8.erase(col.b8.begin(), col.b8.begin() + drop);
        break;
      case ColKind::kValue:
        col.vals.erase(col.vals.begin(), col.vals.begin() + drop);
        break;
    }
    col.nulls.erase(col.nulls.begin(), col.nulls.begin() + drop / 64);
  }
  ts_.erase(ts_.begin(), ts_.begin() + drop);
  head_ -= drop;
  total_rows_ -= drop;
}

Value ColumnarWindow::ValueAt(size_t row, size_t c) const {
  const Column& col = columns_[c];
  const size_t p = head_ + row;
  if ((col.nulls[p / 64] >> (p % 64)) & 1) return Value::Null();
  switch (col.kind) {
    case ColKind::kI64:
      return Value::Int64(col.i64[p]);
    case ColKind::kF64:
      return Value::Double(col.f64[p]);
    case ColKind::kBool:
      return Value::Bool(col.b8[p] != 0);
    case ColKind::kValue:
      return col.vals[p];
  }
  return Value::Null();
}

void ColumnarWindow::MaterializeRow(size_t row, std::vector<Value>& out) const {
  out.clear();
  out.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.push_back(ValueAt(row, c));
  }
}

size_t ColumnarWindow::LowerBound(Timestamp t) const {
  const int64_t* base = timestamps();
  return static_cast<size_t>(std::lower_bound(base, base + size(),
                                              t.micros()) -
                             base);
}

size_t ColumnarWindow::UpperBound(Timestamp t) const {
  const int64_t* base = timestamps();
  return static_cast<size_t>(std::upper_bound(base, base + size(),
                                              t.micros()) -
                             base);
}

}  // namespace esp::stream
