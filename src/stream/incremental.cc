#include "stream/incremental.h"

#include <algorithm>
#include <cmath>

namespace esp::stream {

void AggregatePartial::Update(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  const double delta = value - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (value - mean);
}

void AggregatePartial::Merge(const AggregatePartial& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel update of (mean, M2).
  const double total = static_cast<double>(count + other.count);
  const double delta = other.mean - mean;
  m2 += other.m2 +
        delta * delta * static_cast<double>(count) *
            static_cast<double>(other.count) / total;
  mean = (mean * static_cast<double>(count) +
          other.mean * static_cast<double>(other.count)) /
         total;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
}

Value AggregatePartial::Final(IncAggKind kind) const {
  if (kind == IncAggKind::kCount) return Value::Int64(count);
  if (count == 0) return Value::Null();
  switch (kind) {
    case IncAggKind::kSum:
      return Value::Double(sum);
    case IncAggKind::kAvg:
      return Value::Double(mean);
    case IncAggKind::kMin:
      return Value::Double(min);
    case IncAggKind::kMax:
      return Value::Double(max);
    case IncAggKind::kStdDev:
      return Value::Double(std::sqrt(m2 / static_cast<double>(count)));
    case IncAggKind::kVar:
      return Value::Double(m2 / static_cast<double>(count));
    case IncAggKind::kCount:
      break;  // Handled above.
  }
  return Value::Null();
}

void AggregatePartial::SaveState(ByteWriter& w) const {
  w.WriteI64(count);
  w.WriteDouble(sum);
  w.WriteDouble(min);
  w.WriteDouble(max);
  w.WriteDouble(mean);
  w.WriteDouble(m2);
}

Status AggregatePartial::LoadState(ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(count, r.ReadI64());
  ESP_ASSIGN_OR_RETURN(sum, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(min, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(max, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(mean, r.ReadDouble());
  ESP_ASSIGN_OR_RETURN(m2, r.ReadDouble());
  return Status::OK();
}

void PaneWindowAggregate::SaveState(ByteWriter& w) const {
  w.WriteBool(has_inserted_);
  w.WriteI64(last_insert_.micros());
  w.WriteU64(panes_.size());
  for (const Pane& pane : panes_) {
    w.WriteI64(pane.index);
    pane.partial.SaveState(w);
  }
}

Status PaneWindowAggregate::LoadState(ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(has_inserted_, r.ReadBool());
  ESP_ASSIGN_OR_RETURN(const int64_t last_micros, r.ReadI64());
  last_insert_ = Timestamp::Micros(last_micros);
  ESP_ASSIGN_OR_RETURN(const uint64_t count, r.ReadU64());
  panes_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    Pane pane;
    ESP_ASSIGN_OR_RETURN(pane.index, r.ReadI64());
    ESP_RETURN_IF_ERROR(pane.partial.LoadState(r));
    panes_.push_back(std::move(pane));
  }
  return Status::OK();
}

StatusOr<PaneWindowAggregate> PaneWindowAggregate::Create(Duration range,
                                                          Duration pane,
                                                          IncAggKind kind) {
  if (pane.micros() <= 0) {
    return Status::InvalidArgument("pane width must be positive");
  }
  if (range.micros() <= 0 || range.micros() % pane.micros() != 0) {
    return Status::InvalidArgument(
        "window range must be a positive multiple of the pane width");
  }
  return PaneWindowAggregate(range, pane, kind);
}

int64_t PaneWindowAggregate::PaneIndex(Timestamp ts) const {
  // Pane k covers (k*pane, (k+1)*pane]; align so that a timestamp exactly
  // on a pane boundary belongs to the earlier pane, matching the RANGE
  // window's exclusive lower bound.
  const int64_t micros = ts.micros();
  const int64_t width = pane_.micros();
  // Ceil division shifted by one: index of the pane whose upper edge is the
  // smallest boundary >= ts.
  int64_t index = micros / width;
  if (micros % width == 0) index -= 1;
  return index;
}

Status PaneWindowAggregate::Insert(Timestamp ts, const Value& value) {
  if (has_inserted_ && ts < last_insert_) {
    return Status::InvalidArgument("out-of-order insert into pane window");
  }
  last_insert_ = ts;
  has_inserted_ = true;
  if (value.is_null()) return Status::OK();
  ESP_ASSIGN_OR_RETURN(const double v, value.AsDouble());

  const int64_t index = PaneIndex(ts);
  if (panes_.empty() || panes_.back().index < index) {
    panes_.push_back({index, AggregatePartial{}});
  }
  panes_.back().partial.Update(v);
  return Status::OK();
}

StatusOr<Value> PaneWindowAggregate::Evaluate(Timestamp now) {
  // The window (now - range, now] covers the panes_per_window panes ending
  // with the pane that contains `now`.
  const int64_t last = PaneIndex(now);
  const int64_t panes_per_window = range_.micros() / pane_.micros();
  const int64_t first = last - panes_per_window + 1;

  // Evict panes that ended at or before the window's lower edge.
  while (!panes_.empty() && panes_.front().index < first) {
    panes_.pop_front();
  }

  AggregatePartial combined;
  for (const Pane& pane : panes_) {
    if (pane.index >= first && pane.index <= last) {
      combined.Merge(pane.partial);
    }
  }
  return combined.Final(kind_);
}

}  // namespace esp::stream
