#ifndef ESP_STREAM_SERIALIZE_H_
#define ESP_STREAM_SERIALIZE_H_

#include "common/binio.h"
#include "common/status.h"
#include "stream/tuple.h"

namespace esp::stream {

/// \file
/// Binary serialization of stream values for the durability subsystem
/// (docs/RECOVERY.md). Values are type-tagged, so a serialized tuple is
/// self-describing up to its schema: readers supply the schema (known to
/// every owner of buffered tuples — window buffers, query histories, the
/// input journal) and get back an identical Tuple.

/// Appends one type-tagged value.
void WriteValue(ByteWriter& w, const Value& value);

/// Reads one type-tagged value.
StatusOr<Value> ReadValue(ByteReader& r);

/// Appends one tuple: timestamp + field count + values. The schema is NOT
/// serialized; the reader re-attaches the one it supplies.
void WriteTuple(ByteWriter& w, const Tuple& tuple);

/// Reads one tuple against `schema`. Fails when the serialized field count
/// does not match the schema arity.
StatusOr<Tuple> ReadTuple(ByteReader& r, const SchemaRef& schema);

/// Appends a schema (field names + types) — used by checkpoint manifests to
/// cross-check that a snapshot matches the deployed configuration.
void WriteSchema(ByteWriter& w, const Schema& schema);

/// Reads a schema written by WriteSchema.
StatusOr<SchemaRef> ReadSchema(ByteReader& r);

}  // namespace esp::stream

#endif  // ESP_STREAM_SERIALIZE_H_
