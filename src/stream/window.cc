#include "stream/window.h"

#include <cassert>

#include "stream/arena.h"
#include "stream/serialize.h"

namespace esp::stream {

namespace {
/// Evicted tuples return their value-vector backing store to the calling
/// thread's arena so the next tick's inserts reuse it.
void PopFrontRecycled(std::deque<Tuple>& buffer) {
  TupleArena::Local().Release(std::move(buffer.front().mutable_values()));
  buffer.pop_front();
}
}  // namespace

std::string WindowSpec::ToString() const {
  switch (kind) {
    case WindowKind::kRange:
      if (slide.micros() > 0) {
        return "[Range By '" + range.ToString() + "' Slide By '" +
               slide.ToString() + "']";
      }
      return "[Range By '" + range.ToString() + "']";
    case WindowKind::kNow:
      return "[Range By 'NOW']";
    case WindowKind::kRows:
      return "[Rows " + std::to_string(rows) + "]";
    case WindowKind::kUnbounded:
      return "[Unbounded]";
  }
  return "[?]";
}

Status WindowBuffer::Insert(Tuple tuple) {
  if (has_inserted_ && tuple.timestamp() < last_insert_time_) {
    return Status::InvalidArgument(
        "out-of-order insert into window buffer: " +
        tuple.timestamp().ToString() + " after " +
        last_insert_time_.ToString());
  }
  last_insert_time_ = tuple.timestamp();
  has_inserted_ = true;
  ++generation_;
  // Keep an already-built columnar mirror in sync incrementally; otherwise
  // (or when the toggle is off) it goes stale and rebuilds on next access.
  if (columns_synced_ && ColumnarEnabled()) {
    columns_.Append(tuple);
    columns_generation_ = generation_;
  } else {
    columns_synced_ = false;
  }
  buffer_.push_back(std::move(tuple));
  cache_valid_ = false;
  return Status::OK();
}

void WindowBuffer::EvictBefore(Timestamp t) {
  const size_t before = buffer_.size();
  switch (spec_.kind) {
    case WindowKind::kRange: {
      // A tuple with timestamp s is in the window at time u >= t iff
      // s > u - range; it is dead once s <= t - range. With a slide the
      // effective evaluation time lags t by up to one slide width.
      const Timestamp horizon = spec_.EffectiveTime(t) - spec_.range;
      while (!buffer_.empty() && buffer_.front().timestamp() <= horizon) {
        PopFrontRecycled(buffer_);
      }
      break;
    }
    case WindowKind::kNow: {
      while (!buffer_.empty() && buffer_.front().timestamp() < t) {
        PopFrontRecycled(buffer_);
      }
      break;
    }
    case WindowKind::kRows: {
      while (buffer_.size() > static_cast<size_t>(spec_.rows)) {
        PopFrontRecycled(buffer_);
      }
      break;
    }
    case WindowKind::kUnbounded:
      break;  // Nothing ever dies.
  }
  const size_t evicted = before - buffer_.size();
  if (evicted > 0) {
    ++generation_;
    cache_valid_ = false;
    if (columns_synced_) {
      columns_.PopFront(evicted);
      columns_generation_ = generation_;
    }
  }
}

const ColumnarWindow& WindowBuffer::Columns() const {
  // A mirror that claims to be in sync must have been synced at the current
  // generation — the incremental paths stamp it on every mutation.
  assert(!columns_synced_ || columns_generation_ == generation_);
  if (!columns_synced_ || columns_generation_ != generation_ ||
      columns_.schema() != schema_) {
    columns_.Reset(schema_);
    for (const Tuple& tuple : buffer_) columns_.Append(tuple);
    columns_synced_ = true;
    columns_generation_ = generation_;
    ++column_rebuilds_;
  }
  return columns_;
}

std::pair<size_t, size_t> WindowBuffer::ColumnsRange(Timestamp t) const {
  const ColumnarWindow& cols = Columns();
  switch (spec_.kind) {
    case WindowKind::kRange: {
      const Timestamp effective = spec_.EffectiveTime(t);
      const Timestamp low = effective - spec_.range;  // Exclusive bound.
      return {cols.UpperBound(low), cols.UpperBound(effective)};
    }
    case WindowKind::kNow:
      return {cols.LowerBound(t), cols.UpperBound(t)};
    case WindowKind::kRows: {
      const size_t hi = cols.UpperBound(t);
      const size_t n = static_cast<size_t>(spec_.rows);
      return {hi > n ? hi - n : 0, hi};
    }
    case WindowKind::kUnbounded:
      return {0, cols.UpperBound(t)};
  }
  return {0, 0};
}

void WindowBuffer::SaveState(ByteWriter& w) const {
  w.WriteBool(has_inserted_);
  w.WriteI64(last_insert_time_.micros());
  w.WriteU64(buffer_.size());
  for (const Tuple& tuple : buffer_) WriteTuple(w, tuple);
}

Status WindowBuffer::LoadState(ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(has_inserted_, r.ReadBool());
  ESP_ASSIGN_OR_RETURN(const int64_t last_micros, r.ReadI64());
  last_insert_time_ = Timestamp::Micros(last_micros);
  ESP_ASSIGN_OR_RETURN(const uint64_t count, r.ReadU64());
  buffer_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    ESP_ASSIGN_OR_RETURN(Tuple tuple, ReadTuple(r, schema_));
    buffer_.push_back(std::move(tuple));
  }
  ++generation_;
  cache_valid_ = false;
  columns_synced_ = false;
  return Status::OK();
}

bool WindowBuffer::CacheHit(Timestamp t) const {
  // A valid cache must carry the current generation: every mutator bumps
  // generation_ and clears cache_valid_ together.
  assert(!cache_valid_ || cache_generation_ == generation_);
  if (!cache_valid_ || cache_generation_ != generation_) return false;
  switch (spec_.kind) {
    case WindowKind::kRange:
      return spec_.EffectiveTime(t) == cache_key_;
    case WindowKind::kNow:
      return t == cache_key_;
    case WindowKind::kRows:
    case WindowKind::kUnbounded:
      // Identical instant always replays; a later instant replays only if
      // the cached pass admitted every buffered tuple (nothing was waiting
      // on a future timestamp).
      return t == cache_key_ || (cache_covers_all_ && t > cache_key_);
  }
  return false;
}

Relation WindowBuffer::Snapshot(Timestamp t) const {
  if (CacheHit(t)) return cache_;
  cache_ = Rebuild(t);
  ++snapshot_rebuilds_;
  cache_valid_ = true;
  cache_generation_ = generation_;
  cache_key_ = spec_.kind == WindowKind::kRange ? spec_.EffectiveTime(t) : t;
  cache_covers_all_ =
      buffer_.empty() || buffer_.back().timestamp() <= cache_key_;
  return cache_;
}

Relation WindowBuffer::Rebuild(Timestamp t) const {
  Relation result(schema_);
  switch (spec_.kind) {
    case WindowKind::kRange: {
      const Timestamp effective = spec_.EffectiveTime(t);
      const Timestamp low = effective - spec_.range;  // Exclusive bound.
      result.mutable_tuples().reserve(buffer_.size());
      for (const Tuple& tuple : buffer_) {
        if (tuple.timestamp() > low && tuple.timestamp() <= effective) {
          result.Add(tuple);
        }
      }
      break;
    }
    case WindowKind::kNow: {
      for (const Tuple& tuple : buffer_) {
        if (tuple.timestamp() == t) result.Add(tuple);
      }
      break;
    }
    case WindowKind::kRows: {
      // Collect tuples at or before t, then keep the most recent n.
      std::vector<const Tuple*> eligible;
      eligible.reserve(buffer_.size());
      for (const Tuple& tuple : buffer_) {
        if (tuple.timestamp() <= t) eligible.push_back(&tuple);
      }
      const size_t n = static_cast<size_t>(spec_.rows);
      const size_t start = eligible.size() > n ? eligible.size() - n : 0;
      result.mutable_tuples().reserve(eligible.size() - start);
      for (size_t i = start; i < eligible.size(); ++i) {
        result.Add(*eligible[i]);
      }
      break;
    }
    case WindowKind::kUnbounded: {
      result.mutable_tuples().reserve(buffer_.size());
      for (const Tuple& tuple : buffer_) {
        if (tuple.timestamp() <= t) result.Add(tuple);
      }
      break;
    }
  }
  return result;
}

}  // namespace esp::stream
