#ifndef ESP_STREAM_VALUE_H_
#define ESP_STREAM_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/status.h"
#include "common/time.h"
#include "stream/symbol_table.h"
#include "stream/type.h"

namespace esp::stream {

/// \brief A single dynamically-typed field value in a tuple.
///
/// Values are small and cheap to copy (strings use std::string). Comparison
/// and arithmetic follow SQL-flavoured rules: int64 and double coerce to
/// double when mixed; null propagates through arithmetic; comparisons against
/// null yield null (represented by StatusOr carrying a null Value where the
/// caller decides, or the convenience predicates below which treat null as
/// false).
class Value {
 public:
  /// Constructs a null value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Storage(v)); }
  static Value Int64(int64_t v) { return Value(Storage(v)); }
  static Value Double(double v) { return Value(Storage(v)); }
  static Value String(std::string v) { return Value(Storage(std::move(v))); }
  static Value Time(Timestamp t) { return Value(Storage(t)); }

  /// An interned string value: reports DataType::kString and behaves exactly
  /// like String(s) everywhere (equality, ordering, hashing, serialization),
  /// but copies as a 4-byte handle and compares by id against other interned
  /// values. Falls back to a plain string when interning is disabled (see
  /// SetStringInterningEnabled) or the table is full.
  static Value Interned(std::string_view s);
  static Value InternedSymbol(Symbol sym) { return Value(Storage(sym)); }

  DataType type() const;

  bool is_null() const { return type() == DataType::kNull; }
  bool is_numeric() const { return IsNumericType(type()); }

  /// Typed accessors; calling the wrong one aborts in debug builds.
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    if (const Symbol* sym = std::get_if<Symbol>(&data_)) {
      return SymbolTable::Global().TextOf(sym->id);
    }
    return std::get<std::string>(data_);
  }
  Timestamp time_value() const { return std::get<Timestamp>(data_); }

  /// True when this string value is an interned symbol.
  bool is_interned() const { return std::holds_alternative<Symbol>(data_); }
  Symbol symbol() const { return std::get<Symbol>(data_); }

  /// Returns the value as a double if it is numeric (int64 widens), or a
  /// TypeError otherwise.
  StatusOr<double> AsDouble() const;

  /// Returns the value as an int64 if it is integral, or a TypeError.
  StatusOr<int64_t> AsInt64() const;

  /// Structural equality: same type and same payload. Null equals null.
  /// Int64/double cross-type numeric equality is honoured (1 == 1.0).
  bool Equals(const Value& other) const;

  /// Three-way comparison for ordering. Values of incomparable types return
  /// TypeError. Null is not comparable (TypeError) — callers that need SQL
  /// semantics should special-case null first.
  StatusOr<int> Compare(const Value& other) const;

  /// Renders the value for display/CSV ("null", "true", "3.5", "abc").
  std::string ToString() const;

  /// Hash suitable for hash-map keys (used by count distinct / group by).
  /// Numerically equal int64/double values hash identically.
  size_t Hash() const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  // Symbol is appended last so the existing alternative indices (and thus
  // type()) are unchanged; index 6 also maps to DataType::kString.
  using Storage =
      std::variant<std::monostate, bool, int64_t, double, std::string,
                   Timestamp, Symbol>;
  explicit Value(Storage data) : data_(std::move(data)) {}
  Storage data_;
};

/// \brief Hash functor for using Value as an unordered_map key.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// \brief Arithmetic over values with SQL coercion rules. Null inputs
/// produce null outputs; non-numeric inputs produce TypeError.
StatusOr<Value> Add(const Value& a, const Value& b);
StatusOr<Value> Subtract(const Value& a, const Value& b);
StatusOr<Value> Multiply(const Value& a, const Value& b);
StatusOr<Value> Divide(const Value& a, const Value& b);
StatusOr<Value> Modulo(const Value& a, const Value& b);
StatusOr<Value> Negate(const Value& a);

}  // namespace esp::stream

#endif  // ESP_STREAM_VALUE_H_
