#ifndef ESP_STREAM_COLUMN_H_
#define ESP_STREAM_COLUMN_H_

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "stream/schema.h"
#include "stream/tuple.h"
#include "stream/value.h"

namespace esp::stream {

/// \brief Globally enables/disables the columnar execution path. When
/// disabled, window owners stop maintaining their columnar mirrors and the
/// evaluator's columnar fast path stands down; results are bitwise-identical
/// either way (that is the point of the toggle — ablation benchmarks and the
/// equivalence property tests flip it freely). Enabled by default.
void SetColumnarEnabled(bool enabled);
bool ColumnarEnabled();

/// \brief A columnar mirror of one time-ordered window: per-field typed
/// arrays (int64/double/bool) with a null bitmap, a timestamps column, and a
/// row-materialization escape hatch for everything the typed storage cannot
/// hold.
///
/// The container is a FIFO like the row-oriented windows it mirrors: Append
/// at the back (non-decreasing timestamps), PopFront as tuples expire. Rows
/// are addressed by *live* index (0 = oldest surviving row); eviction
/// advances a head offset in O(1) and physically compacts only occasionally,
/// in 64-row-aligned chunks so the null bitmap words never need reshifting.
///
/// Type drift: tuple values are dynamically typed, so a field declared int64
/// may occasionally carry something else. The first mismatched value demotes
/// that column to kValue storage (every cell holds a full Value) for the rest
/// of the window's life — the escape hatch that keeps the mirror lossless.
/// Strings and timestamps use kValue storage from the start (interned
/// symbols copy as 4-byte handles, so this stays cheap).
class ColumnarWindow {
 public:
  enum class ColKind : uint8_t {
    kI64,    // int64_t cells.
    kF64,    // double cells.
    kBool,   // uint8_t cells (0/1).
    kValue,  // Full Value cells (strings, timestamps, demoted columns).
  };

  ColumnarWindow() = default;
  explicit ColumnarWindow(SchemaRef schema) { Reset(std::move(schema)); }

  /// Re-binds the window to a schema and discards all contents.
  void Reset(SchemaRef schema);

  const SchemaRef& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t size() const { return total_rows_ - head_; }
  bool empty() const { return size() == 0; }

  /// Appends one tuple. Missing trailing fields store as null.
  void Append(const Tuple& tuple);
  void AppendRow(const std::vector<Value>& values, Timestamp ts);

  /// Evicts the n oldest live rows.
  void PopFront(size_t n);
  void Clear();

  ColKind col_kind(size_t c) const { return columns_[c].kind; }

  /// Typed cell arrays, pointing at live row 0. Valid only for the matching
  /// ColKind; null cells hold a zero/default payload and must be masked via
  /// the null bitmap.
  const int64_t* i64_data(size_t c) const {
    return columns_[c].i64.data() + head_;
  }
  const double* f64_data(size_t c) const {
    return columns_[c].f64.data() + head_;
  }
  const uint8_t* bool_data(size_t c) const {
    return columns_[c].b8.data() + head_;
  }
  const Value* value_data(size_t c) const {
    return columns_[c].vals.data() + head_;
  }

  /// Null bitmap words for column c: live row r is null iff bit
  /// (bit_offset() + r) of the word array is set. Compaction is 64-row
  /// aligned, so bit_offset() is always < 64.
  const uint64_t* null_words(size_t c) const { return columns_[c].nulls.data() + head_ / 64; }
  size_t bit_offset() const { return head_ % 64; }
  /// Number of null cells among the live rows of column c.
  size_t null_count(size_t c) const { return columns_[c].null_count; }
  bool has_nulls(size_t c) const { return columns_[c].null_count > 0; }
  bool is_null(size_t row, size_t c) const {
    const size_t bit = head_ + row;
    return (columns_[c].nulls[bit / 64] >> (bit % 64)) & 1;
  }

  /// Timestamps (micros) of the live rows.
  const int64_t* timestamps() const { return ts_.data() + head_; }
  Timestamp timestamp(size_t row) const {
    return Timestamp::Micros(ts_[head_ + row]);
  }

  /// Reconstructs one cell as a Value (the row-materialization escape
  /// hatch). Bitwise-faithful to the appended value.
  Value ValueAt(size_t row, size_t c) const;

  /// Fills `out` with row `row`'s values (resized to num_columns()).
  void MaterializeRow(size_t row, std::vector<Value>& out) const;

  /// First live row with timestamp >= t (lower) / > t (upper).
  size_t LowerBound(Timestamp t) const;
  size_t UpperBound(Timestamp t) const;

  /// Bumped on every mutation; lets callers key caches on window identity.
  uint64_t revision() const { return revision_; }

 private:
  struct Column {
    ColKind kind = ColKind::kValue;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<uint8_t> b8;
    std::vector<Value> vals;
    std::vector<uint64_t> nulls;  // Bit set == cell is null.
    size_t null_count = 0;        // Over live rows only.
  };

  static ColKind KindForType(DataType type);
  void Demote(Column& col);
  void MaybeCompact();

  SchemaRef schema_;
  std::vector<Column> columns_;
  std::vector<int64_t> ts_;  // Micros; physical, shares head_ with columns.
  size_t head_ = 0;          // Physical index of live row 0.
  size_t total_rows_ = 0;    // Physical row count (== ts_.size()).
  uint64_t revision_ = 0;
};

}  // namespace esp::stream

#endif  // ESP_STREAM_COLUMN_H_
