#ifndef ESP_STREAM_INCREMENTAL_H_
#define ESP_STREAM_INCREMENTAL_H_

#include <deque>

#include "common/binio.h"
#include "common/status.h"
#include "common/time.h"
#include "stream/value.h"

namespace esp::stream {

/// \brief Aggregates with combinable partials, for incremental windows.
enum class IncAggKind { kCount, kSum, kAvg, kMin, kMax, kStdDev, kVar };

/// \brief A mergeable partial aggregate over numeric inputs. One partial
/// serves every IncAggKind: it carries count/sum/min/max plus the
/// mean/M2 pair merged with Chan et al.'s parallel-variance update.
struct AggregatePartial {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double m2 = 0.0;

  /// Folds one value into the partial.
  void Update(double value);

  /// Merges another partial into this one.
  void Merge(const AggregatePartial& other);

  /// Extracts the final value for one aggregate kind. Empty partials
  /// finalize to null (count finalizes to 0), matching SQL semantics.
  Value Final(IncAggKind kind) const;

  /// Serializes / restores the sufficient statistics (durability layer).
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);
};

/// \brief Incremental sliding-window aggregation via panes.
///
/// The window of range R sliding at granularity S is partitioned into
/// ⌈R/S⌉ panes of width S; each insert folds into its pane's partial, and
/// each evaluation merges the live panes — O(panes) instead of O(window
/// tuples). This is the classic pane-based optimization (Li et al., "No
/// pane, no gain"); the ablation bench abl_window_strategy measures when it
/// beats the snapshot-recompute strategy the CQL evaluator uses.
///
/// Window semantics match WindowBuffer's RANGE windows at pane granularity:
/// Evaluate(t) covers values with timestamp in (t - R, t], provided t and
/// the insert timestamps are pane-aligned (multiples of the pane width);
/// for unaligned evaluation times the window is rounded up to whole panes.
class PaneWindowAggregate {
 public:
  /// `range` must be a positive multiple of `pane`.
  static StatusOr<PaneWindowAggregate> Create(Duration range, Duration pane,
                                              IncAggKind kind);

  /// Folds one numeric value in; timestamps must be non-decreasing. Null
  /// values are skipped (SQL), non-numerics are a TypeError.
  Status Insert(Timestamp ts, const Value& value);

  /// Returns the aggregate over the window ending at `now` and evicts
  /// panes that can no longer contribute.
  StatusOr<Value> Evaluate(Timestamp now);

  size_t live_panes() const { return panes_.size(); }

  /// Serializes the live panes + insertion clock. Range/pane/kind are
  /// configuration and are not serialized; restore into an identically
  /// configured instance.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  PaneWindowAggregate(Duration range, Duration pane, IncAggKind kind)
      : range_(range), pane_(pane), kind_(kind) {}

  int64_t PaneIndex(Timestamp ts) const;

  Duration range_;
  Duration pane_;
  IncAggKind kind_;
  struct Pane {
    int64_t index;
    AggregatePartial partial;
  };
  std::deque<Pane> panes_;
  Timestamp last_insert_;
  bool has_inserted_ = false;
};

}  // namespace esp::stream

#endif  // ESP_STREAM_INCREMENTAL_H_
