#include "stream/value.h"

#include <cmath>
#include <functional>

#include "common/string_util.h"

namespace esp::stream {

Value Value::Interned(std::string_view s) {
  if (StringInterningEnabled()) {
    if (std::optional<uint32_t> id = SymbolTable::Global().TryIntern(s)) {
      return Value(Storage(Symbol{*id}));
    }
  }
  return Value::String(std::string(s));
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
    case 5:
      return DataType::kTimestamp;
    case 6:
      return DataType::kString;  // Interned symbol.
  }
  return DataType::kNull;
}

StatusOr<double> Value::AsDouble() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(int64_value());
    case DataType::kDouble:
      return double_value();
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               DataTypeToString(type()) + " to double");
  }
}

StatusOr<int64_t> Value::AsInt64() const {
  switch (type()) {
    case DataType::kInt64:
      return int64_value();
    case DataType::kBool:
      return static_cast<int64_t>(bool_value());
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               DataTypeToString(type()) + " to int64");
  }
}

bool Value::Equals(const Value& other) const {
  // Numeric cross-type equality: 1 == 1.0.
  if (is_numeric() && other.is_numeric() && type() != other.type()) {
    return AsDouble().value() == other.AsDouble().value();
  }
  // Interned and plain strings are the same logical type: equal ids fast-
  // path, otherwise content comparison. The variant == below would compare
  // alternative indices and wrongly report symbol != string.
  if (is_interned() || other.is_interned()) {
    if (type() != other.type()) return false;
    if (is_interned() && other.is_interned()) return symbol() == other.symbol();
    return string_value() == other.string_value();
  }
  return data_ == other.data_;
}

StatusOr<int> Value::Compare(const Value& other) const {
  const DataType lhs_type = type();
  const DataType rhs_type = other.type();
  if (lhs_type == DataType::kNull || rhs_type == DataType::kNull) {
    return Status::TypeError("null is not comparable");
  }
  if (IsNumericType(lhs_type) && IsNumericType(rhs_type)) {
    const double a = AsDouble().value();
    const double b = other.AsDouble().value();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (lhs_type != rhs_type) {
    return Status::TypeError(std::string("cannot compare ") +
                             DataTypeToString(lhs_type) + " with " +
                             DataTypeToString(rhs_type));
  }
  switch (lhs_type) {
    case DataType::kBool: {
      const int a = bool_value() ? 1 : 0;
      const int b = other.bool_value() ? 1 : 0;
      return a - b;
    }
    case DataType::kString: {
      if (is_interned() && other.is_interned() && symbol() == other.symbol()) {
        return 0;
      }
      const int cmp = string_value().compare(other.string_value());
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    case DataType::kTimestamp: {
      if (time_value() < other.time_value()) return -1;
      if (time_value() > other.time_value()) return 1;
      return 0;
    }
    default:
      return Status::TypeError("unsupported comparison");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(int64_value());
    case DataType::kDouble: {
      const double v = double_value();
      // Render integral doubles without a trailing ".000000".
      if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
        return StrFormat("%.1f", v);
      }
      return StrFormat("%g", v);
    }
    case DataType::kString:
      return string_value();
    case DataType::kTimestamp:
      return time_value().ToString();
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b9;
    case DataType::kBool:
      return std::hash<bool>{}(bool_value());
    case DataType::kInt64: {
      // Hash integral values via double so 1 and 1.0 collide (they compare
      // equal).
      return std::hash<double>{}(static_cast<double>(int64_value()));
    }
    case DataType::kDouble:
      return std::hash<double>{}(double_value());
    case DataType::kString:
      // Interned values reuse the table's precomputed content hash, which
      // is the same std::hash<std::string> a plain string computes here.
      if (is_interned()) return SymbolTable::Global().HashOf(symbol().id);
      return std::hash<std::string>{}(string_value());
    case DataType::kTimestamp:
      return std::hash<int64_t>{}(time_value().micros());
  }
  return 0;
}

namespace {

/// Shared implementation for the four basic arithmetic operators.
template <typename IntOp, typename DoubleOp>
StatusOr<Value> Arith(const Value& a, const Value& b, IntOp int_op,
                      DoubleOp double_op, bool is_division) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::TypeError(std::string("arithmetic requires numbers, got ") +
                             DataTypeToString(a.type()) + " and " +
                             DataTypeToString(b.type()));
  }
  if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
    if (is_division && b.int64_value() == 0) {
      return Status::InvalidArgument("division by zero");
    }
    return Value::Int64(int_op(a.int64_value(), b.int64_value()));
  }
  const double lhs = a.AsDouble().value();
  const double rhs = b.AsDouble().value();
  if (is_division && rhs == 0.0) {
    return Status::InvalidArgument("division by zero");
  }
  return Value::Double(double_op(lhs, rhs));
}

}  // namespace

StatusOr<Value> Add(const Value& a, const Value& b) {
  return Arith(
      a, b, [](int64_t x, int64_t y) { return x + y; },
      [](double x, double y) { return x + y; }, /*is_division=*/false);
}

StatusOr<Value> Subtract(const Value& a, const Value& b) {
  return Arith(
      a, b, [](int64_t x, int64_t y) { return x - y; },
      [](double x, double y) { return x - y; }, /*is_division=*/false);
}

StatusOr<Value> Multiply(const Value& a, const Value& b) {
  return Arith(
      a, b, [](int64_t x, int64_t y) { return x * y; },
      [](double x, double y) { return x * y; }, /*is_division=*/false);
}

StatusOr<Value> Divide(const Value& a, const Value& b) {
  return Arith(
      a, b, [](int64_t x, int64_t y) { return x / y; },
      [](double x, double y) { return x / y; }, /*is_division=*/true);
}

StatusOr<Value> Modulo(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() != DataType::kInt64 || b.type() != DataType::kInt64) {
    return Status::TypeError("modulo requires integer operands");
  }
  if (b.int64_value() == 0) {
    return Status::InvalidArgument("modulo by zero");
  }
  return Value::Int64(a.int64_value() % b.int64_value());
}

StatusOr<Value> Negate(const Value& a) {
  if (a.is_null()) return Value::Null();
  if (a.type() == DataType::kInt64) return Value::Int64(-a.int64_value());
  if (a.type() == DataType::kDouble) return Value::Double(-a.double_value());
  return Status::TypeError("negation requires a number");
}

}  // namespace esp::stream
