#ifndef ESP_STREAM_ARENA_H_
#define ESP_STREAM_ARENA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "stream/tuple.h"
#include "stream/value.h"

namespace esp::stream {

/// \brief A free-list of std::vector<Value> backing stores, recycled across
/// ticks instead of round-tripping through the allocator.
///
/// The steady-state data plane creates and destroys thousands of small value
/// vectors per tick (evaluator rows, projection outputs, window evictions)
/// whose sizes barely vary. The arena keeps released vectors (cleared, with
/// their capacity intact) and hands them back on Acquire.
///
/// Lifetime rules: the arena is a cache, not an owner. A vector obtained
/// from Acquire() may be freed normally anywhere (e.g. inside a Tuple handed
/// to the caller) — only vectors explicitly passed to Release() return to
/// the pool. Each thread has its own arena (Local()), so shard workers never
/// contend; releasing a vector on a different thread than the one that
/// allocated it is safe (it just migrates the buffer).
class TupleArena {
 public:
  /// The calling thread's arena.
  static TupleArena& Local();

  /// Globally enables/disables buffer recycling. When disabled, Acquire
  /// always allocates fresh and Release frees normally. Useful for memory
  /// ablation benchmarks and for debugging under sanitizers (recycled
  /// buffers hide use-after-free from ASan). Enabled by default.
  static void SetPoolingEnabled(bool enabled);
  static bool PoolingEnabled();

  /// Returns an empty vector with at least `reserve` capacity, reusing a
  /// pooled backing store when one is available.
  std::vector<Value> Acquire(size_t reserve) {
    if (!pool_.empty() && PoolingEnabled()) {
      std::vector<Value> v = std::move(pool_.back());
      pool_.pop_back();
      ++hits_;
      if (v.capacity() < reserve) v.reserve(reserve);
      return v;
    }
    ++misses_;
    std::vector<Value> v;
    v.reserve(reserve);
    return v;
  }

  /// Returns a vector's backing store to the pool. The elements are
  /// destroyed now (clear()); the capacity is kept. Oversized buffers and
  /// overflow beyond the pool cap are simply freed.
  void Release(std::vector<Value>&& v) {
    if (!PoolingEnabled() || v.capacity() == 0 ||
        v.capacity() > kMaxPooledCapacity ||
        pool_.size() >= kMaxPooledVectors) {
      return;  // Let the vector free normally.
    }
    v.clear();
    pool_.push_back(std::move(v));
  }

  /// Returns an empty tuple vector, reusing a pooled backing store when one
  /// is available. Pairs with ReleaseTuples()/Recycle() the way Acquire()
  /// pairs with Release(); relations built on these vectors stop allocating
  /// their tuple arrays once the pool warms up.
  std::vector<Tuple> AcquireTuples() {
    if (!tuple_pool_.empty() && PoolingEnabled()) {
      std::vector<Tuple> v = std::move(tuple_pool_.back());
      tuple_pool_.pop_back();
      ++hits_;
      return v;
    }
    ++misses_;
    return {};
  }

  /// Returns a tuple vector's backing store to the pool. Elements are
  /// destroyed now; callers should Recycle() value stores first.
  void ReleaseTuples(std::vector<Tuple>&& v) {
    if (!PoolingEnabled() || v.capacity() == 0 ||
        v.capacity() > kMaxPooledCapacity ||
        tuple_pool_.size() >= kMaxPooledVectors) {
      return;  // Let the vector free normally.
    }
    v.clear();
    tuple_pool_.push_back(std::move(v));
  }

  /// Releases the backing store of every tuple in `relation` (which is left
  /// empty) and pools the tuple array itself. For stages that drop a whole
  /// relation at end of tick.
  void Recycle(Relation&& relation) {
    for (Tuple& tuple : relation.mutable_tuples()) {
      Release(std::move(tuple.mutable_values()));
    }
    ReleaseTuples(std::move(relation.mutable_tuples()));
    relation.mutable_tuples().clear();
  }

  size_t pooled() const { return pool_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  static constexpr size_t kMaxPooledVectors = 8192;
  static constexpr size_t kMaxPooledCapacity = 64;  // Values per vector.

  std::vector<std::vector<Value>> pool_;
  std::vector<std::vector<Tuple>> tuple_pool_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace esp::stream

#endif  // ESP_STREAM_ARENA_H_
