#ifndef ESP_STREAM_OPS_H_
#define ESP_STREAM_OPS_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "stream/tuple.h"

namespace esp::stream {

/// \brief Hash/equality for composite group-by keys.
struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& values) const;
};
struct ValueVectorEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;
};

/// Predicate and transform signatures used by the functional operators; the
/// ESP operator toolkit programs stages with these when declarative CQL is
/// not expressive enough (Section 3.3: "user-defined functions or arbitrary
/// code").
using TuplePredicate = std::function<StatusOr<bool>(const Tuple&)>;
using TupleTransform = std::function<StatusOr<Tuple>(const Tuple&)>;

/// \brief Keeps the tuples for which `predicate` returns true.
StatusOr<Relation> Filter(const Relation& input, const TuplePredicate& predicate);

/// \brief Applies `transform` to every tuple. The output schema is taken
/// from the first produced tuple (inputs may be empty, in which case
/// `output_schema` is used).
StatusOr<Relation> Map(const Relation& input, SchemaRef output_schema,
                       const TupleTransform& transform);

/// \brief Keeps only the named columns, in the given order.
StatusOr<Relation> ProjectColumns(const Relation& input,
                                  const std::vector<std::string>& columns);

/// \brief Concatenates relations; all inputs must share the first input's
/// schema (column names and types).
StatusOr<Relation> Union(const std::vector<Relation>& inputs);

/// \brief As above, consuming the inputs (tuples are moved, not copied).
StatusOr<Relation> Union(std::vector<Relation>&& inputs);

/// \brief Groups by the named key columns and reduces every group with
/// `reduce`, which receives the key values and the group's rows and emits
/// one output tuple.
using GroupReducer = std::function<StatusOr<Tuple>(
    const std::vector<Value>& key, const std::vector<const Tuple*>& rows)>;
StatusOr<Relation> GroupBy(const Relation& input,
                           const std::vector<std::string>& key_columns,
                           SchemaRef output_schema, const GroupReducer& reduce);

/// \brief Hash equi-join: pairs every left row with the right rows whose
/// `right_key` equals the left row's `left_key` (inner join; null keys
/// never match). Output schema is the concatenation of both inputs'
/// columns; name collisions get a "right_" prefix on the right side.
/// Output tuples carry the later of the two source timestamps.
StatusOr<Relation> HashJoin(const Relation& left, const std::string& left_key,
                            const Relation& right,
                            const std::string& right_key);

/// \brief Removes duplicate rows (all fields compared; first occurrence
/// wins).
StatusOr<Relation> Distinct(const Relation& input);

/// \brief Stable-sorts rows by the named column ascending (nulls first).
StatusOr<Relation> SortBy(const Relation& input, const std::string& column);

/// \brief Convenience reductions over one column of a relation.
StatusOr<double> ColumnMean(const Relation& input, const std::string& column);
StatusOr<double> ColumnStdDev(const Relation& input, const std::string& column);
StatusOr<int64_t> ColumnCountDistinct(const Relation& input,
                                      const std::string& column);

}  // namespace esp::stream

#endif  // ESP_STREAM_OPS_H_
