#include "stream/aggregate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/string_util.h"

namespace esp::stream {

namespace {

/// count(x): number of non-null inputs. Also used for count(*) — the caller
/// feeds a non-null marker per row.
class CountAggregator : public Aggregator {
 public:
  Status Update(const Value& value) override {
    if (!value.is_null()) ++count_;
    return Status::OK();
  }
  Value Final() const override { return Value::Int64(count_); }
  bool Reset() override {
    count_ = 0;
    return true;
  }

 private:
  int64_t count_ = 0;
};

class SumAggregator : public Aggregator {
 public:
  Status Update(const Value& value) override {
    if (value.is_null()) return Status::OK();
    ESP_ASSIGN_OR_RETURN(const double v, value.AsDouble());
    sum_ += v;
    saw_value_ = true;
    // Preserve int64 typing when every input is integral.
    all_integers_ = all_integers_ && value.type() == DataType::kInt64;
    return Status::OK();
  }
  Value Final() const override {
    if (!saw_value_) return Value::Null();
    if (all_integers_) return Value::Int64(static_cast<int64_t>(sum_));
    return Value::Double(sum_);
  }
  bool Reset() override {
    sum_ = 0.0;
    saw_value_ = false;
    all_integers_ = true;
    return true;
  }

 private:
  double sum_ = 0.0;
  bool saw_value_ = false;
  bool all_integers_ = true;
};

class AvgAggregator : public Aggregator {
 public:
  Status Update(const Value& value) override {
    if (value.is_null()) return Status::OK();
    ESP_ASSIGN_OR_RETURN(const double v, value.AsDouble());
    sum_ += v;
    ++count_;
    return Status::OK();
  }
  Value Final() const override {
    if (count_ == 0) return Value::Null();
    return Value::Double(sum_ / static_cast<double>(count_));
  }
  bool Reset() override {
    sum_ = 0.0;
    count_ = 0;
    return true;
  }

 private:
  double sum_ = 0.0;
  int64_t count_ = 0;
};

class MinMaxAggregator : public Aggregator {
 public:
  explicit MinMaxAggregator(bool is_min) : is_min_(is_min) {}

  Status Update(const Value& value) override {
    if (value.is_null()) return Status::OK();
    if (best_.is_null()) {
      best_ = value;
      return Status::OK();
    }
    ESP_ASSIGN_OR_RETURN(const int cmp, value.Compare(best_));
    if ((is_min_ && cmp < 0) || (!is_min_ && cmp > 0)) best_ = value;
    return Status::OK();
  }
  Value Final() const override { return best_; }
  bool Reset() override {
    best_ = Value::Null();
    return true;
  }

 private:
  bool is_min_;
  Value best_;
};

/// Order statistics: median / arbitrary percentile. Buffers the window's
/// values (windows are bounded, so this is acceptable); interpolates
/// between ranks like most SQL engines' percentile_cont.
class PercentileAggregator : public Aggregator {
 public:
  explicit PercentileAggregator(double fraction) : fraction_(fraction) {}

  Status Update(const Value& value) override {
    if (value.is_null()) return Status::OK();
    ESP_ASSIGN_OR_RETURN(const double v, value.AsDouble());
    values_.push_back(v);
    return Status::OK();
  }
  Value Final() const override {
    if (values_.empty()) return Value::Null();
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        fraction_ * static_cast<double>(sorted.size() - 1);
    const size_t lower = static_cast<size_t>(rank);
    const size_t upper = std::min(lower + 1, sorted.size() - 1);
    const double weight = rank - static_cast<double>(lower);
    return Value::Double(sorted[lower] * (1.0 - weight) +
                         sorted[upper] * weight);
  }
  bool Reset() override {
    values_.clear();
    return true;
  }

 private:
  double fraction_;
  std::vector<double> values_;
};

/// Population standard deviation / variance via Welford's algorithm.
class StdDevAggregator : public Aggregator {
 public:
  explicit StdDevAggregator(bool variance) : variance_(variance) {}

  Status Update(const Value& value) override {
    if (value.is_null()) return Status::OK();
    ESP_ASSIGN_OR_RETURN(const double v, value.AsDouble());
    ++count_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    return Status::OK();
  }
  Value Final() const override {
    if (count_ == 0) return Value::Null();
    const double var = m2_ / static_cast<double>(count_);
    return Value::Double(variance_ ? var : std::sqrt(var));
  }
  bool Reset() override {
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    return true;
  }

 private:
  bool variance_;
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace

Status DistinctAggregator::Update(const Value& value) {
  if (value.is_null()) return Status::OK();
  if (!seen_.insert(value).second) return Status::OK();
  return inner_->Update(value);
}

AggregateRegistry::AggregateRegistry() {
  factories_.emplace_back(
      "count", [] { return std::make_unique<CountAggregator>(); });
  factories_.emplace_back("sum",
                          [] { return std::make_unique<SumAggregator>(); });
  factories_.emplace_back("avg",
                          [] { return std::make_unique<AvgAggregator>(); });
  factories_.emplace_back(
      "min", [] { return std::make_unique<MinMaxAggregator>(true); });
  factories_.emplace_back(
      "max", [] { return std::make_unique<MinMaxAggregator>(false); });
  factories_.emplace_back(
      "stdev", [] { return std::make_unique<StdDevAggregator>(false); });
  factories_.emplace_back(
      "stddev", [] { return std::make_unique<StdDevAggregator>(false); });
  factories_.emplace_back(
      "var", [] { return std::make_unique<StdDevAggregator>(true); });
  factories_.emplace_back(
      "median", [] { return std::make_unique<PercentileAggregator>(0.5); });
  factories_.emplace_back("p90", [] {
    return std::make_unique<PercentileAggregator>(0.9);
  });
  factories_.emplace_back("p95", [] {
    return std::make_unique<PercentileAggregator>(0.95);
  });
}

AggregateRegistry& AggregateRegistry::Global() {
  static AggregateRegistry* registry = new AggregateRegistry();
  return *registry;
}

Status AggregateRegistry::Register(const std::string& name,
                                   AggregatorFactory factory) {
  if (Contains(name)) {
    return Status::AlreadyExists("aggregate '" + name + "' already registered");
  }
  factories_.emplace_back(StrToLower(name), std::move(factory));
  return Status::OK();
}

StatusOr<std::unique_ptr<Aggregator>> AggregateRegistry::Create(
    const std::string& name, bool distinct) const {
  for (const auto& [registered, factory] : factories_) {
    if (StrEqualsIgnoreCase(registered, name)) {
      std::unique_ptr<Aggregator> agg = factory();
      if (distinct) {
        agg = std::make_unique<DistinctAggregator>(std::move(agg));
      }
      return agg;
    }
  }
  return Status::NotFound("unknown aggregate function '" + name + "'");
}

bool AggregateRegistry::Contains(const std::string& name) const {
  for (const auto& [registered, factory] : factories_) {
    if (StrEqualsIgnoreCase(registered, name)) return true;
  }
  return false;
}

}  // namespace esp::stream
