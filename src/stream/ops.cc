#include "stream/ops.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "stream/aggregate.h"

namespace esp::stream {

size_t ValueVectorHash::operator()(const std::vector<Value>& values) const {
  size_t hash = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : values) {
    hash ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
  }
  return hash;
}

bool ValueVectorEq::operator()(const std::vector<Value>& a,
                               const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

StatusOr<Relation> Filter(const Relation& input,
                          const TuplePredicate& predicate) {
  Relation result(input.schema());
  for (const Tuple& tuple : input.tuples()) {
    ESP_ASSIGN_OR_RETURN(const bool keep, predicate(tuple));
    if (keep) result.Add(tuple);
  }
  return result;
}

StatusOr<Relation> Map(const Relation& input, SchemaRef output_schema,
                       const TupleTransform& transform) {
  Relation result(std::move(output_schema));
  for (const Tuple& tuple : input.tuples()) {
    ESP_ASSIGN_OR_RETURN(Tuple mapped, transform(tuple));
    result.Add(std::move(mapped));
  }
  return result;
}

StatusOr<Relation> ProjectColumns(const Relation& input,
                                  const std::vector<std::string>& columns) {
  if (input.schema() == nullptr) {
    return Status::Internal("projection over schema-less relation");
  }
  std::vector<size_t> indices;
  std::vector<Field> fields;
  for (const std::string& name : columns) {
    ESP_ASSIGN_OR_RETURN(const size_t index,
                         input.schema()->ResolveIndex(name));
    indices.push_back(index);
    fields.push_back(input.schema()->field(index));
  }
  SchemaRef schema = MakeSchema(std::move(fields));
  Relation result(schema);
  for (const Tuple& tuple : input.tuples()) {
    std::vector<Value> values;
    values.reserve(indices.size());
    for (size_t index : indices) values.push_back(tuple.value(index));
    result.Add(Tuple(schema, std::move(values), tuple.timestamp()));
  }
  return result;
}

StatusOr<Relation> Union(const std::vector<Relation>& inputs) {
  if (inputs.empty()) return Relation();
  const SchemaRef& schema = inputs.front().schema();
  Relation result(schema);
  for (const Relation& input : inputs) {
    if (input.schema() != nullptr && schema != nullptr &&
        !input.schema()->Equals(*schema)) {
      return Status::TypeError("union over mismatched schemas: [" +
                               schema->ToString() + "] vs [" +
                               input.schema()->ToString() + "]");
    }
    for (const Tuple& tuple : input.tuples()) result.Add(tuple);
  }
  // Union of streams preserves global timestamp order for downstream
  // window processing.
  std::stable_sort(result.mutable_tuples().begin(),
                   result.mutable_tuples().end(),
                   [](const Tuple& a, const Tuple& b) {
                     return a.timestamp() < b.timestamp();
                   });
  return result;
}

StatusOr<Relation> Union(std::vector<Relation>&& inputs) {
  if (inputs.empty()) return Relation();
  const SchemaRef schema = inputs.front().schema();
  Relation result(schema);
  for (Relation& input : inputs) {
    if (input.schema() != nullptr && schema != nullptr &&
        !input.schema()->Equals(*schema)) {
      return Status::TypeError("union over mismatched schemas: [" +
                               schema->ToString() + "] vs [" +
                               input.schema()->ToString() + "]");
    }
    for (Tuple& tuple : input.mutable_tuples()) {
      result.Add(std::move(tuple));
    }
  }
  std::stable_sort(result.mutable_tuples().begin(),
                   result.mutable_tuples().end(),
                   [](const Tuple& a, const Tuple& b) {
                     return a.timestamp() < b.timestamp();
                   });
  return result;
}

StatusOr<Relation> GroupBy(const Relation& input,
                           const std::vector<std::string>& key_columns,
                           SchemaRef output_schema,
                           const GroupReducer& reduce) {
  std::vector<size_t> key_indices;
  if (!key_columns.empty()) {
    if (input.schema() == nullptr) {
      return Status::Internal("group-by over schema-less relation");
    }
    for (const std::string& name : key_columns) {
      ESP_ASSIGN_OR_RETURN(const size_t index,
                           input.schema()->ResolveIndex(name));
      key_indices.push_back(index);
    }
  }

  // Preserve first-seen group order for deterministic output.
  std::unordered_map<std::vector<Value>, size_t, ValueVectorHash, ValueVectorEq>
      group_index;
  std::vector<std::vector<Value>> keys;
  std::vector<std::vector<const Tuple*>> groups;
  for (const Tuple& tuple : input.tuples()) {
    std::vector<Value> key;
    key.reserve(key_indices.size());
    for (size_t index : key_indices) key.push_back(tuple.value(index));
    auto [it, inserted] = group_index.emplace(key, groups.size());
    if (inserted) {
      keys.push_back(std::move(key));
      groups.emplace_back();
    }
    groups[it->second].push_back(&tuple);
  }

  Relation result(std::move(output_schema));
  for (size_t g = 0; g < groups.size(); ++g) {
    ESP_ASSIGN_OR_RETURN(Tuple out, reduce(keys[g], groups[g]));
    result.Add(std::move(out));
  }
  return result;
}

StatusOr<Relation> HashJoin(const Relation& left, const std::string& left_key,
                            const Relation& right,
                            const std::string& right_key) {
  if (left.schema() == nullptr || right.schema() == nullptr) {
    return Status::Internal("join over schema-less relation");
  }
  ESP_ASSIGN_OR_RETURN(const size_t left_index,
                       left.schema()->ResolveIndex(left_key));
  ESP_ASSIGN_OR_RETURN(const size_t right_index,
                       right.schema()->ResolveIndex(right_key));

  // Combined schema; disambiguate collisions with a right_ prefix.
  std::vector<Field> fields = left.schema()->fields();
  for (const Field& field : right.schema()->fields()) {
    Field out = field;
    if (left.schema()->Contains(field.name)) {
      out.name = "right_" + field.name;
    }
    fields.push_back(std::move(out));
  }
  SchemaRef schema = MakeSchema(std::move(fields));

  // Build on the smaller side conceptually; for clarity build on the right.
  std::unordered_map<Value, std::vector<const Tuple*>, ValueHash> table;
  for (const Tuple& tuple : right.tuples()) {
    const Value& key = tuple.value(right_index);
    if (key.is_null()) continue;
    table[key].push_back(&tuple);
  }

  Relation result(schema);
  for (const Tuple& left_tuple : left.tuples()) {
    const Value& key = left_tuple.value(left_index);
    if (key.is_null()) continue;
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (const Tuple* right_tuple : it->second) {
      std::vector<Value> values = left_tuple.values();
      values.insert(values.end(), right_tuple->values().begin(),
                    right_tuple->values().end());
      result.Add(Tuple(schema, std::move(values),
                       std::max(left_tuple.timestamp(),
                                right_tuple->timestamp())));
    }
  }
  return result;
}

StatusOr<Relation> Distinct(const Relation& input) {
  Relation result(input.schema());
  std::unordered_set<std::vector<Value>, ValueVectorHash, ValueVectorEq> seen;
  for (const Tuple& tuple : input.tuples()) {
    if (seen.insert(tuple.values()).second) result.Add(tuple);
  }
  return result;
}

StatusOr<Relation> SortBy(const Relation& input, const std::string& column) {
  if (input.schema() == nullptr) {
    return Status::Internal("sort over schema-less relation");
  }
  ESP_ASSIGN_OR_RETURN(const size_t index,
                       input.schema()->ResolveIndex(column));
  Relation result = input;
  Status failure;
  std::stable_sort(
      result.mutable_tuples().begin(), result.mutable_tuples().end(),
      [&](const Tuple& a, const Tuple& b) {
        const Value& lhs = a.value(index);
        const Value& rhs = b.value(index);
        if (lhs.is_null()) return !rhs.is_null();  // Nulls first.
        if (rhs.is_null()) return false;
        auto cmp = lhs.Compare(rhs);
        if (!cmp.ok()) {
          if (failure.ok()) failure = cmp.status();
          return false;
        }
        return *cmp < 0;
      });
  if (!failure.ok()) return failure;
  return result;
}

namespace {

StatusOr<Value> RunColumnAggregate(const Relation& input,
                                   const std::string& column,
                                   const std::string& aggregate,
                                   bool distinct) {
  if (input.schema() == nullptr) {
    return Status::Internal("aggregate over schema-less relation");
  }
  ESP_ASSIGN_OR_RETURN(const size_t index,
                       input.schema()->ResolveIndex(column));
  ESP_ASSIGN_OR_RETURN(std::unique_ptr<Aggregator> agg,
                       AggregateRegistry::Global().Create(aggregate, distinct));
  for (const Tuple& tuple : input.tuples()) {
    ESP_RETURN_IF_ERROR(agg->Update(tuple.value(index)));
  }
  return agg->Final();
}

}  // namespace

StatusOr<double> ColumnMean(const Relation& input, const std::string& column) {
  ESP_ASSIGN_OR_RETURN(const Value v,
                       RunColumnAggregate(input, column, "avg", false));
  if (v.is_null()) {
    return Status::InvalidArgument("mean of empty/all-null column");
  }
  return v.AsDouble();
}

StatusOr<double> ColumnStdDev(const Relation& input,
                              const std::string& column) {
  ESP_ASSIGN_OR_RETURN(const Value v,
                       RunColumnAggregate(input, column, "stdev", false));
  if (v.is_null()) {
    return Status::InvalidArgument("stdev of empty/all-null column");
  }
  return v.AsDouble();
}

StatusOr<int64_t> ColumnCountDistinct(const Relation& input,
                                      const std::string& column) {
  ESP_ASSIGN_OR_RETURN(const Value v,
                       RunColumnAggregate(input, column, "count", true));
  return v.AsInt64();
}

}  // namespace esp::stream
