#ifndef ESP_STREAM_SCHEMA_H_
#define ESP_STREAM_SCHEMA_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "stream/type.h"

namespace esp::stream {

/// \brief One named, typed column of a schema.
struct Field {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Field&) const = default;
};

/// \brief An ordered list of fields describing the layout of tuples in a
/// stream or relation.
///
/// Schemas are immutable once constructed and shared between tuples via
/// std::shared_ptr (see SchemaRef). Field names are matched
/// case-insensitively, mirroring SQL identifier semantics.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
    BuildIndex();
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Returns the index of the field with the given (case-insensitive) name,
  /// or nullopt if absent.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Like IndexOf but returns NotFound with a helpful message.
  StatusOr<size_t> ResolveIndex(const std::string& name) const;

  /// True if a field with this name exists.
  bool Contains(const std::string& name) const {
    return IndexOf(name).has_value();
  }

  /// Structural equality (names compared case-insensitively).
  bool Equals(const Schema& other) const;

  /// Renders "name:type, name:type, ...".
  std::string ToString() const;

 private:
  void BuildIndex();

  std::vector<Field> fields_;
  /// Case-insensitive name → first matching field index, built once at
  /// construction so IndexOf is O(1) instead of a per-lookup scan.
  std::unordered_map<std::string, size_t, AsciiCaseHash, AsciiCaseEq>
      index_by_name_;
};

using SchemaRef = std::shared_ptr<const Schema>;

/// \brief Convenience: builds a shared schema from a field list.
SchemaRef MakeSchema(std::vector<Field> fields);

}  // namespace esp::stream

#endif  // ESP_STREAM_SCHEMA_H_
