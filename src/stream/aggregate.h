#ifndef ESP_STREAM_AGGREGATE_H_
#define ESP_STREAM_AGGREGATE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "stream/value.h"

namespace esp::stream {

/// \brief One running aggregate computation (the "accumulator").
///
/// Instances are single-use: create via AggregateRegistry, feed Update() for
/// every input row, then call Final(). SQL null semantics: null inputs are
/// skipped (except count(*), which never sees values at all — the caller
/// invokes UpdateRow() for it).
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Feeds one input value. Null values are ignored by all built-ins.
  virtual Status Update(const Value& value) = 0;

  /// Produces the aggregate result. Empty-input behaviour follows SQL:
  /// count -> 0, everything else -> null.
  virtual Value Final() const = 0;

  /// Returns the aggregator to its freshly-constructed state and returns
  /// true, allowing the evaluator to reuse one instance across groups
  /// instead of heap-allocating per group. The default returns false
  /// (unsupported) so user-defined aggregates keep single-use semantics.
  virtual bool Reset() { return false; }
};

using AggregatorFactory = std::function<std::unique_ptr<Aggregator>()>;

/// \brief Registry of aggregate functions by (case-insensitive) name.
///
/// Built-ins: count, sum, avg, min, max, stdev (population standard
/// deviation, matching the paper's Query 5 usage), var. `count(distinct x)`
/// is requested via the `distinct` flag. Deployments may register
/// user-defined aggregates (UDAs) per Section 3.3 of the paper.
class AggregateRegistry {
 public:
  /// Returns the process-wide registry pre-loaded with the built-ins.
  static AggregateRegistry& Global();

  /// Registers a UDA. Fails with AlreadyExists on name collision.
  Status Register(const std::string& name, AggregatorFactory factory);

  /// Instantiates an aggregator. `distinct` wraps the aggregator so each
  /// distinct input value is fed exactly once.
  StatusOr<std::unique_ptr<Aggregator>> Create(const std::string& name,
                                               bool distinct) const;

  /// True if `name` names a registered aggregate (used by the analyzer to
  /// distinguish aggregate calls from scalar function calls).
  bool Contains(const std::string& name) const;

 private:
  AggregateRegistry();
  std::vector<std::pair<std::string, AggregatorFactory>> factories_;
};

/// \brief Wraps any aggregator so duplicate input values are fed only once —
/// implements the DISTINCT modifier.
class DistinctAggregator : public Aggregator {
 public:
  explicit DistinctAggregator(std::unique_ptr<Aggregator> inner)
      : inner_(std::move(inner)) {}

  Status Update(const Value& value) override;
  Value Final() const override { return inner_->Final(); }
  bool Reset() override {
    seen_.clear();
    return inner_->Reset();
  }

 private:
  std::unique_ptr<Aggregator> inner_;
  std::unordered_set<Value, ValueHash> seen_;
};

}  // namespace esp::stream

#endif  // ESP_STREAM_AGGREGATE_H_
