#ifndef ESP_STREAM_SYMBOL_TABLE_H_
#define ESP_STREAM_SYMBOL_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace esp::stream {

/// \brief A dense 32-bit handle to an interned string in the deployment's
/// SymbolTable. Two symbols with equal ids denote the same string; the
/// table dedups on insert, so equal ids is also a *necessary* condition
/// for equal content.
struct Symbol {
  uint32_t id = 0;
  bool operator==(const Symbol&) const = default;
};

/// \brief Deployment-scoped, thread-safe intern table.
///
/// ESP's vocabulary (tag ids, receptor ids, shelf names) is tiny and
/// endlessly repeated, so the table maps each distinct string to a dense id
/// once and every subsequent tuple carries the 4-byte handle instead of a
/// fresh std::string. Entries are stored in fixed-size blocks that are
/// never moved or freed: TextOf/HashOf are lock-free pointer chases and the
/// returned references stay valid for the life of the process. Interning
/// takes a mutex (insert-or-find); it runs at ingest, not per evaluation.
class SymbolTable {
 public:
  static SymbolTable& Global();

  /// Returns the id for `text`, interning it on first sight. Returns
  /// nullopt only when the table is full (2^24 distinct strings) — callers
  /// fall back to a plain string value.
  std::optional<uint32_t> TryIntern(std::string_view text);

  /// The interned string for a valid id. Lock-free; the reference is stable.
  const std::string& TextOf(uint32_t id) const {
    return EntryOf(id).text;
  }

  /// Precomputed std::hash<std::string> of the content, so interned and
  /// plain string values hash identically in shared hash maps.
  size_t HashOf(uint32_t id) const { return EntryOf(id).hash; }

  /// Number of interned strings so far.
  size_t size() const { return published_.load(std::memory_order_acquire); }

 private:
  struct Entry {
    std::string text;
    size_t hash = 0;
  };

  // 4096 entries per block, 4096 blocks: ids are 24-bit in practice.
  static constexpr uint32_t kBlockBits = 12;
  static constexpr uint32_t kBlockSize = 1u << kBlockBits;
  static constexpr uint32_t kMaxBlocks = 1u << 12;

  SymbolTable() = default;

  const Entry& EntryOf(uint32_t id) const {
    const Entry* block =
        blocks_[id >> kBlockBits].load(std::memory_order_acquire);
    return block[id & (kBlockSize - 1)];
  }

  std::array<std::atomic<Entry*>, kMaxBlocks> blocks_{};
  std::atomic<uint32_t> published_{0};

  std::mutex mu_;
  uint32_t count_ = 0;                                 // Guarded by mu_.
  std::unordered_map<std::string_view, uint32_t> index_;  // Guarded by mu_.
};

/// \brief Toggles whether Value::Interned() actually interns (default on).
/// When disabled it returns plain string values, which lets benchmarks and
/// equivalence tests compare the two representations. Construction-time
/// only: existing interned values are unaffected. Not thread-safe with
/// respect to in-flight ingest.
void SetStringInterningEnabled(bool enabled);
bool StringInterningEnabled();

}  // namespace esp::stream

#endif  // ESP_STREAM_SYMBOL_TABLE_H_
