#ifndef ESP_STREAM_TYPE_H_
#define ESP_STREAM_TYPE_H_

#include <string>

namespace esp::stream {

/// \brief The ESP tuple field types.
///
/// Receptor readings are narrow records (ids, measurements, timestamps), so a
/// compact scalar type system suffices. kNull is the type of an absent value;
/// analyzers treat it as coercible to any other type.
enum class DataType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kTimestamp,
};

/// \brief Returns a lower-case name for the type ("int64", "string", ...).
const char* DataTypeToString(DataType type);

/// \brief True for kInt64 and kDouble.
bool IsNumericType(DataType type);

/// \brief The result type of an arithmetic operation over two inputs
/// (int64 op int64 -> int64, anything with a double -> double).
DataType PromoteNumeric(DataType a, DataType b);

}  // namespace esp::stream

#endif  // ESP_STREAM_TYPE_H_
