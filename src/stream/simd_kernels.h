#ifndef ESP_STREAM_SIMD_KERNELS_H_
#define ESP_STREAM_SIMD_KERNELS_H_

// Vectorized kernels over columnar windows (see stream/column.h): the hot
// aggregates (count/sum/min/max over int64/double cells) and batch
// predicate evaluation for the compiled expression path.
//
// Every kernel is bitwise-identical to the row-oriented code it replaces:
//  - Double summation stays strictly sequential (no lane-wise partial sums;
//    FP addition is not associative and the legacy SumAggregator folds in
//    window order).
//  - Int64 summation uses lane-parallel integer partial sums ONLY while the
//    running sum of |value| stays <= 2^52, which makes the legacy double
//    fold exact and therefore order-independent; past the guard the kernel
//    restarts in sequential-double order.
//  - Min/max replicate Value::Compare exactly — the comparison widens both
//    sides to double (so two distinct int64 above 2^53 can tie) and the
//    FIRST of equals wins, which also pins NaN and signed-zero behaviour.
//    Lane-parallel tie-breaking would need index bookkeeping that costs
//    more than the scan, so these stay sequential scalar loops.
//  - Comparisons mirror EvalComparison: =/<> are Value::Equals (exact
//    int64 equality same-type, double-widened cross-type), the ordering ops
//    use the double-widened three-way compare, and null cells yield NULL.
//
// The loops are written to auto-vectorize; an optional AVX2 variant (CMake
// option ESP_ENABLE_AVX2, on by default for x86-64) is selected at runtime
// via cpuid for the null-free maskless fast paths. The scalar fallback is
// always compiled and can be forced for tests/CI with SetForceScalar.

#include <cstddef>
#include <cstdint>

namespace esp::stream::simd {

/// True when the binary carries AVX2 kernels and the CPU supports them
/// (ignores the force-scalar override; dispatch honours both).
bool Avx2Available();

/// Test/CI hook: forces every dispatch onto the scalar path so it stays
/// exercised on AVX2 hardware.
void SetForceScalar(bool force);
bool ForceScalar();

/// Monotonic counters for observability (surfaced via EspProcessor Health).
struct KernelStats {
  uint64_t vector_batches = 0;  // Batches taken by the AVX2 variants.
  uint64_t scalar_batches = 0;  // Batches on the scalar/auto-vec path.
  uint64_t guard_fallbacks = 0;  // Int64-sum exactness guard trips.
};
KernelStats GetKernelStats();
void ResetKernelStats();

// ---------------------------------------------------------------------------
// Null bitmap convention: cell i of the batch is null iff bit (bit0 + i) of
// `nulls` is set; nulls == nullptr means no cell is null. `mask` (when not
// null) selects cells with mask[i] != 0 (a WHERE selection).
// ---------------------------------------------------------------------------

/// count(x): cells that are selected and non-null.
int64_t CountNonNull(size_t n, const uint64_t* nulls, size_t bit0,
                     const uint8_t* mask);

/// sum(x)/avg(x) over numeric cells: the legacy fold state.
struct SumResult {
  double sum = 0.0;      // Bitwise-equal to the sequential double fold.
  int64_t nonnull = 0;   // Cells folded in.
};
SumResult SumI64(const int64_t* v, size_t n, const uint64_t* nulls,
                 size_t bit0, const uint8_t* mask);
SumResult SumF64(const double* v, size_t n, const uint64_t* nulls,
                 size_t bit0, const uint8_t* mask);

/// min(x)/max(x): index of the winning cell (first of equals under the
/// double-widened compare), or -1 when every selected cell is null.
ptrdiff_t ExtremumI64(const int64_t* v, size_t n, const uint64_t* nulls,
                      size_t bit0, const uint8_t* mask, bool is_min);
ptrdiff_t ExtremumF64(const double* v, size_t n, const uint64_t* nulls,
                      size_t bit0, const uint8_t* mask, bool is_min);

// ---------------------------------------------------------------------------
// Batch predicates. Results are trits implementing SQL three-valued logic:
// 0 = false, 1 = true, 2 = null.
// ---------------------------------------------------------------------------
using Trit = uint8_t;
inline constexpr Trit kFalse = 0, kTrue = 1, kNull = 2;

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// column <op> int64-constant over an int64 column. Equality is exact
/// (same-type Value::Equals); ordering widens both sides to double.
void CompareI64WithI64(const int64_t* v, size_t n, const uint64_t* nulls,
                       size_t bit0, CmpOp op, int64_t rhs, Trit* out);
/// column <op> double-constant over an int64 column (cross-type: every cell
/// widens to double, equality included).
void CompareI64WithF64(const int64_t* v, size_t n, const uint64_t* nulls,
                       size_t bit0, CmpOp op, double rhs, Trit* out);
/// column <op> numeric-constant over a double column (int64 constants widen
/// once, exactly as Value::AsDouble would).
void CompareF64(const double* v, size_t n, const uint64_t* nulls, size_t bit0,
                CmpOp op, double rhs, Trit* out);

/// IS [NOT] NULL over a column: always a definite boolean trit.
void IsNullTrits(size_t n, const uint64_t* nulls, size_t bit0, bool negated,
                 Trit* out);

/// Kleene AND / OR / NOT over trit vectors (out may alias a or b).
void TritAnd(const Trit* a, const Trit* b, size_t n, Trit* out);
void TritOr(const Trit* a, const Trit* b, size_t n, Trit* out);
void TritNot(const Trit* a, size_t n, Trit* out);

}  // namespace esp::stream::simd

#endif  // ESP_STREAM_SIMD_KERNELS_H_
