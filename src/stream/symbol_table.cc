#include "stream/symbol_table.h"

namespace esp::stream {

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

std::optional<uint32_t> SymbolTable::TryIntern(std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(text);
  if (it != index_.end()) return it->second;
  const uint32_t id = count_;
  if ((id >> kBlockBits) >= kMaxBlocks) return std::nullopt;
  Entry* block = blocks_[id >> kBlockBits].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Entry[kBlockSize];
    blocks_[id >> kBlockBits].store(block, std::memory_order_release);
  }
  Entry& entry = block[id & (kBlockSize - 1)];
  entry.text.assign(text.data(), text.size());
  entry.hash = std::hash<std::string>{}(entry.text);
  // The index key views the entry's own storage, which never moves.
  index_.emplace(std::string_view(entry.text), id);
  ++count_;
  published_.store(count_, std::memory_order_release);
  return id;
}

namespace {
std::atomic<bool> g_interning_enabled{true};
}  // namespace

void SetStringInterningEnabled(bool enabled) {
  g_interning_enabled.store(enabled, std::memory_order_relaxed);
}

bool StringInterningEnabled() {
  return g_interning_enabled.load(std::memory_order_relaxed);
}

}  // namespace esp::stream
