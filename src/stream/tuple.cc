#include "stream/tuple.h"

namespace esp::stream {

StatusOr<Value> Tuple::Get(const std::string& name) const {
  if (schema_ == nullptr) return Status::Internal("tuple has no schema");
  ESP_ASSIGN_OR_RETURN(const size_t index, schema_->ResolveIndex(name));
  return values_[index];
}

StatusOr<Tuple> Tuple::With(const std::string& name, Value value) const {
  if (schema_ == nullptr) return Status::Internal("tuple has no schema");
  ESP_ASSIGN_OR_RETURN(const size_t index, schema_->ResolveIndex(name));
  std::vector<Value> values = values_;
  values[index] = std::move(value);
  return Tuple(schema_, std::move(values), timestamp_);
}

std::string Tuple::ToString() const {
  std::string result = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) result += ", ";
    if (schema_ != nullptr && i < schema_->num_fields()) {
      result += schema_->field(i).name;
      result += '=';
    }
    result += values_[i].ToString();
  }
  result += ") @";
  result += timestamp_.ToString();
  return result;
}

bool Tuple::Equals(const Tuple& other) const {
  if (timestamp_ != other.timestamp_) return false;
  if (values_.size() != other.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!values_[i].Equals(other.values_[i])) return false;
  }
  return true;
}

std::string Relation::ToString() const {
  std::string result;
  if (schema_ != nullptr) {
    result += "[" + schema_->ToString() + "]\n";
  }
  for (const Tuple& t : tuples_) {
    result += "  " + t.ToString() + "\n";
  }
  return result;
}

TupleBuilder& TupleBuilder::Set(const std::string& name, Value value) {
  // Resolve through the schema's hash index now instead of a per-Build
  // linear re-resolution; unknown names surface from Build() as before.
  std::optional<size_t> index =
      schema_ != nullptr ? schema_->IndexOf(name) : std::nullopt;
  if (!index.has_value()) {
    if (!has_unknown_) {
      first_unknown_ = name;
      has_unknown_ = true;
    }
    return *this;
  }
  pending_.emplace_back(*index, std::move(value));
  return *this;
}

StatusOr<Tuple> TupleBuilder::Build() {
  if (schema_ == nullptr) return Status::Internal("builder has no schema");
  if (has_unknown_) return schema_->ResolveIndex(first_unknown_).status();
  std::vector<Value> values(schema_->num_fields(), Value::Null());
  for (auto& [index, value] : pending_) {
    values[index] = std::move(value);
  }
  pending_.clear();
  return Tuple(schema_, std::move(values), timestamp_);
}

}  // namespace esp::stream
