#include "stream/serialize.h"

namespace esp::stream {

namespace {

// Stable on-disk type tags; append-only (never renumber).
enum : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt64 = 2,
  kTagDouble = 3,
  kTagString = 4,
  kTagTimestamp = 5,
};

StatusOr<DataType> TypeFromTag(uint8_t tag) {
  switch (tag) {
    case kTagNull:
      return DataType::kNull;
    case kTagBool:
      return DataType::kBool;
    case kTagInt64:
      return DataType::kInt64;
    case kTagDouble:
      return DataType::kDouble;
    case kTagString:
      return DataType::kString;
    case kTagTimestamp:
      return DataType::kTimestamp;
    default:
      return Status::ParseError("unknown value type tag " +
                                std::to_string(tag));
  }
}

uint8_t TagOf(DataType type) {
  switch (type) {
    case DataType::kNull:
      return kTagNull;
    case DataType::kBool:
      return kTagBool;
    case DataType::kInt64:
      return kTagInt64;
    case DataType::kDouble:
      return kTagDouble;
    case DataType::kString:
      return kTagString;
    case DataType::kTimestamp:
      return kTagTimestamp;
  }
  return kTagNull;
}

}  // namespace

void WriteValue(ByteWriter& w, const Value& value) {
  w.WriteU8(TagOf(value.type()));
  switch (value.type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      w.WriteBool(value.bool_value());
      break;
    case DataType::kInt64:
      w.WriteI64(value.int64_value());
      break;
    case DataType::kDouble:
      w.WriteDouble(value.double_value());
      break;
    case DataType::kString:
      // Interned values report kString and render their table text here, so
      // they serialize byte-identically to plain strings and the checkpoint/
      // journal formats are unchanged; ReadValue restores a plain string.
      w.WriteString(value.string_value());
      break;
    case DataType::kTimestamp:
      w.WriteI64(value.time_value().micros());
      break;
  }
}

StatusOr<Value> ReadValue(ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(const uint8_t tag, r.ReadU8());
  ESP_ASSIGN_OR_RETURN(const DataType type, TypeFromTag(tag));
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      ESP_ASSIGN_OR_RETURN(const bool v, r.ReadBool());
      return Value::Bool(v);
    }
    case DataType::kInt64: {
      ESP_ASSIGN_OR_RETURN(const int64_t v, r.ReadI64());
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      ESP_ASSIGN_OR_RETURN(const double v, r.ReadDouble());
      return Value::Double(v);
    }
    case DataType::kString: {
      ESP_ASSIGN_OR_RETURN(std::string v, r.ReadString());
      return Value::String(std::move(v));
    }
    case DataType::kTimestamp: {
      ESP_ASSIGN_OR_RETURN(const int64_t micros, r.ReadI64());
      return Value::Time(Timestamp::Micros(micros));
    }
  }
  return Status::Internal("unreachable value tag");
}

void WriteTuple(ByteWriter& w, const Tuple& tuple) {
  w.WriteI64(tuple.timestamp().micros());
  w.WriteU32(static_cast<uint32_t>(tuple.num_fields()));
  for (const Value& value : tuple.values()) WriteValue(w, value);
}

StatusOr<Tuple> ReadTuple(ByteReader& r, const SchemaRef& schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("ReadTuple requires a schema");
  }
  ESP_ASSIGN_OR_RETURN(const int64_t micros, r.ReadI64());
  ESP_ASSIGN_OR_RETURN(const uint32_t arity, r.ReadU32());
  if (arity != schema->num_fields()) {
    return Status::ParseError(
        "serialized tuple arity " + std::to_string(arity) +
        " does not match schema '" + schema->ToString() + "'");
  }
  std::vector<Value> values;
  values.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    ESP_ASSIGN_OR_RETURN(Value value, ReadValue(r));
    values.push_back(std::move(value));
  }
  return Tuple(schema, std::move(values), Timestamp::Micros(micros));
}

void WriteSchema(ByteWriter& w, const Schema& schema) {
  w.WriteU32(static_cast<uint32_t>(schema.num_fields()));
  for (const Field& field : schema.fields()) {
    w.WriteString(field.name);
    w.WriteU8(TagOf(field.type));
  }
}

StatusOr<SchemaRef> ReadSchema(ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(const uint32_t count, r.ReadU32());
  std::vector<Field> fields;
  fields.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Field field;
    ESP_ASSIGN_OR_RETURN(field.name, r.ReadString());
    ESP_ASSIGN_OR_RETURN(const uint8_t tag, r.ReadU8());
    ESP_ASSIGN_OR_RETURN(field.type, TypeFromTag(tag));
    fields.push_back(std::move(field));
  }
  return MakeSchema(std::move(fields));
}

}  // namespace esp::stream
