#include "stream/arena.h"

#include <atomic>

namespace esp::stream {

namespace {
std::atomic<bool> g_pooling{true};
}  // namespace

TupleArena& TupleArena::Local() {
  thread_local TupleArena arena;
  return arena;
}

void TupleArena::SetPoolingEnabled(bool enabled) {
  g_pooling.store(enabled, std::memory_order_relaxed);
}

bool TupleArena::PoolingEnabled() {
  return g_pooling.load(std::memory_order_relaxed);
}

}  // namespace esp::stream
