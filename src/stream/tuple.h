#ifndef ESP_STREAM_TUPLE_H_
#define ESP_STREAM_TUPLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "stream/schema.h"
#include "stream/value.h"

namespace esp::stream {

/// \brief One record flowing through the system: a shared schema plus a
/// value per field and the (virtual) time at which the reading occurred.
///
/// The timestamp is carried out-of-band rather than as a column so that
/// window management never depends on query text; queries that need the time
/// as data can still project it via the ts() scalar function.
class Tuple {
 public:
  Tuple() = default;
  Tuple(SchemaRef schema, std::vector<Value> values, Timestamp timestamp)
      : schema_(std::move(schema)),
        values_(std::move(values)),
        timestamp_(timestamp) {}

  const SchemaRef& schema() const { return schema_; }
  const std::vector<Value>& values() const { return values_; }
  /// Mutable access for hot paths that move values out of a tuple the
  /// caller owns (e.g. query projection); the tuple is in a valid but
  /// unspecified state afterwards.
  std::vector<Value>& mutable_values() { return values_; }
  Timestamp timestamp() const { return timestamp_; }

  size_t num_fields() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }

  /// Returns the value of the named field, or NotFound.
  StatusOr<Value> Get(const std::string& name) const;

  /// Returns a copy with one field replaced (used by stage transforms).
  StatusOr<Tuple> With(const std::string& name, Value value) const;

  /// Renders "(a=1, b=x) @t=2.0s" for debugging.
  std::string ToString() const;

  /// Field-wise equality (timestamps must also match).
  bool Equals(const Tuple& other) const;

 private:
  SchemaRef schema_;
  std::vector<Value> values_;
  Timestamp timestamp_;
};

/// \brief A materialized bag of tuples sharing one schema — the result of
/// evaluating a windowed continuous query at one instant.
class Relation {
 public:
  Relation() = default;
  explicit Relation(SchemaRef schema) : schema_(std::move(schema)) {}
  Relation(SchemaRef schema, std::vector<Tuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  const SchemaRef& schema() const { return schema_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }

  void Add(Tuple tuple) { tuples_.push_back(std::move(tuple)); }

  /// Multi-line debug rendering.
  std::string ToString() const;

 private:
  SchemaRef schema_;
  std::vector<Tuple> tuples_;
};

/// \brief Incrementally assembles tuples against a fixed schema, verifying
/// arity; the main construction path for simulators and tests.
class TupleBuilder {
 public:
  explicit TupleBuilder(SchemaRef schema) : schema_(std::move(schema)) {}

  TupleBuilder& Set(const std::string& name, Value value);
  TupleBuilder& At(Timestamp t) {
    timestamp_ = t;
    return *this;
  }

  /// Produces the tuple; unset fields are null. Returns InvalidArgument if a
  /// Set() referenced an unknown column.
  StatusOr<Tuple> Build();

 private:
  SchemaRef schema_;
  // Field indices are resolved hash-indexed at Set() time; the first name
  // that fails to resolve is remembered so Build() can report it.
  std::vector<std::pair<size_t, Value>> pending_;
  std::string first_unknown_;
  bool has_unknown_ = false;
  Timestamp timestamp_;
};

}  // namespace esp::stream

#endif  // ESP_STREAM_TUPLE_H_
