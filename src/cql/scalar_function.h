#ifndef ESP_CQL_SCALAR_FUNCTION_H_
#define ESP_CQL_SCALAR_FUNCTION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/value.h"

namespace esp::cql {

/// \brief Implementation of a scalar (per-row) function.
using ScalarFn =
    std::function<StatusOr<stream::Value>(const std::vector<stream::Value>&)>;

/// \brief A registered scalar function: implementation plus arity bounds and
/// a (possibly approximate) result type for schema inference.
struct ScalarFunction {
  std::string name;
  size_t min_args = 0;
  size_t max_args = 0;  // SIZE_MAX for variadic.
  stream::DataType result_type = stream::DataType::kNull;  // kNull = dynamic.
  ScalarFn fn;
};

/// \brief Registry of scalar functions by case-insensitive name.
///
/// Built-ins: abs, sqrt, floor, ceil, round, pow, exp, ln, least, greatest,
/// coalesce, iif(cond, a, b), length, lower, upper, concat. Deployments may
/// register UDFs (paper Section 3.3) — e.g. unit conversions or calibration
/// functions (Section 4.3.1).
class ScalarFunctionRegistry {
 public:
  /// Returns the process-wide registry pre-loaded with built-ins.
  static ScalarFunctionRegistry& Global();

  /// Registers a UDF. Fails with AlreadyExists on collision (including with
  /// aggregate names, which would make call sites ambiguous).
  Status Register(ScalarFunction function);

  /// Looks up by name; NotFound if absent.
  StatusOr<const ScalarFunction*> Find(const std::string& name) const;

  bool Contains(const std::string& name) const;

 private:
  ScalarFunctionRegistry();
  std::vector<ScalarFunction> functions_;
};

}  // namespace esp::cql

#endif  // ESP_CQL_SCALAR_FUNCTION_H_
