#ifndef ESP_CQL_LEXER_H_
#define ESP_CQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cql/token.h"

namespace esp::cql {

/// \brief Tokenizes CQL query text.
///
/// Accepts the dialect used in the paper: SQL keywords (case-insensitive),
/// identifiers, single-quoted string literals (with '' escaping), integer and
/// decimal numbers, bracketed window clauses, `--` line comments, and the
/// operator set of Queries 1-6.
StatusOr<std::vector<Token>> Tokenize(const std::string& query);

}  // namespace esp::cql

#endif  // ESP_CQL_LEXER_H_
