#include "cql/columnar_exec.h"

#include <cstdint>
#include <utility>

#include "common/string_util.h"
#include "stream/arena.h"

namespace esp::cql::internal {

using stream::ColumnarWindow;
using stream::DataType;
using stream::Relation;
using stream::Tuple;
using stream::Value;
namespace simd = stream::simd;

namespace {

using AggSpec = ColumnarPlan::AggSpec;
using AggAccum = ColumnarPlan::AggAccum;
using BatchOp = ColumnarPlan::BatchOp;

/// Mirrors evaluator.cc: the persistent group index is dropped past this
/// size so unbounded key domains cannot grow it forever.
constexpr size_t kMaxPersistentGroups = 4096;

constexpr size_t kNoRow = SIZE_MAX;

/// Same purity rule as the incremental engine: kinds whose evaluation is a
/// pure function of the row. Scalar functions are excluded (no purity
/// contract — the legacy path evaluates aggregate arguments per aggregate,
/// this path per row, and an impure function would observe the difference),
/// as are fallbacks (subqueries, outer references) and nested aggregates.
bool IsPureRowExpr(const BoundExpr& bound) {
  switch (bound.kind) {
    case BoundExpr::Kind::kConst:
    case BoundExpr::Kind::kSlot:
    case BoundExpr::Kind::kNot:
    case BoundExpr::Kind::kNegate:
    case BoundExpr::Kind::kArith:
    case BoundExpr::Kind::kCompare:
    case BoundExpr::Kind::kLogical:
    case BoundExpr::Kind::kIsNull:
    case BoundExpr::Kind::kBetween:
    case BoundExpr::Kind::kCase:
    case BoundExpr::Kind::kInList:
      break;
    default:
      return false;
  }
  for (const BoundExpr& child : bound.children) {
    if (!IsPureRowExpr(child)) return false;
  }
  return true;
}

/// No fallback and no surviving aggregate in an emit-time tree. Scalar
/// functions are fine: both paths evaluate emit trees once per group per
/// tick, in the same group order.
bool IsEmitSafe(const BoundExpr& bound) {
  if (bound.kind == BoundExpr::Kind::kFallback ||
      bound.kind == BoundExpr::Kind::kAggregate) {
    return false;
  }
  for (const BoundExpr& child : bound.children) {
    if (!IsEmitSafe(child)) return false;
  }
  return true;
}

/// Maps a comparison BinaryOp onto the kernel op, mirroring the operands
/// when the constant is on the left (`5 < x` is `x > 5`).
bool MapCmpOp(BinaryOp op, bool flipped, simd::CmpOp* out) {
  switch (op) {
    case BinaryOp::kEquals:
      *out = simd::CmpOp::kEq;
      return true;
    case BinaryOp::kNotEquals:
      *out = simd::CmpOp::kNe;
      return true;
    case BinaryOp::kLess:
      *out = flipped ? simd::CmpOp::kGt : simd::CmpOp::kLt;
      return true;
    case BinaryOp::kLessEquals:
      *out = flipped ? simd::CmpOp::kGe : simd::CmpOp::kLe;
      return true;
    case BinaryOp::kGreater:
      *out = flipped ? simd::CmpOp::kLt : simd::CmpOp::kGt;
      return true;
    case BinaryOp::kGreaterEquals:
      *out = flipped ? simd::CmpOp::kLe : simd::CmpOp::kGe;
      return true;
    default:
      return false;
  }
}

/// One legacy Aggregator::Update, replicated on the mirrored accumulator.
/// Returns false on an evaluation error the legacy path must report.
bool Accumulate(AggSpec::Kind kind, const Value& input, AggAccum& a) {
  switch (kind) {
    case AggSpec::Kind::kCount:
      if (!input.is_null()) ++a.nonnull;
      return true;
    case AggSpec::Kind::kSum: {
      if (input.is_null()) return true;
      const StatusOr<double> v = input.AsDouble();
      if (!v.ok()) return false;
      a.sum += *v;
      a.saw_value = true;
      a.all_integers = a.all_integers && input.type() == DataType::kInt64;
      return true;
    }
    case AggSpec::Kind::kAvg: {
      if (input.is_null()) return true;
      const StatusOr<double> v = input.AsDouble();
      if (!v.ok()) return false;
      a.sum += *v;
      ++a.nonnull;
      return true;
    }
    case AggSpec::Kind::kMin:
    case AggSpec::Kind::kMax: {
      if (input.is_null()) return true;
      if (!a.saw_value) {
        a.best = input;
        a.saw_value = true;
        return true;
      }
      const StatusOr<int> cmp = input.Compare(a.best);
      if (!cmp.ok()) return false;
      const bool is_min = kind == AggSpec::Kind::kMin;
      if ((is_min && *cmp < 0) || (!is_min && *cmp > 0)) a.best = input;
      return true;
    }
  }
  return false;
}

/// The legacy Aggregator::Final on the mirrored state.
Value FinalValue(AggSpec::Kind kind, const AggAccum& a) {
  switch (kind) {
    case AggSpec::Kind::kCount:
      return Value::Int64(a.nonnull);
    case AggSpec::Kind::kSum:
      if (!a.saw_value) return Value::Null();
      if (a.all_integers) {
        return Value::Int64(static_cast<int64_t>(a.sum));
      }
      return Value::Double(a.sum);
    case AggSpec::Kind::kAvg:
      if (a.nonnull == 0) return Value::Null();
      return Value::Double(a.sum / static_cast<double>(a.nonnull));
    case AggSpec::Kind::kMin:
    case AggSpec::Kind::kMax:
      return a.best;
  }
  return Value::Null();
}

/// Scalar accumulation of one column range (the fallback for storage the
/// kernels cannot touch: bool and demoted/Value columns). ValueAt round-trips
/// the original cell bitwise, so this is the legacy fold verbatim.
bool AccumulateColumnScalar(const ColumnarWindow& cols, size_t lo, size_t n,
                            const simd::Trit* mask, size_t c,
                            AggSpec::Kind kind, AggAccum& a) {
  for (size_t i = 0; i < n; ++i) {
    if (mask != nullptr && mask[i] == 0) continue;
    if (!Accumulate(kind, cols.ValueAt(lo + i, c), a)) return false;
  }
  return true;
}

void ResetGroup(ColumnarPlan::GroupState& g, size_t num_specs, uint64_t gen) {
  g.gen = gen;
  g.first_row = kNoRow;
  g.accums.resize(num_specs);
  for (AggAccum& a : g.accums) a.Reset();
}

}  // namespace

bool CompileBatchWhere(const BoundExpr& where, std::vector<BatchOp>& out) {
  using OpKind = BatchOp::Kind;
  switch (where.kind) {
    case BoundExpr::Kind::kLogical: {
      // Kleene AND/OR. The legacy evaluator short-circuits, but every batch
      // leaf is total (no errors, no side effects), so evaluating both sides
      // is indistinguishable.
      if (!CompileBatchWhere(where.children[0], out)) return false;
      if (!CompileBatchWhere(where.children[1], out)) return false;
      BatchOp op;
      op.kind = where.bin_op == BinaryOp::kAnd ? OpKind::kAnd : OpKind::kOr;
      out.push_back(op);
      return true;
    }
    case BoundExpr::Kind::kNot: {
      if (!CompileBatchWhere(where.children[0], out)) return false;
      BatchOp op;
      op.kind = OpKind::kNot;
      out.push_back(op);
      return true;
    }
    case BoundExpr::Kind::kIsNull: {
      if (where.children[0].kind != BoundExpr::Kind::kSlot) return false;
      BatchOp op;
      op.kind = OpKind::kIsNull;
      op.slot = where.children[0].slot;
      op.negated = where.negated;
      out.push_back(op);
      return true;
    }
    case BoundExpr::Kind::kCompare: {
      const BoundExpr& lhs = where.children[0];
      const BoundExpr& rhs = where.children[1];
      const BoundExpr* slot = nullptr;
      const BoundExpr* constant = nullptr;
      bool flipped = false;
      if (lhs.kind == BoundExpr::Kind::kSlot &&
          rhs.kind == BoundExpr::Kind::kConst) {
        slot = &lhs;
        constant = &rhs;
      } else if (lhs.kind == BoundExpr::Kind::kConst &&
                 rhs.kind == BoundExpr::Kind::kSlot) {
        slot = &rhs;
        constant = &lhs;
        flipped = true;
      } else {
        return false;
      }
      const Value& c = constant->constant;
      // A null constant makes every comparison NULL; non-numeric constants
      // would need string/bool compare semantics. Both are rare enough to
      // leave to the row path.
      if (c.is_null() ||
          (c.type() != DataType::kInt64 && c.type() != DataType::kDouble)) {
        return false;
      }
      BatchOp op;
      op.kind = OpKind::kCompare;
      op.slot = slot->slot;
      if (!MapCmpOp(where.bin_op, flipped, &op.op)) return false;
      if (c.type() == DataType::kInt64) {
        op.rhs_is_int = true;
        op.rhs_i = c.int64_value();
      } else {
        op.rhs_d = c.double_value();
      }
      out.push_back(op);
      return true;
    }
    default:
      return false;
  }
}

bool EvalBatchProgram(const std::vector<BatchOp>& program,
                      const ColumnarWindow& cols, size_t lo, size_t hi,
                      std::vector<std::vector<simd::Trit>>& stack,
                      std::vector<simd::Trit>& result) {
  using OpKind = BatchOp::Kind;
  // Runtime eligibility: comparisons need numeric typed storage (a demoted
  // column compares through Values); IS NULL only reads the bitmap.
  for (const BatchOp& op : program) {
    if (op.kind != OpKind::kCompare) continue;
    const ColumnarWindow::ColKind kind = cols.col_kind(op.slot);
    if (kind != ColumnarWindow::ColKind::kI64 &&
        kind != ColumnarWindow::ColKind::kF64) {
      return false;
    }
  }
  const size_t n = hi - lo;
  size_t depth = 0;
  const auto push = [&]() -> std::vector<simd::Trit>& {
    if (stack.size() <= depth) stack.resize(depth + 1);
    std::vector<simd::Trit>& slot = stack[depth++];
    slot.resize(n);
    return slot;
  };
  for (const BatchOp& op : program) {
    switch (op.kind) {
      case OpKind::kCompare: {
        std::vector<simd::Trit>& dst = push();
        const uint64_t* nulls =
            cols.has_nulls(op.slot) ? cols.null_words(op.slot) : nullptr;
        const size_t bit0 = cols.bit_offset() + lo;
        if (cols.col_kind(op.slot) == ColumnarWindow::ColKind::kI64) {
          const int64_t* v = cols.i64_data(op.slot) + lo;
          if (op.rhs_is_int) {
            simd::CompareI64WithI64(v, n, nulls, bit0, op.op, op.rhs_i,
                                    dst.data());
          } else {
            simd::CompareI64WithF64(v, n, nulls, bit0, op.op, op.rhs_d,
                                    dst.data());
          }
        } else {
          const double rhs = op.rhs_is_int ? static_cast<double>(op.rhs_i)
                                           : op.rhs_d;
          simd::CompareF64(cols.f64_data(op.slot) + lo, n, nulls, bit0, op.op,
                           rhs, dst.data());
        }
        break;
      }
      case OpKind::kIsNull: {
        std::vector<simd::Trit>& dst = push();
        const uint64_t* nulls =
            cols.has_nulls(op.slot) ? cols.null_words(op.slot) : nullptr;
        simd::IsNullTrits(n, nulls, cols.bit_offset() + lo, op.negated,
                          dst.data());
        break;
      }
      case OpKind::kAnd:
      case OpKind::kOr: {
        std::vector<simd::Trit>& b = stack[depth - 1];
        std::vector<simd::Trit>& a = stack[depth - 2];
        if (op.kind == OpKind::kAnd) {
          simd::TritAnd(a.data(), b.data(), n, a.data());
        } else {
          simd::TritOr(a.data(), b.data(), n, a.data());
        }
        --depth;
        break;
      }
      case OpKind::kNot: {
        std::vector<simd::Trit>& a = stack[depth - 1];
        simd::TritNot(a.data(), n, a.data());
        break;
      }
    }
  }
  if (depth != 1) return false;  // Malformed program; cannot happen.
  std::swap(result, stack[0]);
  return true;
}

const std::vector<simd::Trit>* TryBatchWhere(ColumnarPlan& plan,
                                             const ColumnarWindow& cols,
                                             size_t lo, size_t hi) {
  if (EvalBatchProgram(plan.where_program, cols, lo, hi, plan.scratch.stack,
                       plan.scratch.mask)) {
    return &plan.scratch.mask;
  }
  return nullptr;
}

void EnsureColumnarPlan(PreparedQuery& prep, const SelectQuery& query) {
  if (prep.columnar_checked) return;
  prep.columnar_checked = true;

  // Shape: exactly one stream input (the caller additionally checks the
  // runtime side: ordered history with a row-synced columnar mirror).
  if (query.from.size() != 1 ||
      query.from[0].kind != TableRef::Kind::kStream) {
    return;
  }

  auto plan = std::make_unique<ColumnarPlan>();
  if (prep.where.has_value()) {
    if (CompileBatchWhere(*prep.where, plan->where_program)) {
      plan->where_mode = ColumnarPlan::WhereMode::kBatch;
    } else {
      plan->where_mode = ColumnarPlan::WhereMode::kPerRow;
      plan->needs_row = true;
    }
  }

  plan->aggregated = QueryUsesAggregation(query);
  if (!plan->aggregated) {
    // Plain projection: the columnar win is the batch WHERE premask (rows
    // that fail the predicate are never materialized). Without a batch
    // program there is nothing to gain over the row path.
    if (plan->where_mode != ColumnarPlan::WhereMode::kBatch) return;
    prep.columnar = std::move(plan);
    return;
  }

  // Aggregation mode. Group keys must be plain columns (read straight off
  // the columns per row); star items never appear in valid grouped queries
  // but cost nothing to exclude.
  for (const SelectItem& item : query.items) {
    if (item.expr->kind() == ExprKind::kStar) return;
  }
  plan->key_slots.reserve(prep.group_keys.size());
  for (const BoundExpr& key : prep.group_keys) {
    if (key.kind != BoundExpr::Kind::kSlot) return;
    plan->key_slots.push_back(key.slot);
  }

  // Lower every aggregate call to a kAggSlot read of the pre-finalized
  // value, collecting one AggSpec per call (same admission rules as the
  // incremental engine, except holistic aggregates also pass through the
  // legacy aggregator objects there and are rejected here the same way).
  const auto lower = [&plan](BoundExpr& node, const auto& self) -> bool {
    if (node.kind == BoundExpr::Kind::kAggregate) {
      const FunctionCallExpr& call = *node.agg_call;
      if (call.distinct) return false;
      AggSpec spec;
      if (esp::StrEqualsIgnoreCase(call.name, "count")) {
        spec.kind = AggSpec::Kind::kCount;
      } else if (esp::StrEqualsIgnoreCase(call.name, "sum")) {
        spec.kind = AggSpec::Kind::kSum;
      } else if (esp::StrEqualsIgnoreCase(call.name, "avg")) {
        spec.kind = AggSpec::Kind::kAvg;
      } else if (esp::StrEqualsIgnoreCase(call.name, "min")) {
        spec.kind = AggSpec::Kind::kMin;
      } else if (esp::StrEqualsIgnoreCase(call.name, "max")) {
        spec.kind = AggSpec::Kind::kMax;
      } else {
        return false;  // Holistic (median/percentile/stdev): row path.
      }
      if (call.IsStarArg()) {
        spec.has_arg = false;  // A constant Int64(1) marker per row.
      } else {
        if (call.args.size() != 1 || node.children.size() != 1) return false;
        if (!IsPureRowExpr(node.children[0])) return false;
        spec.has_arg = true;
        spec.arg = std::move(node.children[0]);
        if (spec.arg.kind == BoundExpr::Kind::kSlot) {
          spec.arg_is_slot = true;
          spec.arg_slot = spec.arg.slot;
        } else {
          plan->needs_row = true;
        }
      }
      BoundExpr slot;
      slot.kind = BoundExpr::Kind::kAggSlot;
      slot.slot = plan->specs.size();
      plan->specs.push_back(std::move(spec));
      node = std::move(slot);
      return true;
    }
    for (BoundExpr& child : node.children) {
      if (!self(child, self)) return false;
    }
    return node.kind != BoundExpr::Kind::kFallback;
  };

  plan->items = prep.items;  // Lower copies; prep's trees stay untouched.
  for (BoundExpr& bound : plan->items) {
    if (!lower(bound, lower)) return;
    if (!IsEmitSafe(bound)) return;
  }
  if (prep.having.has_value()) {
    BoundExpr bound = *prep.having;
    if (!lower(bound, lower)) return;
    if (!IsEmitSafe(bound)) return;
    plan->having = std::move(bound);
  }
  // Emit-time column reads are served by the group's materialized
  // representative row (the full first row, exactly as the legacy path), so
  // no key-slot restriction applies to items/HAVING.
  prep.columnar = std::move(plan);
}

std::optional<Relation> ExecuteColumnarAggregate(PreparedQuery& prep,
                                                 const ColumnarWindow& cols,
                                                 size_t lo, size_t hi,
                                                 const EvalContext& base) {
  ColumnarPlan& plan = *prep.columnar;
  ColumnarPlan::Scratch& s = plan.scratch;
  const size_t n = hi - lo;
  const size_t num_specs = plan.specs.size();
  const size_t num_columns = cols.num_columns();

  // --- WHERE: one trit per row (1 selected, 0/2 rejected — NULL decides as
  // false, exactly ToDecision). Batch program when possible, per-row
  // evaluation otherwise (identical semantics, one reused scratch row).
  const simd::Trit* mask = nullptr;
  if (plan.where_mode == ColumnarPlan::WhereMode::kBatch) {
    const std::vector<simd::Trit>* trits = TryBatchWhere(plan, cols, lo, hi);
    if (trits != nullptr) {
      // Collapse NULL to false so the mask doubles as a kernel selection.
      for (simd::Trit& t : s.mask) t = (t == simd::kTrue) ? 1 : 0;
      mask = s.mask.data();
    }
  }
  if (mask == nullptr && plan.where_mode != ColumnarPlan::WhereMode::kNone) {
    s.mask.resize(n);
    for (size_t i = 0; i < n; ++i) {
      cols.MaterializeRow(lo + i, s.scratch_row);
      EvalContext ec = base;
      ec.row = &s.scratch_row;
      const StatusOr<Value> verdict = EvalBound(*prep.where, ec);
      if (!verdict.ok()) return std::nullopt;
      const StatusOr<bool> keep = ToDecision(*verdict, "WHERE");
      if (!keep.ok()) return std::nullopt;
      s.mask[i] = *keep ? 1 : 0;
    }
    mask = s.mask.data();
  }

  // --- Group state (persistent across ticks, exactly like ExecScratch).
  if (s.group_index.size() > kMaxPersistentGroups) {
    s.group_index.clear();
    s.groups.clear();
  }
  const uint64_t gen = ++s.gen;
  s.touched.clear();

  if (plan.key_slots.empty()) {
    // Single group over all selected rows (exists even when empty: scalar
    // aggregate semantics). Per-spec columnar computation, vector kernels
    // where the storage allows.
    if (s.groups.empty()) s.groups.emplace_back();
    ColumnarPlan::GroupState& g = s.groups[0];
    ResetGroup(g, num_specs, gen);
    s.touched.push_back(0);

    size_t selected = 0;
    for (size_t i = 0; i < n; ++i) {
      if (mask == nullptr || mask[i] != 0) {
        if (g.first_row == kNoRow) g.first_row = lo + i;
        ++selected;
      }
    }
    if (mask == nullptr) selected = n;

    for (size_t si = 0; si < num_specs; ++si) {
      const AggSpec& spec = plan.specs[si];
      AggAccum& a = g.accums[si];
      if (!spec.has_arg) {
        // '*': the legacy path feeds Int64(1) per selected row; every fold
        // over ones is exact, so the closed forms below ARE the folds.
        switch (spec.kind) {
          case AggSpec::Kind::kCount:
            a.nonnull = static_cast<int64_t>(selected);
            break;
          case AggSpec::Kind::kSum:
            a.sum = static_cast<double>(selected);
            a.saw_value = selected > 0;
            break;
          case AggSpec::Kind::kAvg:
            a.sum = static_cast<double>(selected);
            a.nonnull = static_cast<int64_t>(selected);
            break;
          case AggSpec::Kind::kMin:
          case AggSpec::Kind::kMax:
            if (selected > 0) {
              a.best = Value::Int64(1);
              a.saw_value = true;
            }
            break;
        }
        continue;
      }
      if (!spec.arg_is_slot) continue;  // Row loop below.
      const size_t c = spec.arg_slot;
      const ColumnarWindow::ColKind kind = cols.col_kind(c);
      const uint64_t* nulls = cols.has_nulls(c) ? cols.null_words(c) : nullptr;
      const size_t bit0 = cols.bit_offset() + lo;
      switch (spec.kind) {
        case AggSpec::Kind::kCount:
          a.nonnull = simd::CountNonNull(n, nulls, bit0, mask);
          break;
        case AggSpec::Kind::kSum:
        case AggSpec::Kind::kAvg:
          if (kind == ColumnarWindow::ColKind::kI64) {
            const simd::SumResult r =
                simd::SumI64(cols.i64_data(c) + lo, n, nulls, bit0, mask);
            a.sum = r.sum;
            a.nonnull = r.nonnull;
            a.saw_value = r.nonnull > 0;
            // all_integers stays true: every non-null cell is an int64.
          } else if (kind == ColumnarWindow::ColKind::kF64) {
            const simd::SumResult r =
                simd::SumF64(cols.f64_data(c) + lo, n, nulls, bit0, mask);
            a.sum = r.sum;
            a.nonnull = r.nonnull;
            a.saw_value = r.nonnull > 0;
            a.all_integers = r.nonnull == 0;  // Doubles break int typing.
          } else if (!AccumulateColumnScalar(cols, lo, n, mask, c, spec.kind,
                                             a)) {
            return std::nullopt;
          }
          break;
        case AggSpec::Kind::kMin:
        case AggSpec::Kind::kMax: {
          const bool is_min = spec.kind == AggSpec::Kind::kMin;
          if (kind == ColumnarWindow::ColKind::kI64) {
            const int64_t* v = cols.i64_data(c) + lo;
            const ptrdiff_t idx =
                simd::ExtremumI64(v, n, nulls, bit0, mask, is_min);
            if (idx >= 0) {
              a.best = Value::Int64(v[idx]);
              a.saw_value = true;
            }
          } else if (kind == ColumnarWindow::ColKind::kF64) {
            const double* v = cols.f64_data(c) + lo;
            const ptrdiff_t idx =
                simd::ExtremumF64(v, n, nulls, bit0, mask, is_min);
            if (idx >= 0) {
              a.best = Value::Double(v[idx]);
              a.saw_value = true;
            }
          } else if (!AccumulateColumnScalar(cols, lo, n, mask, c, spec.kind,
                                             a)) {
            return std::nullopt;
          }
          break;
        }
      }
    }

    // Expression arguments need a materialized row per selected row.
    if (plan.needs_row) {
      for (size_t i = 0; i < n; ++i) {
        if (mask != nullptr && mask[i] == 0) continue;
        cols.MaterializeRow(lo + i, s.scratch_row);
        EvalContext ec = base;
        ec.row = &s.scratch_row;
        for (size_t si = 0; si < num_specs; ++si) {
          const AggSpec& spec = plan.specs[si];
          if (!spec.has_arg || spec.arg_is_slot) continue;
          const StatusOr<Value> input = EvalBound(spec.arg, ec);
          if (!input.ok()) return std::nullopt;
          if (!Accumulate(spec.kind, *input, g.accums[si])) {
            return std::nullopt;
          }
        }
      }
    }
  } else {
    // Grouped: one pass in row order. Per-group accumulation order equals
    // the legacy per-group row order, and `touched` (first-seen order over
    // selected rows) is the legacy emit order.
    Row& key = s.key_scratch;
    for (size_t i = 0; i < n; ++i) {
      if (mask != nullptr && mask[i] == 0) continue;
      const size_t row = lo + i;
      key.clear();
      for (const size_t slot : plan.key_slots) {
        key.push_back(cols.ValueAt(row, slot));
      }
      size_t slot_index = 0;
      const auto it = s.group_index.find(key);
      if (it == s.group_index.end()) {
        slot_index = s.groups.size();
        s.groups.emplace_back();
        s.group_index.emplace(key, slot_index);
      } else {
        slot_index = it->second;
      }
      ColumnarPlan::GroupState& g = s.groups[slot_index];
      if (g.gen != gen) {
        ResetGroup(g, num_specs, gen);
        g.first_row = row;
        s.touched.push_back(slot_index);
      }
      EvalContext ec = base;
      if (plan.needs_row) {
        cols.MaterializeRow(row, s.scratch_row);
        ec.row = &s.scratch_row;
      }
      for (size_t si = 0; si < num_specs; ++si) {
        const AggSpec& spec = plan.specs[si];
        Value input = Value::Int64(1);  // '*' marker.
        if (spec.has_arg) {
          if (spec.arg_is_slot) {
            input = cols.ValueAt(row, spec.arg_slot);
          } else {
            StatusOr<Value> evaluated = EvalBound(spec.arg, ec);
            if (!evaluated.ok()) return std::nullopt;
            input = std::move(*evaluated);
          }
        }
        if (!Accumulate(spec.kind, input, g.accums[si])) return std::nullopt;
      }
    }
  }

  // --- Emit, in first-seen group order: finalized aggregate values through
  // the lowered kAggSlot reads, HAVING then items, representative row
  // materialized from the group's first selected row (the legacy
  // `group.rows.front()`).
  stream::TupleArena& arena = stream::TupleArena::Local();
  Relation output(prep.output_schema);
  output.mutable_tuples() = arena.AcquireTuples();
  s.agg_values.resize(num_specs);
  for (const size_t slot_index : s.touched) {
    const ColumnarPlan::GroupState& g = s.groups[slot_index];
    for (size_t si = 0; si < num_specs; ++si) {
      s.agg_values[si] = FinalValue(plan.specs[si].kind, g.accums[si]);
    }
    if (g.first_row == kNoRow) {
      s.repr.assign(num_columns, Value::Null());
    } else {
      cols.MaterializeRow(g.first_row, s.repr);
    }
    EvalContext ec = base;
    ec.row = &s.repr;
    ec.agg_values = &s.agg_values;
    if (plan.having.has_value()) {
      const StatusOr<Value> verdict = EvalBound(*plan.having, ec);
      if (!verdict.ok()) return std::nullopt;
      const StatusOr<bool> keep = ToDecision(*verdict, "HAVING");
      if (!keep.ok()) return std::nullopt;
      if (!*keep) continue;
    }
    std::vector<Value> values =
        arena.Acquire(prep.output_schema->num_fields());
    for (const BoundExpr& item : plan.items) {
      StatusOr<Value> value = EvalBound(item, ec);
      if (!value.ok()) return std::nullopt;
      values.push_back(std::move(*value));
    }
    output.Add(Tuple(prep.output_schema, std::move(values), base.now));
  }
  return output;
}

}  // namespace esp::cql::internal
