#include "cql/continuous_query.h"

#include <functional>
#include <unordered_map>

#include "common/string_util.h"
#include "cql/expr_eval.h"
#include "cql/incremental_exec.h"
#include "cql/parser.h"
#include "stream/arena.h"
#include "stream/serialize.h"

namespace esp::cql {

using stream::Relation;
using stream::Tuple;
using stream::WindowKind;
using stream::WindowSpec;

namespace {

/// Aggregated window requirements for one stream.
struct WindowUnion {
  Duration max_range;
  int64_t max_rows = 0;
  bool unbounded = false;

  void Absorb(const WindowSpec& spec) {
    switch (spec.kind) {
      case WindowKind::kRange: {
        // A sliding window's effective time lags `now` by up to one slide
        // width, so retention must cover range + slide.
        const Duration needed = spec.range + spec.slide;
        if (needed > max_range) max_range = needed;
        break;
      }
      case WindowKind::kNow:
        break;  // Zero range.
      case WindowKind::kRows:
        if (spec.rows > max_rows) max_rows = spec.rows;
        break;
      case WindowKind::kUnbounded:
        unbounded = true;
        break;
    }
  }
};

void CollectFromExpr(const Expr& expr,
                     const std::function<void(const SelectQuery&)>& visit);

void CollectFromQuery(const SelectQuery& query,
                      const std::function<void(const SelectQuery&)>& visit) {
  visit(query);
  for (const TableRef& ref : query.from) {
    if (ref.kind == TableRef::Kind::kSubquery) {
      CollectFromQuery(*ref.subquery, visit);
    }
  }
  for (const SelectItem& item : query.items) CollectFromExpr(*item.expr, visit);
  if (query.where != nullptr) CollectFromExpr(*query.where, visit);
  for (const ExprPtr& key : query.group_by) CollectFromExpr(*key, visit);
  if (query.having != nullptr) CollectFromExpr(*query.having, visit);
  for (const OrderByItem& item : query.order_by) {
    CollectFromExpr(*item.expr, visit);
  }
}

void CollectFromExpr(const Expr& expr,
                     const std::function<void(const SelectQuery&)>& visit) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kStar:
      break;
    case ExprKind::kUnary:
      CollectFromExpr(*static_cast<const UnaryExpr&>(expr).operand, visit);
      break;
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      CollectFromExpr(*binary.lhs, visit);
      CollectFromExpr(*binary.rhs, visit);
      break;
    }
    case ExprKind::kFunctionCall:
      for (const ExprPtr& arg :
           static_cast<const FunctionCallExpr&>(expr).args) {
        CollectFromExpr(*arg, visit);
      }
      break;
    case ExprKind::kScalarSubquery:
      CollectFromQuery(*static_cast<const ScalarSubqueryExpr&>(expr).query,
                       visit);
      break;
    case ExprKind::kQuantifiedComparison: {
      const auto& quantified =
          static_cast<const QuantifiedComparisonExpr&>(expr);
      CollectFromExpr(*quantified.lhs, visit);
      CollectFromQuery(*quantified.subquery, visit);
      break;
    }
    case ExprKind::kIn: {
      const auto& in = static_cast<const InExpr&>(expr);
      CollectFromExpr(*in.lhs, visit);
      if (in.subquery != nullptr) CollectFromQuery(*in.subquery, visit);
      for (const ExprPtr& item : in.list) CollectFromExpr(*item, visit);
      break;
    }
    case ExprKind::kExists:
      CollectFromQuery(*static_cast<const ExistsExpr&>(expr).subquery, visit);
      break;
    case ExprKind::kIsNull:
      CollectFromExpr(*static_cast<const IsNullExpr&>(expr).operand, visit);
      break;
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      CollectFromExpr(*between.value, visit);
      CollectFromExpr(*between.low, visit);
      CollectFromExpr(*between.high, visit);
      break;
    }
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::WhenClause& when : case_expr.whens) {
        CollectFromExpr(*when.condition, visit);
        CollectFromExpr(*when.result, visit);
      }
      if (case_expr.else_result != nullptr) {
        CollectFromExpr(*case_expr.else_result, visit);
      }
      break;
    }
  }
}

}  // namespace

ContinuousQuery::~ContinuousQuery() = default;

StatusOr<std::unique_ptr<ContinuousQuery>> ContinuousQuery::Create(
    const std::string& query_text, const SchemaCatalog& input_schemas) {
  ESP_ASSIGN_OR_RETURN(std::unique_ptr<SelectQuery> query,
                       ParseQuery(query_text));
  return CreateFromAst(std::move(query), input_schemas);
}

StatusOr<std::unique_ptr<ContinuousQuery>> ContinuousQuery::CreateFromAst(
    std::unique_ptr<SelectQuery> query, const SchemaCatalog& input_schemas) {
  auto cq = std::unique_ptr<ContinuousQuery>(new ContinuousQuery());

  // Gather every stream reference and union its window requirements.
  std::unordered_map<std::string, WindowUnion> requirements;
  CollectFromQuery(*query, [&](const SelectQuery& q) {
    for (const TableRef& ref : q.from) {
      if (ref.kind == TableRef::Kind::kStream) {
        requirements[esp::StrToLower(ref.stream_name)].Absorb(ref.window);
      }
    }
  });
  for (const auto& [name, window_union] : requirements) {
    StreamState state;
    state.name = name;
    ESP_ASSIGN_OR_RETURN(state.schema, input_schemas.Find(name));
    state.history = Relation(state.schema);
    state.max_range = window_union.max_range;
    state.max_rows = window_union.max_rows;
    state.unbounded = window_union.unbounded;
    cq->streams_.push_back(std::move(state));
  }

  // Analyze (validates the query and computes the output schema).
  ESP_ASSIGN_OR_RETURN(cq->output_schema_,
                       InferOutputSchema(*query, input_schemas));
  cq->query_ = std::move(query);
  cq->exec_cache_ = std::make_unique<QueryExecCache>();

  // Try the incremental engine for the single-stream grouped shape; the
  // planner proves bitwise equivalence or declines.
  if (cq->query_->from.size() == 1 &&
      cq->query_->from[0].kind == TableRef::Kind::kStream) {
    const std::string target = esp::StrToLower(cq->query_->from[0].stream_name);
    for (size_t i = 0; i < cq->streams_.size(); ++i) {
      if (cq->streams_[i].name != target) continue;
      cq->engine_ = IncrementalGroupedQuery::TryPlan(
          *cq->query_, cq->streams_[i].name, cq->streams_[i].schema,
          cq->output_schema_);
      cq->engine_stream_ = i;
      break;
    }
  }
  return cq;
}

Status ContinuousQuery::Push(const std::string& stream_name,
                             stream::Tuple tuple) {
  for (StreamState& state : streams_) {
    if (esp::StrEqualsIgnoreCase(state.name, stream_name)) {
      if (state.has_inserted && tuple.timestamp() < state.last_insert) {
        return Status::InvalidArgument(
            "out-of-order tuple on stream '" + stream_name + "': " +
            tuple.timestamp().ToString() + " after " +
            state.last_insert.ToString());
      }
      if (tuple.schema() == nullptr ||
          !tuple.schema()->Equals(*state.schema)) {
        return Status::TypeError("tuple schema mismatch on stream '" +
                                 stream_name + "'");
      }
      state.last_insert = tuple.timestamp();
      state.has_inserted = true;
      state.history.Add(std::move(tuple));
      return Status::OK();
    }
  }
  return Status::NotFound("query does not read stream '" + stream_name + "'");
}

void ContinuousQuery::Evict(Timestamp now) {
  for (StreamState& state : streams_) {
    if (state.unbounded) continue;
    // A tuple is dead once it can appear in no window at any t' >= now: for
    // RANGE windows that is ts <= now - max_range; NOW windows (range zero)
    // keep ts == now alive, hence the strict ts < now condition; ROWS
    // windows additionally protect the most recent max_rows tuples.
    const Timestamp horizon = now - state.max_range;
    std::vector<Tuple>& history = state.history.mutable_tuples();
    size_t first_alive = 0;
    const size_t rows_protected_from =
        history.size() > static_cast<size_t>(state.max_rows)
            ? history.size() - static_cast<size_t>(state.max_rows)
            : 0;
    while (first_alive < history.size() &&
           history[first_alive].timestamp() <= horizon &&
           history[first_alive].timestamp() < now &&
           first_alive < rows_protected_from) {
      ++first_alive;
    }
    if (first_alive > 0) {
      stream::TupleArena& arena = stream::TupleArena::Local();
      for (size_t i = 0; i < first_alive; ++i) {
        arena.Release(std::move(history[i].mutable_values()));
      }
      history.erase(history.begin(),
                    history.begin() + static_cast<std::ptrdiff_t>(first_alive));
      state.base_seq += first_alive;
    }
  }
}

void ContinuousQuery::SyncColumns(StreamState& state) {
  if (!stream::ColumnarEnabled()) {
    // Leave the mirror cold; a later re-enable rebuilds from scratch.
    if (state.columns_synced) {
      state.columns.Clear();
      state.columns_synced = false;
    }
    return;
  }
  const std::vector<Tuple>& history = state.history.tuples();
  const uint64_t history_end = state.base_seq + history.size();
  const bool incremental =
      state.columns_synced && state.columns.schema() == state.schema &&
      state.columns_base <= state.base_seq &&
      state.columns_base + state.columns.size() <= history_end;
  if (!incremental) {
    state.columns.Reset(state.schema);
    for (const Tuple& tuple : history) state.columns.Append(tuple);
  } else {
    // Evictions pop the front of the mirror, pushes append to its back —
    // the steady-state tick does O(delta) work, not O(window).
    state.columns.PopFront(
        static_cast<size_t>(state.base_seq - state.columns_base));
    for (size_t i = state.columns.size(); i < history.size(); ++i) {
      state.columns.Append(history[i]);
    }
  }
  state.columns_base = state.base_seq;
  state.columns_synced = true;
}

StatusOr<stream::Relation> ContinuousQuery::Evaluate(Timestamp now) {
  if (has_evaluated_ && now < last_eval_) {
    return Status::InvalidArgument("evaluation times must be non-decreasing");
  }
  last_eval_ = now;
  has_evaluated_ = true;

  if (engine_ != nullptr) {
    StreamState& state = streams_[engine_stream_];
    // Mirror maintenance is demand-driven: a query whose WHERE cannot
    // batch-compile consumes rows one at a time regardless, so keeping the
    // mirror warm for it would be pure per-tick overhead.
    const bool want_columns = engine_->WantsColumns();
    if (want_columns) SyncColumns(state);
    std::optional<Relation> result = engine_->Evaluate(
        state.history,
        want_columns && state.columns_synced ? &state.columns : nullptr,
        state.base_seq, now);
    if (result.has_value()) {
      Evict(now);  // Retention horizon trails the engine's consumption.
      return std::move(*result);
    }
    // Permanent fallback: the rescan path reproduces any genuine error and
    // handles whatever the planner could not prove.
    engine_.reset();
  }

  Evict(now);
  for (StreamState& state : streams_) SyncColumns(state);

  // The catalog views the stream histories in place; `streams_` never
  // resizes after construction, so build it once and reuse it every tick.
  // The columnar mirrors ride along: the evaluator checks row-for-row sync
  // before trusting them, so a cold mirror (toggle off) is simply ignored.
  if (catalog_ == nullptr) {
    catalog_ = std::make_unique<Catalog>();
    for (const StreamState& state : streams_) {
      catalog_->AddStreamView(state.name, &state.history, &state.columns);
    }
  }
  return ExecuteQuery(*query_, *catalog_, now, exec_cache_.get());
}

size_t ContinuousQuery::buffered() const {
  size_t total = 0;
  for (const StreamState& state : streams_) total += state.history.size();
  return total;
}

void ContinuousQuery::SaveState(ByteWriter& w) const {
  w.WriteBool(has_evaluated_);
  w.WriteI64(last_eval_.micros());
  w.WriteU32(static_cast<uint32_t>(streams_.size()));
  for (const StreamState& state : streams_) {
    w.WriteString(state.name);
    w.WriteBool(state.has_inserted);
    w.WriteI64(state.last_insert.micros());
    w.WriteU64(state.history.size());
    for (const stream::Tuple& tuple : state.history.tuples()) {
      stream::WriteTuple(w, tuple);
    }
  }
}

Status ContinuousQuery::LoadState(ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(has_evaluated_, r.ReadBool());
  ESP_ASSIGN_OR_RETURN(const int64_t eval_micros, r.ReadI64());
  last_eval_ = Timestamp::Micros(eval_micros);
  ESP_ASSIGN_OR_RETURN(const uint32_t stream_count, r.ReadU32());
  if (stream_count != streams_.size()) {
    return Status::ParseError(
        "serialized query state has " + std::to_string(stream_count) +
        " streams, query reads " + std::to_string(streams_.size()));
  }
  for (uint32_t i = 0; i < stream_count; ++i) {
    ESP_ASSIGN_OR_RETURN(const std::string name, r.ReadString());
    StreamState* state = nullptr;
    for (StreamState& candidate : streams_) {
      if (esp::StrEqualsIgnoreCase(candidate.name, name)) {
        state = &candidate;
        break;
      }
    }
    if (state == nullptr) {
      return Status::ParseError("serialized query state names stream '" +
                                name + "' this query does not read");
    }
    ESP_ASSIGN_OR_RETURN(state->has_inserted, r.ReadBool());
    ESP_ASSIGN_OR_RETURN(const int64_t insert_micros, r.ReadI64());
    state->last_insert = Timestamp::Micros(insert_micros);
    ESP_ASSIGN_OR_RETURN(const uint64_t history_size, r.ReadU64());
    state->history.mutable_tuples().clear();
    state->base_seq = 0;
    state->columns_synced = false;  // Mirror rebuilds on next evaluation.
    for (uint64_t t = 0; t < history_size; ++t) {
      ESP_ASSIGN_OR_RETURN(stream::Tuple tuple,
                           stream::ReadTuple(r, state->schema));
      state->history.Add(std::move(tuple));
    }
  }
  // The engine's window state is a pure function of the live rows; rebuild
  // it from the restored history on the next evaluation.
  if (engine_ != nullptr) engine_->Reset();
  return Status::OK();
}

}  // namespace esp::cql
