#include "cql/continuous_query.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "common/string_util.h"
#include "cql/expr_eval.h"
#include "cql/incremental_exec.h"
#include "cql/parser.h"
#include "stream/arena.h"
#include "stream/serialize.h"

namespace esp::cql {

using stream::Relation;
using stream::Tuple;
using stream::WindowKind;
using stream::WindowSpec;

namespace {

void CollectFromExpr(const Expr& expr,
                     const std::function<void(const SelectQuery&)>& visit);

void CollectFromQuery(const SelectQuery& query,
                      const std::function<void(const SelectQuery&)>& visit) {
  visit(query);
  for (const TableRef& ref : query.from) {
    if (ref.kind == TableRef::Kind::kSubquery) {
      CollectFromQuery(*ref.subquery, visit);
    }
  }
  for (const SelectItem& item : query.items) CollectFromExpr(*item.expr, visit);
  if (query.where != nullptr) CollectFromExpr(*query.where, visit);
  for (const ExprPtr& key : query.group_by) CollectFromExpr(*key, visit);
  if (query.having != nullptr) CollectFromExpr(*query.having, visit);
  for (const OrderByItem& item : query.order_by) {
    CollectFromExpr(*item.expr, visit);
  }
}

void CollectFromExpr(const Expr& expr,
                     const std::function<void(const SelectQuery&)>& visit) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kStar:
      break;
    case ExprKind::kUnary:
      CollectFromExpr(*static_cast<const UnaryExpr&>(expr).operand, visit);
      break;
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      CollectFromExpr(*binary.lhs, visit);
      CollectFromExpr(*binary.rhs, visit);
      break;
    }
    case ExprKind::kFunctionCall:
      for (const ExprPtr& arg :
           static_cast<const FunctionCallExpr&>(expr).args) {
        CollectFromExpr(*arg, visit);
      }
      break;
    case ExprKind::kScalarSubquery:
      CollectFromQuery(*static_cast<const ScalarSubqueryExpr&>(expr).query,
                       visit);
      break;
    case ExprKind::kQuantifiedComparison: {
      const auto& quantified =
          static_cast<const QuantifiedComparisonExpr&>(expr);
      CollectFromExpr(*quantified.lhs, visit);
      CollectFromQuery(*quantified.subquery, visit);
      break;
    }
    case ExprKind::kIn: {
      const auto& in = static_cast<const InExpr&>(expr);
      CollectFromExpr(*in.lhs, visit);
      if (in.subquery != nullptr) CollectFromQuery(*in.subquery, visit);
      for (const ExprPtr& item : in.list) CollectFromExpr(*item, visit);
      break;
    }
    case ExprKind::kExists:
      CollectFromQuery(*static_cast<const ExistsExpr&>(expr).subquery, visit);
      break;
    case ExprKind::kIsNull:
      CollectFromExpr(*static_cast<const IsNullExpr&>(expr).operand, visit);
      break;
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      CollectFromExpr(*between.value, visit);
      CollectFromExpr(*between.low, visit);
      CollectFromExpr(*between.high, visit);
      break;
    }
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::WhenClause& when : case_expr.whens) {
        CollectFromExpr(*when.condition, visit);
        CollectFromExpr(*when.result, visit);
      }
      if (case_expr.else_result != nullptr) {
        CollectFromExpr(*case_expr.else_result, visit);
      }
      break;
    }
  }
}

}  // namespace

std::vector<std::pair<std::string, WindowDemand>> CollectStreamDemands(
    const SelectQuery& query) {
  std::unordered_map<std::string, WindowDemand> requirements;
  CollectFromQuery(query, [&](const SelectQuery& q) {
    for (const TableRef& ref : q.from) {
      if (ref.kind == TableRef::Kind::kStream) {
        requirements[esp::StrToLower(ref.stream_name)].Absorb(ref.window);
      }
    }
  });
  std::vector<std::pair<std::string, WindowDemand>> demands(
      requirements.begin(), requirements.end());
  std::sort(demands.begin(), demands.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return demands;
}

void WindowDemand::Absorb(const WindowSpec& spec) {
  switch (spec.kind) {
    case WindowKind::kRange: {
      // A sliding window's effective time lags `now` by up to one slide
      // width, so retention must cover range + slide.
      const Duration needed = spec.range + spec.slide;
      if (needed > max_range) max_range = needed;
      break;
    }
    case WindowKind::kNow:
      break;  // Zero range.
    case WindowKind::kRows:
      if (spec.rows > max_rows) max_rows = spec.rows;
      break;
    case WindowKind::kUnbounded:
      unbounded = true;
      break;
  }
}

void WindowDemand::Absorb(const WindowDemand& other) {
  if (other.max_range > max_range) max_range = other.max_range;
  if (other.max_rows > max_rows) max_rows = other.max_rows;
  unbounded = unbounded || other.unbounded;
}

bool WindowDemand::Covers(const WindowDemand& other) const {
  if (other.unbounded && !unbounded) return false;
  return unbounded ||
         (max_range >= other.max_range && max_rows >= other.max_rows);
}

Status StreamWindowState::Push(Tuple tuple) {
  if (has_inserted && tuple.timestamp() < last_insert) {
    return Status::InvalidArgument(
        "out-of-order tuple on stream '" + name + "': " +
        tuple.timestamp().ToString() + " after " + last_insert.ToString());
  }
  if (tuple.schema() == nullptr || !tuple.schema()->Equals(*schema)) {
    return Status::TypeError("tuple schema mismatch on stream '" + name +
                             "'");
  }
  last_insert = tuple.timestamp();
  has_inserted = true;
  history.Add(std::move(tuple));
  return Status::OK();
}

void StreamWindowState::Evict(Timestamp now) {
  if (demand.unbounded) return;
  // A tuple is dead once it can appear in no window at any t' >= now: for
  // RANGE windows that is ts <= now - max_range; NOW windows (range zero)
  // keep ts == now alive, hence the strict ts < now condition; ROWS
  // windows additionally protect the max_rows most recent tuples *eligible
  // at now* (ts <= now). Anchoring the protected suffix at the last
  // eligible tuple — not the buffer end — matters when the buffer already
  // holds tuples stamped after `now`: those are not in any window at `now`,
  // so they must not push still-visible older tuples past the cut.
  const Timestamp horizon = now - demand.max_range;
  std::vector<Tuple>& tuples = history.mutable_tuples();
  size_t first_alive = 0;
  const size_t eligible_hi = static_cast<size_t>(
      std::upper_bound(tuples.begin(), tuples.end(), now,
                       [](Timestamp lhs, const Tuple& rhs) {
                         return lhs < rhs.timestamp();
                       }) -
      tuples.begin());
  const size_t rows_protected_from =
      eligible_hi > static_cast<size_t>(demand.max_rows)
          ? eligible_hi - static_cast<size_t>(demand.max_rows)
          : 0;
  while (first_alive < tuples.size() &&
         tuples[first_alive].timestamp() <= horizon &&
         tuples[first_alive].timestamp() < now &&
         first_alive < rows_protected_from) {
    ++first_alive;
  }
  if (first_alive > 0) {
    stream::TupleArena& arena = stream::TupleArena::Local();
    for (size_t i = 0; i < first_alive; ++i) {
      arena.Release(std::move(tuples[i].mutable_values()));
    }
    tuples.erase(tuples.begin(),
                 tuples.begin() + static_cast<std::ptrdiff_t>(first_alive));
    base_seq += first_alive;
  }
}

void StreamWindowState::SyncColumns() {
  if (!stream::ColumnarEnabled()) {
    // Leave the mirror cold; a later re-enable rebuilds from scratch.
    if (columns_synced) {
      columns.Clear();
      columns_synced = false;
    }
    return;
  }
  const std::vector<Tuple>& tuples = history.tuples();
  const uint64_t history_end = base_seq + tuples.size();
  const bool incremental =
      columns_synced && columns.schema() == schema &&
      columns_base <= base_seq && columns_base + columns.size() <= history_end;
  if (!incremental) {
    columns.Reset(schema);
    for (const Tuple& tuple : tuples) columns.Append(tuple);
  } else {
    // Evictions pop the front of the mirror, pushes append to its back —
    // the steady-state tick does O(delta) work, not O(window).
    columns.PopFront(static_cast<size_t>(base_seq - columns_base));
    for (size_t i = columns.size(); i < tuples.size(); ++i) {
      columns.Append(tuples[i]);
    }
  }
  columns_base = base_seq;
  columns_synced = true;
}

void StreamWindowState::SaveState(ByteWriter& w) const {
  w.WriteBool(has_inserted);
  w.WriteI64(last_insert.micros());
  w.WriteU64(history.size());
  for (const Tuple& tuple : history.tuples()) stream::WriteTuple(w, tuple);
}

Status StreamWindowState::LoadState(ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(has_inserted, r.ReadBool());
  ESP_ASSIGN_OR_RETURN(const int64_t insert_micros, r.ReadI64());
  last_insert = Timestamp::Micros(insert_micros);
  ESP_ASSIGN_OR_RETURN(const uint64_t history_size, r.ReadU64());
  history.mutable_tuples().clear();
  base_seq = 0;
  columns_synced = false;  // Mirror rebuilds on next sync.
  for (uint64_t t = 0; t < history_size; ++t) {
    ESP_ASSIGN_OR_RETURN(Tuple tuple, stream::ReadTuple(r, schema));
    history.Add(std::move(tuple));
  }
  return Status::OK();
}

ContinuousQuery::~ContinuousQuery() = default;

StatusOr<std::unique_ptr<ContinuousQuery>> ContinuousQuery::Create(
    const std::string& query_text, const SchemaCatalog& input_schemas) {
  ESP_ASSIGN_OR_RETURN(std::unique_ptr<SelectQuery> query,
                       ParseQuery(query_text));
  return CreateFromAst(std::move(query), input_schemas);
}

StatusOr<std::unique_ptr<ContinuousQuery>> ContinuousQuery::CreateFromAst(
    std::unique_ptr<SelectQuery> query, const SchemaCatalog& input_schemas) {
  return Build(std::move(query), input_schemas, nullptr);
}

StatusOr<std::unique_ptr<ContinuousQuery>> ContinuousQuery::CreateFromAst(
    std::unique_ptr<SelectQuery> query, const SchemaCatalog& input_schemas,
    const StreamResolver& resolver) {
  return Build(std::move(query), input_schemas, &resolver);
}

StatusOr<std::unique_ptr<ContinuousQuery>> ContinuousQuery::Build(
    std::unique_ptr<SelectQuery> query, const SchemaCatalog& input_schemas,
    const StreamResolver* resolver) {
  auto cq = std::unique_ptr<ContinuousQuery>(new ContinuousQuery());
  cq->shared_ = resolver != nullptr;

  // Gather every stream reference and union its window requirements.
  for (const auto& [name, demand] : CollectStreamDemands(*query)) {
    ESP_ASSIGN_OR_RETURN(const stream::SchemaRef schema,
                         input_schemas.Find(name));
    Slot slot;
    if (resolver != nullptr) {
      ESP_ASSIGN_OR_RETURN(slot.state, (*resolver)(name, demand));
      if (slot.state == nullptr) {
        return Status::Internal("stream resolver returned no storage for '" +
                                name + "'");
      }
      if (slot.state->schema == nullptr ||
          !slot.state->schema->Equals(*schema)) {
        return Status::Internal("shared window storage for '" + name +
                                "' disagrees with the analysis schema");
      }
    } else {
      slot.owned = std::make_unique<StreamWindowState>();
      slot.owned->name = name;
      slot.owned->schema = schema;
      slot.owned->history = Relation(schema);
      slot.owned->demand = demand;
      slot.state = slot.owned.get();
    }
    cq->streams_.push_back(std::move(slot));
  }

  // Analyze (validates the query and computes the output schema).
  ESP_ASSIGN_OR_RETURN(cq->output_schema_,
                       InferOutputSchema(*query, input_schemas));
  cq->query_ = std::move(query);
  cq->exec_cache_ = std::make_unique<QueryExecCache>();

  // Try the incremental engine for the single-stream grouped shape; the
  // planner proves bitwise equivalence or declines.
  if (cq->query_->from.size() == 1 &&
      cq->query_->from[0].kind == TableRef::Kind::kStream) {
    const std::string target = esp::StrToLower(cq->query_->from[0].stream_name);
    for (size_t i = 0; i < cq->streams_.size(); ++i) {
      if (cq->streams_[i].state->name != target) continue;
      cq->engine_ = IncrementalGroupedQuery::TryPlan(
          *cq->query_, target, cq->streams_[i].state->schema,
          cq->output_schema_);
      cq->engine_stream_ = i;
      break;
    }
  }
  return cq;
}

Status ContinuousQuery::Push(const std::string& stream_name,
                             stream::Tuple tuple) {
  if (shared_) {
    return Status::FailedPrecondition(
        "query evaluates over shared window storage; push tuples to its "
        "registry instead");
  }
  for (Slot& slot : streams_) {
    if (esp::StrEqualsIgnoreCase(slot.state->name, stream_name)) {
      return slot.state->Push(std::move(tuple));
    }
  }
  return Status::NotFound("query does not read stream '" + stream_name + "'");
}

StatusOr<stream::Relation> ContinuousQuery::Evaluate(Timestamp now) {
  if (has_evaluated_ && now < last_eval_) {
    return Status::InvalidArgument("evaluation times must be non-decreasing");
  }
  last_eval_ = now;
  has_evaluated_ = true;

  if (engine_ != nullptr) {
    StreamWindowState& state = *streams_[engine_stream_].state;
    // Mirror maintenance is demand-driven: a query whose WHERE cannot
    // batch-compile consumes rows one at a time regardless, so keeping the
    // mirror warm for it would be pure per-tick overhead.
    const bool want_columns = engine_->WantsColumns();
    if (want_columns) state.SyncColumns();
    std::optional<Relation> result = engine_->Evaluate(
        state.history,
        want_columns && state.columns_synced ? &state.columns : nullptr,
        state.base_seq, now);
    if (result.has_value()) {
      // Retention horizon trails the engine's consumption. Shared buffers
      // are evicted by their owner once every reader has evaluated.
      if (!shared_) {
        for (Slot& slot : streams_) slot.state->Evict(now);
      }
      return std::move(*result);
    }
    // Permanent fallback: the rescan path reproduces any genuine error and
    // handles whatever the planner could not prove.
    engine_.reset();
  }

  if (!shared_) {
    for (Slot& slot : streams_) slot.state->Evict(now);
  }
  for (Slot& slot : streams_) slot.state->SyncColumns();

  // The catalog views the stream histories in place; `streams_` never
  // resizes after construction (and shared storage outlives the query), so
  // build it once and reuse it every tick. The columnar mirrors ride along:
  // the evaluator checks row-for-row sync before trusting them, so a cold
  // mirror (toggle off) is simply ignored.
  if (catalog_ == nullptr) {
    catalog_ = std::make_unique<Catalog>();
    for (const Slot& slot : streams_) {
      catalog_->AddStreamView(slot.state->name, &slot.state->history,
                              &slot.state->columns);
    }
  }
  return ExecuteQuery(*query_, *catalog_, now, exec_cache_.get());
}

size_t ContinuousQuery::buffered() const {
  size_t total = 0;
  for (const Slot& slot : streams_) total += slot.state->history.size();
  return total;
}

void ContinuousQuery::SaveState(ByteWriter& w) const {
  w.WriteBool(has_evaluated_);
  w.WriteI64(last_eval_.micros());
  if (shared_) {
    // Histories belong to the registry, which checkpoints each shared
    // buffer exactly once; only this query's clocks are ours to save.
    w.WriteU32(0);
    return;
  }
  w.WriteU32(static_cast<uint32_t>(streams_.size()));
  for (const Slot& slot : streams_) {
    w.WriteString(slot.state->name);
    slot.state->SaveState(w);
  }
}

Status ContinuousQuery::LoadState(ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(has_evaluated_, r.ReadBool());
  ESP_ASSIGN_OR_RETURN(const int64_t eval_micros, r.ReadI64());
  last_eval_ = Timestamp::Micros(eval_micros);
  ESP_ASSIGN_OR_RETURN(const uint32_t stream_count, r.ReadU32());
  const size_t expected = shared_ ? 0 : streams_.size();
  if (stream_count != expected) {
    return Status::ParseError(
        "serialized query state has " + std::to_string(stream_count) +
        " streams, query reads " + std::to_string(expected));
  }
  for (uint32_t i = 0; i < stream_count; ++i) {
    ESP_ASSIGN_OR_RETURN(const std::string name, r.ReadString());
    StreamWindowState* state = nullptr;
    for (Slot& slot : streams_) {
      if (esp::StrEqualsIgnoreCase(slot.state->name, name)) {
        state = slot.state;
        break;
      }
    }
    if (state == nullptr) {
      return Status::ParseError("serialized query state names stream '" +
                                name + "' this query does not read");
    }
    ESP_RETURN_IF_ERROR(state->LoadState(r));
  }
  // The engine's window state is a pure function of the live rows; rebuild
  // it from the restored history on the next evaluation.
  if (engine_ != nullptr) engine_->Reset();
  return Status::OK();
}

}  // namespace esp::cql
