#ifndef ESP_CQL_EVALUATOR_H_
#define ESP_CQL_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "cql/analyzer.h"
#include "cql/ast.h"
#include "stream/tuple.h"
#include "stream/window.h"

namespace esp::cql {

class QueryExecCache;  // expr_eval.h; opaque to API consumers.

/// \brief Maps stream names to their retained, time-ordered histories.
///
/// The evaluator applies each reference's window clause to the history at
/// evaluation time, which gives CQL's snapshot semantics: a query's result
/// at time t is an ordinary relational evaluation over the windows' contents
/// at t. The caller (ContinuousQuery / EspProcessor) is responsible for
/// keeping enough history to cover the largest window and evicting the rest.
///
/// A stream may be registered by value (the catalog owns a copy) or as a
/// borrowed view of a history the caller keeps alive for the duration of the
/// evaluation — the zero-copy path standing queries use every tick.
class Catalog {
 public:
  /// Registers or replaces a stream's history. Tuples must be time-ordered.
  void AddStream(const std::string& name, stream::Relation history);

  /// Registers or replaces a stream as a borrowed view. `history` must
  /// outlive every evaluation against this catalog and be time-ordered.
  void AddStreamView(const std::string& name, const stream::Relation* history);

  /// As above, additionally attaching a columnar mirror of the same history
  /// (stream/column.h). `columns` must stay row-for-row in sync with
  /// `history` and outlive every evaluation; the evaluator uses it for the
  /// columnar fast path and falls back to rows whenever it is absent.
  void AddStreamView(const std::string& name, const stream::Relation* history,
                     const stream::ColumnarWindow* columns);

  StatusOr<const stream::Relation*> Find(const std::string& name) const;

  /// The columnar mirror registered for `name`, or nullptr.
  const stream::ColumnarWindow* FindColumns(const std::string& name) const;

  /// Derives the analysis-time view (names -> schemas).
  SchemaCatalog ToSchemaCatalog() const;

 private:
  struct Entry {
    std::string name;
    stream::Relation owned;
    const stream::Relation* view = nullptr;  // Set for AddStreamView entries.
    const stream::ColumnarWindow* columns = nullptr;  // Optional mirror.

    const stream::Relation* get() const {
      return view != nullptr ? view : &owned;
    }
  };
  std::vector<Entry> streams_;
};

/// \brief Materializes the window contents of `history` at time `now`.
/// History must be in non-decreasing timestamp order (required for kRows).
stream::Relation ApplyWindow(const stream::Relation& history,
                             const stream::WindowSpec& spec, Timestamp now);

/// \brief Evaluates `query` against `catalog` at time `now` and returns the
/// result relation. Every output tuple is stamped with `now`.
///
/// Supports the full dialect of parser.h including grouped aggregation,
/// HAVING with correlated ALL/ANY subqueries (paper Query 3), derived
/// tables, cross joins, scalar subqueries, CASE, and DISTINCT / ORDER BY /
/// LIMIT. Three-valued logic: comparisons against NULL yield NULL, and a
/// NULL predicate is treated as false where a decision is forced.
StatusOr<stream::Relation> ExecuteQuery(const SelectQuery& query,
                                        const Catalog& catalog, Timestamp now);

/// \brief As above, with a per-standing-query prepared-plan cache. The cache
/// (see expr_eval.h) memoizes schema inference and expression compilation
/// across ticks, keyed by AST node; it must not outlive the query's AST and
/// must always be used with catalogs presenting the same stream layouts.
/// Pass nullptr for one-shot behavior.
StatusOr<stream::Relation> ExecuteQuery(const SelectQuery& query,
                                        const Catalog& catalog, Timestamp now,
                                        QueryExecCache* cache);

/// \brief Benchmark hook: toggles the compiled expression path (column
/// references bound to row slots once per execution, constants folded once
/// per query). Enabled by default; disabling it routes every expression
/// through the interpretive per-tuple walk so the two paths can be compared.
/// Not thread-safe with respect to in-flight queries.
void SetExprCompilationForBenchmarks(bool enabled);

}  // namespace esp::cql

#endif  // ESP_CQL_EVALUATOR_H_
