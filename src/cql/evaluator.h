#ifndef ESP_CQL_EVALUATOR_H_
#define ESP_CQL_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "cql/analyzer.h"
#include "cql/ast.h"
#include "stream/tuple.h"
#include "stream/window.h"

namespace esp::cql {

/// \brief Maps stream names to their retained, time-ordered histories.
///
/// The evaluator applies each reference's window clause to the history at
/// evaluation time, which gives CQL's snapshot semantics: a query's result
/// at time t is an ordinary relational evaluation over the windows' contents
/// at t. The caller (ContinuousQuery / EspProcessor) is responsible for
/// keeping enough history to cover the largest window and evicting the rest.
class Catalog {
 public:
  /// Registers or replaces a stream's history. Tuples must be time-ordered.
  void AddStream(const std::string& name, stream::Relation history);

  StatusOr<const stream::Relation*> Find(const std::string& name) const;

  /// Derives the analysis-time view (names -> schemas).
  SchemaCatalog ToSchemaCatalog() const;

 private:
  std::vector<std::pair<std::string, stream::Relation>> streams_;
};

/// \brief Materializes the window contents of `history` at time `now`.
/// History must be in non-decreasing timestamp order (required for kRows).
stream::Relation ApplyWindow(const stream::Relation& history,
                             const stream::WindowSpec& spec, Timestamp now);

/// \brief Evaluates `query` against `catalog` at time `now` and returns the
/// result relation. Every output tuple is stamped with `now`.
///
/// Supports the full dialect of parser.h including grouped aggregation,
/// HAVING with correlated ALL/ANY subqueries (paper Query 3), derived
/// tables, cross joins, scalar subqueries, CASE, and DISTINCT / ORDER BY /
/// LIMIT. Three-valued logic: comparisons against NULL yield NULL, and a
/// NULL predicate is treated as false where a decision is forced.
StatusOr<stream::Relation> ExecuteQuery(const SelectQuery& query,
                                        const Catalog& catalog, Timestamp now);

/// \brief Benchmark hook: toggles the compiled expression path (column
/// references bound to row slots once per execution, constants folded once
/// per query). Enabled by default; disabling it routes every expression
/// through the interpretive per-tuple walk so the two paths can be compared.
/// Not thread-safe with respect to in-flight queries.
void SetExprCompilationForBenchmarks(bool enabled);

}  // namespace esp::cql

#endif  // ESP_CQL_EVALUATOR_H_
