#include "cql/scalar_function.h"

#include <cmath>

#include "common/string_util.h"
#include "stream/aggregate.h"

namespace esp::cql {

using stream::DataType;
using stream::Value;

namespace {

/// Wraps a double -> double function with null propagation.
ScalarFn NumericUnary(double (*fn)(double)) {
  return [fn](const std::vector<Value>& args) -> StatusOr<Value> {
    if (args[0].is_null()) return Value::Null();
    ESP_ASSIGN_OR_RETURN(const double v, args[0].AsDouble());
    return Value::Double(fn(v));
  };
}

StatusOr<Value> AbsFn(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() == DataType::kInt64) {
    return Value::Int64(std::abs(args[0].int64_value()));
  }
  ESP_ASSIGN_OR_RETURN(const double v, args[0].AsDouble());
  return Value::Double(std::fabs(v));
}

StatusOr<Value> RoundFn(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  ESP_ASSIGN_OR_RETURN(const double v, args[0].AsDouble());
  if (args.size() == 2) {
    ESP_ASSIGN_OR_RETURN(const int64_t digits, args[1].AsInt64());
    const double scale = std::pow(10.0, static_cast<double>(digits));
    return Value::Double(std::round(v * scale) / scale);
  }
  return Value::Double(std::round(v));
}

StatusOr<Value> PowFn(const std::vector<Value>& args) {
  if (args[0].is_null() || args[1].is_null()) return Value::Null();
  ESP_ASSIGN_OR_RETURN(const double base, args[0].AsDouble());
  ESP_ASSIGN_OR_RETURN(const double exponent, args[1].AsDouble());
  return Value::Double(std::pow(base, exponent));
}

StatusOr<Value> LeastGreatestFn(const std::vector<Value>& args, bool least) {
  Value best;
  for (const Value& arg : args) {
    if (arg.is_null()) continue;
    if (best.is_null()) {
      best = arg;
      continue;
    }
    ESP_ASSIGN_OR_RETURN(const int cmp, arg.Compare(best));
    if ((least && cmp < 0) || (!least && cmp > 0)) best = arg;
  }
  return best;
}

StatusOr<Value> CoalesceFn(const std::vector<Value>& args) {
  for (const Value& arg : args) {
    if (!arg.is_null()) return arg;
  }
  return Value::Null();
}

StatusOr<Value> IifFn(const std::vector<Value>& args) {
  if (args[0].is_null()) return args[2];
  if (args[0].type() != DataType::kBool) {
    return Status::TypeError("iif() condition must be boolean");
  }
  return args[0].bool_value() ? args[1] : args[2];
}

StatusOr<Value> LengthFn(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() != DataType::kString) {
    return Status::TypeError("length() requires a string");
  }
  return Value::Int64(static_cast<int64_t>(args[0].string_value().size()));
}

StatusOr<Value> CaseChangeFn(const std::vector<Value>& args, bool lower) {
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() != DataType::kString) {
    return Status::TypeError("lower()/upper() require a string");
  }
  return Value::String(lower ? esp::StrToLower(args[0].string_value())
                             : esp::StrToUpper(args[0].string_value()));
}

StatusOr<Value> ConcatFn(const std::vector<Value>& args) {
  std::string result;
  for (const Value& arg : args) {
    if (arg.is_null()) continue;
    result += arg.ToString();
  }
  return Value::String(std::move(result));
}

}  // namespace

ScalarFunctionRegistry::ScalarFunctionRegistry() {
  auto add = [this](const char* name, size_t min_args, size_t max_args,
                    DataType result_type, ScalarFn fn) {
    functions_.push_back(
        {name, min_args, max_args, result_type, std::move(fn)});
  };
  add("abs", 1, 1, DataType::kNull, AbsFn);
  add("sqrt", 1, 1, DataType::kDouble, NumericUnary(std::sqrt));
  add("floor", 1, 1, DataType::kDouble, NumericUnary(std::floor));
  add("ceil", 1, 1, DataType::kDouble, NumericUnary(std::ceil));
  add("exp", 1, 1, DataType::kDouble, NumericUnary(std::exp));
  add("ln", 1, 1, DataType::kDouble, NumericUnary(std::log));
  add("round", 1, 2, DataType::kDouble, RoundFn);
  add("pow", 2, 2, DataType::kDouble, PowFn);
  add("least", 1, SIZE_MAX, DataType::kNull, [](const auto& args) {
    return LeastGreatestFn(args, /*least=*/true);
  });
  add("greatest", 1, SIZE_MAX, DataType::kNull, [](const auto& args) {
    return LeastGreatestFn(args, /*least=*/false);
  });
  add("coalesce", 1, SIZE_MAX, DataType::kNull, CoalesceFn);
  add("iif", 3, 3, DataType::kNull, IifFn);
  add("length", 1, 1, DataType::kInt64, LengthFn);
  add("lower", 1, 1, DataType::kString,
      [](const auto& args) { return CaseChangeFn(args, /*lower=*/true); });
  add("upper", 1, 1, DataType::kString,
      [](const auto& args) { return CaseChangeFn(args, /*lower=*/false); });
  add("concat", 1, SIZE_MAX, DataType::kString, ConcatFn);
}

ScalarFunctionRegistry& ScalarFunctionRegistry::Global() {
  static ScalarFunctionRegistry* registry = new ScalarFunctionRegistry();
  return *registry;
}

Status ScalarFunctionRegistry::Register(ScalarFunction function) {
  if (Contains(function.name)) {
    return Status::AlreadyExists("scalar function '" + function.name +
                                 "' already registered");
  }
  if (stream::AggregateRegistry::Global().Contains(function.name)) {
    return Status::AlreadyExists("'" + function.name +
                                 "' is already an aggregate function");
  }
  functions_.push_back(std::move(function));
  return Status::OK();
}

StatusOr<const ScalarFunction*> ScalarFunctionRegistry::Find(
    const std::string& name) const {
  for (const ScalarFunction& function : functions_) {
    if (esp::StrEqualsIgnoreCase(function.name, name)) return &function;
  }
  return Status::NotFound("unknown function '" + name + "'");
}

bool ScalarFunctionRegistry::Contains(const std::string& name) const {
  return Find(name).ok();
}

}  // namespace esp::cql
