#ifndef ESP_CQL_ANALYZER_H_
#define ESP_CQL_ANALYZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cql/ast.h"
#include "stream/schema.h"

namespace esp::cql {

/// \brief Maps stream names to their schemas for analysis; the runtime
/// Catalog (evaluator.h) provides the matching data at execution time.
class SchemaCatalog {
 public:
  /// Registers a stream schema; replaces any previous entry with that name.
  void AddStream(const std::string& name, stream::SchemaRef schema);

  StatusOr<stream::SchemaRef> Find(const std::string& name) const;
  bool Contains(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, stream::SchemaRef>> streams_;
};

/// \brief One visible FROM-clause entry during analysis; chains via `outer`
/// for correlated subqueries.
struct AnalysisScope {
  struct Frame {
    std::string alias;
    stream::SchemaRef schema;
  };
  std::vector<Frame> frames;
  const AnalysisScope* outer = nullptr;
};

/// \brief Infers the output schema of a query: column names (alias, else
/// source column name, else function name, else "expr_<i>") and best-effort
/// types. Validates stream names, column references, function names, and
/// basic shape rules (e.g. `SELECT *` with GROUP BY is rejected; scalar
/// subqueries must produce exactly one column).
StatusOr<stream::SchemaRef> InferOutputSchema(
    const SelectQuery& query, const SchemaCatalog& catalog,
    const AnalysisScope* outer = nullptr);

/// \brief Infers the type of an expression against a scope. Returns kNull
/// for dynamically-typed expressions (e.g. coalesce of mixed inputs).
StatusOr<stream::DataType> InferExprType(const Expr& expr,
                                         const SchemaCatalog& catalog,
                                         const AnalysisScope& scope);

/// \brief True if the expression contains an aggregate function call at this
/// query's level (does not descend into subqueries, whose aggregates belong
/// to them).
bool ContainsAggregate(const Expr& expr);

/// \brief The output column name the analyzer/evaluator assign to a select
/// item (shared so both agree).
std::string OutputFieldName(const SelectItem& item, size_t index);

}  // namespace esp::cql

#endif  // ESP_CQL_ANALYZER_H_
