#include "cql/evaluator.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "cql/columnar_exec.h"
#include "cql/expr_eval.h"
#include "cql/scalar_function.h"
#include "stream/aggregate.h"
#include "stream/arena.h"
#include "stream/ops.h"

namespace esp::cql {

using stream::DataType;
using stream::Relation;
using stream::SchemaRef;
using stream::Tuple;
using stream::Value;
using stream::WindowKind;
using stream::WindowSpec;

using internal::BoundExpr;
using internal::EvalContext;
using internal::FromContext;
using internal::Row;

void Catalog::AddStream(const std::string& name, Relation history) {
  for (Entry& entry : streams_) {
    if (esp::StrEqualsIgnoreCase(entry.name, name)) {
      entry.owned = std::move(history);
      entry.view = nullptr;
      return;
    }
  }
  Entry entry;
  entry.name = name;
  entry.owned = std::move(history);
  streams_.push_back(std::move(entry));
}

void Catalog::AddStreamView(const std::string& name,
                            const Relation* history) {
  AddStreamView(name, history, nullptr);
}

void Catalog::AddStreamView(const std::string& name, const Relation* history,
                            const stream::ColumnarWindow* columns) {
  for (Entry& entry : streams_) {
    if (esp::StrEqualsIgnoreCase(entry.name, name)) {
      entry.owned = Relation();
      entry.view = history;
      entry.columns = columns;
      return;
    }
  }
  Entry entry;
  entry.name = name;
  entry.view = history;
  entry.columns = columns;
  streams_.push_back(std::move(entry));
}

const stream::ColumnarWindow* Catalog::FindColumns(
    const std::string& name) const {
  for (const Entry& entry : streams_) {
    if (esp::StrEqualsIgnoreCase(entry.name, name)) return entry.columns;
  }
  return nullptr;
}

StatusOr<const Relation*> Catalog::Find(const std::string& name) const {
  for (const Entry& entry : streams_) {
    if (esp::StrEqualsIgnoreCase(entry.name, name)) return entry.get();
  }
  return Status::NotFound("unknown stream '" + name + "'");
}

SchemaCatalog Catalog::ToSchemaCatalog() const {
  SchemaCatalog catalog;
  for (const Entry& entry : streams_) {
    catalog.AddStream(entry.name, entry.get()->schema());
  }
  return catalog;
}

Relation ApplyWindow(const Relation& history, const WindowSpec& spec,
                     Timestamp now) {
  Relation result(history.schema());
  switch (spec.kind) {
    case WindowKind::kRange: {
      const Timestamp effective = spec.EffectiveTime(now);
      const Timestamp low = effective - spec.range;  // Exclusive.
      for (const Tuple& tuple : history.tuples()) {
        if (tuple.timestamp() > low && tuple.timestamp() <= effective) {
          result.Add(tuple);
        }
      }
      break;
    }
    case WindowKind::kNow:
      for (const Tuple& tuple : history.tuples()) {
        if (tuple.timestamp() == now) result.Add(tuple);
      }
      break;
    case WindowKind::kRows: {
      std::vector<const Tuple*> eligible;
      for (const Tuple& tuple : history.tuples()) {
        if (tuple.timestamp() <= now) eligible.push_back(&tuple);
      }
      const size_t n = static_cast<size_t>(spec.rows);
      const size_t start = eligible.size() > n ? eligible.size() - n : 0;
      for (size_t i = start; i < eligible.size(); ++i) {
        result.Add(*eligible[i]);
      }
      break;
    }
    case WindowKind::kUnbounded:
      for (const Tuple& tuple : history.tuples()) {
        if (tuple.timestamp() <= now) result.Add(tuple);
      }
      break;
  }
  return result;
}

namespace {

StatusOr<Relation> ExecuteInternal(const SelectQuery& query,
                                   const Catalog& catalog, Timestamp now,
                                   const EvalContext* outer,
                                   QueryExecCache* cache);

std::atomic<bool> g_expr_compilation{true};

/// Cap on the persistent group-by index kept in a plan's scratch.
constexpr size_t kMaxPersistentGroups = 4096;

/// Resolves a column against the context chain, returning its value in the
/// current row. Mirrors analyzer resolution exactly.
StatusOr<Value> ResolveColumn(const ColumnRefExpr& ref, const EvalContext& ec) {
  for (const EvalContext* scope = &ec; scope != nullptr;
       scope = scope->outer) {
    if (scope->from == nullptr || scope->row == nullptr) continue;
    if (!ref.qualifier.empty()) {
      for (const FromContext::Frame& frame : scope->from->frames) {
        if (esp::StrEqualsIgnoreCase(frame.alias, ref.qualifier)) {
          auto index = frame.schema->IndexOf(ref.name);
          if (!index.has_value()) {
            return Status::NotFound("no column '" + ref.name + "' in '" +
                                    ref.qualifier + "'");
          }
          return (*scope->row)[frame.offset + *index];
        }
      }
      continue;  // Qualifier may name an outer frame.
    }
    const FromContext::Frame* found_frame = nullptr;
    size_t found_index = 0;
    for (const FromContext::Frame& frame : scope->from->frames) {
      auto index = frame.schema->IndexOf(ref.name);
      if (index.has_value()) {
        if (found_frame != nullptr) {
          return Status::InvalidArgument("ambiguous column '" + ref.name +
                                         "'");
        }
        found_frame = &frame;
        found_index = *index;
      }
    }
    if (found_frame != nullptr) {
      return (*scope->row)[found_frame->offset + found_index];
    }
  }
  return Status::NotFound("unknown column '" + ref.ToString() + "'");
}

/// Three-valued comparison: NULL operand -> NULL result.
StatusOr<Value> EvalComparison(BinaryOp op, const Value& lhs,
                               const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (op == BinaryOp::kEquals) return Value::Bool(lhs.Equals(rhs));
  if (op == BinaryOp::kNotEquals) return Value::Bool(!lhs.Equals(rhs));
  ESP_ASSIGN_OR_RETURN(const int cmp, lhs.Compare(rhs));
  switch (op) {
    case BinaryOp::kLess:
      return Value::Bool(cmp < 0);
    case BinaryOp::kLessEquals:
      return Value::Bool(cmp <= 0);
    case BinaryOp::kGreater:
      return Value::Bool(cmp > 0);
    case BinaryOp::kGreaterEquals:
      return Value::Bool(cmp >= 0);
    default:
      return Status::Internal("not a comparison op");
  }
}

/// Three-valued AND/OR.
StatusOr<Value> EvalLogical(BinaryOp op, const Expr& lhs_expr,
                            const Expr& rhs_expr, const EvalContext& ec) {
  ESP_ASSIGN_OR_RETURN(const Value lhs, internal::EvalExpr(lhs_expr, ec));
  // Short-circuit where the result is already decided.
  if (!lhs.is_null() && lhs.type() == DataType::kBool) {
    if (op == BinaryOp::kAnd && !lhs.bool_value()) return Value::Bool(false);
    if (op == BinaryOp::kOr && lhs.bool_value()) return Value::Bool(true);
  } else if (!lhs.is_null()) {
    return Status::TypeError("AND/OR operand must be boolean");
  }
  ESP_ASSIGN_OR_RETURN(const Value rhs, internal::EvalExpr(rhs_expr, ec));
  if (!rhs.is_null() && rhs.type() != DataType::kBool) {
    return Status::TypeError("AND/OR operand must be boolean");
  }
  if (op == BinaryOp::kAnd) {
    if (!rhs.is_null() && !rhs.bool_value()) return Value::Bool(false);
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value::Bool(true);
  }
  // OR.
  if (!rhs.is_null() && rhs.bool_value()) return Value::Bool(true);
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  return Value::Bool(false);
}

/// Hands out an aggregator for `call`: from the execution's reuse pool when
/// one is available (resettable aggregators are recycled across groups), a
/// fresh single-use instance otherwise. The pooled pointer stays valid for
/// the current group only.
StatusOr<stream::Aggregator*> AcquireAggregator(const FunctionCallExpr& call,
                                                const EvalContext& ec) {
  if (ec.agg_scratch == nullptr) {
    // No pool (should not happen in grouped evaluation, but stay safe):
    // fall back to a leak-free one-shot below via the pool-less branch.
    return Status::Internal("aggregator pool missing");
  }
  std::unique_ptr<stream::Aggregator>& slot = (*ec.agg_scratch)[&call];
  if (slot == nullptr || !slot->Reset()) {
    ESP_ASSIGN_OR_RETURN(
        slot, stream::AggregateRegistry::Global().Create(call.name,
                                                         call.distinct));
  }
  return slot.get();
}

/// Runs an aggregate call over the current group.
StatusOr<Value> EvalAggregate(const FunctionCallExpr& call,
                              const EvalContext& ec) {
  if (ec.group_rows == nullptr) {
    return Status::InvalidArgument("aggregate " + call.name +
                                   "() used outside grouped evaluation");
  }
  ESP_ASSIGN_OR_RETURN(stream::Aggregator* const aggregator,
                       AcquireAggregator(call, ec));
  const bool star = call.IsStarArg();
  if (!star && call.args.size() != 1) {
    return Status::InvalidArgument("aggregate " + call.name +
                                   "() takes exactly one argument");
  }
  for (const Row* row : *ec.group_rows) {
    Value input = Value::Int64(1);  // count(*) marker.
    if (!star) {
      EvalContext row_ec = ec;
      row_ec.row = row;
      row_ec.group_rows = nullptr;  // Argument is a per-row expression.
      ESP_ASSIGN_OR_RETURN(input, internal::EvalExpr(*call.args[0], row_ec));
    }
    ESP_RETURN_IF_ERROR(aggregator->Update(input));
  }
  return aggregator->Final();
}

/// Evaluates a subquery and returns the values of its single output column.
/// The returned vector's backing store comes from the thread's arena;
/// callers Release() it when done.
StatusOr<std::vector<Value>> EvalSubqueryColumn(const SelectQuery& subquery,
                                                const EvalContext& ec,
                                                const char* what) {
  ESP_ASSIGN_OR_RETURN(
      Relation result,
      ExecuteInternal(subquery, *ec.catalog, ec.now, &ec, ec.cache));
  if (result.schema()->num_fields() != 1) {
    return Status::InvalidArgument(std::string(what) +
                                   " subquery must produce exactly one column");
  }
  std::vector<Value> values = stream::TupleArena::Local().Acquire(result.size());
  for (Tuple& tuple : result.mutable_tuples()) {
    values.push_back(std::move(tuple.mutable_values()[0]));
  }
  // The result tuples' backing stores go back to the arena; per-tick
  // subqueries (paper Query 3's ALL) stop churning the allocator.
  stream::TupleArena::Local().Recycle(std::move(result));
  return values;
}

/// Folds an all-constant operator node into kConst by evaluating it once.
/// Evaluation failures (1/0, type errors) keep the node intact so the error
/// still surfaces — or doesn't — exactly where the interpretive path would
/// raise it (e.g. behind a short-circuiting AND or an untaken CASE arm).
BoundExpr FoldIfConst(BoundExpr node) {
  switch (node.kind) {
    case BoundExpr::Kind::kConst:
    case BoundExpr::Kind::kSlot:
    case BoundExpr::Kind::kFallback:
    case BoundExpr::Kind::kScalarFn:
    case BoundExpr::Kind::kAggregate:
    case BoundExpr::Kind::kAggSlot:
      return node;
    default:
      break;
  }
  for (const BoundExpr& child : node.children) {
    if (child.kind != BoundExpr::Kind::kConst) return node;
  }
  const EvalContext empty;
  StatusOr<Value> value = internal::EvalBound(node, empty);
  if (!value.ok()) return node;
  BoundExpr folded;
  folded.kind = BoundExpr::Kind::kConst;
  folded.constant = std::move(*value);
  return folded;
}

/// Three-valued AND/OR over compiled operands (mirrors EvalLogical).
StatusOr<Value> EvalBoundLogical(const BoundExpr& bound,
                                 const EvalContext& ec) {
  ESP_ASSIGN_OR_RETURN(const Value lhs,
                       internal::EvalBound(bound.children[0], ec));
  if (!lhs.is_null() && lhs.type() == DataType::kBool) {
    if (bound.bin_op == BinaryOp::kAnd && !lhs.bool_value()) {
      return Value::Bool(false);
    }
    if (bound.bin_op == BinaryOp::kOr && lhs.bool_value()) {
      return Value::Bool(true);
    }
  } else if (!lhs.is_null()) {
    return Status::TypeError("AND/OR operand must be boolean");
  }
  ESP_ASSIGN_OR_RETURN(const Value rhs,
                       internal::EvalBound(bound.children[1], ec));
  if (!rhs.is_null() && rhs.type() != DataType::kBool) {
    return Status::TypeError("AND/OR operand must be boolean");
  }
  if (bound.bin_op == BinaryOp::kAnd) {
    if (!rhs.is_null() && !rhs.bool_value()) return Value::Bool(false);
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value::Bool(true);
  }
  if (!rhs.is_null() && rhs.bool_value()) return Value::Bool(true);
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  return Value::Bool(false);
}

/// Aggregate over the current group with a compiled argument (mirrors
/// EvalAggregate, including its error order).
StatusOr<Value> EvalBoundAggregate(const BoundExpr& bound,
                                   const EvalContext& ec) {
  const FunctionCallExpr& call = *bound.agg_call;
  if (ec.group_rows == nullptr) {
    return Status::InvalidArgument("aggregate " + call.name +
                                   "() used outside grouped evaluation");
  }
  ESP_ASSIGN_OR_RETURN(stream::Aggregator* const aggregator,
                       AcquireAggregator(call, ec));
  const bool star = call.IsStarArg();
  if (!star && call.args.size() != 1) {
    return Status::InvalidArgument("aggregate " + call.name +
                                   "() takes exactly one argument");
  }
  for (const Row* row : *ec.group_rows) {
    Value input = Value::Int64(1);  // count(*) marker.
    if (!star) {
      EvalContext row_ec = ec;
      row_ec.row = row;
      row_ec.group_rows = nullptr;  // Argument is a per-row expression.
      ESP_ASSIGN_OR_RETURN(input,
                           internal::EvalBound(bound.children[0], row_ec));
    }
    ESP_RETURN_IF_ERROR(aggregator->Update(input));
  }
  return aggregator->Final();
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared evaluation machinery (declared in expr_eval.h; also used by the
// incremental grouped-aggregate engine).
// ---------------------------------------------------------------------------

namespace internal {

StatusOr<bool> ToDecision(const Value& value, const char* where) {
  if (value.is_null()) return false;
  if (value.type() != DataType::kBool) {
    return Status::TypeError(std::string(where) +
                             " must be boolean, got " +
                             stream::DataTypeToString(value.type()));
  }
  return value.bool_value();
}

StatusOr<Value> EvalExpr(const Expr& expr, const EvalContext& ec) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value;
    case ExprKind::kColumnRef:
      return ResolveColumn(static_cast<const ColumnRefExpr&>(expr), ec);
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is not a scalar expression");
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(const Value operand, EvalExpr(*unary.operand, ec));
      if (unary.op == UnaryOp::kNegate) return stream::Negate(operand);
      // NOT with three-valued logic.
      if (operand.is_null()) return Value::Null();
      if (operand.type() != DataType::kBool) {
        return Status::TypeError("NOT requires a boolean");
      }
      return Value::Bool(!operand.bool_value());
    }
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      switch (binary.op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return EvalLogical(binary.op, *binary.lhs, *binary.rhs, ec);
        case BinaryOp::kAdd:
        case BinaryOp::kSubtract:
        case BinaryOp::kMultiply:
        case BinaryOp::kDivide:
        case BinaryOp::kModulo: {
          ESP_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*binary.lhs, ec));
          ESP_ASSIGN_OR_RETURN(const Value rhs, EvalExpr(*binary.rhs, ec));
          switch (binary.op) {
            case BinaryOp::kAdd:
              return stream::Add(lhs, rhs);
            case BinaryOp::kSubtract:
              return stream::Subtract(lhs, rhs);
            case BinaryOp::kMultiply:
              return stream::Multiply(lhs, rhs);
            case BinaryOp::kDivide:
              return stream::Divide(lhs, rhs);
            default:
              return stream::Modulo(lhs, rhs);
          }
        }
        default: {
          ESP_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*binary.lhs, ec));
          ESP_ASSIGN_OR_RETURN(const Value rhs, EvalExpr(*binary.rhs, ec));
          return EvalComparison(binary.op, lhs, rhs);
        }
      }
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (stream::AggregateRegistry::Global().Contains(call.name)) {
        return EvalAggregate(call, ec);
      }
      ESP_ASSIGN_OR_RETURN(const ScalarFunction* function,
                           ScalarFunctionRegistry::Global().Find(call.name));
      if (call.args.size() < function->min_args ||
          call.args.size() > function->max_args) {
        return Status::InvalidArgument("wrong argument count for " +
                                       call.name + "()");
      }
      std::vector<Value> args;
      args.reserve(call.args.size());
      for (const ExprPtr& arg : call.args) {
        ESP_ASSIGN_OR_RETURN(Value value, EvalExpr(*arg, ec));
        args.push_back(std::move(value));
      }
      return function->fn(args);
    }
    case ExprKind::kScalarSubquery: {
      const auto& subquery = static_cast<const ScalarSubqueryExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(std::vector<Value> values,
                           EvalSubqueryColumn(*subquery.query, ec, "scalar"));
      if (values.empty()) return Value::Null();
      if (values.size() > 1) {
        return Status::InvalidArgument(
            "scalar subquery produced more than one row");
      }
      Value result = std::move(values[0]);
      stream::TupleArena::Local().Release(std::move(values));
      return result;
    }
    case ExprKind::kQuantifiedComparison: {
      const auto& quantified =
          static_cast<const QuantifiedComparisonExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*quantified.lhs, ec));
      ESP_ASSIGN_OR_RETURN(
          std::vector<Value> values,
          EvalSubqueryColumn(*quantified.subquery, ec, "ALL/ANY"));
      // ALL over empty set is true; ANY over empty set is false.
      bool saw_null = false;
      std::optional<bool> verdict;
      for (const Value& rhs : values) {
        ESP_ASSIGN_OR_RETURN(const Value cmp,
                             EvalComparison(quantified.op, lhs, rhs));
        if (cmp.is_null()) {
          saw_null = true;
          continue;
        }
        if (quantified.quantifier == Quantifier::kAll && !cmp.bool_value()) {
          verdict = false;
          break;
        }
        if (quantified.quantifier == Quantifier::kAny && cmp.bool_value()) {
          verdict = true;
          break;
        }
      }
      stream::TupleArena::Local().Release(std::move(values));
      if (verdict.has_value()) return Value::Bool(*verdict);
      if (saw_null) return Value::Null();
      return Value::Bool(quantified.quantifier == Quantifier::kAll);
    }
    case ExprKind::kIn: {
      const auto& in = static_cast<const InExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*in.lhs, ec));
      if (lhs.is_null()) return Value::Null();
      std::vector<Value> values;
      if (in.subquery != nullptr) {
        ESP_ASSIGN_OR_RETURN(values, EvalSubqueryColumn(*in.subquery, ec, "IN"));
      } else {
        for (const ExprPtr& item : in.list) {
          ESP_ASSIGN_OR_RETURN(Value value, EvalExpr(*item, ec));
          values.push_back(std::move(value));
        }
      }
      bool saw_null = false;
      bool found = false;
      for (const Value& candidate : values) {
        if (candidate.is_null()) {
          saw_null = true;
          continue;
        }
        if (lhs.Equals(candidate)) {
          found = true;
          break;
        }
      }
      stream::TupleArena::Local().Release(std::move(values));
      if (found) return Value::Bool(!in.negated);
      if (saw_null) return Value::Null();
      return Value::Bool(in.negated);
    }
    case ExprKind::kExists: {
      const auto& exists = static_cast<const ExistsExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(
          Relation result,
          ExecuteInternal(*exists.subquery, *ec.catalog, ec.now, &ec,
                          ec.cache));
      const bool has_rows = !result.empty();
      stream::TupleArena::Local().Recycle(std::move(result));
      return Value::Bool(exists.negated ? !has_rows : has_rows);
    }
    case ExprKind::kIsNull: {
      const auto& is_null = static_cast<const IsNullExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(const Value operand, EvalExpr(*is_null.operand, ec));
      return Value::Bool(is_null.negated ? !operand.is_null()
                                         : operand.is_null());
    }
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(const Value value, EvalExpr(*between.value, ec));
      ESP_ASSIGN_OR_RETURN(const Value low, EvalExpr(*between.low, ec));
      ESP_ASSIGN_OR_RETURN(const Value high, EvalExpr(*between.high, ec));
      ESP_ASSIGN_OR_RETURN(const Value ge_low,
                           EvalComparison(BinaryOp::kGreaterEquals, value, low));
      ESP_ASSIGN_OR_RETURN(const Value le_high,
                           EvalComparison(BinaryOp::kLessEquals, value, high));
      if (ge_low.is_null() || le_high.is_null()) return Value::Null();
      const bool inside = ge_low.bool_value() && le_high.bool_value();
      return Value::Bool(between.negated ? !inside : inside);
    }
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::WhenClause& when : case_expr.whens) {
        ESP_ASSIGN_OR_RETURN(const Value condition,
                             EvalExpr(*when.condition, ec));
        ESP_ASSIGN_OR_RETURN(const bool matched,
                             ToDecision(condition, "CASE WHEN condition"));
        if (matched) return EvalExpr(*when.result, ec);
      }
      if (case_expr.else_result != nullptr) {
        return EvalExpr(*case_expr.else_result, ec);
      }
      return Value::Null();
    }
  }
  return Status::Internal("unhandled expression kind");
}

BoundExpr MakeFallback(const Expr& expr) {
  BoundExpr bound;
  bound.kind = BoundExpr::Kind::kFallback;
  bound.fallback = &expr;
  return bound;
}

BoundExpr CompileExpr(const Expr& expr, const FromContext& from) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      BoundExpr bound;
      bound.kind = BoundExpr::Kind::kConst;
      bound.constant = static_cast<const LiteralExpr&>(expr).value;
      return bound;
    }
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      if (!ref.qualifier.empty()) {
        for (const FromContext::Frame& frame : from.frames) {
          if (esp::StrEqualsIgnoreCase(frame.alias, ref.qualifier)) {
            auto index = frame.schema->IndexOf(ref.name);
            // Missing column in a matched frame is an error ResolveColumn
            // raises per tuple; the fallback reproduces it.
            if (!index.has_value()) return MakeFallback(expr);
            BoundExpr bound;
            bound.kind = BoundExpr::Kind::kSlot;
            bound.slot = frame.offset + *index;
            return bound;
          }
        }
        return MakeFallback(expr);  // Qualifier may name an outer frame.
      }
      const FromContext::Frame* found_frame = nullptr;
      size_t found_index = 0;
      for (const FromContext::Frame& frame : from.frames) {
        auto index = frame.schema->IndexOf(ref.name);
        if (index.has_value()) {
          if (found_frame != nullptr) return MakeFallback(expr);  // Ambiguous.
          found_frame = &frame;
          found_index = *index;
        }
      }
      if (found_frame == nullptr) return MakeFallback(expr);  // Outer/unknown.
      BoundExpr bound;
      bound.kind = BoundExpr::Kind::kSlot;
      bound.slot = found_frame->offset + found_index;
      return bound;
    }
    case ExprKind::kStar:
      return MakeFallback(expr);  // Not a scalar; EvalExpr raises the error.
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      BoundExpr bound;
      bound.kind = unary.op == UnaryOp::kNegate ? BoundExpr::Kind::kNegate
                                                : BoundExpr::Kind::kNot;
      bound.children.push_back(CompileExpr(*unary.operand, from));
      return FoldIfConst(std::move(bound));
    }
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      BoundExpr bound;
      switch (binary.op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          bound.kind = BoundExpr::Kind::kLogical;
          break;
        case BinaryOp::kAdd:
        case BinaryOp::kSubtract:
        case BinaryOp::kMultiply:
        case BinaryOp::kDivide:
        case BinaryOp::kModulo:
          bound.kind = BoundExpr::Kind::kArith;
          break;
        default:
          bound.kind = BoundExpr::Kind::kCompare;
          break;
      }
      bound.bin_op = binary.op;
      bound.children.push_back(CompileExpr(*binary.lhs, from));
      bound.children.push_back(CompileExpr(*binary.rhs, from));
      return FoldIfConst(std::move(bound));
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (stream::AggregateRegistry::Global().Contains(call.name)) {
        BoundExpr bound;
        bound.kind = BoundExpr::Kind::kAggregate;
        bound.agg_call = &call;
        if (!call.IsStarArg() && call.args.size() == 1) {
          bound.children.push_back(CompileExpr(*call.args[0], from));
        }
        return bound;
      }
      StatusOr<const ScalarFunction*> function =
          ScalarFunctionRegistry::Global().Find(call.name);
      // Unknown names and arity mismatches stay interpretive so the error
      // is raised only if (and when) the call is actually evaluated.
      if (!function.ok()) return MakeFallback(expr);
      if (call.args.size() < (*function)->min_args ||
          call.args.size() > (*function)->max_args) {
        return MakeFallback(expr);
      }
      BoundExpr bound;
      bound.kind = BoundExpr::Kind::kScalarFn;
      bound.fn = *function;
      bound.children.reserve(call.args.size());
      for (const ExprPtr& arg : call.args) {
        bound.children.push_back(CompileExpr(*arg, from));
      }
      return bound;
    }
    case ExprKind::kScalarSubquery:
    case ExprKind::kQuantifiedComparison:
    case ExprKind::kExists:
      return MakeFallback(expr);  // Subqueries re-enter ExecuteInternal.
    case ExprKind::kIn: {
      const auto& in = static_cast<const InExpr&>(expr);
      if (in.subquery != nullptr) return MakeFallback(expr);
      BoundExpr bound;
      bound.kind = BoundExpr::Kind::kInList;
      bound.negated = in.negated;
      bound.children.reserve(in.list.size() + 1);
      bound.children.push_back(CompileExpr(*in.lhs, from));
      for (const ExprPtr& item : in.list) {
        bound.children.push_back(CompileExpr(*item, from));
      }
      return FoldIfConst(std::move(bound));
    }
    case ExprKind::kIsNull: {
      const auto& is_null = static_cast<const IsNullExpr&>(expr);
      BoundExpr bound;
      bound.kind = BoundExpr::Kind::kIsNull;
      bound.negated = is_null.negated;
      bound.children.push_back(CompileExpr(*is_null.operand, from));
      return FoldIfConst(std::move(bound));
    }
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      BoundExpr bound;
      bound.kind = BoundExpr::Kind::kBetween;
      bound.negated = between.negated;
      bound.children.push_back(CompileExpr(*between.value, from));
      bound.children.push_back(CompileExpr(*between.low, from));
      bound.children.push_back(CompileExpr(*between.high, from));
      return FoldIfConst(std::move(bound));
    }
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      BoundExpr bound;
      bound.kind = BoundExpr::Kind::kCase;
      bound.children.reserve(case_expr.whens.size() * 2 + 1);
      for (const CaseExpr::WhenClause& when : case_expr.whens) {
        bound.children.push_back(CompileExpr(*when.condition, from));
        bound.children.push_back(CompileExpr(*when.result, from));
      }
      if (case_expr.else_result != nullptr) {
        bound.has_else = true;
        bound.children.push_back(CompileExpr(*case_expr.else_result, from));
      }
      return FoldIfConst(std::move(bound));
    }
  }
  return MakeFallback(expr);
}

StatusOr<Value> EvalBound(const BoundExpr& bound, const EvalContext& ec) {
  switch (bound.kind) {
    case BoundExpr::Kind::kConst:
      return bound.constant;
    case BoundExpr::Kind::kSlot:
      return (*ec.row)[bound.slot];
    case BoundExpr::Kind::kAggSlot:
      return (*ec.agg_values)[bound.slot];
    case BoundExpr::Kind::kFallback:
      return EvalExpr(*bound.fallback, ec);
    case BoundExpr::Kind::kNegate: {
      ESP_ASSIGN_OR_RETURN(const Value operand,
                           EvalBound(bound.children[0], ec));
      return stream::Negate(operand);
    }
    case BoundExpr::Kind::kNot: {
      ESP_ASSIGN_OR_RETURN(const Value operand,
                           EvalBound(bound.children[0], ec));
      if (operand.is_null()) return Value::Null();
      if (operand.type() != DataType::kBool) {
        return Status::TypeError("NOT requires a boolean");
      }
      return Value::Bool(!operand.bool_value());
    }
    case BoundExpr::Kind::kArith: {
      ESP_ASSIGN_OR_RETURN(const Value lhs, EvalBound(bound.children[0], ec));
      ESP_ASSIGN_OR_RETURN(const Value rhs, EvalBound(bound.children[1], ec));
      switch (bound.bin_op) {
        case BinaryOp::kAdd:
          return stream::Add(lhs, rhs);
        case BinaryOp::kSubtract:
          return stream::Subtract(lhs, rhs);
        case BinaryOp::kMultiply:
          return stream::Multiply(lhs, rhs);
        case BinaryOp::kDivide:
          return stream::Divide(lhs, rhs);
        default:
          return stream::Modulo(lhs, rhs);
      }
    }
    case BoundExpr::Kind::kCompare: {
      ESP_ASSIGN_OR_RETURN(const Value lhs, EvalBound(bound.children[0], ec));
      ESP_ASSIGN_OR_RETURN(const Value rhs, EvalBound(bound.children[1], ec));
      return EvalComparison(bound.bin_op, lhs, rhs);
    }
    case BoundExpr::Kind::kLogical:
      return EvalBoundLogical(bound, ec);
    case BoundExpr::Kind::kScalarFn: {
      std::vector<Value> args;
      args.reserve(bound.children.size());
      for (const BoundExpr& child : bound.children) {
        ESP_ASSIGN_OR_RETURN(Value value, EvalBound(child, ec));
        args.push_back(std::move(value));
      }
      return bound.fn->fn(args);
    }
    case BoundExpr::Kind::kAggregate:
      return EvalBoundAggregate(bound, ec);
    case BoundExpr::Kind::kIsNull: {
      ESP_ASSIGN_OR_RETURN(const Value operand,
                           EvalBound(bound.children[0], ec));
      return Value::Bool(bound.negated ? !operand.is_null()
                                       : operand.is_null());
    }
    case BoundExpr::Kind::kBetween: {
      ESP_ASSIGN_OR_RETURN(const Value value, EvalBound(bound.children[0], ec));
      ESP_ASSIGN_OR_RETURN(const Value low, EvalBound(bound.children[1], ec));
      ESP_ASSIGN_OR_RETURN(const Value high, EvalBound(bound.children[2], ec));
      ESP_ASSIGN_OR_RETURN(
          const Value ge_low,
          EvalComparison(BinaryOp::kGreaterEquals, value, low));
      ESP_ASSIGN_OR_RETURN(const Value le_high,
                           EvalComparison(BinaryOp::kLessEquals, value, high));
      if (ge_low.is_null() || le_high.is_null()) return Value::Null();
      const bool inside = ge_low.bool_value() && le_high.bool_value();
      return Value::Bool(bound.negated ? !inside : inside);
    }
    case BoundExpr::Kind::kCase: {
      const size_t when_pairs =
          (bound.children.size() - (bound.has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < when_pairs; ++i) {
        ESP_ASSIGN_OR_RETURN(const Value condition,
                             EvalBound(bound.children[2 * i], ec));
        ESP_ASSIGN_OR_RETURN(const bool matched,
                             ToDecision(condition, "CASE WHEN condition"));
        if (matched) return EvalBound(bound.children[2 * i + 1], ec);
      }
      if (bound.has_else) return EvalBound(bound.children.back(), ec);
      return Value::Null();
    }
    case BoundExpr::Kind::kInList: {
      ESP_ASSIGN_OR_RETURN(const Value lhs, EvalBound(bound.children[0], ec));
      if (lhs.is_null()) return Value::Null();
      std::vector<Value> values;
      values.reserve(bound.children.size() - 1);
      for (size_t i = 1; i < bound.children.size(); ++i) {
        ESP_ASSIGN_OR_RETURN(Value value, EvalBound(bound.children[i], ec));
        values.push_back(std::move(value));
      }
      bool saw_null = false;
      for (const Value& candidate : values) {
        if (candidate.is_null()) {
          saw_null = true;
          continue;
        }
        if (lhs.Equals(candidate)) return Value::Bool(!bound.negated);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(bound.negated);
    }
  }
  return Status::Internal("unhandled bound expression kind");
}

void CollectSlotReads(const BoundExpr& bound, std::vector<size_t>& slots,
                      bool& opaque) {
  if (bound.kind == BoundExpr::Kind::kSlot) slots.push_back(bound.slot);
  if (bound.kind == BoundExpr::Kind::kFallback) opaque = true;
  for (const BoundExpr& child : bound.children) {
    CollectSlotReads(child, slots, opaque);
  }
}

bool QueryUsesAggregation(const SelectQuery& query) {
  if (!query.group_by.empty()) return true;
  if (query.having != nullptr) return true;  // HAVING implies one group.
  for (const SelectItem& item : query.items) {
    if (item.expr->kind() != ExprKind::kStar && ContainsAggregate(*item.expr)) {
      return true;
    }
  }
  return false;
}

StatusOr<Relation> FinalizeOutput(const SelectQuery& query, Relation output) {
  if (query.distinct) {
    ESP_ASSIGN_OR_RETURN(output, stream::Distinct(output));
  }
  if (!query.order_by.empty()) {
    // ORDER BY keys must name output columns (by name or 1-based position).
    std::vector<std::pair<size_t, bool>> keys;  // (column index, descending)
    for (const OrderByItem& item : query.order_by) {
      size_t index = 0;
      if (item.expr->kind() == ExprKind::kColumnRef) {
        const auto& ref = static_cast<const ColumnRefExpr&>(*item.expr);
        ESP_ASSIGN_OR_RETURN(index, output.schema()->ResolveIndex(ref.name));
      } else if (item.expr->kind() == ExprKind::kLiteral &&
                 static_cast<const LiteralExpr&>(*item.expr).value.type() ==
                     DataType::kInt64) {
        const int64_t position =
            static_cast<const LiteralExpr&>(*item.expr).value.int64_value();
        if (position < 1 ||
            position > static_cast<int64_t>(output.schema()->num_fields())) {
          return Status::OutOfRange("ORDER BY position out of range");
        }
        index = static_cast<size_t>(position - 1);
      } else {
        return Status::Unimplemented(
            "ORDER BY supports output column names and positions only");
      }
      keys.emplace_back(index, item.descending);
    }
    Status failure;
    std::stable_sort(
        output.mutable_tuples().begin(), output.mutable_tuples().end(),
        [&](const Tuple& a, const Tuple& b) {
          for (const auto& [index, descending] : keys) {
            const Value& lhs = a.value(index);
            const Value& rhs = b.value(index);
            if (lhs.is_null() && rhs.is_null()) continue;
            if (lhs.is_null()) return !descending;  // Nulls first (ASC).
            if (rhs.is_null()) return descending;
            auto cmp = lhs.Compare(rhs);
            if (!cmp.ok()) {
              if (failure.ok()) failure = cmp.status();
              return false;
            }
            if (*cmp != 0) return descending ? *cmp > 0 : *cmp < 0;
          }
          return false;
        });
    if (!failure.ok()) return failure;
  }
  if (query.limit.has_value() &&
      output.size() > static_cast<size_t>(*query.limit)) {
    output.mutable_tuples().resize(static_cast<size_t>(*query.limit));
  }
  return output;
}

bool LayoutMatches(const PreparedQuery& prep, const FromContext& from) {
  if (prep.from.total_columns != from.total_columns) return false;
  if (prep.from.frames.size() != from.frames.size()) return false;
  for (size_t i = 0; i < from.frames.size(); ++i) {
    const FromContext::Frame& a = prep.from.frames[i];
    const FromContext::Frame& b = from.frames[i];
    if (a.offset != b.offset || a.schema.get() != b.schema.get() ||
        a.alias != b.alias) {
      return false;
    }
  }
  return true;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Query execution
// ---------------------------------------------------------------------------

namespace {

/// Half-open index range [lo, hi) of `history`'s tuples inside the window at
/// `now`. Requires non-decreasing timestamp order.
std::pair<size_t, size_t> WindowBounds(const Relation& history,
                                       const WindowSpec& spec, Timestamp now) {
  const std::vector<Tuple>& tuples = history.tuples();
  const auto first_after = [&](Timestamp t) -> size_t {
    return static_cast<size_t>(
        std::upper_bound(tuples.begin(), tuples.end(), t,
                         [](Timestamp lhs, const Tuple& rhs) {
                           return lhs < rhs.timestamp();
                         }) -
        tuples.begin());
  };
  switch (spec.kind) {
    case WindowKind::kRange: {
      const Timestamp effective = spec.EffectiveTime(now);
      const Timestamp low = effective - spec.range;  // Exclusive.
      return {first_after(low), first_after(effective)};
    }
    case WindowKind::kNow: {
      const size_t lo = static_cast<size_t>(
          std::lower_bound(tuples.begin(), tuples.end(), now,
                           [](const Tuple& lhs, Timestamp rhs) {
                             return lhs.timestamp() < rhs;
                           }) -
          tuples.begin());
      return {lo, first_after(now)};
    }
    case WindowKind::kRows: {
      const size_t hi = first_after(now);
      const size_t n = static_cast<size_t>(spec.rows);
      return {hi > n ? hi - n : 0, hi};
    }
    case WindowKind::kUnbounded:
      return {0, first_after(now)};
  }
  return {0, 0};
}

bool TimeOrdered(const Relation& history) {
  const std::vector<Tuple>& tuples = history.tuples();
  for (size_t i = 1; i < tuples.size(); ++i) {
    if (tuples[i].timestamp() < tuples[i - 1].timestamp()) return false;
  }
  return true;
}

StatusOr<Relation> ExecuteInternal(const SelectQuery& query,
                                   const Catalog& catalog, Timestamp now,
                                   const EvalContext* outer,
                                   QueryExecCache* cache) {
  stream::TupleArena& arena = stream::TupleArena::Local();
  const bool compile_exprs =
      g_expr_compilation.load(std::memory_order_relaxed);

  internal::PreparedQuery* prep =
      (cache != nullptr && compile_exprs) ? cache->Find(&query) : nullptr;

  // Execution-time containers live in the plan's scratch so their buffers
  // (row vectors, group slots, aggregator instances) persist across ticks.
  // `found` remembers the cache hit: if the layout changed and the plan is
  // recompiled below, the warmed scratch migrates into the new cache entry.
  internal::PreparedQuery local;
  internal::PreparedQuery* const found = prep;
  internal::PreparedQuery::ExecScratch& scratch =
      (prep != nullptr ? *prep : local).EnsureScratch();

  // The schema catalog is needed only on the uncached path and for
  // schema-less histories, so derive it lazily.
  std::optional<SchemaCatalog> schema_catalog;
  const auto schemas = [&]() -> const SchemaCatalog& {
    if (!schema_catalog.has_value()) {
      schema_catalog = catalog.ToSchemaCatalog();
    }
    return *schema_catalog;
  };

  // Infer the output schema up front (also validates the query shape) —
  // unless a prepared plan already carries the result of this analysis.
  // The analysis scope chain mirrors the outer EvalContext chain.
  SchemaRef output_schema;
  std::vector<AnalysisScope> outer_scopes;
  const auto infer_schema = [&]() -> Status {
    outer_scopes.clear();
    for (const EvalContext* scope = outer; scope != nullptr;
         scope = scope->outer) {
      if (scope->from == nullptr) continue;
      AnalysisScope analysis_scope;
      for (const FromContext::Frame& frame : scope->from->frames) {
        analysis_scope.frames.push_back({frame.alias, frame.schema});
      }
      outer_scopes.push_back(std::move(analysis_scope));
    }
    for (size_t i = 0; i + 1 < outer_scopes.size(); ++i) {
      outer_scopes[i].outer = &outer_scopes[i + 1];
    }
    ESP_ASSIGN_OR_RETURN(
        output_schema,
        InferOutputSchema(query, schemas(),
                          outer_scopes.empty() ? nullptr : &outer_scopes[0]));
    return Status::OK();
  };
  if (prep == nullptr) ESP_RETURN_IF_ERROR(infer_schema());

  // Materialize FROM inputs. Stream references over time-ordered histories
  // become binary-searched index ranges directly over the catalog's relation
  // — no per-tick window copy. Derived tables (and disordered ad-hoc
  // histories) still materialize and own their rows.
  FromContext& from = scratch.from;
  from.frames.clear();
  from.total_columns = 0;
  std::vector<internal::FromInput>& inputs = scratch.inputs;
  for (internal::FromInput& input : inputs) {
    arena.Recycle(std::move(input.owned));
  }
  inputs.clear();
  inputs.reserve(query.from.size());
  bool cacheable_from = true;
  for (const TableRef& ref : query.from) {
    inputs.emplace_back();
    internal::FromInput& input = inputs.back();
    FromContext::Frame frame;
    if (ref.kind == TableRef::Kind::kStream) {
      ESP_ASSIGN_OR_RETURN(const Relation* history,
                           catalog.Find(ref.stream_name));
      if (TimeOrdered(*history)) {
        input.rel = history;
        std::tie(input.lo, input.hi) = WindowBounds(*history, ref.window, now);
        input.columns = catalog.FindColumns(ref.stream_name);
      } else {
        input.owned = ApplyWindow(*history, ref.window, now);
        input.rel = &input.owned;
        input.hi = input.owned.size();
        input.movable = true;
      }
      frame.alias = ref.alias.empty() ? ref.stream_name : ref.alias;
      frame.schema = input.rel->schema();
      if (frame.schema == nullptr) {
        ESP_ASSIGN_OR_RETURN(frame.schema, schemas().Find(ref.stream_name));
      }
    } else {
      // Derived tables see the enclosing query's outer scope, not their
      // siblings (no LATERAL).
      ESP_ASSIGN_OR_RETURN(
          input.owned,
          ExecuteInternal(*ref.subquery, catalog, now, outer, cache));
      input.rel = &input.owned;
      input.hi = input.owned.size();
      input.movable = true;
      cacheable_from = false;  // Fresh schema per execution; never cache-hits.
      frame.alias = ref.alias;
      frame.schema = input.owned.schema();
    }
    frame.offset = from.total_columns;
    from.total_columns += frame.schema->num_fields();
    from.frames.push_back(std::move(frame));
  }

  // A hit is only usable if the catalog still presents the layout the plan
  // was compiled against (stable for standing queries).
  if (prep != nullptr && !internal::LayoutMatches(*prep, from)) {
    prep = nullptr;
  }
  if (prep == nullptr) {
    if (output_schema == nullptr) ESP_RETURN_IF_ERROR(infer_schema());
    local.output_schema = output_schema;
    const auto compile = [&](const Expr& expr) {
      return compile_exprs ? internal::CompileExpr(expr, from)
                           : internal::MakeFallback(expr);
    };
    if (query.where != nullptr) local.where = compile(*query.where);
    local.items.reserve(query.items.size());
    for (const SelectItem& item : query.items) {
      local.items.push_back(compile(*item.expr));
    }
    if (internal::QueryUsesAggregation(query)) {
      local.group_keys.reserve(query.group_by.size());
      for (const ExprPtr& expr : query.group_by) {
        local.group_keys.push_back(compile(*expr));
      }
      if (query.having != nullptr) local.having = compile(*query.having);
    } else {
      // Plan which items may move their value straight out of the row: a
      // top-level slot read whose slot no other part of the projection (no
      // fallback anywhere, no star, no second read) can observe.
      local.move_item.assign(query.items.size(), 0);
      const bool any_star = std::any_of(
          query.items.begin(), query.items.end(), [](const SelectItem& item) {
            return item.expr->kind() == ExprKind::kStar;
          });
      if (!any_star) {
        bool opaque = false;
        std::vector<size_t> slot_reads;
        for (const BoundExpr& bound : local.items) {
          internal::CollectSlotReads(bound, slot_reads, opaque);
        }
        if (!opaque) {
          std::unordered_map<size_t, size_t> reads_per_slot;
          for (size_t slot : slot_reads) ++reads_per_slot[slot];
          for (size_t i = 0; i < local.items.size(); ++i) {
            if (local.items[i].kind == BoundExpr::Kind::kSlot &&
                reads_per_slot[local.items[i].slot] == 1) {
              local.move_item[i] = 1;
            }
          }
        }
      }
    }
    if (cache != nullptr && compile_exprs && cacheable_from) {
      local.from = from;
      // Keep the warmed scratch: `scratch` references the ExecScratch object
      // behind the unique_ptr, which survives both moves below, so every
      // reference taken above (from, inputs, ...) stays valid.
      if (found != nullptr) local.scratch = std::move(found->scratch);
      prep = cache->Insert(&query, std::move(local));
    }
  }
  const internal::PreparedQuery& plan = prep != nullptr ? *prep : local;
  output_schema = plan.output_schema;

  EvalContext base;
  base.catalog = &catalog;
  base.now = now;
  base.from = &from;
  base.cache = cache;
  base.outer = outer;

  // Columnar fast path: a single stream input sliced in place, with a
  // row-synced columnar mirror and a cached plan. Aggregation shapes the
  // admission rules accept run entirely over the columns (no row
  // materialization); plain projections get a batch-evaluated WHERE premask
  // so rejected rows are never materialized. Any runtime ineligibility
  // (demoted columns, evaluation errors) falls through to the row path,
  // which reproduces genuine errors identically.
  const std::vector<stream::simd::Trit>* premask = nullptr;
  if (prep != nullptr && inputs.size() == 1 && !inputs[0].movable &&
      inputs[0].columns != nullptr && stream::ColumnarEnabled()) {
    const internal::FromInput& input = inputs[0];
    const stream::ColumnarWindow& cols = *input.columns;
    if (cols.size() == input.rel->size() &&
        cols.schema() == input.rel->schema()) {
      internal::EnsureColumnarPlan(*prep, query);
      internal::ColumnarPlan* cplan = prep->columnar.get();
      if (cplan != nullptr) {
        if (cplan->aggregated) {
          std::optional<Relation> columnar_result =
              internal::ExecuteColumnarAggregate(*prep, cols, input.lo,
                                                 input.hi, base);
          if (columnar_result.has_value()) {
            return internal::FinalizeOutput(query,
                                            std::move(*columnar_result));
          }
        } else if (cplan->where_mode ==
                   internal::ColumnarPlan::WhereMode::kBatch) {
          premask = internal::TryBatchWhere(*cplan, cols, input.lo, input.hi);
        }
      }
    }
  }

  // Enumerate joined rows (cartesian product; FROM-less yields one empty
  // row). Row backing stores come from the thread's arena.
  std::vector<Row>& rows = scratch.rows;
  rows.clear();
  if (inputs.size() == 1) {
    internal::FromInput& input = inputs[0];
    rows.reserve(input.hi - input.lo);
    for (size_t r = input.lo; r < input.hi; ++r) {
      // Premasked rows failed WHERE (NULL decides as false) — never
      // materialized.
      if (premask != nullptr &&
          (*premask)[r - input.lo] != stream::simd::kTrue) {
        continue;
      }
      if (input.movable) {
        // The windowed relation is owned by this evaluation, so move each
        // tuple's values into its row instead of copying field by field.
        Tuple& tuple = input.owned.mutable_tuples()[r];
        if (tuple.num_fields() == from.total_columns) {
          rows.push_back(std::move(tuple.mutable_values()));
          continue;
        }
      }
      const Tuple& tuple = input.rel->tuple(r);
      Row row = arena.Acquire(from.total_columns);
      if (tuple.num_fields() == from.total_columns) {
        row.assign(tuple.values().begin(), tuple.values().end());
      } else {
        row.assign(from.total_columns, Value::Null());
        const size_t n = std::min(tuple.num_fields(), from.total_columns);
        for (size_t c = 0; c < n; ++c) row[c] = tuple.value(c);
      }
      rows.push_back(std::move(row));
    }
  } else {
    Row current(from.total_columns, Value::Null());
    // Iterative odometer over input ranges.
    std::vector<size_t> cursor(inputs.size(), 0);
    bool exhausted = false;
    for (const internal::FromInput& input : inputs) {
      if (input.hi == input.lo) exhausted = true;
    }
    if (inputs.empty()) {
      rows.push_back(current);  // FROM-less: a single all-null (empty) row.
    } else if (!exhausted) {
      size_t product = 1;
      for (const internal::FromInput& input : inputs) product *= input.hi - input.lo;
      rows.reserve(product);
      while (true) {
        for (size_t i = 0; i < inputs.size(); ++i) {
          const Tuple& tuple = inputs[i].rel->tuple(inputs[i].lo + cursor[i]);
          const size_t offset = from.frames[i].offset;
          for (size_t c = 0; c < tuple.num_fields(); ++c) {
            current[offset + c] = tuple.value(c);
          }
        }
        Row copy = arena.Acquire(from.total_columns);
        copy.assign(current.begin(), current.end());
        rows.push_back(std::move(copy));
        // Advance odometer.
        size_t position = inputs.size();
        while (position > 0) {
          --position;
          if (++cursor[position] <
              inputs[position].hi - inputs[position].lo) {
            break;
          }
          cursor[position] = 0;
          if (position == 0) {
            position = SIZE_MAX;
            break;
          }
        }
        if (position == SIZE_MAX) break;
      }
    }
  }

  // WHERE. Without one — or with a batch premask already applied during row
  // enumeration — the filtered set IS the row set (aliased, so both scratch
  // buffers keep their capacity for the next execution).
  const bool row_where = plan.where.has_value() && premask == nullptr;
  std::vector<Row>& filtered = row_where ? scratch.filtered : rows;
  if (row_where) {
    filtered.clear();
    filtered.reserve(rows.size());
    for (Row& row : rows) {
      EvalContext ec = base;
      ec.row = &row;
      ESP_ASSIGN_OR_RETURN(const Value verdict,
                           internal::EvalBound(*plan.where, ec));
      ESP_ASSIGN_OR_RETURN(const bool keep,
                           internal::ToDecision(verdict, "WHERE"));
      if (keep) {
        filtered.push_back(std::move(row));
      } else {
        arena.Release(std::move(row));
      }
    }
  }

  Relation output(output_schema);
  output.mutable_tuples() = arena.AcquireTuples();

  if (!internal::QueryUsesAggregation(query)) {
    const bool has_star = std::any_of(
        query.items.begin(), query.items.end(), [](const SelectItem& item) {
          return item.expr->kind() == ExprKind::kStar;
        });
    // `SELECT *` alone: the row IS the output tuple's value vector.
    if (has_star && query.items.size() == 1) {
      output.mutable_tuples().reserve(filtered.size());
      for (Row& row : filtered) {
        output.Add(Tuple(output_schema, std::move(row), now));
      }
      return internal::FinalizeOutput(query, std::move(output));
    }
    // Plain projection.
    output.mutable_tuples().reserve(filtered.size());
    for (Row& row : filtered) {
      EvalContext ec = base;
      ec.row = &row;
      std::vector<Value> values = arena.Acquire(output_schema->num_fields());
      for (size_t i = 0; i < query.items.size(); ++i) {
        const SelectItem& item = query.items[i];
        if (item.expr->kind() == ExprKind::kStar) {
          for (const Value& value : row) values.push_back(value);
          continue;
        }
        if (!plan.move_item.empty() && plan.move_item[i]) {
          values.push_back(std::move(row[plan.items[i].slot]));
          continue;
        }
        ESP_ASSIGN_OR_RETURN(Value value,
                             internal::EvalBound(plan.items[i], ec));
        values.push_back(std::move(value));
      }
      output.Add(Tuple(output_schema, std::move(values), now));
      arena.Release(std::move(row));
    }
    return internal::FinalizeOutput(query, std::move(output));
  }

  // Grouped evaluation. Group slots and the key->slot index persist in the
  // plan's scratch across executions: recurring keys (the small sensor
  // vocabularies that dominate standing queries) keep their slot, so the
  // steady state allocates nothing. Slots are generation-stamped; `touched`
  // lists this execution's slots in first-seen order — the emit order, which
  // matches the fresh-map behaviour exactly.
  std::vector<internal::PreparedQuery::GroupSlot>& groups = scratch.groups;
  auto& index = scratch.group_index;
  std::vector<size_t>& touched = scratch.touched;
  touched.clear();
  if (index.size() > kMaxPersistentGroups) {
    // Unbounded key domains (e.g. grouping on a measurement) must not grow
    // the index forever; dropping it only costs re-insertion.
    index.clear();
    groups.clear();
  }
  const uint64_t gen = ++scratch.gen;
  if (query.group_by.empty()) {
    // A single group over all rows — exists even when empty (SQL scalar
    // aggregate semantics: `SELECT count(*) FROM empty` returns one row).
    if (groups.empty()) groups.emplace_back();
    groups[0].rows.clear();
    groups[0].gen = gen;
    for (const Row& row : filtered) groups[0].rows.push_back(&row);
    touched.push_back(0);
  } else {
    Row& key = scratch.key_scratch;
    for (const Row& row : filtered) {
      EvalContext ec = base;
      ec.row = &row;
      key.clear();
      for (const BoundExpr& bound : plan.group_keys) {
        ESP_ASSIGN_OR_RETURN(Value value, internal::EvalBound(bound, ec));
        key.push_back(std::move(value));
      }
      size_t slot = 0;
      const auto it = index.find(key);
      if (it == index.end()) {
        slot = groups.size();
        groups.emplace_back();
        index.emplace(key, slot);
      } else {
        slot = it->second;
      }
      internal::PreparedQuery::GroupSlot& group = groups[slot];
      if (group.gen != gen) {
        group.gen = gen;
        group.rows.clear();
        touched.push_back(slot);
      }
      group.rows.push_back(&row);
    }
  }

  const Row empty_row(from.total_columns, Value::Null());
  for (const size_t slot : touched) {
    const internal::PreparedQuery::GroupSlot& group = groups[slot];
    EvalContext ec = base;
    ec.group_rows = &group.rows;
    ec.agg_scratch = &scratch.agg_scratch;
    // The representative row backs non-aggregated column references (which,
    // per SQL, should be functionally dependent on the group key).
    ec.row = group.rows.empty() ? &empty_row : group.rows.front();

    if (plan.having.has_value()) {
      ESP_ASSIGN_OR_RETURN(const Value verdict,
                           internal::EvalBound(*plan.having, ec));
      ESP_ASSIGN_OR_RETURN(const bool keep,
                           internal::ToDecision(verdict, "HAVING"));
      if (!keep) continue;
    }
    std::vector<Value> values = arena.Acquire(output_schema->num_fields());
    for (const BoundExpr& bound : plan.items) {
      ESP_ASSIGN_OR_RETURN(Value value, internal::EvalBound(bound, ec));
      values.push_back(std::move(value));
    }
    output.Add(Tuple(output_schema, std::move(values), now));
  }
  for (Row& row : filtered) arena.Release(std::move(row));
  return internal::FinalizeOutput(query, std::move(output));
}

}  // namespace

StatusOr<Relation> ExecuteQuery(const SelectQuery& query,
                                const Catalog& catalog, Timestamp now) {
  return ExecuteInternal(query, catalog, now, nullptr, nullptr);
}

StatusOr<Relation> ExecuteQuery(const SelectQuery& query,
                                const Catalog& catalog, Timestamp now,
                                QueryExecCache* cache) {
  return ExecuteInternal(query, catalog, now, nullptr, cache);
}

void SetExprCompilationForBenchmarks(bool enabled) {
  g_expr_compilation.store(enabled, std::memory_order_relaxed);
}

}  // namespace esp::cql
