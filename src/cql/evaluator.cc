#include "cql/evaluator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "cql/scalar_function.h"
#include "stream/aggregate.h"
#include "stream/ops.h"

namespace esp::cql {

using stream::DataType;
using stream::Relation;
using stream::SchemaRef;
using stream::Tuple;
using stream::Value;
using stream::WindowKind;
using stream::WindowSpec;

void Catalog::AddStream(const std::string& name, Relation history) {
  for (auto& [existing, relation] : streams_) {
    if (esp::StrEqualsIgnoreCase(existing, name)) {
      relation = std::move(history);
      return;
    }
  }
  streams_.emplace_back(name, std::move(history));
}

StatusOr<const Relation*> Catalog::Find(const std::string& name) const {
  for (const auto& [existing, relation] : streams_) {
    if (esp::StrEqualsIgnoreCase(existing, name)) return &relation;
  }
  return Status::NotFound("unknown stream '" + name + "'");
}

SchemaCatalog Catalog::ToSchemaCatalog() const {
  SchemaCatalog catalog;
  for (const auto& [name, relation] : streams_) {
    catalog.AddStream(name, relation.schema());
  }
  return catalog;
}

Relation ApplyWindow(const Relation& history, const WindowSpec& spec,
                     Timestamp now) {
  Relation result(history.schema());
  switch (spec.kind) {
    case WindowKind::kRange: {
      const Timestamp effective = spec.EffectiveTime(now);
      const Timestamp low = effective - spec.range;  // Exclusive.
      for (const Tuple& tuple : history.tuples()) {
        if (tuple.timestamp() > low && tuple.timestamp() <= effective) {
          result.Add(tuple);
        }
      }
      break;
    }
    case WindowKind::kNow:
      for (const Tuple& tuple : history.tuples()) {
        if (tuple.timestamp() == now) result.Add(tuple);
      }
      break;
    case WindowKind::kRows: {
      std::vector<const Tuple*> eligible;
      for (const Tuple& tuple : history.tuples()) {
        if (tuple.timestamp() <= now) eligible.push_back(&tuple);
      }
      const size_t n = static_cast<size_t>(spec.rows);
      const size_t start = eligible.size() > n ? eligible.size() - n : 0;
      for (size_t i = start; i < eligible.size(); ++i) {
        result.Add(*eligible[i]);
      }
      break;
    }
    case WindowKind::kUnbounded:
      for (const Tuple& tuple : history.tuples()) {
        if (tuple.timestamp() <= now) result.Add(tuple);
      }
      break;
  }
  return result;
}

namespace {

// ---------------------------------------------------------------------------
// Evaluation machinery
// ---------------------------------------------------------------------------

/// The FROM clause of one query evaluation: per-frame alias/schema plus each
/// frame's column offset into the flattened joined row.
struct FromContext {
  struct Frame {
    std::string alias;
    SchemaRef schema;
    size_t offset = 0;
  };
  std::vector<Frame> frames;
  size_t total_columns = 0;
};

using Row = std::vector<Value>;

/// Everything an expression needs to evaluate: the current row (or the
/// representative row of the current group), the group's rows when in
/// grouped evaluation, and the enclosing query's context for correlated
/// references.
struct EvalContext {
  const Catalog* catalog = nullptr;
  Timestamp now;
  const FromContext* from = nullptr;
  const Row* row = nullptr;
  const std::vector<const Row*>* group_rows = nullptr;  // Grouped mode only.
  const EvalContext* outer = nullptr;
};

StatusOr<Value> EvalExpr(const Expr& expr, const EvalContext& ec);
StatusOr<Relation> ExecuteInternal(const SelectQuery& query,
                                   const Catalog& catalog, Timestamp now,
                                   const EvalContext* outer);

/// Resolves a column against the context chain, returning its value in the
/// current row. Mirrors analyzer resolution exactly.
StatusOr<Value> ResolveColumn(const ColumnRefExpr& ref, const EvalContext& ec) {
  for (const EvalContext* scope = &ec; scope != nullptr;
       scope = scope->outer) {
    if (scope->from == nullptr || scope->row == nullptr) continue;
    if (!ref.qualifier.empty()) {
      for (const FromContext::Frame& frame : scope->from->frames) {
        if (esp::StrEqualsIgnoreCase(frame.alias, ref.qualifier)) {
          auto index = frame.schema->IndexOf(ref.name);
          if (!index.has_value()) {
            return Status::NotFound("no column '" + ref.name + "' in '" +
                                    ref.qualifier + "'");
          }
          return (*scope->row)[frame.offset + *index];
        }
      }
      continue;  // Qualifier may name an outer frame.
    }
    const FromContext::Frame* found_frame = nullptr;
    size_t found_index = 0;
    for (const FromContext::Frame& frame : scope->from->frames) {
      auto index = frame.schema->IndexOf(ref.name);
      if (index.has_value()) {
        if (found_frame != nullptr) {
          return Status::InvalidArgument("ambiguous column '" + ref.name +
                                         "'");
        }
        found_frame = &frame;
        found_index = *index;
      }
    }
    if (found_frame != nullptr) {
      return (*scope->row)[found_frame->offset + found_index];
    }
  }
  return Status::NotFound("unknown column '" + ref.ToString() + "'");
}

/// SQL truthiness for predicate positions: NULL decides as false.
StatusOr<bool> ToDecision(const Value& value, const char* where) {
  if (value.is_null()) return false;
  if (value.type() != DataType::kBool) {
    return Status::TypeError(std::string(where) +
                             " must be boolean, got " +
                             stream::DataTypeToString(value.type()));
  }
  return value.bool_value();
}

/// Three-valued comparison: NULL operand -> NULL result.
StatusOr<Value> EvalComparison(BinaryOp op, const Value& lhs,
                               const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (op == BinaryOp::kEquals) return Value::Bool(lhs.Equals(rhs));
  if (op == BinaryOp::kNotEquals) return Value::Bool(!lhs.Equals(rhs));
  ESP_ASSIGN_OR_RETURN(const int cmp, lhs.Compare(rhs));
  switch (op) {
    case BinaryOp::kLess:
      return Value::Bool(cmp < 0);
    case BinaryOp::kLessEquals:
      return Value::Bool(cmp <= 0);
    case BinaryOp::kGreater:
      return Value::Bool(cmp > 0);
    case BinaryOp::kGreaterEquals:
      return Value::Bool(cmp >= 0);
    default:
      return Status::Internal("not a comparison op");
  }
}

/// Three-valued AND/OR.
StatusOr<Value> EvalLogical(BinaryOp op, const Expr& lhs_expr,
                            const Expr& rhs_expr, const EvalContext& ec) {
  ESP_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(lhs_expr, ec));
  // Short-circuit where the result is already decided.
  if (!lhs.is_null() && lhs.type() == DataType::kBool) {
    if (op == BinaryOp::kAnd && !lhs.bool_value()) return Value::Bool(false);
    if (op == BinaryOp::kOr && lhs.bool_value()) return Value::Bool(true);
  } else if (!lhs.is_null()) {
    return Status::TypeError("AND/OR operand must be boolean");
  }
  ESP_ASSIGN_OR_RETURN(const Value rhs, EvalExpr(rhs_expr, ec));
  if (!rhs.is_null() && rhs.type() != DataType::kBool) {
    return Status::TypeError("AND/OR operand must be boolean");
  }
  if (op == BinaryOp::kAnd) {
    if (!rhs.is_null() && !rhs.bool_value()) return Value::Bool(false);
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value::Bool(true);
  }
  // OR.
  if (!rhs.is_null() && rhs.bool_value()) return Value::Bool(true);
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  return Value::Bool(false);
}

/// Runs an aggregate call over the current group.
StatusOr<Value> EvalAggregate(const FunctionCallExpr& call,
                              const EvalContext& ec) {
  if (ec.group_rows == nullptr) {
    return Status::InvalidArgument("aggregate " + call.name +
                                   "() used outside grouped evaluation");
  }
  ESP_ASSIGN_OR_RETURN(
      std::unique_ptr<stream::Aggregator> aggregator,
      stream::AggregateRegistry::Global().Create(call.name, call.distinct));
  const bool star = call.IsStarArg();
  if (!star && call.args.size() != 1) {
    return Status::InvalidArgument("aggregate " + call.name +
                                   "() takes exactly one argument");
  }
  for (const Row* row : *ec.group_rows) {
    Value input = Value::Int64(1);  // count(*) marker.
    if (!star) {
      EvalContext row_ec = ec;
      row_ec.row = row;
      row_ec.group_rows = nullptr;  // Argument is a per-row expression.
      ESP_ASSIGN_OR_RETURN(input, EvalExpr(*call.args[0], row_ec));
    }
    ESP_RETURN_IF_ERROR(aggregator->Update(input));
  }
  return aggregator->Final();
}

/// Evaluates a subquery and returns the values of its single output column.
StatusOr<std::vector<Value>> EvalSubqueryColumn(const SelectQuery& subquery,
                                                const EvalContext& ec,
                                                const char* what) {
  ESP_ASSIGN_OR_RETURN(Relation result,
                       ExecuteInternal(subquery, *ec.catalog, ec.now, &ec));
  if (result.schema()->num_fields() != 1) {
    return Status::InvalidArgument(std::string(what) +
                                   " subquery must produce exactly one column");
  }
  std::vector<Value> values;
  values.reserve(result.size());
  for (const Tuple& tuple : result.tuples()) {
    values.push_back(tuple.value(0));
  }
  return values;
}

StatusOr<Value> EvalExpr(const Expr& expr, const EvalContext& ec) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value;
    case ExprKind::kColumnRef:
      return ResolveColumn(static_cast<const ColumnRefExpr&>(expr), ec);
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is not a scalar expression");
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(const Value operand, EvalExpr(*unary.operand, ec));
      if (unary.op == UnaryOp::kNegate) return stream::Negate(operand);
      // NOT with three-valued logic.
      if (operand.is_null()) return Value::Null();
      if (operand.type() != DataType::kBool) {
        return Status::TypeError("NOT requires a boolean");
      }
      return Value::Bool(!operand.bool_value());
    }
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      switch (binary.op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return EvalLogical(binary.op, *binary.lhs, *binary.rhs, ec);
        case BinaryOp::kAdd:
        case BinaryOp::kSubtract:
        case BinaryOp::kMultiply:
        case BinaryOp::kDivide:
        case BinaryOp::kModulo: {
          ESP_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*binary.lhs, ec));
          ESP_ASSIGN_OR_RETURN(const Value rhs, EvalExpr(*binary.rhs, ec));
          switch (binary.op) {
            case BinaryOp::kAdd:
              return stream::Add(lhs, rhs);
            case BinaryOp::kSubtract:
              return stream::Subtract(lhs, rhs);
            case BinaryOp::kMultiply:
              return stream::Multiply(lhs, rhs);
            case BinaryOp::kDivide:
              return stream::Divide(lhs, rhs);
            default:
              return stream::Modulo(lhs, rhs);
          }
        }
        default: {
          ESP_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*binary.lhs, ec));
          ESP_ASSIGN_OR_RETURN(const Value rhs, EvalExpr(*binary.rhs, ec));
          return EvalComparison(binary.op, lhs, rhs);
        }
      }
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (stream::AggregateRegistry::Global().Contains(call.name)) {
        return EvalAggregate(call, ec);
      }
      ESP_ASSIGN_OR_RETURN(const ScalarFunction* function,
                           ScalarFunctionRegistry::Global().Find(call.name));
      if (call.args.size() < function->min_args ||
          call.args.size() > function->max_args) {
        return Status::InvalidArgument("wrong argument count for " +
                                       call.name + "()");
      }
      std::vector<Value> args;
      args.reserve(call.args.size());
      for (const ExprPtr& arg : call.args) {
        ESP_ASSIGN_OR_RETURN(Value value, EvalExpr(*arg, ec));
        args.push_back(std::move(value));
      }
      return function->fn(args);
    }
    case ExprKind::kScalarSubquery: {
      const auto& subquery = static_cast<const ScalarSubqueryExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(std::vector<Value> values,
                           EvalSubqueryColumn(*subquery.query, ec, "scalar"));
      if (values.empty()) return Value::Null();
      if (values.size() > 1) {
        return Status::InvalidArgument(
            "scalar subquery produced more than one row");
      }
      return values[0];
    }
    case ExprKind::kQuantifiedComparison: {
      const auto& quantified =
          static_cast<const QuantifiedComparisonExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*quantified.lhs, ec));
      ESP_ASSIGN_OR_RETURN(
          std::vector<Value> values,
          EvalSubqueryColumn(*quantified.subquery, ec, "ALL/ANY"));
      // ALL over empty set is true; ANY over empty set is false.
      bool saw_null = false;
      for (const Value& rhs : values) {
        ESP_ASSIGN_OR_RETURN(const Value cmp,
                             EvalComparison(quantified.op, lhs, rhs));
        if (cmp.is_null()) {
          saw_null = true;
          continue;
        }
        if (quantified.quantifier == Quantifier::kAll && !cmp.bool_value()) {
          return Value::Bool(false);
        }
        if (quantified.quantifier == Quantifier::kAny && cmp.bool_value()) {
          return Value::Bool(true);
        }
      }
      if (saw_null) return Value::Null();
      return Value::Bool(quantified.quantifier == Quantifier::kAll);
    }
    case ExprKind::kIn: {
      const auto& in = static_cast<const InExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*in.lhs, ec));
      if (lhs.is_null()) return Value::Null();
      std::vector<Value> values;
      if (in.subquery != nullptr) {
        ESP_ASSIGN_OR_RETURN(values, EvalSubqueryColumn(*in.subquery, ec, "IN"));
      } else {
        for (const ExprPtr& item : in.list) {
          ESP_ASSIGN_OR_RETURN(Value value, EvalExpr(*item, ec));
          values.push_back(std::move(value));
        }
      }
      bool saw_null = false;
      for (const Value& candidate : values) {
        if (candidate.is_null()) {
          saw_null = true;
          continue;
        }
        if (lhs.Equals(candidate)) {
          return Value::Bool(!in.negated);
        }
      }
      if (saw_null) return Value::Null();
      return Value::Bool(in.negated);
    }
    case ExprKind::kExists: {
      const auto& exists = static_cast<const ExistsExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(
          Relation result,
          ExecuteInternal(*exists.subquery, *ec.catalog, ec.now, &ec));
      const bool has_rows = !result.empty();
      return Value::Bool(exists.negated ? !has_rows : has_rows);
    }
    case ExprKind::kIsNull: {
      const auto& is_null = static_cast<const IsNullExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(const Value operand, EvalExpr(*is_null.operand, ec));
      return Value::Bool(is_null.negated ? !operand.is_null()
                                         : operand.is_null());
    }
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      ESP_ASSIGN_OR_RETURN(const Value value, EvalExpr(*between.value, ec));
      ESP_ASSIGN_OR_RETURN(const Value low, EvalExpr(*between.low, ec));
      ESP_ASSIGN_OR_RETURN(const Value high, EvalExpr(*between.high, ec));
      ESP_ASSIGN_OR_RETURN(const Value ge_low,
                           EvalComparison(BinaryOp::kGreaterEquals, value, low));
      ESP_ASSIGN_OR_RETURN(const Value le_high,
                           EvalComparison(BinaryOp::kLessEquals, value, high));
      if (ge_low.is_null() || le_high.is_null()) return Value::Null();
      const bool inside = ge_low.bool_value() && le_high.bool_value();
      return Value::Bool(between.negated ? !inside : inside);
    }
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::WhenClause& when : case_expr.whens) {
        ESP_ASSIGN_OR_RETURN(const Value condition,
                             EvalExpr(*when.condition, ec));
        ESP_ASSIGN_OR_RETURN(const bool matched,
                             ToDecision(condition, "CASE WHEN condition"));
        if (matched) return EvalExpr(*when.result, ec);
      }
      if (case_expr.else_result != nullptr) {
        return EvalExpr(*case_expr.else_result, ec);
      }
      return Value::Null();
    }
  }
  return Status::Internal("unhandled expression kind");
}

// ---------------------------------------------------------------------------
// Query execution
// ---------------------------------------------------------------------------

bool QueryUsesAggregation(const SelectQuery& query) {
  if (!query.group_by.empty()) return true;
  if (query.having != nullptr) return true;  // HAVING implies one group.
  for (const SelectItem& item : query.items) {
    if (item.expr->kind() != ExprKind::kStar && ContainsAggregate(*item.expr)) {
      return true;
    }
  }
  return false;
}

/// Applies DISTINCT / ORDER BY / LIMIT to the projected output.
StatusOr<Relation> FinalizeOutput(const SelectQuery& query, Relation output) {
  if (query.distinct) {
    ESP_ASSIGN_OR_RETURN(output, stream::Distinct(output));
  }
  if (!query.order_by.empty()) {
    // ORDER BY keys must name output columns (by name or 1-based position).
    std::vector<std::pair<size_t, bool>> keys;  // (column index, descending)
    for (const OrderByItem& item : query.order_by) {
      size_t index = 0;
      if (item.expr->kind() == ExprKind::kColumnRef) {
        const auto& ref = static_cast<const ColumnRefExpr&>(*item.expr);
        ESP_ASSIGN_OR_RETURN(index, output.schema()->ResolveIndex(ref.name));
      } else if (item.expr->kind() == ExprKind::kLiteral &&
                 static_cast<const LiteralExpr&>(*item.expr).value.type() ==
                     DataType::kInt64) {
        const int64_t position =
            static_cast<const LiteralExpr&>(*item.expr).value.int64_value();
        if (position < 1 ||
            position > static_cast<int64_t>(output.schema()->num_fields())) {
          return Status::OutOfRange("ORDER BY position out of range");
        }
        index = static_cast<size_t>(position - 1);
      } else {
        return Status::Unimplemented(
            "ORDER BY supports output column names and positions only");
      }
      keys.emplace_back(index, item.descending);
    }
    Status failure;
    std::stable_sort(
        output.mutable_tuples().begin(), output.mutable_tuples().end(),
        [&](const Tuple& a, const Tuple& b) {
          for (const auto& [index, descending] : keys) {
            const Value& lhs = a.value(index);
            const Value& rhs = b.value(index);
            if (lhs.is_null() && rhs.is_null()) continue;
            if (lhs.is_null()) return !descending;  // Nulls first (ASC).
            if (rhs.is_null()) return descending;
            auto cmp = lhs.Compare(rhs);
            if (!cmp.ok()) {
              if (failure.ok()) failure = cmp.status();
              return false;
            }
            if (*cmp != 0) return descending ? *cmp > 0 : *cmp < 0;
          }
          return false;
        });
    if (!failure.ok()) return failure;
  }
  if (query.limit.has_value() &&
      output.size() > static_cast<size_t>(*query.limit)) {
    output.mutable_tuples().resize(static_cast<size_t>(*query.limit));
  }
  return output;
}

StatusOr<Relation> ExecuteInternal(const SelectQuery& query,
                                   const Catalog& catalog, Timestamp now,
                                   const EvalContext* outer) {
  // Infer the output schema up front (also validates the query shape).
  // Build the analysis scope chain mirroring the outer EvalContext chain.
  std::vector<AnalysisScope> outer_scopes;
  for (const EvalContext* scope = outer; scope != nullptr;
       scope = scope->outer) {
    if (scope->from == nullptr) continue;
    AnalysisScope analysis_scope;
    for (const FromContext::Frame& frame : scope->from->frames) {
      analysis_scope.frames.push_back({frame.alias, frame.schema});
    }
    outer_scopes.push_back(std::move(analysis_scope));
  }
  for (size_t i = 0; i + 1 < outer_scopes.size(); ++i) {
    outer_scopes[i].outer = &outer_scopes[i + 1];
  }
  const SchemaCatalog schema_catalog = catalog.ToSchemaCatalog();
  ESP_ASSIGN_OR_RETURN(
      SchemaRef output_schema,
      InferOutputSchema(query, schema_catalog,
                        outer_scopes.empty() ? nullptr : &outer_scopes[0]));

  // Materialize FROM inputs.
  FromContext from;
  std::vector<Relation> inputs;
  for (const TableRef& ref : query.from) {
    Relation input;
    FromContext::Frame frame;
    if (ref.kind == TableRef::Kind::kStream) {
      ESP_ASSIGN_OR_RETURN(const Relation* history,
                           catalog.Find(ref.stream_name));
      input = ApplyWindow(*history, ref.window, now);
      frame.alias = ref.alias.empty() ? ref.stream_name : ref.alias;
      frame.schema = input.schema();
      if (frame.schema == nullptr) {
        ESP_ASSIGN_OR_RETURN(frame.schema,
                             schema_catalog.Find(ref.stream_name));
      }
    } else {
      // Derived tables see the enclosing query's outer scope, not their
      // siblings (no LATERAL).
      ESP_ASSIGN_OR_RETURN(input,
                           ExecuteInternal(*ref.subquery, catalog, now, outer));
      frame.alias = ref.alias;
      frame.schema = input.schema();
    }
    frame.offset = from.total_columns;
    from.total_columns += frame.schema->num_fields();
    from.frames.push_back(std::move(frame));
    inputs.push_back(std::move(input));
  }

  // Enumerate joined rows (cartesian product; FROM-less yields one empty
  // row).
  std::vector<Row> rows;
  {
    Row current(from.total_columns, Value::Null());
    // Iterative odometer over input relations.
    std::vector<size_t> cursor(inputs.size(), 0);
    bool exhausted = false;
    for (const Relation& input : inputs) {
      if (input.empty()) exhausted = true;
    }
    if (inputs.empty()) {
      rows.push_back(current);  // FROM-less: a single all-null (empty) row.
    } else if (!exhausted) {
      while (true) {
        for (size_t i = 0; i < inputs.size(); ++i) {
          const Tuple& tuple = inputs[i].tuple(cursor[i]);
          const size_t offset = from.frames[i].offset;
          for (size_t c = 0; c < tuple.num_fields(); ++c) {
            current[offset + c] = tuple.value(c);
          }
        }
        rows.push_back(current);
        // Advance odometer.
        size_t position = inputs.size();
        while (position > 0) {
          --position;
          if (++cursor[position] < inputs[position].size()) break;
          cursor[position] = 0;
          if (position == 0) {
            position = SIZE_MAX;
            break;
          }
        }
        if (position == SIZE_MAX) break;
      }
    }
  }

  EvalContext base;
  base.catalog = &catalog;
  base.now = now;
  base.from = &from;
  base.outer = outer;

  // WHERE.
  std::vector<Row> filtered;
  if (query.where != nullptr) {
    for (Row& row : rows) {
      EvalContext ec = base;
      ec.row = &row;
      ESP_ASSIGN_OR_RETURN(const Value verdict, EvalExpr(*query.where, ec));
      ESP_ASSIGN_OR_RETURN(const bool keep, ToDecision(verdict, "WHERE"));
      if (keep) filtered.push_back(std::move(row));
    }
  } else {
    filtered = std::move(rows);
  }

  Relation output(output_schema);

  if (!QueryUsesAggregation(query)) {
    // Plain projection.
    for (const Row& row : filtered) {
      EvalContext ec = base;
      ec.row = &row;
      std::vector<Value> values;
      values.reserve(output_schema->num_fields());
      for (const SelectItem& item : query.items) {
        if (item.expr->kind() == ExprKind::kStar) {
          for (const Value& value : row) values.push_back(value);
          continue;
        }
        ESP_ASSIGN_OR_RETURN(Value value, EvalExpr(*item.expr, ec));
        values.push_back(std::move(value));
      }
      output.Add(Tuple(output_schema, std::move(values), now));
    }
    return FinalizeOutput(query, std::move(output));
  }

  // Grouped evaluation.
  struct Group {
    std::vector<const Row*> rows;
  };
  std::vector<Group> groups;
  if (query.group_by.empty()) {
    // A single group over all rows — exists even when empty (SQL scalar
    // aggregate semantics: `SELECT count(*) FROM empty` returns one row).
    groups.emplace_back();
    for (const Row& row : filtered) groups.back().rows.push_back(&row);
  } else {
    std::unordered_map<std::vector<Value>, size_t, stream::ValueVectorHash,
                       stream::ValueVectorEq>
        index;
    for (const Row& row : filtered) {
      EvalContext ec = base;
      ec.row = &row;
      std::vector<Value> key;
      key.reserve(query.group_by.size());
      for (const ExprPtr& expr : query.group_by) {
        ESP_ASSIGN_OR_RETURN(Value value, EvalExpr(*expr, ec));
        key.push_back(std::move(value));
      }
      auto [it, inserted] = index.emplace(std::move(key), groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].rows.push_back(&row);
    }
  }

  const Row empty_row(from.total_columns, Value::Null());
  for (const Group& group : groups) {
    EvalContext ec = base;
    ec.group_rows = &group.rows;
    // The representative row backs non-aggregated column references (which,
    // per SQL, should be functionally dependent on the group key).
    ec.row = group.rows.empty() ? &empty_row : group.rows.front();

    if (query.having != nullptr) {
      ESP_ASSIGN_OR_RETURN(const Value verdict, EvalExpr(*query.having, ec));
      ESP_ASSIGN_OR_RETURN(const bool keep, ToDecision(verdict, "HAVING"));
      if (!keep) continue;
    }
    std::vector<Value> values;
    values.reserve(output_schema->num_fields());
    for (const SelectItem& item : query.items) {
      ESP_ASSIGN_OR_RETURN(Value value, EvalExpr(*item.expr, ec));
      values.push_back(std::move(value));
    }
    output.Add(Tuple(output_schema, std::move(values), now));
  }
  return FinalizeOutput(query, std::move(output));
}

}  // namespace

StatusOr<Relation> ExecuteQuery(const SelectQuery& query,
                                const Catalog& catalog, Timestamp now) {
  return ExecuteInternal(query, catalog, now, nullptr);
}

}  // namespace esp::cql
