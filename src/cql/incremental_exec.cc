#include "cql/incremental_exec.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/string_util.h"
#include "cql/columnar_exec.h"
#include "stream/arena.h"

namespace esp::cql {

using internal::BoundExpr;
using internal::EvalContext;
using internal::FromContext;
using internal::Row;
using stream::DataType;
using stream::Relation;
using stream::SchemaRef;
using stream::Tuple;
using stream::Value;
using stream::WindowKind;

namespace {

std::atomic<bool> g_incremental_eval{true};

/// Largest magnitude for which every partial double sum in the legacy
/// order-dependent fold is exactly representable: if the running sum of
/// |input| stays <= 2^52, every legacy prefix sum has magnitude <= 2^52 and
/// the double accumulation is exact, hence order-independent and equal to
/// the engine's integer total.
constexpr int64_t kMaxExactAbs = int64_t{1} << 52;

/// Expression kinds whose evaluation is a pure function of the row: safe to
/// evaluate once at insert instead of on every tick the row stays live.
/// Scalar functions are excluded (the registry makes no purity promise), as
/// are fallbacks (subqueries, outer references) and aggregates.
bool IsPureRowExpr(const BoundExpr& bound) {
  switch (bound.kind) {
    case BoundExpr::Kind::kConst:
    case BoundExpr::Kind::kSlot:
    case BoundExpr::Kind::kNot:
    case BoundExpr::Kind::kNegate:
    case BoundExpr::Kind::kArith:
    case BoundExpr::Kind::kCompare:
    case BoundExpr::Kind::kLogical:
    case BoundExpr::Kind::kIsNull:
    case BoundExpr::Kind::kBetween:
    case BoundExpr::Kind::kCase:
    case BoundExpr::Kind::kInList:
      break;
    default:
      return false;
  }
  for (const BoundExpr& child : bound.children) {
    if (!IsPureRowExpr(child)) return false;
  }
  return true;
}

/// No fallback (subquery / outer reference / unresolved name) and no nested
/// aggregate survives in an emit-time tree; scalar functions are fine there
/// (both paths evaluate them once per group per tick).
bool IsEmitSafe(const BoundExpr& bound) {
  if (bound.kind == BoundExpr::Kind::kFallback ||
      bound.kind == BoundExpr::Kind::kAggregate) {
    return false;
  }
  for (const BoundExpr& child : bound.children) {
    if (!IsEmitSafe(child)) return false;
  }
  return true;
}

/// Emitted group keys must be bit-identical to what the legacy path reads
/// from the group's first live row. SQL equality is looser than that (1 ==
/// 1.0, 0.0 == -0.0), so a group whose members' keys are equal-but-distinct
/// would change its legacy representative as members evict.
bool IdenticalForEmit(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.type() != b.type()) return false;
  if (a.type() == DataType::kDouble) {
    const double x = a.double_value();
    const double y = b.double_value();
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  }
  return a.Equals(b);
}

}  // namespace

void SetIncrementalEvalForBenchmarks(bool enabled) {
  g_incremental_eval.store(enabled, std::memory_order_relaxed);
}

bool IncrementalEvalEnabled() {
  return g_incremental_eval.load(std::memory_order_relaxed);
}

std::unique_ptr<IncrementalGroupedQuery> IncrementalGroupedQuery::TryPlan(
    const SelectQuery& query, const std::string& stream_name,
    SchemaRef input_schema, SchemaRef output_schema) {
  if (!IncrementalEvalEnabled()) return nullptr;
  if (input_schema == nullptr || output_schema == nullptr) return nullptr;

  // Shape: one stream input, RANGE/UNBOUNDED window, non-empty GROUP BY.
  if (query.from.size() != 1) return nullptr;
  const TableRef& ref = query.from[0];
  if (ref.kind != TableRef::Kind::kStream) return nullptr;
  if (!esp::StrEqualsIgnoreCase(ref.stream_name, stream_name)) return nullptr;
  if (ref.window.kind != WindowKind::kRange &&
      ref.window.kind != WindowKind::kUnbounded) {
    return nullptr;
  }
  if (query.group_by.empty()) return nullptr;

  auto engine = std::unique_ptr<IncrementalGroupedQuery>(
      new IncrementalGroupedQuery());
  engine->query_ = &query;
  engine->output_schema_ = std::move(output_schema);
  engine->window_ = ref.window;
  FromContext::Frame frame;
  frame.alias = ref.alias.empty() ? ref.stream_name : ref.alias;
  frame.schema = input_schema;
  frame.offset = 0;
  engine->from_.total_columns = input_schema->num_fields();
  engine->from_.frames.push_back(std::move(frame));

  // WHERE runs once per row at insert time, so it must be pure. When the
  // predicate also compiles to a batch program, the columnar consume path
  // evaluates it a window-delta at a time over the typed columns.
  if (query.where != nullptr) {
    BoundExpr bound = internal::CompileExpr(*query.where, engine->from_);
    if (!IsPureRowExpr(bound)) return nullptr;
    engine->where_ = std::move(bound);
    engine->where_batch_ok_ =
        internal::CompileBatchWhere(*engine->where_, engine->where_batch_);
  }

  // Keys must be plain columns (the emit path synthesizes the group's
  // representative row from the stored key values).
  engine->key_slots_.reserve(query.group_by.size());
  for (const ExprPtr& expr : query.group_by) {
    BoundExpr bound = internal::CompileExpr(*expr, engine->from_);
    if (bound.kind != BoundExpr::Kind::kSlot) return nullptr;
    engine->key_slots_.push_back(bound.slot);
  }

  // Lower every aggregate call in the projection / HAVING to a kAggSlot read
  // of the per-group finalized value, collecting one AggSpec per call.
  const auto lower = [&engine](BoundExpr& node, const auto& self) -> bool {
    if (node.kind == BoundExpr::Kind::kAggregate) {
      const FunctionCallExpr& call = *node.agg_call;
      if (call.distinct) return false;
      AggSpec spec;
      if (esp::StrEqualsIgnoreCase(call.name, "count")) {
        spec.kind = AggSpec::Kind::kCount;
      } else if (esp::StrEqualsIgnoreCase(call.name, "sum")) {
        spec.kind = AggSpec::Kind::kSum;
      } else if (esp::StrEqualsIgnoreCase(call.name, "avg")) {
        spec.kind = AggSpec::Kind::kAvg;
      } else if (esp::StrEqualsIgnoreCase(call.name, "min")) {
        spec.kind = AggSpec::Kind::kMin;
      } else if (esp::StrEqualsIgnoreCase(call.name, "max")) {
        spec.kind = AggSpec::Kind::kMax;
      } else {
        return false;  // Holistic (median/percentile/stdev): rescan only.
      }
      if (call.IsStarArg()) {
        spec.has_arg = false;  // Constant Int64(1) per row.
      } else {
        // CompileExpr attaches the single argument as children[0]; a
        // different arity is an error the legacy path reports.
        if (call.args.size() != 1 || node.children.size() != 1) return false;
        if (!IsPureRowExpr(node.children[0])) return false;
        spec.has_arg = true;
        spec.arg = std::move(node.children[0]);
      }
      BoundExpr slot;
      slot.kind = BoundExpr::Kind::kAggSlot;
      slot.slot = engine->specs_.size();
      engine->specs_.push_back(std::move(spec));
      node = std::move(slot);
      return true;
    }
    for (BoundExpr& child : node.children) {
      if (!self(child, self)) return false;
    }
    return node.kind != BoundExpr::Kind::kFallback;
  };

  engine->items_.reserve(query.items.size());
  for (const SelectItem& item : query.items) {
    if (item.expr->kind() == ExprKind::kStar) return nullptr;
    BoundExpr bound = internal::CompileExpr(*item.expr, engine->from_);
    if (!lower(bound, lower)) return nullptr;
    if (!IsEmitSafe(bound)) return nullptr;
    engine->items_.push_back(std::move(bound));
  }
  if (query.having != nullptr) {
    BoundExpr bound = internal::CompileExpr(*query.having, engine->from_);
    if (!lower(bound, lower)) return nullptr;
    if (!IsEmitSafe(bound)) return nullptr;
    engine->having_ = std::move(bound);
  }
  if (engine->specs_.empty()) return nullptr;  // Plain GROUP BY: rescan.

  // Non-aggregated column reads at emit time are served by the synthesized
  // representative row, which only carries the key slots.
  bool opaque = false;
  std::vector<size_t> slot_reads;
  for (const BoundExpr& bound : engine->items_) {
    internal::CollectSlotReads(bound, slot_reads, opaque);
  }
  if (engine->having_.has_value()) {
    internal::CollectSlotReads(*engine->having_, slot_reads, opaque);
  }
  if (opaque) return nullptr;
  for (size_t slot : slot_reads) {
    if (std::find(engine->key_slots_.begin(), engine->key_slots_.end(),
                  slot) == engine->key_slots_.end()) {
      return nullptr;
    }
  }
  return engine;
}

void IncrementalGroupedQuery::Reset() {
  groups_.clear();
  arrival_.clear();
  next_seq_ = 0;
  broken_ = false;
}

std::optional<Relation> IncrementalGroupedQuery::Evaluate(
    const Relation& history, uint64_t base_seq, Timestamp now) {
  return Evaluate(history, nullptr, base_seq, now);
}

std::optional<Relation> IncrementalGroupedQuery::Evaluate(
    const Relation& history, const stream::ColumnarWindow* columns,
    uint64_t base_seq, Timestamp now) {
  if (broken_) return std::nullopt;
  if (!Advance(history, columns, base_seq, now)) {
    broken_ = true;
    return std::nullopt;
  }
  Relation out;
  if (!Emit(now, &out)) {
    broken_ = true;
    return std::nullopt;
  }
  return out;
}

bool IncrementalGroupedQuery::Advance(const Relation& history,
                                      const stream::ColumnarWindow* columns,
                                      uint64_t base_seq, Timestamp now) {
  const Timestamp effective = window_.kind == WindowKind::kRange
                                  ? window_.EffectiveTime(now)
                                  : now;
  if (base_seq > next_seq_) return false;  // Rows vanished unconsumed.
  const std::vector<Tuple>& tuples = history.tuples();
  const size_t start = static_cast<size_t>(next_seq_ - base_seq);
  if (columns != nullptr && columns->size() == tuples.size() &&
      WantsColumns()) {
    // Columnar consume: bound the delta by binary search, batch-evaluate
    // WHERE over the typed columns when the program admits it, and
    // materialize only the rows that survive. Batch leaves are total
    // functions, so a mask can never hide an error the row path would have
    // raised; runtime ineligibility (demoted columns) falls back to the
    // per-row WHERE below with identical semantics.
    const size_t hi = std::max(start, columns->UpperBound(effective));
    bool have_mask = false;
    if (where_.has_value() && where_batch_ok_ && hi > start) {
      have_mask = internal::EvalBatchProgram(where_batch_, *columns, start,
                                             hi, batch_stack_, batch_mask_);
    }
    for (size_t i = start; i < hi; ++i) {
      if (have_mask && batch_mask_[i - start] != stream::simd::kTrue) {
        ++next_seq_;  // Filtered out; consumed with no member.
        continue;
      }
      columns->MaterializeRow(i, column_row_);
      if (!InsertRow(column_row_, columns->timestamp(i), have_mask)) {
        return false;
      }
      ++next_seq_;
    }
  } else {
    for (size_t i = start;
         i < tuples.size() && tuples[i].timestamp() <= effective; ++i) {
      if (!Insert(tuples[i])) return false;
      ++next_seq_;
    }
  }
  if (window_.kind == WindowKind::kRange) {
    return EvictMembers(effective - window_.range);
  }
  return true;
}

bool IncrementalGroupedQuery::Insert(const Tuple& tuple) {
  return InsertRow(tuple.values(), tuple.timestamp(), /*skip_where=*/false);
}

bool IncrementalGroupedQuery::InsertRow(const Row& row, Timestamp ts,
                                        bool skip_where) {
  if (row.size() != from_.total_columns) return false;

  EvalContext ec;
  ec.now = ts;
  ec.from = &from_;
  ec.row = &row;

  if (!skip_where && where_.has_value()) {
    StatusOr<Value> verdict = internal::EvalBound(*where_, ec);
    if (!verdict.ok()) return false;
    StatusOr<bool> keep = internal::ToDecision(*verdict, "WHERE");
    if (!keep.ok()) return false;
    if (!*keep) return true;  // Filtered out; consumed with no member.
  }

  stream::TupleArena& arena = stream::TupleArena::Local();
  std::vector<Value> key = arena.Acquire(key_slots_.size());
  for (size_t slot : key_slots_) key.push_back(row[slot]);

  auto [it, inserted] = groups_.try_emplace(key);
  Group& group = it->second;
  if (inserted) {
    group.key = std::move(key);
    group.aggs.resize(specs_.size());
  } else {
    // SQL-equal but non-identical keys (1 vs 1.0) would change the legacy
    // representative as members evict; refuse to guess.
    for (size_t k = 0; k < key.size(); ++k) {
      if (!IdenticalForEmit(group.key[k], key[k])) return false;
    }
    arena.Release(std::move(key));
  }

  Member member;
  member.seq = next_seq_;
  member.ts = ts;
  member.inputs = arena.Acquire(specs_.size());
  for (size_t s = 0; s < specs_.size(); ++s) {
    const AggSpec& spec = specs_[s];
    AggState& state = group.aggs[s];
    Value input = Value::Int64(1);  // '*' marker.
    if (spec.has_arg) {
      StatusOr<Value> evaluated = internal::EvalBound(spec.arg, ec);
      if (!evaluated.ok()) return false;
      input = std::move(*evaluated);
    }
    switch (spec.kind) {
      case AggSpec::Kind::kCount:
        if (!input.is_null()) ++state.nonnull;
        break;
      case AggSpec::Kind::kSum:
      case AggSpec::Kind::kAvg: {
        if (input.is_null()) break;
        // Only integer inputs under the exactness bound reproduce the legacy
        // double fold bit-for-bit; anything else goes back to rescans.
        if (input.type() != DataType::kInt64) return false;
        const int64_t v = input.int64_value();
        if (v == INT64_MIN) return false;
        const int64_t magnitude = v < 0 ? -v : v;
        if (magnitude > kMaxExactAbs - state.iabs) return false;
        state.isum += v;
        state.iabs += magnitude;
        ++state.nonnull;
        break;
      }
      case AggSpec::Kind::kMin:
      case AggSpec::Kind::kMax: {
        if (input.is_null()) break;
        ++state.nonnull;
        const bool is_min = spec.kind == AggSpec::Kind::kMin;
        while (!state.mono.empty()) {
          StatusOr<int> cmp = state.mono.back().second.Compare(input);
          if (!cmp.ok()) return false;
          // Pop strictly-worse tail entries; equals stay, keeping the
          // earliest occurrence at the front (the legacy winner).
          if ((is_min && *cmp > 0) || (!is_min && *cmp < 0)) {
            state.mono.pop_back();
          } else {
            break;
          }
        }
        state.mono.emplace_back(next_seq_, input);
        break;
      }
    }
    member.inputs.push_back(std::move(input));
  }

  group.members.push_back(std::move(member));
  arrival_.push_back(&group);
  return true;
}

bool IncrementalGroupedQuery::EvictMembers(Timestamp horizon) {
  while (!arrival_.empty()) {
    Group* group = arrival_.front();
    // Per-group member order matches global arrival order (FIFO windows), so
    // the front group's front member is the globally oldest.
    Member& member = group->members.front();
    if (member.ts > horizon) break;
    for (size_t s = 0; s < specs_.size(); ++s) {
      const AggSpec& spec = specs_[s];
      AggState& state = group->aggs[s];
      const Value& input = member.inputs[s];
      switch (spec.kind) {
        case AggSpec::Kind::kCount:
          if (!input.is_null()) --state.nonnull;
          break;
        case AggSpec::Kind::kSum:
        case AggSpec::Kind::kAvg: {
          if (input.is_null()) break;
          const int64_t v = input.int64_value();
          state.isum -= v;
          state.iabs -= v < 0 ? -v : v;
          --state.nonnull;
          break;
        }
        case AggSpec::Kind::kMin:
        case AggSpec::Kind::kMax:
          if (input.is_null()) break;
          --state.nonnull;
          if (!state.mono.empty() && state.mono.front().first == member.seq) {
            state.mono.pop_front();
          }
          break;
      }
    }
    stream::TupleArena::Local().Release(std::move(member.inputs));
    group->members.pop_front();
    arrival_.pop_front();
    if (group->members.empty()) {
      groups_.erase(group->key);  // No arrival entries can still point here.
    }
  }
  return true;
}

bool IncrementalGroupedQuery::Emit(Timestamp now, Relation* out) {
  stream::TupleArena& arena = stream::TupleArena::Local();

  // Legacy group order is first appearance in the window scan, i.e. oldest
  // live member first.
  std::vector<const Group*>& order = emit_order_;
  order.clear();
  order.reserve(groups_.size());
  for (const auto& [key, group] : groups_) order.push_back(&group);
  std::sort(order.begin(), order.end(), [](const Group* a, const Group* b) {
    return a->members.front().seq < b->members.front().seq;
  });

  Relation output(output_schema_);
  output.mutable_tuples() = arena.AcquireTuples();
  Row& repr = emit_repr_;
  repr.assign(from_.total_columns, Value::Null());
  std::vector<Value>& agg_values = emit_aggs_;
  agg_values.assign(specs_.size(), Value::Null());
  for (const Group* group : order) {
    for (size_t s = 0; s < specs_.size(); ++s) {
      const AggSpec& spec = specs_[s];
      const AggState& state = group->aggs[s];
      switch (spec.kind) {
        case AggSpec::Kind::kCount:
          agg_values[s] = Value::Int64(state.nonnull);
          break;
        case AggSpec::Kind::kSum:
          agg_values[s] = state.nonnull == 0 ? Value::Null()
                                             : Value::Int64(state.isum);
          break;
        case AggSpec::Kind::kAvg:
          agg_values[s] =
              state.nonnull == 0
                  ? Value::Null()
                  : Value::Double(static_cast<double>(state.isum) /
                                  static_cast<double>(state.nonnull));
          break;
        case AggSpec::Kind::kMin:
        case AggSpec::Kind::kMax:
          agg_values[s] = state.mono.empty() ? Value::Null()
                                             : state.mono.front().second;
          break;
      }
    }
    for (size_t k = 0; k < key_slots_.size(); ++k) {
      repr[key_slots_[k]] = group->key[k];
    }

    EvalContext ec;
    ec.now = now;
    ec.from = &from_;
    ec.row = &repr;
    ec.agg_values = &agg_values;

    if (having_.has_value()) {
      StatusOr<Value> verdict = internal::EvalBound(*having_, ec);
      if (!verdict.ok()) return false;
      StatusOr<bool> keep = internal::ToDecision(*verdict, "HAVING");
      if (!keep.ok()) return false;
      if (!*keep) continue;
    }
    std::vector<Value> values = arena.Acquire(output_schema_->num_fields());
    for (const BoundExpr& item : items_) {
      StatusOr<Value> value = internal::EvalBound(item, ec);
      if (!value.ok()) return false;
      values.push_back(std::move(*value));
    }
    output.Add(Tuple(output_schema_, std::move(values), now));
  }

  StatusOr<Relation> finalized =
      internal::FinalizeOutput(*query_, std::move(output));
  if (!finalized.ok()) return false;
  *out = std::move(*finalized);
  return true;
}

}  // namespace esp::cql
