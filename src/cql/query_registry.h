#ifndef ESP_CQL_QUERY_REGISTRY_H_
#define ESP_CQL_QUERY_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "common/time.h"
#include "cql/continuous_query.h"
#include "stream/tuple.h"

namespace esp::cql {

/// \brief Admission budgets of one tenant. Zero / default values mean
/// unlimited; a deployment opts in per budget ([tenants] section,
/// core/deployment.h).
struct TenantBudgets {
  /// Maximum live subscriptions.
  uint64_t max_queries = 0;
  /// Largest RANGE retention (range + slide) a query may demand of any
  /// stream. Rejections are window-memory admission control: retention is
  /// what a subscription costs in buffered tuples.
  Duration max_window_range;
  /// Largest ROWS retention a query may demand of any stream.
  int64_t max_window_rows = 0;
  /// Whether unbounded windows are admitted (they disable eviction on
  /// their buffer family).
  bool allow_unbounded = true;
  /// Attributed evaluation time per tick. A tenant whose last tick
  /// exceeded this is throttled: running subscriptions keep evaluating
  /// (results stay deterministic), but new registrations are rejected
  /// until a tick comes in under budget.
  Duration max_eval_time;
};

/// \brief Per-tenant counters surfaced through EspProcessor::Health().
/// Attribution is naive-cost: a shared plan's full evaluation time is
/// charged to every subscribed tenant, so sharing never hides a tenant's
/// standalone footprint.
struct TenantStats {
  std::string tenant;
  uint64_t queries = 0;      // Live subscriptions.
  uint64_t rejected = 0;     // Admission rejections to date.
  uint64_t evals = 0;        // Subscription-evaluations attributed.
  uint64_t eval_errors = 0;  // Evaluations that returned non-OK.
  Duration eval_time;        // Attributed evaluation time to date.
  Duration last_tick_eval_time;
  bool throttled = false;    // Last tick exceeded max_eval_time.
};

/// \brief Aggregate multi-tenant query-serving counters.
struct QueryServingStats {
  uint64_t subscriptions = 0;
  uint64_t physical_plans = 0;   // After fingerprint dedupe.
  uint64_t shared_buffers = 0;   // Registry-owned window buffers.
  uint64_t buffered_tuples = 0;  // Tuples retained across those buffers.
  uint64_t rejected_total = 0;
  uint64_t ticks = 0;
  uint64_t plan_evals = 0;    // Physical evaluations to date.
  uint64_t fanout_results = 0;  // Subscription results delivered to date.
  /// Evaluations avoided by plan dedupe: fanout_results - plan_evals.
  uint64_t dedup_saved_evals = 0;
  std::vector<TenantStats> tenants;  // Sorted by tenant id.

  bool active() const { return subscriptions > 0 || rejected_total > 0; }
  /// One-line summary for health reports.
  std::string ToString() const;
};

/// \brief One subscription's result for one tick.
struct SubscriptionResult {
  std::string tenant;
  std::string name;
  /// Evaluation outcome. A failing plan fails only its own subscriptions;
  /// the tick keeps serving every other tenant (error isolation).
  Status status;
  /// The plan's result relation, shared (not copied) across every
  /// subscription of the plan. Null when status is non-OK.
  std::shared_ptr<const stream::Relation> result;
};

/// \brief Multi-tenant registry of standing CQL subscriptions over shared
/// execution state — the shared-plan serving layer.
///
/// Two orthogonal sharing axes, both on by default (off = the naive
/// one-plan-per-query baseline the benches compare against):
///
///   - **Plan dedupe** (`share_plans`): subscriptions whose queries are
///     equal under cql/fingerprint.h canonicalization map to one physical
///     ContinuousQuery; each tick evaluates it once and the result fans
///     out by shared_ptr to every subscribed tenant.
///   - **Window sharing** (`share_windows`): one coarsest-common
///     StreamWindowState per (stream, window family) — bounded windows
///     share one buffer whose retention is the union demand, unbounded
///     references share a second — instead of per-query buffers. Exact by
///     CQL snapshot semantics: the evaluator applies each query's own
///     window at eval time, so extra retained history never changes
///     results (continuous_query.h WindowDemand).
///
/// A subscription registered at runtime attaches to the live buffers
/// (Bleach-style add/remove without restart): its windows start from the
/// retained history — equivalent to a fresh naive query replaying that
/// same history, which is exactly how the equivalence tests pin it.
///
/// Per tick the owner pushes each stream tuple once (Push), then calls
/// Tick(now): every physical plan evaluates once, results fan out in
/// subscription registration order, and buffers evict only after all
/// readers have evaluated.
///
/// Not thread-safe; shares the engine's single-threaded Push/Tick
/// contract.
class QueryRegistry {
 public:
  struct Options {
    bool share_plans = true;
    bool share_windows = true;
    TenantBudgets default_budgets;  // Applied to tenants with no override.
  };

  explicit QueryRegistry(Options options);
  QueryRegistry() : QueryRegistry(Options{}) {}
  ~QueryRegistry();
  QueryRegistry(const QueryRegistry&) = delete;
  QueryRegistry& operator=(const QueryRegistry&) = delete;

  /// Registers one input stream's schema. All streams must be added before
  /// subscriptions referencing them.
  Status AddStream(const std::string& name, stream::SchemaRef schema);

  /// Installs a per-tenant budget override (replaces any previous one).
  void SetTenantBudgets(const std::string& tenant, TenantBudgets budgets);

  /// Registers a subscription under a registry-unique name. Typed errors:
  /// kAlreadyExists for a duplicate name, kResourceExhausted for a budget
  /// rejection (also counted in TenantStats::rejected), parse/analysis
  /// errors pass through from the CQL frontend.
  Status Register(const std::string& tenant, const std::string& name,
                  const std::string& query_text);

  /// Removes a live subscription (Bleach-style runtime rule removal).
  /// kNotFound when no subscription has this name. Shared state the last
  /// reader leaves behind is torn down: plans are destroyed, buffer
  /// demands recomputed, reader-less buffers freed.
  Status Unregister(const std::string& name);

  bool Contains(const std::string& name) const;
  size_t subscriptions() const { return subs_.size(); }

  /// Output schema of a live subscription's query.
  StatusOr<stream::SchemaRef> OutputSchema(const std::string& name) const;

  /// Appends one tuple to every buffer (shared mode) or every subscribed
  /// plan (naive mode) reading `stream`. A stream nobody reads is a cheap
  /// no-op; an unregistered stream name is kNotFound.
  Status Push(const std::string& stream, stream::Tuple tuple);

  /// Evaluates every physical plan once at `now` and fans results out in
  /// subscription registration order. Per-plan failures are carried in the
  /// affected SubscriptionResults, never failing the tick.
  StatusOr<std::vector<SubscriptionResult>> Tick(Timestamp now);

  QueryServingStats Stats() const;
  size_t BufferedTuples() const;

  /// Serializes buffers (each exactly once), subscriptions (tenant, name,
  /// query text), and plan clocks. Budgets and sharing options are
  /// configuration. LoadState re-registers every subscription from its
  /// text — fingerprints recompute identically, so the dedupe structure is
  /// reconstructed, not deserialized — then loads buffer contents.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

  /// Test hook: replaces the monotonic clock (nanoseconds) used to measure
  /// per-plan evaluation time.
  void SetEvalTimerForTesting(std::function<int64_t()> now_nanos);

 private:
  struct Buffer {
    std::string key;  // stream '\0' family; see BufferKey().
    std::unique_ptr<StreamWindowState> state;
    size_t readers = 0;  // Physical plans resolved onto this buffer.
  };
  struct PhysicalPlan {
    std::string fingerprint;  // Empty when plan sharing is off.
    std::unique_ptr<ContinuousQuery> query;
    /// Per-stream demands of this plan's AST (admission + buffer-demand
    /// recomputation on unregister).
    std::vector<std::pair<std::string, WindowDemand>> demands;
    size_t subscribers = 0;
  };
  struct Subscription {
    std::string tenant;
    std::string name;
    std::string text;
    PhysicalPlan* plan = nullptr;
  };
  struct TenantRuntime {
    bool has_override = false;
    TenantBudgets override_budgets;
    TenantStats stats;
  };

  static std::string BufferKey(const std::string& stream, bool unbounded);

  const TenantBudgets& BudgetsFor(const TenantRuntime& tenant) const;
  Status Admit(TenantRuntime& tenant,
               const std::vector<std::pair<std::string, WindowDemand>>&
                   demands) const;
  /// Register() minus admission control — the restore path replays
  /// subscriptions that were already admitted when checkpointed.
  Status RegisterInternal(const std::string& tenant_id,
                          const std::string& name,
                          const std::string& query_text, bool enforce_budgets);
  StatusOr<StreamWindowState*> ResolveBuffer(const std::string& stream,
                                             const WindowDemand& demand);
  void RecomputeBufferDemands();
  void DropReaderlessBuffers();
  int64_t NowNanos() const;

  Options options_;
  SchemaCatalog catalog_;
  /// Streams in AddStream order (SaveState determinism + existence checks).
  std::vector<std::string> stream_names_;

  /// Registration-ordered; pointers into these are stable (unique_ptr
  /// elements) and order defines evaluation / fan-out determinism.
  std::vector<std::unique_ptr<Subscription>> subs_;
  std::vector<std::unique_ptr<PhysicalPlan>> plans_;
  std::unordered_map<std::string, size_t> sub_by_name_;  // name -> subs_ index.
  std::unordered_map<std::string, PhysicalPlan*> plan_by_fingerprint_;
  /// Key-ordered so eviction, stats, and SaveState iterate
  /// deterministically.
  std::map<std::string, Buffer> buffers_;
  std::map<std::string, TenantRuntime> tenants_;

  uint64_t ticks_ = 0;
  uint64_t plan_evals_ = 0;
  uint64_t fanout_results_ = 0;
  uint64_t rejected_total_ = 0;
  std::function<int64_t()> now_nanos_;  // Null: steady_clock.
};

}  // namespace esp::cql

#endif  // ESP_CQL_QUERY_REGISTRY_H_
