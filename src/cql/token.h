#ifndef ESP_CQL_TOKEN_H_
#define ESP_CQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace esp::cql {

/// \brief Lexical token kinds for the CQL dialect used by the paper's
/// queries (CQL is the continuous query language of STREAM [6]).
enum class TokenKind {
  kEof = 0,
  kIdentifier,     // shelf, tag_id, rfid_data
  kKeyword,        // SELECT, FROM, ... (text() holds the upper-cased word)
  kStringLiteral,  // '5 sec'
  kIntLiteral,     // 42
  kDoubleLiteral,  // 3.5
  // Punctuation and operators:
  kComma,
  kLeftParen,
  kRightParen,
  kLeftBracket,
  kRightBracket,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEquals,
  kNotEquals,  // != or <>
  kLess,
  kLessEquals,
  kGreater,
  kGreaterEquals,
  kSemicolon,
};

/// \brief One lexical token with its source position (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // Identifier/keyword/literal text.
  int64_t int_value = 0;     // Valid for kIntLiteral.
  double double_value = 0;   // Valid for kDoubleLiteral.
  size_t offset = 0;     // Byte offset in the query string.

  /// True if this token is the given keyword (case-insensitive match was
  /// already done by the lexer; keywords are stored upper-case).
  bool IsKeyword(const char* word) const;

  std::string ToString() const;
};

/// \brief Returns true if `word` (upper-cased) is a reserved CQL keyword.
bool IsReservedKeyword(const std::string& upper_word);

}  // namespace esp::cql

#endif  // ESP_CQL_TOKEN_H_
