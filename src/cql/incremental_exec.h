#ifndef ESP_CQL_INCREMENTAL_EXEC_H_
#define ESP_CQL_INCREMENTAL_EXEC_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "cql/ast.h"
#include "cql/expr_eval.h"
#include "stream/ops.h"
#include "stream/tuple.h"

namespace esp::cql {

/// \brief Incremental evaluator for sliding-window grouped aggregates — the
/// hot continuous-query shape (the paper's per-key presence counts).
///
/// Instead of rescanning every window row each tick, the engine maintains
/// per-group partial aggregates updated by window insert/evict deltas:
/// count/sum/avg as running (integer-exact) totals, min/max as monotone
/// deques. A query is admitted only when the plan can PROVE the incremental
/// result is bitwise identical to the legacy rescan:
///
///   - single ordered stream, RANGE (optionally sliding) or UNBOUNDED window;
///   - non-empty GROUP BY over plain columns;
///   - aggregates in {count, sum, avg, min, max}, non-DISTINCT, with pure
///     compiled arguments (no scalar functions or subqueries);
///   - sum/avg inputs must stay int64 with |running sum of magnitudes| <=
///     2^52, which makes the legacy double fold exact and order-independent;
///   - non-aggregated column reads limited to the group key, and every
///     member's key must be *identical* (not merely SQL-equal: 1 vs 1.0 or
///     two bit-patterns of a double would change the legacy representative).
///
/// Anything else — at plan time or at runtime (type drift, overflow,
/// evaluation errors) — permanently disables the engine; the caller falls
/// back to the legacy rescan, which reproduces genuine errors identically.
/// Engine state is a pure function of the live window rows, so it can be
/// rebuilt from a restored history after checkpoint recovery (checkpoint
/// formats are unchanged).
class IncrementalGroupedQuery {
 public:
  /// Attempts to plan `query` for incremental evaluation against its single
  /// input stream. Returns nullptr when any admission rule fails.
  static std::unique_ptr<IncrementalGroupedQuery> TryPlan(
      const SelectQuery& query, const std::string& stream_name,
      stream::SchemaRef input_schema, stream::SchemaRef output_schema);

  /// Advances the window to `now` over `history` (the stream's retained,
  /// time-ordered buffer; `base_seq` is the all-time index of history[0])
  /// and returns the query result at `now`. Returns nullopt once the engine
  /// cannot guarantee equivalence — the caller must discard the engine and
  /// evaluate the legacy path from then on.
  std::optional<stream::Relation> Evaluate(const stream::Relation& history,
                                           uint64_t base_seq, Timestamp now);

  /// As above, additionally consuming new rows from `columns` (a row-synced
  /// columnar mirror of `history`, see stream/column.h) when non-null: the
  /// WHERE clause is batch-evaluated over the typed columns where possible,
  /// and rows it rejects are skipped without ever being materialized.
  std::optional<stream::Relation> Evaluate(
      const stream::Relation& history, const stream::ColumnarWindow* columns,
      uint64_t base_seq, Timestamp now);

  /// Drops all window state (after checkpoint restore). The next Evaluate
  /// call rebuilds it by consuming the restored history from base_seq 0.
  void Reset();

  bool broken() const { return broken_; }

  /// True when passing a columnar mirror to Evaluate can actually pay for
  /// itself: the WHERE clause batch-compiled, so rejected rows are skipped
  /// without materialization. Callers use this to skip mirror maintenance
  /// entirely for queries the engine consumes row-at-a-time anyway.
  bool WantsColumns() const { return where_.has_value() && where_batch_ok_; }

 private:
  struct AggSpec {
    enum class Kind { kCount, kSum, kAvg, kMin, kMax };
    Kind kind = Kind::kCount;
    bool has_arg = false;  // false: '*' argument — a constant Int64(1).
    internal::BoundExpr arg;
  };

  /// Per-group running state for one aggregate.
  struct AggState {
    int64_t nonnull = 0;  // Rows contributing a non-null input.
    int64_t isum = 0;     // Exact integer sum (kSum/kAvg).
    int64_t iabs = 0;     // Running sum of |input| — exactness guard.
    /// Monotone deque of (seq, value): front is the current min/max,
    /// earliest-of-equals first (matching the legacy first-of-equals scan).
    std::deque<std::pair<uint64_t, stream::Value>> mono;
  };

  struct Member {
    uint64_t seq = 0;
    Timestamp ts;
    std::vector<stream::Value> inputs;  // One evaluated input per AggSpec.
  };

  struct Group {
    std::vector<stream::Value> key;
    std::deque<Member> members;
    std::vector<AggState> aggs;
  };

  IncrementalGroupedQuery() = default;

  bool Advance(const stream::Relation& history,
               const stream::ColumnarWindow* columns, uint64_t base_seq,
               Timestamp now);
  bool Insert(const stream::Tuple& tuple);
  /// The row-shaped core of Insert. `skip_where` marks rows a batch WHERE
  /// pass already admitted.
  bool InsertRow(const internal::Row& row, Timestamp ts, bool skip_where);
  bool EvictMembers(Timestamp horizon);  // Members with ts <= horizon die.
  bool Emit(Timestamp now, stream::Relation* out);

  // --- Immutable plan.
  const SelectQuery* query_ = nullptr;
  stream::SchemaRef output_schema_;
  internal::FromContext from_;
  stream::WindowSpec window_;
  std::optional<internal::BoundExpr> where_;
  std::vector<size_t> key_slots_;
  std::vector<internal::BoundExpr> items_;  // Aggregates lowered to kAggSlot.
  std::optional<internal::BoundExpr> having_;
  std::vector<AggSpec> specs_;
  /// Batch-compiled WHERE (columnar_exec.h), when the predicate admits it.
  std::vector<internal::ColumnarPlan::BatchOp> where_batch_;
  bool where_batch_ok_ = false;

  // --- Window state (a pure function of the live rows).
  std::unordered_map<std::vector<stream::Value>, Group,
                     stream::ValueVectorHash, stream::ValueVectorEq>
      groups_;
  /// One entry per live member in arrival (seq) order; the front group's
  /// front member is the globally oldest (windows are FIFO).
  std::deque<Group*> arrival_;
  uint64_t next_seq_ = 0;
  bool broken_ = false;

  // --- Emit-time scratch, reused across ticks (buffers only; cleared or
  // overwritten before every use).
  std::vector<const Group*> emit_order_;
  internal::Row emit_repr_;
  std::vector<stream::Value> emit_aggs_;
  std::vector<std::vector<stream::simd::Trit>> batch_stack_;
  std::vector<stream::simd::Trit> batch_mask_;
  internal::Row column_row_;  // Reused per-row materialization buffer.
};

/// \brief Benchmark/test hook: toggles incremental window evaluation for
/// queries created afterwards (construction-time decision; existing query
/// instances are unaffected). Enabled by default.
void SetIncrementalEvalForBenchmarks(bool enabled);
bool IncrementalEvalEnabled();

}  // namespace esp::cql

#endif  // ESP_CQL_INCREMENTAL_EXEC_H_
