#ifndef ESP_CQL_FINGERPRINT_H_
#define ESP_CQL_FINGERPRINT_H_

#include <string>

#include "common/status.h"
#include "cql/analyzer.h"
#include "cql/ast.h"

namespace esp::cql {

/// \brief Renders `query` into a canonical byte string such that two queries
/// with equal fingerprints are guaranteed to produce bitwise-identical
/// results on every input — the collision test the shared-plan registry
/// (cql/query_registry.h) uses to map structurally-identical subscriptions
/// from different tenants onto one physical plan.
///
/// Canonicalizations applied (each is proof-preserving, never heuristic):
///
///   - identifier case: stream names, aliases, column references, and
///     function names are case-insensitive in this dialect and are rendered
///     lowercased. Output field names are the exception — the analyzer
///     derives them from aliases / column spellings *as written*
///     (cql/analyzer.h OutputFieldName), so they are rendered verbatim;
///     queries differing only in a SELECT item's spelling do NOT collide.
///   - alias normalization: a column qualifier is rendered as the scope and
///     frame *index* it resolves to, not its spelling, so `FROM s AS x ...
///     WHERE x.a > 0` collides with `FROM s AS y ... WHERE y.a > 0`.
///   - constant folding: pure literal subtrees (arithmetic, comparisons,
///     logic, BETWEEN, CASE, IN-lists over literals) are evaluated with the
///     runtime's own expression machinery and rendered as their exact typed
///     value (doubles by bit pattern), so `WHERE a > 1+1` collides with
///     `WHERE a > 2`. Subtrees whose folding errors are left structural.
///   - conjunct commutation: the top-level WHERE of a single-stream query
///     has its AND-chain flattened and sorted — but only when every
///     conjunct is provably *total* (cannot raise a runtime error) and
///     boolean-typed, because three-valued AND is commutative in its value
///     but short-circuit evaluation is not commutative in which errors it
///     surfaces. Provably total today: =/<> over literals and resolvable
///     columns, ordered comparisons over type-compatible operands, IS
///     NULL, BETWEEN, IN-lists, and NOT/AND/OR over such predicates.
///
/// The fingerprint is NOT stable across releases; it lives only in memory
/// (never in checkpoints — the registry re-fingerprints from query text on
/// restore).
StatusOr<std::string> FingerprintQuery(const SelectQuery& query,
                                       const SchemaCatalog& schemas);

}  // namespace esp::cql

#endif  // ESP_CQL_FINGERPRINT_H_
