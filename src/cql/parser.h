#ifndef ESP_CQL_PARSER_H_
#define ESP_CQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "cql/ast.h"

namespace esp::cql {

/// \brief Parses one CQL SELECT statement into an AST.
///
/// The dialect covers the paper's Queries 1-6 and more:
///   SELECT [DISTINCT] items FROM stream [alias] [Range By '5 sec'] , ...
///   derived tables, WHERE / GROUP BY / HAVING, ORDER BY / LIMIT,
///   scalar + quantified (ALL/ANY) subqueries, IN / EXISTS / BETWEEN /
///   IS NULL, CASE WHEN, arithmetic, aggregates with DISTINCT.
StatusOr<std::unique_ptr<SelectQuery>> ParseQuery(const std::string& text);

/// \brief Parses a standalone scalar/boolean expression (used to program
/// Point-stage filters directly from predicate strings).
StatusOr<ExprPtr> ParseExpression(const std::string& text);

}  // namespace esp::cql

#endif  // ESP_CQL_PARSER_H_
