#include "cql/analyzer.h"

#include "common/string_util.h"
#include "cql/scalar_function.h"
#include "stream/aggregate.h"

namespace esp::cql {

using stream::DataType;
using stream::Field;
using stream::Schema;
using stream::SchemaRef;

void SchemaCatalog::AddStream(const std::string& name,
                              stream::SchemaRef schema) {
  for (auto& [existing, existing_schema] : streams_) {
    if (esp::StrEqualsIgnoreCase(existing, name)) {
      existing_schema = std::move(schema);
      return;
    }
  }
  streams_.emplace_back(name, std::move(schema));
}

StatusOr<stream::SchemaRef> SchemaCatalog::Find(const std::string& name) const {
  for (const auto& [existing, schema] : streams_) {
    if (esp::StrEqualsIgnoreCase(existing, name)) return schema;
  }
  return Status::NotFound("unknown stream '" + name + "'");
}

bool SchemaCatalog::Contains(const std::string& name) const {
  return Find(name).ok();
}

namespace {

/// Resolves a (possibly qualified) column against the scope chain.
StatusOr<DataType> ResolveColumnType(const ColumnRefExpr& ref,
                                     const AnalysisScope& scope) {
  for (const AnalysisScope* s = &scope; s != nullptr; s = s->outer) {
    if (!ref.qualifier.empty()) {
      for (const AnalysisScope::Frame& frame : s->frames) {
        if (esp::StrEqualsIgnoreCase(frame.alias, ref.qualifier)) {
          auto index = frame.schema->IndexOf(ref.name);
          if (!index.has_value()) {
            return Status::NotFound("no column '" + ref.name + "' in '" +
                                    ref.qualifier + "'");
          }
          return frame.schema->field(*index).type;
        }
      }
      continue;  // Qualifier may name an outer frame.
    }
    // Unqualified: search all frames at this level; ambiguity is an error.
    const Field* found = nullptr;
    for (const AnalysisScope::Frame& frame : s->frames) {
      auto index = frame.schema->IndexOf(ref.name);
      if (index.has_value()) {
        if (found != nullptr) {
          return Status::InvalidArgument("ambiguous column '" + ref.name +
                                         "'");
        }
        found = &frame.schema->field(*index);
      }
    }
    if (found != nullptr) return found->type;
  }
  return Status::NotFound("unknown column '" + ref.ToString() + "'");
}

StatusOr<DataType> InferAggregateType(const FunctionCallExpr& call,
                                      const SchemaCatalog& catalog,
                                      const AnalysisScope& scope) {
  const std::string lower = esp::StrToLower(call.name);
  if (lower == "count") return DataType::kInt64;
  if (lower == "avg" || lower == "stdev" || lower == "stddev" ||
      lower == "var" || lower == "median" || lower == "p90" ||
      lower == "p95") {
    return DataType::kDouble;
  }
  if (lower == "sum" || lower == "min" || lower == "max") {
    if (call.args.size() == 1 && !call.IsStarArg()) {
      ESP_ASSIGN_OR_RETURN(const DataType arg,
                           InferExprType(*call.args[0], catalog, scope));
      return arg;
    }
    return DataType::kDouble;
  }
  return DataType::kNull;  // UDA: dynamic.
}

}  // namespace

bool ContainsAggregate(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kStar:
    case ExprKind::kScalarSubquery:      // Belongs to the subquery.
    case ExprKind::kQuantifiedComparison:  // lhs handled below.
    case ExprKind::kIn:
    case ExprKind::kExists:
      break;
    case ExprKind::kUnary:
      return ContainsAggregate(*static_cast<const UnaryExpr&>(expr).operand);
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      return ContainsAggregate(*binary.lhs) || ContainsAggregate(*binary.rhs);
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (stream::AggregateRegistry::Global().Contains(call.name)) return true;
      for (const ExprPtr& arg : call.args) {
        if (ContainsAggregate(*arg)) return true;
      }
      return false;
    }
    case ExprKind::kIsNull:
      return ContainsAggregate(*static_cast<const IsNullExpr&>(expr).operand);
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      return ContainsAggregate(*between.value) ||
             ContainsAggregate(*between.low) ||
             ContainsAggregate(*between.high);
    }
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::WhenClause& when : case_expr.whens) {
        if (ContainsAggregate(*when.condition) ||
            ContainsAggregate(*when.result)) {
          return true;
        }
      }
      return case_expr.else_result != nullptr &&
             ContainsAggregate(*case_expr.else_result);
    }
  }
  // Quantified comparison / IN: the left-hand side lives at this level.
  if (expr.kind() == ExprKind::kQuantifiedComparison) {
    return ContainsAggregate(
        *static_cast<const QuantifiedComparisonExpr&>(expr).lhs);
  }
  if (expr.kind() == ExprKind::kIn) {
    const auto& in = static_cast<const InExpr&>(expr);
    if (ContainsAggregate(*in.lhs)) return true;
    for (const ExprPtr& item : in.list) {
      if (ContainsAggregate(*item)) return true;
    }
    return false;
  }
  return false;
}

StatusOr<DataType> InferExprType(const Expr& expr, const SchemaCatalog& catalog,
                                 const AnalysisScope& scope) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value.type();
    case ExprKind::kColumnRef:
      return ResolveColumnType(static_cast<const ColumnRefExpr&>(expr), scope);
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is not a scalar expression");
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op == UnaryOp::kNot) return DataType::kBool;
      return InferExprType(*unary.operand, catalog, scope);
    }
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      switch (binary.op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSubtract:
        case BinaryOp::kMultiply:
        case BinaryOp::kDivide:
        case BinaryOp::kModulo: {
          ESP_ASSIGN_OR_RETURN(const DataType lhs,
                               InferExprType(*binary.lhs, catalog, scope));
          ESP_ASSIGN_OR_RETURN(const DataType rhs,
                               InferExprType(*binary.rhs, catalog, scope));
          if (lhs == DataType::kInt64 && rhs == DataType::kInt64) {
            return DataType::kInt64;
          }
          return DataType::kDouble;
        }
        default:
          // Comparisons and AND/OR: validate both operands.
          ESP_RETURN_IF_ERROR(
              InferExprType(*binary.lhs, catalog, scope).status());
          ESP_RETURN_IF_ERROR(
              InferExprType(*binary.rhs, catalog, scope).status());
          return DataType::kBool;
      }
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (stream::AggregateRegistry::Global().Contains(call.name)) {
        return InferAggregateType(call, catalog, scope);
      }
      ESP_ASSIGN_OR_RETURN(const ScalarFunction* function,
                           ScalarFunctionRegistry::Global().Find(call.name));
      if (call.args.size() < function->min_args ||
          call.args.size() > function->max_args) {
        return Status::InvalidArgument("wrong argument count for " +
                                       call.name + "()");
      }
      // Validate argument expressions even when the result type is declared.
      for (const ExprPtr& arg : call.args) {
        ESP_RETURN_IF_ERROR(InferExprType(*arg, catalog, scope).status());
      }
      if (function->result_type != DataType::kNull) {
        return function->result_type;
      }
      // Dynamic result: iif() follows its THEN branch; the rest follow the
      // first argument.
      const size_t type_arg = esp::StrEqualsIgnoreCase(call.name, "iif") ? 1 : 0;
      return InferExprType(*call.args[type_arg], catalog, scope);
    }
    case ExprKind::kScalarSubquery: {
      const auto& subquery = static_cast<const ScalarSubqueryExpr&>(expr);
      AnalysisScope nested_outer = scope;
      ESP_ASSIGN_OR_RETURN(
          SchemaRef schema,
          InferOutputSchema(*subquery.query, catalog, &nested_outer));
      if (schema->num_fields() != 1) {
        return Status::InvalidArgument(
            "scalar subquery must produce exactly one column");
      }
      return schema->field(0).type;
    }
    case ExprKind::kQuantifiedComparison: {
      const auto& quantified =
          static_cast<const QuantifiedComparisonExpr&>(expr);
      AnalysisScope nested_outer = scope;
      ESP_ASSIGN_OR_RETURN(
          SchemaRef schema,
          InferOutputSchema(*quantified.subquery, catalog, &nested_outer));
      if (schema->num_fields() != 1) {
        return Status::InvalidArgument(
            "ALL/ANY subquery must produce exactly one column");
      }
      ESP_RETURN_IF_ERROR(
          InferExprType(*quantified.lhs, catalog, scope).status());
      return DataType::kBool;
    }
    case ExprKind::kIn: {
      const auto& in = static_cast<const InExpr&>(expr);
      ESP_RETURN_IF_ERROR(InferExprType(*in.lhs, catalog, scope).status());
      if (in.subquery != nullptr) {
        AnalysisScope nested_outer = scope;
        ESP_ASSIGN_OR_RETURN(
            SchemaRef schema,
            InferOutputSchema(*in.subquery, catalog, &nested_outer));
        if (schema->num_fields() != 1) {
          return Status::InvalidArgument(
              "IN subquery must produce exactly one column");
        }
      } else {
        for (const ExprPtr& item : in.list) {
          ESP_RETURN_IF_ERROR(InferExprType(*item, catalog, scope).status());
        }
      }
      return DataType::kBool;
    }
    case ExprKind::kExists: {
      const auto& exists = static_cast<const ExistsExpr&>(expr);
      AnalysisScope nested_outer = scope;
      ESP_RETURN_IF_ERROR(
          InferOutputSchema(*exists.subquery, catalog, &nested_outer)
              .status());
      return DataType::kBool;
    }
    case ExprKind::kIsNull:
      ESP_RETURN_IF_ERROR(
          InferExprType(*static_cast<const IsNullExpr&>(expr).operand, catalog,
                        scope)
              .status());
      return DataType::kBool;
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      ESP_RETURN_IF_ERROR(
          InferExprType(*between.value, catalog, scope).status());
      ESP_RETURN_IF_ERROR(InferExprType(*between.low, catalog, scope).status());
      ESP_RETURN_IF_ERROR(
          InferExprType(*between.high, catalog, scope).status());
      return DataType::kBool;
    }
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      DataType result = DataType::kNull;
      for (const CaseExpr::WhenClause& when : case_expr.whens) {
        ESP_RETURN_IF_ERROR(
            InferExprType(*when.condition, catalog, scope).status());
        ESP_ASSIGN_OR_RETURN(const DataType branch,
                             InferExprType(*when.result, catalog, scope));
        if (result == DataType::kNull) result = branch;
      }
      if (case_expr.else_result != nullptr) {
        ESP_ASSIGN_OR_RETURN(
            const DataType branch,
            InferExprType(*case_expr.else_result, catalog, scope));
        if (result == DataType::kNull) result = branch;
      }
      return result;
    }
  }
  return Status::Internal("unhandled expression kind");
}

std::string OutputFieldName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind() == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr&>(*item.expr).name;
  }
  if (item.expr->kind() == ExprKind::kFunctionCall) {
    return esp::StrToLower(
        static_cast<const FunctionCallExpr&>(*item.expr).name);
  }
  return "expr_" + std::to_string(index);
}

StatusOr<stream::SchemaRef> InferOutputSchema(const SelectQuery& query,
                                              const SchemaCatalog& catalog,
                                              const AnalysisScope* outer) {
  // Build this query's scope from its FROM clause.
  AnalysisScope scope;
  scope.outer = outer;
  for (const TableRef& ref : query.from) {
    AnalysisScope::Frame frame;
    if (ref.kind == TableRef::Kind::kStream) {
      ESP_ASSIGN_OR_RETURN(frame.schema, catalog.Find(ref.stream_name));
      frame.alias = ref.alias.empty() ? ref.stream_name : ref.alias;
    } else {
      ESP_ASSIGN_OR_RETURN(frame.schema,
                           InferOutputSchema(*ref.subquery, catalog, outer));
      frame.alias = ref.alias;
    }
    scope.frames.push_back(std::move(frame));
  }

  // Validate WHERE / GROUP BY / HAVING even though they do not contribute
  // output columns.
  if (query.where != nullptr) {
    ESP_RETURN_IF_ERROR(
        InferExprType(*query.where, catalog, scope).status());
  }
  for (const ExprPtr& key : query.group_by) {
    ESP_RETURN_IF_ERROR(InferExprType(*key, catalog, scope).status());
  }
  if (query.having != nullptr) {
    ESP_RETURN_IF_ERROR(
        InferExprType(*query.having, catalog, scope).status());
  }

  std::vector<Field> fields;
  for (size_t i = 0; i < query.items.size(); ++i) {
    const SelectItem& item = query.items[i];
    if (item.expr->kind() == ExprKind::kStar) {
      if (!query.group_by.empty()) {
        return Status::InvalidArgument("SELECT * with GROUP BY is not allowed");
      }
      if (scope.frames.empty()) {
        return Status::InvalidArgument("SELECT * requires a FROM clause");
      }
      for (const AnalysisScope::Frame& frame : scope.frames) {
        for (const Field& field : frame.schema->fields()) {
          fields.push_back(field);
        }
      }
      continue;
    }
    Field field;
    field.name = OutputFieldName(item, i);
    ESP_ASSIGN_OR_RETURN(field.type,
                         InferExprType(*item.expr, catalog, scope));
    fields.push_back(std::move(field));
  }
  if (fields.empty()) {
    return Status::InvalidArgument("query selects no columns");
  }
  return stream::MakeSchema(std::move(fields));
}

}  // namespace esp::cql
