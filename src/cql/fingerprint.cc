#include "cql/fingerprint.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "common/string_util.h"
#include "cql/expr_eval.h"
#include "stream/type.h"
#include "stream/value.h"

namespace esp::cql {

using stream::DataType;
using stream::Value;
using stream::WindowKind;

namespace {

/// Renders a value with its exact type and bit pattern: folding must never
/// merge values the runtime would distinguish (1 vs 1.0, two NaN payloads).
std::string RenderValue(const Value& value) {
  switch (value.type()) {
    case DataType::kNull:
      return "#n";
    case DataType::kBool:
      return value.bool_value() ? "#b1" : "#b0";
    case DataType::kInt64:
      return "#i" + std::to_string(value.int64_value());
    case DataType::kDouble: {
      const double v = value.double_value();
      uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      return "#d" + std::to_string(bits);
    }
    case DataType::kString: {
      const std::string& s = value.string_value();
      return "#s" + std::to_string(s.size()) + ":" + s;
    }
    case DataType::kTimestamp:
      return "#t" + std::to_string(value.time_value().micros());
  }
  return "#?";
}

std::string RenderName(const std::string& name) {
  // Length-prefixed so adjacent fields can never re-tokenize into each
  // other.
  return std::to_string(name.size()) + ":" + name;
}

/// Canonical renderer. Holds the alias-scope chain so column qualifiers can
/// be normalized to (scope, frame) indices instead of their spelling.
class Renderer {
 public:
  explicit Renderer(const SchemaCatalog& schemas) : schemas_(schemas) {}

  std::string Query(const SelectQuery& query) {
    // The scope frame must be pushed before rendering any clause: every
    // clause (including SELECT items) resolves columns against FROM.
    std::vector<Frame> frames;
    for (const TableRef& ref : query.from) {
      Frame frame;
      frame.alias = esp::StrToLower(
          ref.alias.empty() && ref.kind == TableRef::Kind::kStream
              ? ref.stream_name
              : ref.alias);
      if (ref.kind == TableRef::Kind::kStream) {
        auto schema = schemas_.Find(esp::StrToLower(ref.stream_name));
        if (schema.ok()) frame.schema = *schema;
      }
      frames.push_back(std::move(frame));
    }
    scopes_.push_back(std::move(frames));

    std::string out = "(select";
    if (query.distinct) out += " distinct";
    for (size_t i = 0; i < query.items.size(); ++i) {
      const SelectItem& item = query.items[i];
      // Output field names are derived from the spelling as written, so
      // they are part of the plan's observable output — verbatim.
      out += " (out " + RenderName(OutputFieldName(item, i)) + " " +
             Expression(*item.expr) + ")";
    }
    out += " (from";
    for (const TableRef& ref : query.from) out += " " + Table(ref);
    out += ")";
    if (query.where != nullptr) {
      out += " (where " + Predicate(*query.where, query) + ")";
    }
    if (!query.group_by.empty()) {
      out += " (group";
      for (const ExprPtr& key : query.group_by) {
        out += " " + Expression(*key);
      }
      out += ")";
    }
    if (query.having != nullptr) {
      out += " (having " + Expression(*query.having) + ")";
    }
    if (!query.order_by.empty()) {
      out += " (order";
      for (const OrderByItem& item : query.order_by) {
        out += " (" + Expression(*item.expr) +
               (item.descending ? " desc)" : " asc)");
      }
      out += ")";
    }
    if (query.limit.has_value()) {
      out += " (limit " + std::to_string(*query.limit) + ")";
    }
    out += ")";

    scopes_.pop_back();
    return out;
  }

 private:
  struct Frame {
    std::string alias;          // Lowercased effective alias.
    stream::SchemaRef schema;   // Null for derived tables.
  };

  std::string Table(const TableRef& ref) {
    if (ref.kind == TableRef::Kind::kStream) {
      std::string out =
          "(stream " + RenderName(esp::StrToLower(ref.stream_name));
      switch (ref.window.kind) {
        case WindowKind::kRange:
          out += " range:" + std::to_string(ref.window.range.micros()) +
                 ":" + std::to_string(ref.window.slide.micros());
          break;
        case WindowKind::kNow:
          out += " now";
          break;
        case WindowKind::kRows:
          out += " rows:" + std::to_string(ref.window.rows);
          break;
        case WindowKind::kUnbounded:
          out += " unbounded";
          break;
      }
      return out + ")";
    }
    return "(derived " + Query(*ref.subquery) + ")";
  }

  /// The top-level WHERE of a single-stream query: flatten the AND chain
  /// and sort it when every conjunct is provably total and boolean —
  /// three-valued AND is commutative in its value, but short-circuiting is
  /// not commutative in which runtime errors it surfaces, so a conjunct
  /// that could error pins the whole chain in written order.
  std::string Predicate(const Expr& where, const SelectQuery& query) {
    const Frame* frame = nullptr;
    if (query.from.size() == 1 && scopes_.back().size() == 1 &&
        scopes_.back()[0].schema != nullptr) {
      frame = &scopes_.back()[0];
    }
    if (frame == nullptr) return Expression(where);

    std::vector<const Expr*> conjuncts;
    FlattenAnd(where, conjuncts);
    if (conjuncts.size() < 2) return Expression(where);
    for (const Expr* conjunct : conjuncts) {
      if (!IsTotalPredicate(*conjunct, *frame)) return Expression(where);
    }
    std::vector<std::string> rendered;
    rendered.reserve(conjuncts.size());
    for (const Expr* conjunct : conjuncts) {
      rendered.push_back(Expression(*conjunct));
    }
    std::sort(rendered.begin(), rendered.end());
    std::string out = "(and*";
    for (const std::string& r : rendered) out += " " + r;
    return out + ")";
  }

  static void FlattenAnd(const Expr& expr, std::vector<const Expr*>& out) {
    if (expr.kind() == ExprKind::kBinary) {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      if (binary.op == BinaryOp::kAnd) {
        FlattenAnd(*binary.lhs, out);
        FlattenAnd(*binary.rhs, out);
        return;
      }
    }
    out.push_back(&expr);
  }

  /// Static type of a leaf operand (literal or column resolvable in
  /// `frame`); nullopt for anything that could fail or is not a leaf.
  static std::optional<DataType> SafeOperandType(const Expr& expr,
                                                const Frame& frame) {
    if (expr.kind() == ExprKind::kLiteral) {
      return static_cast<const LiteralExpr&>(expr).value.type();
    }
    if (expr.kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      if (!ref.qualifier.empty() &&
          !esp::StrEqualsIgnoreCase(ref.qualifier, frame.alias)) {
        return std::nullopt;
      }
      const auto index = frame.schema->IndexOf(ref.name);
      if (!index.has_value()) return std::nullopt;
      return frame.schema->field(*index).type;
    }
    return std::nullopt;
  }

  /// True when Value::Compare(lhs, rhs) cannot raise: a null operand is
  /// intercepted by three-valued comparison before Compare runs.
  static bool Comparable(DataType lhs, DataType rhs) {
    if (lhs == DataType::kNull || rhs == DataType::kNull) return true;
    if (stream::IsNumericType(lhs) && stream::IsNumericType(rhs)) return true;
    return lhs == rhs;
  }

  /// True when evaluating `expr` as an AND conjunct can neither raise a
  /// runtime error nor produce a non-boolean value (which AND would reject
  /// — but only when not short-circuited away, hence order-dependent).
  static bool IsTotalPredicate(const Expr& expr, const Frame& frame) {
    switch (expr.kind()) {
      case ExprKind::kLiteral: {
        const DataType type = SafeOperandType(expr, frame).value();
        return type == DataType::kBool || type == DataType::kNull;
      }
      case ExprKind::kColumnRef: {
        const auto type = SafeOperandType(expr, frame);
        return type.has_value() && *type == DataType::kBool;
      }
      case ExprKind::kUnary: {
        const auto& unary = static_cast<const UnaryExpr&>(expr);
        return unary.op == UnaryOp::kNot &&
               IsTotalPredicate(*unary.operand, frame);
      }
      case ExprKind::kBinary: {
        const auto& binary = static_cast<const BinaryExpr&>(expr);
        switch (binary.op) {
          case BinaryOp::kAnd:
          case BinaryOp::kOr:
            return IsTotalPredicate(*binary.lhs, frame) &&
                   IsTotalPredicate(*binary.rhs, frame);
          case BinaryOp::kEquals:
          case BinaryOp::kNotEquals:
            // Value::Equals is total over every type pair.
            return SafeOperandType(*binary.lhs, frame).has_value() &&
                   SafeOperandType(*binary.rhs, frame).has_value();
          case BinaryOp::kLess:
          case BinaryOp::kLessEquals:
          case BinaryOp::kGreater:
          case BinaryOp::kGreaterEquals: {
            const auto lhs = SafeOperandType(*binary.lhs, frame);
            const auto rhs = SafeOperandType(*binary.rhs, frame);
            return lhs.has_value() && rhs.has_value() &&
                   Comparable(*lhs, *rhs);
          }
          default:
            return false;  // Arithmetic can overflow / divide by zero.
        }
      }
      case ExprKind::kIsNull:
        return SafeOperandType(*static_cast<const IsNullExpr&>(expr).operand,
                               frame)
            .has_value();
      case ExprKind::kBetween: {
        const auto& between = static_cast<const BetweenExpr&>(expr);
        const auto value = SafeOperandType(*between.value, frame);
        const auto low = SafeOperandType(*between.low, frame);
        const auto high = SafeOperandType(*between.high, frame);
        return value.has_value() && low.has_value() && high.has_value() &&
               Comparable(*value, *low) && Comparable(*value, *high);
      }
      case ExprKind::kIn: {
        const auto& in = static_cast<const InExpr&>(expr);
        if (in.subquery != nullptr) return false;
        if (!SafeOperandType(*in.lhs, frame).has_value()) return false;
        for (const ExprPtr& item : in.list) {
          if (!SafeOperandType(*item, frame).has_value()) return false;
        }
        return true;
      }
      default:
        return false;
    }
  }

  /// True when the subtree is a pure function of literals that the runtime
  /// itself would evaluate with the same machinery — no columns, no
  /// subqueries, and no scalar functions (which carry no purity contract).
  static bool IsFoldable(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::kLiteral:
        return true;
      case ExprKind::kUnary:
        return IsFoldable(*static_cast<const UnaryExpr&>(expr).operand);
      case ExprKind::kBinary: {
        const auto& binary = static_cast<const BinaryExpr&>(expr);
        return IsFoldable(*binary.lhs) && IsFoldable(*binary.rhs);
      }
      case ExprKind::kIsNull:
        return IsFoldable(*static_cast<const IsNullExpr&>(expr).operand);
      case ExprKind::kBetween: {
        const auto& between = static_cast<const BetweenExpr&>(expr);
        return IsFoldable(*between.value) && IsFoldable(*between.low) &&
               IsFoldable(*between.high);
      }
      case ExprKind::kIn: {
        const auto& in = static_cast<const InExpr&>(expr);
        if (in.subquery != nullptr) return false;
        if (!IsFoldable(*in.lhs)) return false;
        for (const ExprPtr& item : in.list) {
          if (!IsFoldable(*item)) return false;
        }
        return true;
      }
      case ExprKind::kCase: {
        const auto& case_expr = static_cast<const CaseExpr&>(expr);
        for (const CaseExpr::WhenClause& when : case_expr.whens) {
          if (!IsFoldable(*when.condition) || !IsFoldable(*when.result)) {
            return false;
          }
        }
        return case_expr.else_result == nullptr ||
               IsFoldable(*case_expr.else_result);
      }
      default:
        return false;
    }
  }

  std::string Expression(const Expr& expr) {
    // Fold pure literal subtrees with the runtime's own evaluator; a
    // subtree that errors (1/0) stays structural so the plans keep their
    // distinct error behaviour.
    if (expr.kind() != ExprKind::kLiteral && IsFoldable(expr)) {
      internal::EvalContext ec;
      auto folded = internal::EvalExpr(expr, ec);
      if (folded.ok()) return RenderValue(*folded);
    }
    switch (expr.kind()) {
      case ExprKind::kLiteral:
        return RenderValue(static_cast<const LiteralExpr&>(expr).value);
      case ExprKind::kColumnRef:
        return Column(static_cast<const ColumnRefExpr&>(expr));
      case ExprKind::kStar:
        return "*";
      case ExprKind::kUnary: {
        const auto& unary = static_cast<const UnaryExpr&>(expr);
        return std::string(unary.op == UnaryOp::kNot ? "(not " : "(neg ") +
               Expression(*unary.operand) + ")";
      }
      case ExprKind::kBinary: {
        const auto& binary = static_cast<const BinaryExpr&>(expr);
        return std::string("(") + BinaryOpToString(binary.op) + " " +
               Expression(*binary.lhs) + " " + Expression(*binary.rhs) + ")";
      }
      case ExprKind::kFunctionCall: {
        const auto& call = static_cast<const FunctionCallExpr&>(expr);
        std::string out = "(fn " + esp::StrToLower(call.name);
        if (call.distinct) out += " distinct";
        for (const ExprPtr& arg : call.args) out += " " + Expression(*arg);
        return out + ")";
      }
      case ExprKind::kScalarSubquery:
        return "(subq " +
               Query(*static_cast<const ScalarSubqueryExpr&>(expr).query) +
               ")";
      case ExprKind::kQuantifiedComparison: {
        const auto& quantified =
            static_cast<const QuantifiedComparisonExpr&>(expr);
        return std::string("(quant ") + BinaryOpToString(quantified.op) +
               (quantified.quantifier == Quantifier::kAll ? " all "
                                                          : " any ") +
               Expression(*quantified.lhs) + " " +
               Query(*quantified.subquery) + ")";
      }
      case ExprKind::kIn: {
        const auto& in = static_cast<const InExpr&>(expr);
        std::string out = in.negated ? "(notin " : "(in ";
        out += Expression(*in.lhs);
        if (in.subquery != nullptr) {
          out += " " + Query(*in.subquery);
        } else {
          for (const ExprPtr& item : in.list) out += " " + Expression(*item);
        }
        return out + ")";
      }
      case ExprKind::kExists: {
        const auto& exists = static_cast<const ExistsExpr&>(expr);
        return std::string(exists.negated ? "(notexists " : "(exists ") +
               Query(*exists.subquery) + ")";
      }
      case ExprKind::kIsNull: {
        const auto& is_null = static_cast<const IsNullExpr&>(expr);
        return std::string(is_null.negated ? "(isnotnull " : "(isnull ") +
               Expression(*is_null.operand) + ")";
      }
      case ExprKind::kBetween: {
        const auto& between = static_cast<const BetweenExpr&>(expr);
        return std::string(between.negated ? "(notbetween " : "(between ") +
               Expression(*between.value) + " " + Expression(*between.low) +
               " " + Expression(*between.high) + ")";
      }
      case ExprKind::kCase: {
        const auto& case_expr = static_cast<const CaseExpr&>(expr);
        std::string out = "(case";
        for (const CaseExpr::WhenClause& when : case_expr.whens) {
          out += " (when " + Expression(*when.condition) + " " +
                 Expression(*when.result) + ")";
        }
        if (case_expr.else_result != nullptr) {
          out += " (else " + Expression(*case_expr.else_result) + ")";
        }
        return out + ")";
      }
    }
    return "(?)";
  }

  std::string Column(const ColumnRefExpr& ref) {
    std::string qualifier = "_";
    if (!ref.qualifier.empty()) {
      // Resolve the qualifier to (scope, frame) indices, innermost scope
      // first, so alias spelling never leaks into the fingerprint. An
      // unresolvable qualifier (invalid query) renders as spelled.
      bool resolved = false;
      for (size_t depth = 0; depth < scopes_.size() && !resolved; ++depth) {
        const std::vector<Frame>& frames =
            scopes_[scopes_.size() - 1 - depth];
        for (size_t f = 0; f < frames.size(); ++f) {
          if (esp::StrEqualsIgnoreCase(frames[f].alias, ref.qualifier)) {
            qualifier = std::to_string(depth) + "." + std::to_string(f);
            resolved = true;
            break;
          }
        }
      }
      if (!resolved) qualifier = esp::StrToLower(ref.qualifier);
    }
    return "(col " + qualifier + " " + RenderName(esp::StrToLower(ref.name)) +
           ")";
  }

  const SchemaCatalog& schemas_;
  /// Alias frames per query nesting level; back() is the innermost.
  std::vector<std::vector<Frame>> scopes_;
};

}  // namespace

StatusOr<std::string> FingerprintQuery(const SelectQuery& query,
                                       const SchemaCatalog& schemas) {
  // Validate stream references up front: an unknown stream cannot be
  // fingerprinted meaningfully (and cannot be registered either).
  for (const TableRef& ref : query.from) {
    if (ref.kind == TableRef::Kind::kStream &&
        !schemas.Contains(esp::StrToLower(ref.stream_name))) {
      return Status::NotFound("unknown stream '" + ref.stream_name +
                              "' in query");
    }
  }
  Renderer renderer(schemas);
  return renderer.Query(query);
}

}  // namespace esp::cql
