#ifndef ESP_CQL_CONTINUOUS_QUERY_H_
#define ESP_CQL_CONTINUOUS_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "common/time.h"
#include "cql/analyzer.h"
#include "cql/ast.h"
#include "cql/evaluator.h"
#include "stream/column.h"
#include "stream/tuple.h"

namespace esp::cql {

class IncrementalGroupedQuery;  // incremental_exec.h.
class QueryExecCache;           // expr_eval.h.

/// \brief A standing CQL query over one or more input streams.
///
/// This is the unit an ESP stage deploys: parse once, then per tick push the
/// newly-arrived tuples and Evaluate(now) to get the result relation at that
/// instant (CQL snapshot semantics). The query manages history retention
/// itself: it keeps exactly enough buffered input to cover the largest
/// window that references each stream and evicts the rest.
class ContinuousQuery {
 public:
  /// Parses and analyzes `query_text`. Every stream referenced by the query
  /// (including inside subqueries) must have a schema in `input_schemas`.
  static StatusOr<std::unique_ptr<ContinuousQuery>> Create(
      const std::string& query_text, const SchemaCatalog& input_schemas);

  /// Like Create but takes an already-parsed AST.
  static StatusOr<std::unique_ptr<ContinuousQuery>> CreateFromAst(
      std::unique_ptr<SelectQuery> query, const SchemaCatalog& input_schemas);

  ~ContinuousQuery();  // Out-of-line: members are forward-declared here.

  /// Appends one tuple to the named input stream. Tuples must arrive in
  /// non-decreasing timestamp order per stream.
  Status Push(const std::string& stream_name, stream::Tuple tuple);

  /// Evaluates the query at time `now` and returns its result relation
  /// (every output tuple stamped with `now`). Evaluation times must be
  /// non-decreasing. Eviction happens before evaluation, so re-evaluating at
  /// the same instant is allowed.
  StatusOr<stream::Relation> Evaluate(Timestamp now);

  const stream::SchemaRef& output_schema() const { return output_schema_; }
  const SelectQuery& query() const { return *query_; }

  /// Total tuples currently buffered across all input streams (observability
  /// and tests).
  size_t buffered() const;

  /// Serializes the mutable runtime state — every stream's retained history
  /// plus the insertion/evaluation clocks. The query text and schemas are
  /// configuration and are not serialized.
  void SaveState(ByteWriter& w) const;

  /// Restores state saved by SaveState into a query created from the same
  /// text and input schemas. Fails when the serialized streams do not match
  /// this query's stream set.
  Status LoadState(ByteReader& r);

 private:
  /// Retention policy for one referenced input stream, the union of every
  /// window that mentions it anywhere in the query.
  struct StreamState {
    std::string name;
    stream::SchemaRef schema;
    stream::Relation history;  // Retained, time-ordered; schema == `schema`.
    uint64_t base_seq = 0;     // All-time index of history[0] (evictions).
    Duration max_range;  // Largest RANGE window (NOW counts as zero).
    int64_t max_rows = 0;       // Largest ROWS window.
    bool unbounded = false;     // Any unbounded reference disables eviction.
    bool has_inserted = false;
    Timestamp last_insert;
    /// Columnar mirror of `history`, kept row-for-row in sync by
    /// SyncColumns() at each evaluation (incremental append/evict; full
    /// rebuild only after restore or a toggle flip). The evaluator and the
    /// incremental engine read it for the columnar fast paths.
    stream::ColumnarWindow columns;
    uint64_t columns_base = 0;  // All-time index of columns[0].
    bool columns_synced = false;
  };

  ContinuousQuery() = default;

  void Evict(Timestamp now);
  void SyncColumns(StreamState& state);

  std::unique_ptr<SelectQuery> query_;
  stream::SchemaRef output_schema_;
  std::vector<StreamState> streams_;
  Timestamp last_eval_;
  bool has_evaluated_ = false;

  /// Prepared-plan cache reused across ticks (keyed by this query's AST).
  std::unique_ptr<QueryExecCache> exec_cache_;
  /// Lazily built stream-view catalog, reused every tick (streams_ never
  /// resizes after construction, so the views stay valid).
  std::unique_ptr<Catalog> catalog_;
  /// Incremental engine for the provable grouped-aggregate shape; null when
  /// the query does not qualify or after a runtime fallback.
  std::unique_ptr<IncrementalGroupedQuery> engine_;
  size_t engine_stream_ = 0;  // Index into streams_ the engine consumes.
};

}  // namespace esp::cql

#endif  // ESP_CQL_CONTINUOUS_QUERY_H_
