#ifndef ESP_CQL_CONTINUOUS_QUERY_H_
#define ESP_CQL_CONTINUOUS_QUERY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "common/time.h"
#include "cql/analyzer.h"
#include "cql/ast.h"
#include "cql/evaluator.h"
#include "stream/column.h"
#include "stream/tuple.h"
#include "stream/window.h"

namespace esp::cql {

class IncrementalGroupedQuery;  // incremental_exec.h.
class QueryExecCache;           // expr_eval.h.

/// \brief Aggregated retention requirement for one input stream: the union
/// of every window clause that references it anywhere in a query (or, for
/// shared storage, across every query subscribed to the stream).
///
/// Retention satisfying a demand is *coarsest-common*: keeping more history
/// than any single window needs never changes results, because the
/// evaluator applies each reference's own window clause at evaluation time
/// (CQL snapshot semantics, cql/evaluator.h). That is the fact that makes
/// buffer sharing across queries exact rather than approximate.
struct WindowDemand {
  Duration max_range;  // Largest RANGE window + slide (NOW counts as zero).
  int64_t max_rows = 0;       // Largest ROWS window.
  bool unbounded = false;     // Any unbounded reference disables eviction.

  /// Widens this demand to also cover `spec`.
  void Absorb(const stream::WindowSpec& spec);
  /// Widens this demand to also cover everything `other` covers.
  void Absorb(const WindowDemand& other);
  /// True when retention satisfying this demand also satisfies `other`.
  bool Covers(const WindowDemand& other) const;

  bool operator==(const WindowDemand&) const = default;
};

/// \brief Retained history of one input stream plus its columnar mirror —
/// the storage a standing query evaluates over.
///
/// A ContinuousQuery owns one per referenced stream by default. The
/// shared-plan registry (cql/query_registry.h) instead owns one per
/// (stream, window family) and resolves every subscribed plan onto the same
/// instance, so a stream buffered once serves thousands of queries. In that
/// mode the owner pushes and evicts; the plans only read.
struct StreamWindowState {
  std::string name;  // Lowercased stream name.
  stream::SchemaRef schema;
  stream::Relation history;  // Retained, time-ordered; schema == `schema`.
  uint64_t base_seq = 0;     // All-time index of history[0] (evictions).
  WindowDemand demand;       // Retention requirement (union over readers).
  bool has_inserted = false;
  Timestamp last_insert;
  /// Columnar mirror of `history`, kept row-for-row in sync by
  /// SyncColumns() (incremental append/evict; full rebuild only after
  /// restore or a toggle flip). The evaluator and the incremental engine
  /// read it for the columnar fast paths.
  stream::ColumnarWindow columns;
  uint64_t columns_base = 0;  // All-time index of columns[0].
  bool columns_synced = false;

  /// Appends one tuple. Timestamps must be non-decreasing; the schema must
  /// equal `schema`.
  Status Push(stream::Tuple tuple);

  /// Drops tuples that can appear in no window of `demand` at any t' >=
  /// now. Callers evict only after every reader has evaluated at `now`.
  void Evict(Timestamp now);

  /// Brings the columnar mirror row-for-row in sync with `history` (no-op
  /// when already synced, O(delta) in steady state). While the columnar
  /// toggle is off the mirror is left cold instead.
  void SyncColumns();

  /// Serializes the mutable payload (clocks + history; the name is written
  /// by whoever owns the surrounding container, the schema and demand are
  /// configuration).
  void SaveState(ByteWriter& w) const;

  /// Restores a payload saved by SaveState. Resets base_seq and marks the
  /// mirror cold; the next SyncColumns rebuilds it.
  Status LoadState(ByteReader& r);
};

/// \brief Every stream referenced by `query` (including inside subqueries),
/// paired with the union of the window demands of its references, sorted by
/// lowercased stream name. The registry uses this for admission control and
/// shared-buffer demand bookkeeping without re-walking the AST itself.
std::vector<std::pair<std::string, WindowDemand>> CollectStreamDemands(
    const SelectQuery& query);

/// \brief A standing CQL query over one or more input streams.
///
/// This is the unit an ESP stage deploys: parse once, then per tick push the
/// newly-arrived tuples and Evaluate(now) to get the result relation at that
/// instant (CQL snapshot semantics). By default the query manages history
/// retention itself: it keeps exactly enough buffered input to cover the
/// largest window that references each stream and evicts the rest.
///
/// Alternatively a query can be created over *shared* window storage (the
/// StreamResolver overload of CreateFromAst): stream histories then belong
/// to an external owner — the multi-tenant registry — which pushes tuples
/// once for every subscribed plan and evicts after all of them evaluate.
class ContinuousQuery {
 public:
  /// Resolves one referenced stream to window storage. `demand` is this
  /// query's own retention requirement for the stream; the resolver widens
  /// the shared demand accordingly and returns storage that outlives the
  /// query. The returned state's schema must match the analysis schema.
  using StreamResolver = std::function<StatusOr<StreamWindowState*>(
      const std::string& name, const WindowDemand& demand)>;

  /// Parses and analyzes `query_text`. Every stream referenced by the query
  /// (including inside subqueries) must have a schema in `input_schemas`.
  static StatusOr<std::unique_ptr<ContinuousQuery>> Create(
      const std::string& query_text, const SchemaCatalog& input_schemas);

  /// Like Create but takes an already-parsed AST.
  static StatusOr<std::unique_ptr<ContinuousQuery>> CreateFromAst(
      std::unique_ptr<SelectQuery> query, const SchemaCatalog& input_schemas);

  /// Shared-storage variant: every referenced stream is resolved through
  /// `resolver` instead of buffered privately. Push() is then disabled
  /// (kFailedPrecondition) — the storage owner pushes — and Evaluate never
  /// evicts; the owner evicts once all readers of a buffer have evaluated.
  static StatusOr<std::unique_ptr<ContinuousQuery>> CreateFromAst(
      std::unique_ptr<SelectQuery> query, const SchemaCatalog& input_schemas,
      const StreamResolver& resolver);

  ~ContinuousQuery();  // Out-of-line: members are forward-declared here.

  /// Appends one tuple to the named input stream. Tuples must arrive in
  /// non-decreasing timestamp order per stream. Fails with
  /// kFailedPrecondition on a query over shared window storage.
  Status Push(const std::string& stream_name, stream::Tuple tuple);

  /// Evaluates the query at time `now` and returns its result relation
  /// (every output tuple stamped with `now`). Evaluation times must be
  /// non-decreasing. Eviction happens before evaluation, so re-evaluating at
  /// the same instant is allowed.
  StatusOr<stream::Relation> Evaluate(Timestamp now);

  const stream::SchemaRef& output_schema() const { return output_schema_; }
  const SelectQuery& query() const { return *query_; }

  /// True when this query's windows live in external shared storage.
  bool shares_windows() const { return shared_; }

  /// Total tuples currently buffered across all input streams (observability
  /// and tests). For a shared-storage query this counts the shared buffers,
  /// which other queries may be counting too.
  size_t buffered() const;

  /// Serializes the mutable runtime state — every stream's retained history
  /// plus the insertion/evaluation clocks. The query text and schemas are
  /// configuration and are not serialized. A shared-storage query writes
  /// only its clocks (zero streams): the histories belong to the registry,
  /// which checkpoints each buffer exactly once.
  void SaveState(ByteWriter& w) const;

  /// Restores state saved by SaveState into a query created from the same
  /// text and input schemas. Fails when the serialized streams do not match
  /// this query's stream set.
  Status LoadState(ByteReader& r);

 private:
  /// One referenced stream: either privately owned storage or a borrowed
  /// view into the registry's shared buffer. `state` always points at the
  /// live storage.
  struct Slot {
    std::unique_ptr<StreamWindowState> owned;  // Null in shared mode.
    StreamWindowState* state = nullptr;
  };

  ContinuousQuery() = default;

  static StatusOr<std::unique_ptr<ContinuousQuery>> Build(
      std::unique_ptr<SelectQuery> query, const SchemaCatalog& input_schemas,
      const StreamResolver* resolver);

  std::unique_ptr<SelectQuery> query_;
  stream::SchemaRef output_schema_;
  std::vector<Slot> streams_;
  bool shared_ = false;
  Timestamp last_eval_;
  bool has_evaluated_ = false;

  /// Prepared-plan cache reused across ticks (keyed by this query's AST).
  std::unique_ptr<QueryExecCache> exec_cache_;
  /// Lazily built stream-view catalog, reused every tick (streams_ never
  /// resizes after construction, so the views stay valid).
  std::unique_ptr<Catalog> catalog_;
  /// Incremental engine for the provable grouped-aggregate shape; null when
  /// the query does not qualify or after a runtime fallback.
  std::unique_ptr<IncrementalGroupedQuery> engine_;
  size_t engine_stream_ = 0;  // Index into streams_ the engine consumes.
};

}  // namespace esp::cql

#endif  // ESP_CQL_CONTINUOUS_QUERY_H_
