#include "cql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace esp::cql {

namespace {

bool IsIdentifierStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentifierChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Status LexError(const std::string& message, size_t offset) {
  return Status::ParseError(message + " at offset " + std::to_string(offset));
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();

  auto push = [&](TokenKind kind, size_t offset) {
    Token token;
    token.kind = kind;
    token.offset = offset;
    tokens.push_back(std::move(token));
  };

  while (i < n) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: -- to end of line.
    if (c == '-' && i + 1 < n && query[i + 1] == '-') {
      while (i < n && query[i] != '\n') ++i;
      continue;
    }
    if (IsIdentifierStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentifierChar(query[i])) ++i;
      const std::string word = query.substr(start, i - start);
      const std::string upper = StrToUpper(word);
      Token token;
      token.offset = start;
      if (IsReservedKeyword(upper)) {
        token.kind = TokenKind::kKeyword;
        token.text = upper;
      } else {
        token.kind = TokenKind::kIdentifier;
        token.text = word;
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      const size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) ++i;
      if (i < n && query[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
          ++i;
        }
      }
      if (i < n && (query[i] == 'e' || query[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (query[i] == '+' || query[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(query[i]))) {
          return LexError("malformed exponent", start);
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
          ++i;
        }
      }
      const std::string number = query.substr(start, i - start);
      Token token;
      token.offset = start;
      if (is_double) {
        token.kind = TokenKind::kDoubleLiteral;
        if (!StrToDouble(number, &token.double_value)) {
          return LexError("malformed number '" + number + "'", start);
        }
      } else {
        token.kind = TokenKind::kIntLiteral;
        if (!StrToInt64(number, &token.int_value)) {
          return LexError("malformed integer '" + number + "'", start);
        }
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      const size_t start = i;
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (query[i] == '\'') {
          if (i + 1 < n && query[i + 1] == '\'') {
            value += '\'';  // Escaped quote.
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          value += query[i];
          ++i;
        }
      }
      if (!closed) return LexError("unterminated string literal", start);
      Token token;
      token.kind = TokenKind::kStringLiteral;
      token.text = std::move(value);
      token.offset = start;
      tokens.push_back(std::move(token));
      continue;
    }
    const size_t offset = i;
    switch (c) {
      case ',':
        push(TokenKind::kComma, offset);
        ++i;
        break;
      case '(':
        push(TokenKind::kLeftParen, offset);
        ++i;
        break;
      case ')':
        push(TokenKind::kRightParen, offset);
        ++i;
        break;
      case '[':
        push(TokenKind::kLeftBracket, offset);
        ++i;
        break;
      case ']':
        push(TokenKind::kRightBracket, offset);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, offset);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, offset);
        ++i;
        break;
      case '+':
        push(TokenKind::kPlus, offset);
        ++i;
        break;
      case '-':
        push(TokenKind::kMinus, offset);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, offset);
        ++i;
        break;
      case '%':
        push(TokenKind::kPercent, offset);
        ++i;
        break;
      case ';':
        push(TokenKind::kSemicolon, offset);
        ++i;
        break;
      case '=':
        push(TokenKind::kEquals, offset);
        ++i;
        break;
      case '!':
        if (i + 1 < n && query[i + 1] == '=') {
          push(TokenKind::kNotEquals, offset);
          i += 2;
        } else {
          return LexError("unexpected '!'", offset);
        }
        break;
      case '<':
        if (i + 1 < n && query[i + 1] == '=') {
          push(TokenKind::kLessEquals, offset);
          i += 2;
        } else if (i + 1 < n && query[i + 1] == '>') {
          push(TokenKind::kNotEquals, offset);
          i += 2;
        } else {
          push(TokenKind::kLess, offset);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && query[i + 1] == '=') {
          push(TokenKind::kGreaterEquals, offset);
          i += 2;
        } else {
          push(TokenKind::kGreater, offset);
          ++i;
        }
        break;
      default:
        return LexError(std::string("unexpected character '") + c + "'",
                        offset);
    }
  }
  push(TokenKind::kEof, n);
  return tokens;
}

}  // namespace esp::cql
