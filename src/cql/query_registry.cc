#include "cql/query_registry.h"

#include <chrono>
#include <utility>

#include "common/string_util.h"
#include "cql/fingerprint.h"
#include "cql/parser.h"

namespace esp::cql {

using stream::Relation;
using stream::Tuple;

namespace {
constexpr uint8_t kStateVersion = 1;
}  // namespace

std::string QueryServingStats::ToString() const {
  std::string out =
      "queries: " + std::to_string(subscriptions) + " subscriptions, " +
      std::to_string(physical_plans) + " plans, " +
      std::to_string(shared_buffers) + " buffers (" +
      std::to_string(buffered_tuples) + " tuples), " +
      std::to_string(dedup_saved_evals) + " evals saved, " +
      std::to_string(rejected_total) + " rejected";
  for (const TenantStats& tenant : tenants) {
    out += "\n  tenant " + tenant.tenant + ": " +
           std::to_string(tenant.queries) + " queries, " +
           std::to_string(tenant.evals) + " evals (" +
           tenant.eval_time.ToString() + "), " +
           std::to_string(tenant.eval_errors) + " errors, " +
           std::to_string(tenant.rejected) + " rejected" +
           (tenant.throttled ? ", THROTTLED" : "");
  }
  return out;
}

QueryRegistry::QueryRegistry(Options options)
    : options_(std::move(options)) {}

QueryRegistry::~QueryRegistry() = default;

Status QueryRegistry::AddStream(const std::string& name,
                                stream::SchemaRef schema) {
  if (!subs_.empty()) {
    return Status::FailedPrecondition(
        "streams must be added before subscriptions");
  }
  const std::string lower = esp::StrToLower(name);
  if (catalog_.Contains(lower)) {
    return Status::AlreadyExists("stream '" + name + "' already added");
  }
  if (schema == nullptr) {
    return Status::InvalidArgument("stream '" + name + "' has no schema");
  }
  catalog_.AddStream(lower, std::move(schema));
  stream_names_.push_back(lower);
  return Status::OK();
}

void QueryRegistry::SetTenantBudgets(const std::string& tenant,
                                     TenantBudgets budgets) {
  TenantRuntime& runtime = tenants_[tenant];
  runtime.has_override = true;
  runtime.override_budgets = budgets;
  runtime.stats.tenant = tenant;
}

const TenantBudgets& QueryRegistry::BudgetsFor(
    const TenantRuntime& tenant) const {
  return tenant.has_override ? tenant.override_budgets
                             : options_.default_budgets;
}

Status QueryRegistry::Admit(
    TenantRuntime& tenant,
    const std::vector<std::pair<std::string, WindowDemand>>& demands) const {
  const TenantBudgets& budgets = BudgetsFor(tenant);
  if (budgets.max_queries > 0 &&
      tenant.stats.queries >= budgets.max_queries) {
    return Status::ResourceExhausted(
        "tenant '" + tenant.stats.tenant + "' is at its query budget (" +
        std::to_string(budgets.max_queries) + ")");
  }
  if (tenant.stats.throttled) {
    return Status::ResourceExhausted(
        "tenant '" + tenant.stats.tenant +
        "' exceeded its eval-time budget last tick (" +
        tenant.stats.last_tick_eval_time.ToString() + " > " +
        BudgetsFor(tenant).max_eval_time.ToString() +
        "); not admitting new queries");
  }
  for (const auto& [stream, demand] : demands) {
    if (demand.unbounded && !budgets.allow_unbounded) {
      return Status::ResourceExhausted(
          "tenant '" + tenant.stats.tenant +
          "' may not register unbounded windows (stream '" + stream + "')");
    }
    if (!budgets.max_window_range.IsZero() &&
        demand.max_range > budgets.max_window_range) {
      return Status::ResourceExhausted(
          "tenant '" + tenant.stats.tenant + "' window of " +
          demand.max_range.ToString() + " on stream '" + stream +
          "' exceeds its range budget (" +
          budgets.max_window_range.ToString() + ")");
    }
    if (budgets.max_window_rows > 0 &&
        demand.max_rows > budgets.max_window_rows) {
      return Status::ResourceExhausted(
          "tenant '" + tenant.stats.tenant + "' window of " +
          std::to_string(demand.max_rows) + " rows on stream '" + stream +
          "' exceeds its rows budget (" +
          std::to_string(budgets.max_window_rows) + ")");
    }
  }
  return Status::OK();
}

std::string QueryRegistry::BufferKey(const std::string& stream,
                                     bool unbounded) {
  // Bounded windows of every size share one coarsest-common buffer; any
  // unbounded reference lives in a second family so it cannot disable
  // eviction for the bounded readers.
  return stream + std::string(1, '\0') + (unbounded ? 'u' : 'b');
}

StatusOr<StreamWindowState*> QueryRegistry::ResolveBuffer(
    const std::string& stream, const WindowDemand& demand) {
  ESP_ASSIGN_OR_RETURN(stream::SchemaRef schema, catalog_.Find(stream));
  const std::string key = BufferKey(stream, demand.unbounded);
  auto it = buffers_.find(key);
  if (it == buffers_.end()) {
    Buffer buffer;
    buffer.key = key;
    buffer.state = std::make_unique<StreamWindowState>();
    buffer.state->name = stream;
    buffer.state->schema = schema;
    buffer.state->history = Relation(schema);
    buffer.state->demand = demand;
    it = buffers_.emplace(key, std::move(buffer)).first;
  } else {
    it->second.state->demand.Absorb(demand);
  }
  return it->second.state.get();
}

void QueryRegistry::RecomputeBufferDemands() {
  for (auto& [key, buffer] : buffers_) {
    WindowDemand demand;
    buffer.readers = 0;
    for (const auto& plan : plans_) {
      for (const auto& [stream, plan_demand] : plan->demands) {
        if (BufferKey(stream, plan_demand.unbounded) != key) continue;
        demand.Absorb(plan_demand);
        ++buffer.readers;
      }
    }
    // Shrinking retention is safe: the next eviction simply reclaims the
    // rows nobody's window can reach any more.
    if (buffer.readers > 0) buffer.state->demand = demand;
  }
}

void QueryRegistry::DropReaderlessBuffers() {
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (it->second.readers == 0) {
      it = buffers_.erase(it);
    } else {
      ++it;
    }
  }
}

Status QueryRegistry::Register(const std::string& tenant,
                               const std::string& name,
                               const std::string& query_text) {
  return RegisterInternal(tenant, name, query_text, /*enforce_budgets=*/true);
}

Status QueryRegistry::RegisterInternal(const std::string& tenant_id,
                                       const std::string& name,
                                       const std::string& query_text,
                                       bool enforce_budgets) {
  if (sub_by_name_.count(name) > 0) {
    return Status::AlreadyExists("a subscription named '" + name +
                                 "' is already registered");
  }
  TenantRuntime& tenant = tenants_[tenant_id];
  tenant.stats.tenant = tenant_id;

  ESP_ASSIGN_OR_RETURN(std::unique_ptr<SelectQuery> query,
                       ParseQuery(query_text));
  const std::vector<std::pair<std::string, WindowDemand>> demands =
      CollectStreamDemands(*query);
  if (enforce_budgets) {
    Status admitted = Admit(tenant, demands);
    if (!admitted.ok()) {
      ++tenant.stats.rejected;
      ++rejected_total_;
      return admitted;
    }
  }

  // Plan dedupe: equal fingerprints are proven result-identical, so the
  // subscription attaches to the existing physical plan.
  std::string fingerprint;
  PhysicalPlan* plan = nullptr;
  if (options_.share_plans) {
    ESP_ASSIGN_OR_RETURN(fingerprint, FingerprintQuery(*query, catalog_));
    auto it = plan_by_fingerprint_.find(fingerprint);
    if (it != plan_by_fingerprint_.end()) plan = it->second;
  }

  if (plan == nullptr) {
    auto physical = std::make_unique<PhysicalPlan>();
    physical->fingerprint = fingerprint;
    physical->demands = demands;
    StatusOr<std::unique_ptr<ContinuousQuery>> built =
        options_.share_windows
            ? ContinuousQuery::CreateFromAst(
                  std::move(query), catalog_,
                  [this](const std::string& stream,
                         const WindowDemand& demand) {
                    return ResolveBuffer(stream, demand);
                  })
            : ContinuousQuery::CreateFromAst(std::move(query), catalog_);
    if (!built.ok()) {
      // A failed build may have widened or created buffers; rebuild the
      // reader counts and demands from the surviving plans.
      RecomputeBufferDemands();
      DropReaderlessBuffers();
      return built.status();
    }
    physical->query = std::move(*built);
    plan = physical.get();
    plans_.push_back(std::move(physical));
    if (options_.share_plans) plan_by_fingerprint_[fingerprint] = plan;
    RecomputeBufferDemands();
  }

  auto sub = std::make_unique<Subscription>();
  sub->tenant = tenant_id;
  sub->name = name;
  sub->text = query_text;
  sub->plan = plan;
  ++plan->subscribers;
  ++tenant.stats.queries;
  sub_by_name_[name] = subs_.size();
  subs_.push_back(std::move(sub));
  return Status::OK();
}

Status QueryRegistry::Unregister(const std::string& name) {
  auto it = sub_by_name_.find(name);
  if (it == sub_by_name_.end()) {
    return Status::NotFound("no subscription named '" + name + "'");
  }
  const size_t index = it->second;
  Subscription& sub = *subs_[index];
  PhysicalPlan* plan = sub.plan;

  auto tenant_it = tenants_.find(sub.tenant);
  if (tenant_it != tenants_.end() && tenant_it->second.stats.queries > 0) {
    --tenant_it->second.stats.queries;
  }

  sub_by_name_.erase(it);
  subs_.erase(subs_.begin() + static_cast<std::ptrdiff_t>(index));
  for (auto& [sub_name, sub_index] : sub_by_name_) {
    if (sub_index > index) --sub_index;
  }

  if (--plan->subscribers == 0) {
    if (!plan->fingerprint.empty()) {
      plan_by_fingerprint_.erase(plan->fingerprint);
    }
    for (auto plan_it = plans_.begin(); plan_it != plans_.end(); ++plan_it) {
      if (plan_it->get() == plan) {
        plans_.erase(plan_it);
        break;
      }
    }
    RecomputeBufferDemands();
    DropReaderlessBuffers();
  }
  return Status::OK();
}

bool QueryRegistry::Contains(const std::string& name) const {
  return sub_by_name_.count(name) > 0;
}

StatusOr<stream::SchemaRef> QueryRegistry::OutputSchema(
    const std::string& name) const {
  auto it = sub_by_name_.find(name);
  if (it == sub_by_name_.end()) {
    return Status::NotFound("no subscription named '" + name + "'");
  }
  return subs_[it->second]->plan->query->output_schema();
}

Status QueryRegistry::Push(const std::string& stream, Tuple tuple) {
  const std::string lower = esp::StrToLower(stream);
  if (!catalog_.Contains(lower)) {
    return Status::NotFound("unknown stream '" + stream + "'");
  }
  if (options_.share_windows) {
    // At most two buffers per stream (bounded + unbounded family): the
    // amplification a naive engine pays per subscribed query collapses to
    // a constant.
    Buffer* bounded = nullptr;
    Buffer* unbounded = nullptr;
    auto it = buffers_.find(BufferKey(lower, false));
    if (it != buffers_.end()) bounded = &it->second;
    it = buffers_.find(BufferKey(lower, true));
    if (it != buffers_.end()) unbounded = &it->second;
    if (bounded != nullptr && unbounded != nullptr) {
      ESP_RETURN_IF_ERROR(bounded->state->Push(tuple));
      return unbounded->state->Push(std::move(tuple));
    }
    if (bounded != nullptr) return bounded->state->Push(std::move(tuple));
    if (unbounded != nullptr) return unbounded->state->Push(std::move(tuple));
    return Status::OK();  // Nobody reads this stream right now.
  }
  // Naive mode: every plan buffers privately, so every plan reading the
  // stream pays its own copy.
  Status status = Status::OK();
  for (const auto& plan : plans_) {
    bool reads = false;
    for (const auto& [name, demand] : plan->demands) {
      if (name == lower) {
        reads = true;
        break;
      }
    }
    if (!reads) continue;
    Status pushed = plan->query->Push(lower, tuple);
    if (!pushed.ok() && status.ok()) status = pushed;
  }
  return status;
}

int64_t QueryRegistry::NowNanos() const {
  if (now_nanos_) return now_nanos_();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void QueryRegistry::SetEvalTimerForTesting(
    std::function<int64_t()> now_nanos) {
  now_nanos_ = std::move(now_nanos);
}

StatusOr<std::vector<SubscriptionResult>> QueryRegistry::Tick(Timestamp now) {
  // Pass 1: evaluate each physical plan exactly once, in registration
  // order.
  struct PlanOutcome {
    Status status;
    std::shared_ptr<const Relation> result;
    Duration elapsed;
  };
  std::unordered_map<const PhysicalPlan*, PlanOutcome> outcomes;
  outcomes.reserve(plans_.size());
  for (const auto& plan : plans_) {
    PlanOutcome outcome;
    const int64_t start = NowNanos();
    StatusOr<Relation> result = plan->query->Evaluate(now);
    outcome.elapsed = Duration::Micros((NowNanos() - start) / 1000);
    if (result.ok()) {
      outcome.result = std::make_shared<const Relation>(std::move(*result));
    } else {
      outcome.status = result.status();
    }
    outcomes.emplace(plan.get(), std::move(outcome));
    ++plan_evals_;
  }

  // Pass 2: fan results out in subscription registration order; the plan's
  // relation is shared, never copied.
  std::vector<SubscriptionResult> results;
  results.reserve(subs_.size());
  std::map<std::string, Duration> tick_eval_time;
  for (const auto& sub : subs_) {
    const PlanOutcome& outcome = outcomes[sub->plan];
    SubscriptionResult result;
    result.tenant = sub->tenant;
    result.name = sub->name;
    result.status = outcome.status;
    result.result = outcome.result;
    results.push_back(std::move(result));
    ++fanout_results_;

    TenantRuntime& tenant = tenants_[sub->tenant];
    tenant.stats.tenant = sub->tenant;
    ++tenant.stats.evals;
    if (!outcome.status.ok()) ++tenant.stats.eval_errors;
    // Naive-cost attribution: every subscriber is charged the full plan
    // evaluation, so sharing never hides a tenant's standalone footprint.
    tenant.stats.eval_time = tenant.stats.eval_time + outcome.elapsed;
    tick_eval_time[sub->tenant] =
        tick_eval_time[sub->tenant] + outcome.elapsed;
  }

  // Pass 3: evict shared buffers only after every reader has evaluated —
  // the shared-mode equivalent of the per-query "retention horizon trails
  // consumption" contract.
  if (options_.share_windows) {
    for (auto& [key, buffer] : buffers_) buffer.state->Evict(now);
  }

  // Pass 4: refresh eval-time throttling.
  for (auto& [tenant_id, tenant] : tenants_) {
    const auto it = tick_eval_time.find(tenant_id);
    tenant.stats.last_tick_eval_time =
        it != tick_eval_time.end() ? it->second : Duration::Zero();
    const TenantBudgets& budgets = BudgetsFor(tenant);
    tenant.stats.throttled =
        !budgets.max_eval_time.IsZero() &&
        tenant.stats.last_tick_eval_time > budgets.max_eval_time;
  }

  ++ticks_;
  return results;
}

QueryServingStats QueryRegistry::Stats() const {
  QueryServingStats stats;
  stats.subscriptions = subs_.size();
  stats.physical_plans = plans_.size();
  stats.shared_buffers = buffers_.size();
  stats.buffered_tuples = BufferedTuples();
  stats.rejected_total = rejected_total_;
  stats.ticks = ticks_;
  stats.plan_evals = plan_evals_;
  stats.fanout_results = fanout_results_;
  stats.dedup_saved_evals = fanout_results_ - plan_evals_;
  for (const auto& [tenant_id, tenant] : tenants_) {
    stats.tenants.push_back(tenant.stats);
  }
  return stats;
}

size_t QueryRegistry::BufferedTuples() const {
  size_t total = 0;
  if (options_.share_windows) {
    for (const auto& [key, buffer] : buffers_) {
      total += buffer.state->history.size();
    }
  } else {
    for (const auto& plan : plans_) total += plan->query->buffered();
  }
  return total;
}

void QueryRegistry::SaveState(ByteWriter& w) const {
  w.WriteU8(kStateVersion);
  // Subscriptions first: LoadState replays them to rebuild the identical
  // plan/buffer structure before any contents are read back.
  w.WriteU32(static_cast<uint32_t>(subs_.size()));
  for (const auto& sub : subs_) {
    w.WriteString(sub->tenant);
    w.WriteString(sub->name);
    w.WriteString(sub->text);
  }
  w.WriteU32(static_cast<uint32_t>(buffers_.size()));
  for (const auto& [key, buffer] : buffers_) {
    w.WriteString(key);
    buffer.state->SaveState(w);
  }
  // Plan clocks, in plan registration order (a pure function of the
  // subscription sequence, so replay reconstructs the same order). Shared
  // plans write clocks only; owned-mode plans write their histories here.
  w.WriteU32(static_cast<uint32_t>(plans_.size()));
  for (const auto& plan : plans_) plan->query->SaveState(w);
}

Status QueryRegistry::LoadState(ByteReader& r) {
  ESP_ASSIGN_OR_RETURN(const uint8_t version, r.ReadU8());
  if (version != kStateVersion) {
    return Status::ParseError("unsupported query-registry state version " +
                              std::to_string(version));
  }
  // Tear down live subscriptions; the snapshot replaces them wholesale.
  subs_.clear();
  plans_.clear();
  sub_by_name_.clear();
  plan_by_fingerprint_.clear();
  buffers_.clear();
  for (auto& [tenant_id, tenant] : tenants_) {
    tenant.stats.queries = 0;
    tenant.stats.throttled = false;
  }

  ESP_ASSIGN_OR_RETURN(const uint32_t sub_count, r.ReadU32());
  for (uint32_t i = 0; i < sub_count; ++i) {
    ESP_ASSIGN_OR_RETURN(const std::string tenant, r.ReadString());
    ESP_ASSIGN_OR_RETURN(const std::string name, r.ReadString());
    ESP_ASSIGN_OR_RETURN(const std::string text, r.ReadString());
    // Budgets were enforced when the snapshot was taken; replay must not
    // re-reject (e.g. a tenant throttled at checkpoint time).
    ESP_RETURN_IF_ERROR(
        RegisterInternal(tenant, name, text, /*enforce_budgets=*/false));
  }

  ESP_ASSIGN_OR_RETURN(const uint32_t buffer_count, r.ReadU32());
  if (options_.share_windows &&
      buffer_count != static_cast<uint32_t>(buffers_.size())) {
    return Status::ParseError(
        "serialized registry has " + std::to_string(buffer_count) +
        " buffers, replay built " + std::to_string(buffers_.size()));
  }
  for (uint32_t i = 0; i < buffer_count; ++i) {
    ESP_ASSIGN_OR_RETURN(const std::string key, r.ReadString());
    auto it = buffers_.find(key);
    if (it == buffers_.end()) {
      return Status::ParseError("serialized registry buffer '" + key +
                                "' has no reader after replay");
    }
    ESP_RETURN_IF_ERROR(it->second.state->LoadState(r));
  }

  ESP_ASSIGN_OR_RETURN(const uint32_t plan_count, r.ReadU32());
  if (plan_count != static_cast<uint32_t>(plans_.size())) {
    return Status::ParseError(
        "serialized registry has " + std::to_string(plan_count) +
        " plans, replay built " + std::to_string(plans_.size()));
  }
  for (uint32_t i = 0; i < plan_count; ++i) {
    ESP_RETURN_IF_ERROR(plans_[i]->query->LoadState(r));
  }
  return Status::OK();
}

}  // namespace esp::cql
