#ifndef ESP_CQL_EXPR_EVAL_H_
#define ESP_CQL_EXPR_EVAL_H_

// Internal expression-evaluation machinery shared between the relational
// evaluator (evaluator.cc) and the incremental grouped-aggregate engine
// (incremental_exec.cc). Include only from cql implementation files and
// white-box tests; everything here may change without notice.

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "cql/ast.h"
#include "cql/evaluator.h"
#include "cql/scalar_function.h"
#include "stream/aggregate.h"
#include "stream/column.h"
#include "stream/ops.h"
#include "stream/simd_kernels.h"
#include "stream/tuple.h"

namespace esp::cql::internal {

/// Per-execution pool of aggregator instances keyed by aggregate-call AST
/// node: resettable aggregators are reused across groups instead of
/// heap-allocated per group. Owned by one ExecuteQuery invocation.
using AggScratchMap =
    std::unordered_map<const void*, std::unique_ptr<stream::Aggregator>>;

/// The FROM clause of one query evaluation: per-frame alias/schema plus each
/// frame's column offset into the flattened joined row.
struct FromContext {
  struct Frame {
    std::string alias;
    stream::SchemaRef schema;
    size_t offset = 0;
  };
  std::vector<Frame> frames;
  size_t total_columns = 0;
};

using Row = std::vector<stream::Value>;

/// Everything an expression needs to evaluate: the current row (or the
/// representative row of the current group), the group's rows when in
/// grouped evaluation, and the enclosing query's context for correlated
/// references.
struct EvalContext {
  const Catalog* catalog = nullptr;
  Timestamp now;
  const FromContext* from = nullptr;
  const Row* row = nullptr;
  const std::vector<const Row*>* group_rows = nullptr;  // Grouped mode only.
  /// Pre-finalized aggregate results, indexed by kAggSlot slots. Set only by
  /// the incremental engine's emit path.
  const std::vector<stream::Value>* agg_values = nullptr;
  /// Per-standing-query prepared-plan cache threaded through subquery
  /// executions; null for one-shot ExecuteQuery calls.
  QueryExecCache* cache = nullptr;
  /// Aggregator reuse pool for the current grouped evaluation (may be null).
  AggScratchMap* agg_scratch = nullptr;
  const EvalContext* outer = nullptr;
};

struct BoundExpr {
  enum class Kind {
    kConst,      // Folded constant.
    kSlot,       // Column bound to an absolute index into the joined row.
    kFallback,   // Interpretive escape hatch: delegates to EvalExpr.
    kNot,
    kNegate,
    kArith,      // bin_op in {Add, Subtract, Multiply, Divide, Modulo}.
    kCompare,    // bin_op in the comparison range.
    kLogical,    // bin_op in {And, Or}, three-valued with short-circuit.
    kScalarFn,   // Registry function; never folded (no purity contract).
    kAggregate,  // Aggregate call; children[0] is the compiled argument.
    kAggSlot,    // Pre-finalized aggregate read from EvalContext::agg_values.
    kIsNull,
    kBetween,    // children = {value, low, high}.
    kCase,       // children = {cond, result}... [+ else when has_else].
    kInList,     // children = {lhs, item...}; IN over a literal/expr list.
  };

  Kind kind = Kind::kFallback;
  stream::Value constant;                      // kConst.
  size_t slot = 0;                             // kSlot / kAggSlot.
  BinaryOp bin_op = BinaryOp::kAnd;            // kArith/kCompare/kLogical.
  bool negated = false;                        // kIsNull/kBetween/kInList.
  bool has_else = false;                       // kCase.
  const ScalarFunction* fn = nullptr;          // kScalarFn.
  const FunctionCallExpr* agg_call = nullptr;  // kAggregate.
  const Expr* fallback = nullptr;              // kFallback.
  std::vector<BoundExpr> children;
};

/// Binds `expr` against the innermost FROM layout. Anything that cannot be
/// bound losslessly compiles to a fallback node.
BoundExpr CompileExpr(const Expr& expr, const FromContext& from);
BoundExpr MakeFallback(const Expr& expr);

/// Evaluates a compiled tree / an AST node under `ec`.
StatusOr<stream::Value> EvalBound(const BoundExpr& bound,
                                  const EvalContext& ec);
StatusOr<stream::Value> EvalExpr(const Expr& expr, const EvalContext& ec);

/// SQL truthiness for predicate positions: NULL decides as false.
StatusOr<bool> ToDecision(const stream::Value& value, const char* where);

/// Records every slot read a compiled tree can make. `opaque` is set when
/// the tree contains a fallback node, whose column reads the compiler
/// cannot see.
void CollectSlotReads(const BoundExpr& bound, std::vector<size_t>& slots,
                      bool& opaque);

bool QueryUsesAggregation(const SelectQuery& query);

/// Applies DISTINCT / ORDER BY / LIMIT to the projected output.
StatusOr<stream::Relation> FinalizeOutput(const SelectQuery& query,
                                          stream::Relation output);

/// One FROM entry materialized for execution: a half-open index range
/// [lo, hi) over `rel` (the catalog's relation for sliceable stream windows,
/// or `owned` for derived tables and disordered histories).
struct FromInput {
  stream::Relation owned;
  const stream::Relation* rel = nullptr;
  size_t lo = 0, hi = 0;
  bool movable = false;  // True when `owned` backs [lo, hi).
  /// Columnar mirror of `rel` (same row indexing), when the catalog has one
  /// registered and the history is sliced in place. Null otherwise.
  const stream::ColumnarWindow* columns = nullptr;
};

/// Columnar fast-path plan for the single-stream shapes the admission rules
/// in columnar_exec.cc can prove bitwise-identical: batch WHERE evaluation
/// over typed columns, and (for aggregation queries) a one-pass grouped
/// accumulator that never materializes rows. Built once per PreparedQuery by
/// EnsureColumnarPlan; execution falls back to the row path on anything the
/// plan cannot handle at runtime (demoted columns, evaluation errors).
struct ColumnarPlan {
  /// Postfix program over a trit stack (see simd_kernels.h) computing the
  /// WHERE verdict for a whole column range at once. Leaves are
  /// column-vs-constant comparisons and IS [NOT] NULL tests; interior ops
  /// are Kleene AND/OR/NOT — total functions, so batch evaluation cannot
  /// change which error (none) the row path would have raised.
  struct BatchOp {
    enum class Kind : uint8_t { kCompare, kIsNull, kAnd, kOr, kNot };
    Kind kind = Kind::kCompare;
    size_t slot = 0;                           // kCompare / kIsNull.
    stream::simd::CmpOp op = stream::simd::CmpOp::kEq;  // kCompare.
    bool rhs_is_int = false;                   // kCompare: constant type.
    int64_t rhs_i = 0;
    double rhs_d = 0.0;
    bool negated = false;                      // kIsNull.
  };

  enum class WhereMode : uint8_t { kNone, kBatch, kPerRow };

  bool aggregated = false;
  WhereMode where_mode = WhereMode::kNone;
  std::vector<BatchOp> where_program;  // Valid when where_mode == kBatch.

  // Aggregation mode (grouped or scalar-aggregate):
  std::vector<size_t> key_slots;  // GROUP BY keys (plain columns only).
  struct AggSpec {
    enum class Kind : uint8_t { kCount, kSum, kAvg, kMin, kMax };
    Kind kind = Kind::kCount;
    bool has_arg = false;  // false: '*' (a non-null marker per row).
    BoundExpr arg;         // Pure row expression.
    bool arg_is_slot = false;
    size_t arg_slot = 0;
  };
  std::vector<AggSpec> specs;
  std::vector<BoundExpr> items;       // Aggregates lowered to kAggSlot.
  std::optional<BoundExpr> having;    // Likewise.
  bool needs_row = false;  // Any stage requires a materialized scratch row.

  /// Legacy aggregator state, replicated field for field (see
  /// stream/aggregate.cc): the fold order and type bookkeeping decide the
  /// output bits, so the accumulator mirrors them exactly.
  struct AggAccum {
    double sum = 0.0;
    int64_t nonnull = 0;
    bool saw_value = false;
    bool all_integers = true;
    stream::Value best;  // min/max winner so far.
    void Reset() {
      sum = 0.0;
      nonnull = 0;
      saw_value = false;
      all_integers = true;
      best = stream::Value::Null();
    }
  };

  struct GroupState {
    std::vector<stream::Value> key;
    std::vector<AggAccum> accums;
    size_t first_row = 0;  // Live column index of the representative row.
    uint64_t gen = 0;
  };

  /// Reusable execution-time buffers (one columnar execution at a time per
  /// plan, same single-thread contract as ExecScratch).
  struct Scratch {
    std::vector<stream::simd::Trit> mask;
    std::vector<std::vector<stream::simd::Trit>> stack;
    Row scratch_row;
    Row key_scratch;
    Row repr;
    std::vector<stream::Value> agg_values;
    std::vector<GroupState> groups;
    std::unordered_map<std::vector<stream::Value>, size_t,
                       stream::ValueVectorHash, stream::ValueVectorEq>
        group_index;
    std::vector<size_t> touched;
    uint64_t gen = 0;
  };
  Scratch scratch;
};

/// One query's execution plan, compiled once and reused every tick: the
/// inferred output schema plus every clause bound against the FROM layout.
struct PreparedQuery {
  stream::SchemaRef output_schema;
  FromContext from;  // The layout the plan was compiled against.
  std::optional<BoundExpr> where;
  std::vector<BoundExpr> items;
  std::vector<BoundExpr> group_keys;
  std::optional<BoundExpr> having;
  std::vector<char> move_item;  // Non-aggregate projection move plan.

  /// Columnar fast-path plan, built lazily on the first columnar-eligible
  /// execution (columnar_exec.h). `columnar_checked` gates the one-time
  /// admission pass; nullptr once checked means the shape is inadmissible
  /// and the row path runs unconditionally.
  std::unique_ptr<ColumnarPlan> columnar;
  bool columnar_checked = false;

  /// Reusable execution-time containers. A standing query evaluates from one
  /// thread at a time and a query never appears as its own (transitive)
  /// subquery, so one scratch per plan is never used re-entrantly; nested
  /// subquery executions hit their own plans' scratches. Heap-allocated so
  /// references into it survive the plan being moved into the cache.
  struct GroupSlot {
    std::vector<const Row*> rows;
    uint64_t gen = 0;  // Execution generation that last touched this slot.
  };
  struct ExecScratch {
    std::vector<FromInput> inputs;
    FromContext from;
    std::vector<Row> rows;
    std::vector<Row> filtered;
    /// Group-by state persists across executions: `group_index` maps key ->
    /// slot and is never cleared (sensor vocabularies are tiny and
    /// recurring), slots stale-checked against `gen`. `touched` records the
    /// slots hit by the current execution in first-seen order, which is the
    /// emit order.
    std::vector<GroupSlot> groups;
    std::unordered_map<std::vector<stream::Value>, size_t,
                       stream::ValueVectorHash, stream::ValueVectorEq>
        group_index;
    std::vector<size_t> touched;
    Row key_scratch;
    uint64_t gen = 0;
    AggScratchMap agg_scratch;
  };
  ExecScratch& EnsureScratch() {
    if (scratch == nullptr) scratch = std::make_unique<ExecScratch>();
    return *scratch;
  }
  std::unique_ptr<ExecScratch> scratch;
};

/// True when `from` presents the identical layout `prep` was compiled for
/// (same aliases, schema instances, offsets). Standing queries evaluate the
/// same streams every tick, so this holds; a mismatch bypasses the cache.
bool LayoutMatches(const PreparedQuery& prep, const FromContext& from);

}  // namespace esp::cql::internal

namespace esp::cql {

/// \brief Per-standing-query cache of prepared plans, keyed by AST node.
///
/// A ContinuousQuery owns one and passes it to ExecuteQuery every tick;
/// correlated subqueries (e.g. the paper's Query 3 HAVING ... >= ALL(...))
/// then skip re-analysis and re-compilation on every group of every tick.
/// Keys are AST node addresses, valid because the query owns its AST; the
/// cache must not outlive it. Not thread-safe: a standing query evaluates
/// from one thread at a time.
class QueryExecCache {
 public:
  internal::PreparedQuery* Find(const SelectQuery* query) {
    auto it = prepared_.find(query);
    return it == prepared_.end() ? nullptr : it->second.get();
  }
  internal::PreparedQuery* Insert(const SelectQuery* query,
                                  internal::PreparedQuery prep) {
    auto& slot = prepared_[query];
    slot = std::make_unique<internal::PreparedQuery>(std::move(prep));
    return slot.get();
  }

 private:
  std::unordered_map<const SelectQuery*,
                     std::unique_ptr<internal::PreparedQuery>>
      prepared_;
};

}  // namespace esp::cql

#endif  // ESP_CQL_EXPR_EVAL_H_
