#ifndef ESP_CQL_COLUMNAR_EXEC_H_
#define ESP_CQL_COLUMNAR_EXEC_H_

// Internal columnar execution machinery: admission, batch WHERE programs,
// and the one-pass grouped-aggregate executor over ColumnarWindow ranges.
// Include only from cql implementation files and white-box tests.
//
// The contract mirrors the incremental engine's: a plan is admitted only
// when columnar execution provably produces bitwise-identical output to the
// legacy row path, and execution returns nullopt on anything it cannot
// prove at runtime (demoted columns, evaluation errors) — the caller then
// runs the untouched row path, which reproduces genuine errors identically.

#include <optional>
#include <vector>

#include "cql/expr_eval.h"
#include "stream/column.h"

namespace esp::cql::internal {

/// One-time columnar admission for `prep` (idempotent; gated by
/// prep.columnar_checked). On success prep.columnar holds the plan:
/// aggregation queries get the full one-pass executor, plain projections get
/// a batch-WHERE premask when the predicate compiles to a batch program.
void EnsureColumnarPlan(PreparedQuery& prep, const SelectQuery& query);

/// Compiles a bound WHERE tree into a postfix batch program over trits.
/// Admitted leaves are column-vs-numeric-constant comparisons and
/// IS [NOT] NULL slot tests; interior nodes are Kleene AND/OR/NOT. Returns
/// false (leaving `out` unspecified) for anything else.
bool CompileBatchWhere(const BoundExpr& where,
                       std::vector<ColumnarPlan::BatchOp>& out);

/// Evaluates a batch program over cols[lo, hi), writing one trit per row
/// into `result`. Returns false when a referenced column's runtime storage
/// cannot be batch-compared (demoted / non-numeric) — the caller must fall
/// back to per-row evaluation. `stack` is reusable scratch.
bool EvalBatchProgram(const std::vector<ColumnarPlan::BatchOp>& program,
                      const stream::ColumnarWindow& cols, size_t lo,
                      size_t hi,
                      std::vector<std::vector<stream::simd::Trit>>& stack,
                      std::vector<stream::simd::Trit>& result);

/// Runs plan->where_program over cols[lo, hi) into plan->scratch.mask and
/// returns a pointer to it, or nullptr when runtime-ineligible.
const std::vector<stream::simd::Trit>* TryBatchWhere(
    ColumnarPlan& plan, const stream::ColumnarWindow& cols, size_t lo,
    size_t hi);

/// Executes an admitted aggregation plan (prep.columnar->aggregated) over
/// cols[lo, hi). `base` is the execution's root EvalContext (catalog, now,
/// from, cache, outer) — rows/groups are filled in per group. Returns the
/// un-finalized output relation (the caller applies FinalizeOutput), or
/// nullopt when the row path must run instead.
std::optional<stream::Relation> ExecuteColumnarAggregate(
    PreparedQuery& prep, const stream::ColumnarWindow& cols, size_t lo,
    size_t hi, const EvalContext& base);

}  // namespace esp::cql::internal

#endif  // ESP_CQL_COLUMNAR_EXEC_H_
