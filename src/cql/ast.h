#ifndef ESP_CQL_AST_H_
#define ESP_CQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stream/value.h"
#include "stream/window.h"

namespace esp::cql {

struct SelectQuery;

/// \brief Discriminator for Expr subclasses; the evaluator dispatches on it.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,
  kUnary,
  kBinary,
  kFunctionCall,
  kScalarSubquery,
  kQuantifiedComparison,
  kIn,
  kExists,
  kIsNull,
  kBetween,
  kCase,
};

/// \brief Base class for all scalar/boolean expressions in a query.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind() const { return kind_; }

  /// Re-renders the expression as CQL text (used in tests and error
  /// messages; parses back to an equivalent tree).
  virtual std::string ToString() const = 0;

 private:
  ExprKind kind_;
};

using ExprPtr = std::unique_ptr<Expr>;

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(stream::Value value)
      : Expr(ExprKind::kLiteral), value(std::move(value)) {}
  std::string ToString() const override;

  stream::Value value;
};

class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name)
      : Expr(ExprKind::kColumnRef),
        qualifier(std::move(qualifier)),
        name(std::move(name)) {}
  std::string ToString() const override;

  std::string qualifier;  // Empty when unqualified.
  std::string name;
};

/// `*` as used in `SELECT *` and `count(*)`.
class StarExpr : public Expr {
 public:
  StarExpr() : Expr(ExprKind::kStar) {}
  std::string ToString() const override { return "*"; }
};

enum class UnaryOp { kNot, kNegate };

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op(op), operand(std::move(operand)) {}
  std::string ToString() const override;

  UnaryOp op;
  ExprPtr operand;
};

enum class BinaryOp {
  kAdd,
  kSubtract,
  kMultiply,
  kDivide,
  kModulo,
  kEquals,
  kNotEquals,
  kLess,
  kLessEquals,
  kGreater,
  kGreaterEquals,
  kAnd,
  kOr,
};

/// Renders the operator as CQL text ("+", ">=", "AND", ...).
const char* BinaryOpToString(BinaryOp op);

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kBinary),
        op(op),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  std::string ToString() const override;

  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// A call that may be a scalar function or an aggregate; which one is
/// decided by name lookup (aggregate registry first) during analysis.
class FunctionCallExpr : public Expr {
 public:
  FunctionCallExpr(std::string name, bool distinct, std::vector<ExprPtr> args)
      : Expr(ExprKind::kFunctionCall),
        name(std::move(name)),
        distinct(distinct),
        args(std::move(args)) {}
  std::string ToString() const override;

  /// True for count(*): exactly one argument and it is `*`.
  bool IsStarArg() const {
    return args.size() == 1 && args[0]->kind() == ExprKind::kStar;
  }

  std::string name;
  bool distinct;
  std::vector<ExprPtr> args;
};

class ScalarSubqueryExpr : public Expr {
 public:
  explicit ScalarSubqueryExpr(std::unique_ptr<SelectQuery> query);
  ~ScalarSubqueryExpr() override;
  std::string ToString() const override;

  std::unique_ptr<SelectQuery> query;
};

enum class Quantifier { kAll, kAny };

/// `expr op ALL(subquery)` / `expr op ANY(subquery)` — Query 3's HAVING.
class QuantifiedComparisonExpr : public Expr {
 public:
  QuantifiedComparisonExpr(BinaryOp op, ExprPtr lhs, Quantifier quantifier,
                           std::unique_ptr<SelectQuery> subquery);
  ~QuantifiedComparisonExpr() override;
  std::string ToString() const override;

  BinaryOp op;
  ExprPtr lhs;
  Quantifier quantifier;
  std::unique_ptr<SelectQuery> subquery;
};

/// `expr [NOT] IN (subquery)` or `expr [NOT] IN (v1, v2, ...)`.
class InExpr : public Expr {
 public:
  InExpr(ExprPtr lhs, bool negated, std::unique_ptr<SelectQuery> subquery,
         std::vector<ExprPtr> list);
  ~InExpr() override;
  std::string ToString() const override;

  ExprPtr lhs;
  bool negated;
  std::unique_ptr<SelectQuery> subquery;  // Null when using `list`.
  std::vector<ExprPtr> list;
};

class ExistsExpr : public Expr {
 public:
  ExistsExpr(bool negated, std::unique_ptr<SelectQuery> subquery);
  ~ExistsExpr() override;
  std::string ToString() const override;

  bool negated;
  std::unique_ptr<SelectQuery> subquery;
};

class IsNullExpr : public Expr {
 public:
  IsNullExpr(bool negated, ExprPtr operand)
      : Expr(ExprKind::kIsNull), negated(negated), operand(std::move(operand)) {}
  std::string ToString() const override;

  bool negated;
  ExprPtr operand;
};

class BetweenExpr : public Expr {
 public:
  BetweenExpr(bool negated, ExprPtr value, ExprPtr low, ExprPtr high)
      : Expr(ExprKind::kBetween),
        negated(negated),
        value(std::move(value)),
        low(std::move(low)),
        high(std::move(high)) {}
  std::string ToString() const override;

  bool negated;
  ExprPtr value;
  ExprPtr low;
  ExprPtr high;
};

/// Searched CASE: `CASE WHEN cond THEN result ... [ELSE result] END`.
class CaseExpr : public Expr {
 public:
  struct WhenClause {
    ExprPtr condition;
    ExprPtr result;
  };

  CaseExpr(std::vector<WhenClause> whens, ExprPtr else_result)
      : Expr(ExprKind::kCase),
        whens(std::move(whens)),
        else_result(std::move(else_result)) {}
  std::string ToString() const override;

  std::vector<WhenClause> whens;
  ExprPtr else_result;  // May be null (implicit ELSE NULL).
};

/// \brief One item of the SELECT list.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // Empty when no AS clause.

  std::string ToString() const;
};

/// \brief One entry of the FROM clause: either a windowed stream reference
/// or a derived table (subquery).
struct TableRef {
  enum class Kind { kStream, kSubquery };

  Kind kind = Kind::kStream;
  std::string stream_name;                // kStream.
  stream::WindowSpec window;              // kStream; default Unbounded.
  std::unique_ptr<SelectQuery> subquery;  // kSubquery.
  std::string alias;  // Defaults to stream_name for kStream; required for
                      // kSubquery in standard SQL but we synthesize one.

  std::string ToString() const;
};

struct OrderByItem {
  ExprPtr expr;
  bool descending = false;
};

/// \brief A parsed SELECT query (the only statement form CQL stages use).
struct SelectQuery {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;  // Empty for FROM-less SELECT (one-row input).
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;

  std::string ToString() const;
};

}  // namespace esp::cql

#endif  // ESP_CQL_AST_H_
