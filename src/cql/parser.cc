#include "cql/parser.h"

#include "common/string_util.h"
#include "common/time.h"
#include "cql/lexer.h"

namespace esp::cql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::unique_ptr<SelectQuery>> ParseStatement() {
    ESP_ASSIGN_OR_RETURN(std::unique_ptr<SelectQuery> query, ParseSelect());
    Accept(TokenKind::kSemicolon);
    ESP_RETURN_IF_ERROR(ExpectEof());
    return query;
  }

  StatusOr<ExprPtr> ParseStandaloneExpression() {
    ESP_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    ESP_RETURN_IF_ERROR(ExpectEof());
    return expr;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t index = position_ + ahead;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }

  const Token& Advance() {
    const Token& token = Peek();
    if (position_ + 1 < tokens_.size()) ++position_;
    return token;
  }

  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      Advance();
      return true;
    }
    return false;
  }

  bool AcceptKeyword(const char* word) {
    if (Peek().IsKeyword(word)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!Accept(kind)) {
      return Error(std::string("expected ") + what);
    }
    return Status::OK();
  }

  Status ExpectKeyword(const char* word) {
    if (!AcceptKeyword(word)) {
      return Error(std::string("expected ") + word);
    }
    return Status::OK();
  }

  Status ExpectEof() {
    if (Peek().kind != TokenKind::kEof) {
      return Error("unexpected trailing input");
    }
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " near '" + Peek().ToString() +
                              "' (offset " + std::to_string(Peek().offset) +
                              ")");
  }

  // --- statement structure -------------------------------------------------

  StatusOr<std::unique_ptr<SelectQuery>> ParseSelect() {
    ESP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto query = std::make_unique<SelectQuery>();
    query->distinct = AcceptKeyword("DISTINCT");

    // Select list.
    do {
      SelectItem item;
      if (Peek().kind == TokenKind::kStar) {
        Advance();
        item.expr = std::make_unique<StarExpr>();
      } else {
        ESP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          ESP_ASSIGN_OR_RETURN(item.alias, ParseIdentifier("alias"));
        } else if (Peek().kind == TokenKind::kIdentifier) {
          item.alias = Advance().text;  // Bare alias without AS.
        }
      }
      query->items.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));

    if (AcceptKeyword("FROM")) {
      do {
        ESP_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        query->from.push_back(std::move(ref));
      } while (Accept(TokenKind::kComma));
    }

    if (AcceptKeyword("WHERE")) {
      ESP_ASSIGN_OR_RETURN(query->where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      ESP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        ESP_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
        query->group_by.push_back(std::move(expr));
      } while (Accept(TokenKind::kComma));
    }
    if (AcceptKeyword("HAVING")) {
      ESP_ASSIGN_OR_RETURN(query->having, ParseExpr());
    }
    if (AcceptKeyword("ORDER")) {
      ESP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderByItem item;
        ESP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        query->order_by.push_back(std::move(item));
      } while (Accept(TokenKind::kComma));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("expected integer LIMIT");
      }
      query->limit = Advance().int_value;
    }
    return query;
  }

  StatusOr<TableRef> ParseTableRef() {
    TableRef ref;
    if (Peek().kind == TokenKind::kLeftParen) {
      Advance();
      ref.kind = TableRef::Kind::kSubquery;
      ESP_ASSIGN_OR_RETURN(ref.subquery, ParseSelect());
      ESP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
      if (AcceptKeyword("AS")) {
        ESP_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier("derived-table alias"));
      } else if (Peek().kind == TokenKind::kIdentifier) {
        ref.alias = Advance().text;
      }
      return ref;
    }
    ref.kind = TableRef::Kind::kStream;
    ESP_ASSIGN_OR_RETURN(ref.stream_name, ParseIdentifier("stream name"));
    ref.alias = ref.stream_name;
    if (Peek().kind == TokenKind::kIdentifier) {
      ref.alias = Advance().text;  // Optional alias, e.g. `merge_input s`.
    } else if (AcceptKeyword("AS")) {
      ESP_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier("stream alias"));
    }
    if (Peek().kind == TokenKind::kLeftBracket) {
      ESP_ASSIGN_OR_RETURN(ref.window, ParseWindow());
    }
    return ref;
  }

  StatusOr<stream::WindowSpec> ParseWindow() {
    ESP_RETURN_IF_ERROR(Expect(TokenKind::kLeftBracket, "'['"));
    stream::WindowSpec spec;
    if (AcceptKeyword("RANGE")) {
      ESP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      if (Peek().kind != TokenKind::kStringLiteral) {
        return Error("expected quoted range, e.g. '5 sec' or 'NOW'");
      }
      const std::string range_text = Advance().text;
      ESP_ASSIGN_OR_RETURN(Duration range, ParseDuration(range_text));
      spec = stream::WindowSpec::Range(range);
      if (AcceptKeyword("SLIDE")) {
        ESP_RETURN_IF_ERROR(ExpectKeyword("BY"));
        if (Peek().kind != TokenKind::kStringLiteral) {
          return Error("expected quoted slide, e.g. '1 sec'");
        }
        ESP_ASSIGN_OR_RETURN(Duration slide, ParseDuration(Advance().text));
        if (slide.micros() <= 0) return Error("slide must be positive");
        spec = stream::WindowSpec::RangeSlide(range, slide);
      }
    } else if (AcceptKeyword("ROWS")) {
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("expected row count");
      }
      const int64_t rows = Advance().int_value;
      if (rows <= 0) return Error("row count must be positive");
      spec = stream::WindowSpec::Rows(rows);
    } else if (AcceptKeyword("UNBOUNDED")) {
      spec = stream::WindowSpec::Unbounded();
    } else {
      return Error("expected RANGE, ROWS, or UNBOUNDED window");
    }
    ESP_RETURN_IF_ERROR(Expect(TokenKind::kRightBracket, "']'"));
    return spec;
  }

  StatusOr<std::string> ParseIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  // --- expressions, by descending precedence -------------------------------

  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    ESP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      ESP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAnd() {
    ESP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      ESP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      ESP_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
    }
    return ParsePredicate();
  }

  /// Comparison and SQL predicate suffixes (IS NULL, BETWEEN, IN).
  StatusOr<ExprPtr> ParsePredicate() {
    ESP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

    // IS [NOT] NULL.
    if (AcceptKeyword("IS")) {
      const bool negated = AcceptKeyword("NOT");
      ESP_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return ExprPtr(std::make_unique<IsNullExpr>(negated, std::move(lhs)));
    }

    // [NOT] BETWEEN a AND b / [NOT] IN (...).
    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN"))) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("BETWEEN")) {
      ESP_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
      ESP_RETURN_IF_ERROR(ExpectKeyword("AND"));
      ESP_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
      return ExprPtr(std::make_unique<BetweenExpr>(
          negated, std::move(lhs), std::move(low), std::move(high)));
    }
    if (AcceptKeyword("IN")) {
      ESP_RETURN_IF_ERROR(Expect(TokenKind::kLeftParen, "'('"));
      if (Peek().IsKeyword("SELECT")) {
        ESP_ASSIGN_OR_RETURN(std::unique_ptr<SelectQuery> subquery,
                             ParseSelect());
        ESP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
        return ExprPtr(std::make_unique<InExpr>(std::move(lhs), negated,
                                                std::move(subquery),
                                                std::vector<ExprPtr>()));
      }
      std::vector<ExprPtr> list;
      do {
        ESP_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        list.push_back(std::move(item));
      } while (Accept(TokenKind::kComma));
      ESP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
      return ExprPtr(std::make_unique<InExpr>(std::move(lhs), negated, nullptr,
                                              std::move(list)));
    }

    // Plain or quantified comparison.
    BinaryOp op;
    if (!PeekComparisonOp(&op)) return lhs;
    Advance();
    if (Peek().IsKeyword("ALL") || Peek().IsKeyword("ANY")) {
      const Quantifier quantifier =
          Advance().text == "ALL" ? Quantifier::kAll : Quantifier::kAny;
      ESP_RETURN_IF_ERROR(Expect(TokenKind::kLeftParen, "'('"));
      ESP_ASSIGN_OR_RETURN(std::unique_ptr<SelectQuery> subquery,
                           ParseSelect());
      ESP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
      return ExprPtr(std::make_unique<QuantifiedComparisonExpr>(
          op, std::move(lhs), quantifier, std::move(subquery)));
    }
    ESP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return ExprPtr(
        std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs)));
  }

  bool PeekComparisonOp(BinaryOp* op) const {
    switch (Peek().kind) {
      case TokenKind::kEquals:
        *op = BinaryOp::kEquals;
        return true;
      case TokenKind::kNotEquals:
        *op = BinaryOp::kNotEquals;
        return true;
      case TokenKind::kLess:
        *op = BinaryOp::kLess;
        return true;
      case TokenKind::kLessEquals:
        *op = BinaryOp::kLessEquals;
        return true;
      case TokenKind::kGreater:
        *op = BinaryOp::kGreater;
        return true;
      case TokenKind::kGreaterEquals:
        *op = BinaryOp::kGreaterEquals;
        return true;
      default:
        return false;
    }
  }

  StatusOr<ExprPtr> ParseAdditive() {
    ESP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSubtract;
      } else {
        return lhs;
      }
      Advance();
      ESP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseMultiplicative() {
    ESP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMultiply;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDivide;
      } else if (Peek().kind == TokenKind::kPercent) {
        op = BinaryOp::kModulo;
      } else {
        return lhs;
      }
      Advance();
      ESP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      ESP_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kNegate, std::move(operand)));
    }
    Accept(TokenKind::kPlus);  // Unary plus is a no-op.
    return ParsePrimary();
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIntLiteral: {
        const int64_t v = Advance().int_value;
        return ExprPtr(std::make_unique<LiteralExpr>(stream::Value::Int64(v)));
      }
      case TokenKind::kDoubleLiteral: {
        const double v = Advance().double_value;
        return ExprPtr(std::make_unique<LiteralExpr>(stream::Value::Double(v)));
      }
      case TokenKind::kStringLiteral: {
        std::string v = Advance().text;
        return ExprPtr(
            std::make_unique<LiteralExpr>(stream::Value::String(std::move(v))));
      }
      case TokenKind::kKeyword: {
        if (token.IsKeyword("TRUE")) {
          Advance();
          return ExprPtr(
              std::make_unique<LiteralExpr>(stream::Value::Bool(true)));
        }
        if (token.IsKeyword("FALSE")) {
          Advance();
          return ExprPtr(
              std::make_unique<LiteralExpr>(stream::Value::Bool(false)));
        }
        if (token.IsKeyword("NULL")) {
          Advance();
          return ExprPtr(std::make_unique<LiteralExpr>(stream::Value::Null()));
        }
        if (token.IsKeyword("CASE")) return ParseCase();
        if (token.IsKeyword("EXISTS") || token.IsKeyword("NOT")) {
          const bool negated = AcceptKeyword("NOT");
          ESP_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
          ESP_RETURN_IF_ERROR(Expect(TokenKind::kLeftParen, "'('"));
          ESP_ASSIGN_OR_RETURN(std::unique_ptr<SelectQuery> subquery,
                               ParseSelect());
          ESP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
          return ExprPtr(
              std::make_unique<ExistsExpr>(negated, std::move(subquery)));
        }
        return Error("unexpected keyword in expression");
      }
      case TokenKind::kLeftParen: {
        Advance();
        if (Peek().IsKeyword("SELECT")) {
          ESP_ASSIGN_OR_RETURN(std::unique_ptr<SelectQuery> subquery,
                               ParseSelect());
          ESP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
          return ExprPtr(
              std::make_unique<ScalarSubqueryExpr>(std::move(subquery)));
        }
        ESP_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        ESP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
        return inner;
      }
      case TokenKind::kIdentifier: {
        // Function call, qualified column, or bare column.
        if (Peek(1).kind == TokenKind::kLeftParen) {
          return ParseFunctionCall();
        }
        std::string first = Advance().text;
        if (Accept(TokenKind::kDot)) {
          if (Peek().kind == TokenKind::kStar) {
            Advance();
            // alias.* is only meaningful in select lists; we model it as a
            // bare star for simplicity (qualified stars are rare in CQL).
            return ExprPtr(std::make_unique<StarExpr>());
          }
          ESP_ASSIGN_OR_RETURN(std::string column,
                               ParseIdentifier("column name"));
          return ExprPtr(std::make_unique<ColumnRefExpr>(std::move(first),
                                                         std::move(column)));
        }
        return ExprPtr(
            std::make_unique<ColumnRefExpr>("", std::move(first)));
      }
      default:
        return Error("unexpected token in expression");
    }
  }

  StatusOr<ExprPtr> ParseFunctionCall() {
    ESP_ASSIGN_OR_RETURN(std::string name, ParseIdentifier("function name"));
    ESP_RETURN_IF_ERROR(Expect(TokenKind::kLeftParen, "'('"));
    const bool distinct = AcceptKeyword("DISTINCT");
    std::vector<ExprPtr> args;
    if (Peek().kind != TokenKind::kRightParen) {
      do {
        if (Peek().kind == TokenKind::kStar) {
          Advance();
          args.push_back(std::make_unique<StarExpr>());
        } else {
          ESP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
        }
      } while (Accept(TokenKind::kComma));
    }
    ESP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
    return ExprPtr(std::make_unique<FunctionCallExpr>(
        std::move(name), distinct, std::move(args)));
  }

  StatusOr<ExprPtr> ParseCase() {
    ESP_RETURN_IF_ERROR(ExpectKeyword("CASE"));
    std::vector<CaseExpr::WhenClause> whens;
    while (AcceptKeyword("WHEN")) {
      CaseExpr::WhenClause clause;
      ESP_ASSIGN_OR_RETURN(clause.condition, ParseExpr());
      ESP_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      ESP_ASSIGN_OR_RETURN(clause.result, ParseExpr());
      whens.push_back(std::move(clause));
    }
    if (whens.empty()) return Error("CASE requires at least one WHEN");
    ExprPtr else_result;
    if (AcceptKeyword("ELSE")) {
      ESP_ASSIGN_OR_RETURN(else_result, ParseExpr());
    }
    ESP_RETURN_IF_ERROR(ExpectKeyword("END"));
    return ExprPtr(
        std::make_unique<CaseExpr>(std::move(whens), std::move(else_result)));
  }

  std::vector<Token> tokens_;
  size_t position_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<SelectQuery>> ParseQuery(const std::string& text) {
  ESP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

StatusOr<ExprPtr> ParseExpression(const std::string& text) {
  ESP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace esp::cql
