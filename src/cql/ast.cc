#include "cql/ast.h"

#include "common/string_util.h"

namespace esp::cql {

std::string LiteralExpr::ToString() const {
  if (value.type() == stream::DataType::kString) {
    std::string escaped;
    for (char c : value.string_value()) {
      if (c == '\'') escaped += '\'';
      escaped += c;
    }
    return "'" + escaped + "'";
  }
  return value.ToString();
}

std::string ColumnRefExpr::ToString() const {
  return qualifier.empty() ? name : qualifier + "." + name;
}

std::string UnaryExpr::ToString() const {
  switch (op) {
    case UnaryOp::kNot:
      // Self-parenthesized so the rendering stays valid in operand
      // positions (NOT binds looser than comparisons in the grammar).
      return "(NOT " + operand->ToString() + ")";
    case UnaryOp::kNegate:
      return "-(" + operand->ToString() + ")";
  }
  return "?";
}

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSubtract:
      return "-";
    case BinaryOp::kMultiply:
      return "*";
    case BinaryOp::kDivide:
      return "/";
    case BinaryOp::kModulo:
      return "%";
    case BinaryOp::kEquals:
      return "=";
    case BinaryOp::kNotEquals:
      return "!=";
    case BinaryOp::kLess:
      return "<";
    case BinaryOp::kLessEquals:
      return "<=";
    case BinaryOp::kGreater:
      return ">";
    case BinaryOp::kGreaterEquals:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::string BinaryExpr::ToString() const {
  return "(" + lhs->ToString() + " " + BinaryOpToString(op) + " " +
         rhs->ToString() + ")";
}

std::string FunctionCallExpr::ToString() const {
  std::string result = name + "(";
  if (distinct) result += "distinct ";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) result += ", ";
    result += args[i]->ToString();
  }
  result += ")";
  return result;
}

ScalarSubqueryExpr::ScalarSubqueryExpr(std::unique_ptr<SelectQuery> query)
    : Expr(ExprKind::kScalarSubquery), query(std::move(query)) {}
ScalarSubqueryExpr::~ScalarSubqueryExpr() = default;

std::string ScalarSubqueryExpr::ToString() const {
  return "(" + query->ToString() + ")";
}

QuantifiedComparisonExpr::QuantifiedComparisonExpr(
    BinaryOp op, ExprPtr lhs, Quantifier quantifier,
    std::unique_ptr<SelectQuery> subquery)
    : Expr(ExprKind::kQuantifiedComparison),
      op(op),
      lhs(std::move(lhs)),
      quantifier(quantifier),
      subquery(std::move(subquery)) {}
QuantifiedComparisonExpr::~QuantifiedComparisonExpr() = default;

std::string QuantifiedComparisonExpr::ToString() const {
  return "(" + lhs->ToString() + " " + BinaryOpToString(op) + " " +
         (quantifier == Quantifier::kAll ? "ALL" : "ANY") + "(" +
         subquery->ToString() + "))";
}

InExpr::InExpr(ExprPtr lhs, bool negated,
               std::unique_ptr<SelectQuery> subquery, std::vector<ExprPtr> list)
    : Expr(ExprKind::kIn),
      lhs(std::move(lhs)),
      negated(negated),
      subquery(std::move(subquery)),
      list(std::move(list)) {}
InExpr::~InExpr() = default;

std::string InExpr::ToString() const {
  std::string result = "(" + lhs->ToString();
  if (negated) result += " NOT";
  result += " IN (";
  if (subquery != nullptr) {
    result += subquery->ToString();
  } else {
    for (size_t i = 0; i < list.size(); ++i) {
      if (i > 0) result += ", ";
      result += list[i]->ToString();
    }
  }
  result += "))";
  return result;
}

ExistsExpr::ExistsExpr(bool negated, std::unique_ptr<SelectQuery> subquery)
    : Expr(ExprKind::kExists), negated(negated), subquery(std::move(subquery)) {}
ExistsExpr::~ExistsExpr() = default;

std::string ExistsExpr::ToString() const {
  return std::string(negated ? "NOT " : "") + "EXISTS (" +
         subquery->ToString() + ")";
}

std::string IsNullExpr::ToString() const {
  return "(" + operand->ToString() + " IS " + (negated ? "NOT " : "") +
         "NULL)";
}

std::string BetweenExpr::ToString() const {
  return "(" + value->ToString() + (negated ? " NOT" : "") + " BETWEEN " +
         low->ToString() + " AND " + high->ToString() + ")";
}

std::string CaseExpr::ToString() const {
  std::string result = "CASE";
  for (const WhenClause& clause : whens) {
    result += " WHEN " + clause.condition->ToString() + " THEN " +
              clause.result->ToString();
  }
  if (else_result != nullptr) {
    result += " ELSE " + else_result->ToString();
  }
  result += " END";
  return result;
}

std::string SelectItem::ToString() const {
  std::string result = expr->ToString();
  if (!alias.empty()) result += " AS " + alias;
  return result;
}

std::string TableRef::ToString() const {
  std::string result;
  if (kind == Kind::kStream) {
    result = stream_name;
    if (!alias.empty() && !esp::StrEqualsIgnoreCase(alias, stream_name)) {
      result += " " + alias;
    }
    if (window.kind != stream::WindowKind::kUnbounded) {
      result += " " + window.ToString();
    }
  } else {
    result = "(" + subquery->ToString() + ")";
    if (!alias.empty()) result += " AS " + alias;
  }
  return result;
}

std::string SelectQuery::ToString() const {
  std::string result = "SELECT ";
  if (distinct) result += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) result += ", ";
    result += items[i].ToString();
  }
  if (!from.empty()) {
    result += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) result += ", ";
      result += from[i].ToString();
    }
  }
  if (where != nullptr) result += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    result += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) result += ", ";
      result += group_by[i]->ToString();
    }
  }
  if (having != nullptr) result += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    result += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) result += ", ";
      result += order_by[i].expr->ToString();
      if (order_by[i].descending) result += " DESC";
    }
  }
  if (limit.has_value()) result += " LIMIT " + std::to_string(*limit);
  return result;
}

}  // namespace esp::cql
