#include "cql/token.h"

#include "common/string_util.h"

namespace esp::cql {

namespace {
// Keep sorted for readability; lookup is linear (the set is tiny).
const char* const kKeywords[] = {
    "ALL",    "AND",      "ANY",  "AS",    "ASC",     "BETWEEN", "BY",
    "CASE",   "DESC",     "DISTINCT", "ELSE", "END",  "EXISTS",  "FALSE",
    "FROM",   "GROUP",    "HAVING", "IN",  "IS",      "LIMIT",   "NOT",
    "NULL",   "OR",       "ORDER", "RANGE", "ROWS",   "SELECT",  "SLIDE",
    "THEN",
    "TRUE",   "UNBOUNDED", "WHEN", "WHERE",
};
}  // namespace

bool IsReservedKeyword(const std::string& upper_word) {
  for (const char* keyword : kKeywords) {
    if (upper_word == keyword) return true;
  }
  return false;
}

bool Token::IsKeyword(const char* word) const {
  return kind == TokenKind::kKeyword && text == word;
}

std::string Token::ToString() const {
  switch (kind) {
    case TokenKind::kEof:
      return "<eof>";
    case TokenKind::kIdentifier:
    case TokenKind::kKeyword:
      return text;
    case TokenKind::kStringLiteral:
      return "'" + text + "'";
    case TokenKind::kIntLiteral:
      return std::to_string(int_value);
    case TokenKind::kDoubleLiteral:
      return StrFormat("%g", double_value);
    case TokenKind::kComma:
      return ",";
    case TokenKind::kLeftParen:
      return "(";
    case TokenKind::kRightParen:
      return ")";
    case TokenKind::kLeftBracket:
      return "[";
    case TokenKind::kRightBracket:
      return "]";
    case TokenKind::kDot:
      return ".";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kPercent:
      return "%";
    case TokenKind::kEquals:
      return "=";
    case TokenKind::kNotEquals:
      return "!=";
    case TokenKind::kLess:
      return "<";
    case TokenKind::kLessEquals:
      return "<=";
    case TokenKind::kGreater:
      return ">";
    case TokenKind::kGreaterEquals:
      return ">=";
    case TokenKind::kSemicolon:
      return ";";
  }
  return "?";
}

}  // namespace esp::cql
