#ifndef ESP_SIM_X10_MOTION_H_
#define ESP_SIM_X10_MOTION_H_

#include <optional>
#include <string>

#include "common/rng.h"
#include "common/time.h"
#include "sim/reading.h"

namespace esp::sim {

/// \brief Statistical model of an X10 motion detector (Section 6).
///
/// These devices emit only "ON" events and, per the paper, "have limited
/// sensing capabilities and frequently fail to report or report when there
/// is no motion in the room". The model is a per-poll Bernoulli detector
/// with separate hit and false-alarm probabilities, plus a refractory period
/// after each report (real X10 units rate-limit their transmissions).
class X10MotionModel {
 public:
  struct Config {
    std::string detector_id;
    /// Probability of reporting when there is motion in a poll interval.
    double detection_prob = 0.5;
    /// Probability of a spurious report when there is no motion.
    double false_alarm_prob = 0.02;
    /// Minimum spacing between two reports from this unit.
    Duration refractory = Duration::Seconds(2);
  };

  X10MotionModel(Config config, Rng rng)
      : config_(std::move(config)), rng_(rng) {}

  const std::string& detector_id() const { return config_.detector_id; }

  /// One poll: returns a reading if the unit fires. Call with
  /// non-decreasing times.
  std::optional<MotionReading> Poll(bool motion_present, Timestamp time);

 private:
  Config config_;
  Rng rng_;
  std::optional<Timestamp> last_report_;
};

}  // namespace esp::sim

#endif  // ESP_SIM_X10_MOTION_H_
