#ifndef ESP_SIM_REDWOOD_WORLD_H_
#define ESP_SIM_REDWOOD_WORLD_H_

#include <string>
#include <vector>

#include "common/time.h"
#include "sim/reading.h"

namespace esp::sim {

/// \brief Ground-truth model of the Sonoma redwood micro-climate deployment
/// (Section 5.2, [28]): motes along the trunk at varying heights sense
/// temperature every 5 minutes, log every sample locally (lossless), and
/// send it over a lossy multi-hop network whose epoch yield is ~40%.
///
/// Physics: diurnal temperature cycle whose amplitude grows with height
/// (canopy sees more sun and wind than the shaded base — the micro-climate
/// gradient the original study measured), plus small per-mote calibration
/// offsets and sensing noise. Loss: per-mote Gilbert-Elliott channels with
/// mean dwell times tuned so the raw epoch yield lands at the paper's 40%
/// while losses remain bursty (route outages), which is what bounds how
/// much temporal smoothing can recover.
///
/// Motes at adjacent heights are paired into 2-node non-overlapping
/// proximity groups (the paper's grouping; members < 1 ft apart, so their
/// true temperatures are nearly identical).
class RedwoodWorld {
 public:
  struct Config {
    Duration duration = Duration::Days(3.5);
    Duration epoch = Duration::Minutes(5);
    int num_motes = 32;  // Paired into 16 proximity groups.
    double base_height_m = 10.0;
    double top_height_m = 65.0;
    double mean_temp_c = 14.0;
    /// Diurnal amplitude at the base / at the top of the instrumented span.
    double base_amplitude_c = 3.0;
    double top_amplitude_c = 7.0;
    double noise_stddev = 0.05;
    double calibration_stddev = 1.0;
    /// Within a proximity group, members sit <1 ft apart: their true
    /// temperatures differ by at most this (1 sigma).
    double intra_group_stddev = 0.1;
    /// Short-period "weather" fluctuation (wind gusts, passing clouds) on
    /// top of the diurnal cycle; amplitude grows with height. This is what
    /// a 30-minute smoothing window cannot fully track — the paper's ~1% of
    /// smoothed readings beyond 1 C.
    double weather_amplitude_base_c = 0.15;
    double weather_amplitude_top_c = 0.5;
    Duration weather_period = Duration::Minutes(47);
    /// Gilbert-Elliott channel tuned for ~40% epoch yield with bursty loss
    /// (bursts mostly shorter than the 30-minute Smooth window, so Smooth
    /// recovers most epochs; the residue bounds it at the paper's 77%).
    double good_delivery_prob = 0.82;
    double bad_delivery_prob = 0.02;
    Duration mean_good_duration = Duration::Minutes(33);
    Duration mean_bad_duration = Duration::Minutes(35);
    uint64_t seed = 2005;
  };

  struct Tick {
    Timestamp time;
    std::vector<MoteReading> delivered;  // What the network carried.
    std::vector<MoteReading> logged;     // The lossless local logs.
    std::vector<double> true_temps;      // Per mote (index order).
  };

  explicit RedwoodWorld(Config config) : config_(config) {}

  std::vector<Tick> Generate();

  /// True temperature at a mote's height at `time`.
  double TrueTemperature(int mote_index, Timestamp time) const;

  /// Mote `i` belongs to proximity group i / 2.
  int GroupOf(int mote_index) const { return mote_index / 2; }
  int num_groups() const { return (config_.num_motes + 1) / 2; }

  const Config& config() const { return config_; }

  static std::string MoteId(int index);
  static std::string GroupId(int group);

 private:
  double HeightOf(int mote_index) const;

  Config config_;
};

}  // namespace esp::sim

#endif  // ESP_SIM_REDWOOD_WORLD_H_
