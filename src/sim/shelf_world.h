#ifndef ESP_SIM_SHELF_WORLD_H_
#define ESP_SIM_SHELF_WORLD_H_

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "sim/reading.h"
#include "sim/rfid_reader.h"

namespace esp::sim {

/// \brief Ground-truth model of the paper's RFID retail deployment
/// (Section 4, Figure 2): two shelves, each with one reader and 10 tagged
/// items statically placed within 6 feet of the antenna (5 at 3 ft, 5 at
/// 6 ft), plus 5 items at 9 feet relocated between the shelves every 40
/// seconds. Readers poll at 5 Hz for 700 seconds.
///
/// Geometry is reduced to effective read distances (the cleaning problem is
/// statistical, not spatial): a reader sees its own shelf's tags at their
/// placed distance, the mobile tags at 9 ft while they sit on its shelf,
/// and the other shelf's tags far away (they are still occasionally read —
/// the cross-reads are what Arbitrate must resolve). Antenna 0 is the
/// strong port and antenna 1 the weak one, reproducing the consistent
/// disparity the paper traced to known antenna-port issues [2].
class ShelfWorld {
 public:
  struct Config {
    Duration duration = Duration::Seconds(700);
    double sample_hz = 5.0;
    Duration relocation_period = Duration::Seconds(40);
    int static_tags_near = 5;   // Per shelf, at 3 ft.
    int static_tags_far = 5;    // Per shelf, at 6 ft.
    int mobile_tags = 5;        // Shared, relocated every period.
    double near_distance_ft = 3.0;
    double far_distance_ft = 6.0;
    double mobile_distance_ft = 9.0;
    /// Effective distance (per reader) at which a reader sees the *other*
    /// shelf's static tags and mobile tags. The strong antenna reaches
    /// further into the neighbouring shelf — the source of shelf 0's
    /// consistent 4-5 item overcount in the paper.
    std::array<double, 2> cross_static_distance_ft = {11.6, 14.8};
    std::array<double, 2> cross_mobile_distance_ft = {14.0, 16.0};
    /// Antenna port efficiencies (index = shelf). Port 0 is the strong one.
    std::array<double, 2> antenna_efficiency = {1.15, 0.70};
    uint64_t seed = 42;
  };

  /// Readings and ground truth for one 5 Hz poll instant.
  struct Tick {
    Timestamp time;
    std::array<int64_t, 2> true_counts;  // Items actually on each shelf.
    std::vector<RfidReading> readings;   // Both readers' detections.
  };

  explicit ShelfWorld(Config config);

  /// Generates the full deterministic experiment trace.
  std::vector<Tick> Generate();

  /// Number of items actually on `shelf` at `time` (the Figure 3(a) line).
  int64_t TrueCount(int shelf, Timestamp time) const;

  /// The shelf the mobile items sit on at `time` (they start on shelf 0).
  int MobileShelfAt(Timestamp time) const;

  const Config& config() const { return config_; }

  /// Reader ids are "reader_0" / "reader_1"; tags are "tag_s<shelf>_<i>"
  /// for static items and "tag_m<i>" for mobile ones.
  static std::string ReaderId(int shelf);

 private:
  Config config_;
};

}  // namespace esp::sim

#endif  // ESP_SIM_SHELF_WORLD_H_
