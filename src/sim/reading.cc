#include "sim/reading.h"

namespace esp::sim {

using stream::DataType;
using stream::SchemaRef;
using stream::Tuple;
using stream::Value;

namespace {
// Shared schema instances: tuples from one stream share one schema object.
const SchemaRef& SharedRfidSchema() {
  static const SchemaRef schema = stream::MakeSchema(
      {{"reader_id", DataType::kString}, {"tag_id", DataType::kString}});
  return schema;
}
const SchemaRef& SharedTempSchema() {
  static const SchemaRef schema = stream::MakeSchema(
      {{"mote_id", DataType::kString}, {"temp", DataType::kDouble}});
  return schema;
}
const SchemaRef& SharedSoundSchema() {
  static const SchemaRef schema = stream::MakeSchema(
      {{"mote_id", DataType::kString}, {"noise", DataType::kDouble}});
  return schema;
}
const SchemaRef& SharedMotionSchema() {
  static const SchemaRef schema = stream::MakeSchema(
      {{"detector_id", DataType::kString}, {"value", DataType::kString}});
  return schema;
}
}  // namespace

SchemaRef RfidReadingSchema() { return SharedRfidSchema(); }
SchemaRef TempReadingSchema() { return SharedTempSchema(); }
SchemaRef SoundReadingSchema() { return SharedSoundSchema(); }
SchemaRef MotionReadingSchema() { return SharedMotionSchema(); }

Tuple ToTuple(const RfidReading& reading) {
  return Tuple(SharedRfidSchema(),
               {Value::Interned(reading.reader_id), Value::Interned(reading.tag_id)},
               reading.time);
}

Tuple ToTempTuple(const MoteReading& reading) {
  return Tuple(SharedTempSchema(),
               {Value::Interned(reading.mote_id), Value::Double(reading.value)},
               reading.time);
}

Tuple ToSoundTuple(const MoteReading& reading) {
  return Tuple(SharedSoundSchema(),
               {Value::Interned(reading.mote_id), Value::Double(reading.value)},
               reading.time);
}

Tuple ToTuple(const MotionReading& reading) {
  return Tuple(SharedMotionSchema(),
               {Value::Interned(reading.detector_id), Value::Interned("ON")},
               reading.time);
}

}  // namespace esp::sim
