#ifndef ESP_SIM_RFID_READER_H_
#define ESP_SIM_RFID_READER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "sim/reading.h"

namespace esp::sim {

/// \brief Statistical model of a 915 MHz EPC Class-1 RFID reader (Alien
/// ALR-9780 class), substituting for the physical readers of Section 4.
///
/// The model captures the error characteristics the paper's cleaning
/// pipeline targets rather than RF physics:
///   - per-poll detection probability decays with tag distance
///     (readers capture 60-70% of tags in their vicinity [16, 25]);
///   - antenna ports differ in efficiency (the paper observed shelf 0's
///     antenna consistently out-reading shelf 1's identical model [2]);
///   - occasional ghost reads of errant tags not part of the deployment
///     (observed on antenna 1 in the digital-home deployment, Section 6.1).
class RfidReaderModel {
 public:
  struct Config {
    std::string reader_id;
    /// Multiplies every detection probability; 1.0 = nominal antenna,
    /// <1.0 = the weak antenna port.
    double antenna_efficiency = 1.0;
    /// Probability per poll of reporting one errant (ghost) tag.
    double ghost_read_prob = 0.0;
    /// Pool of ghost tag ids drawn uniformly on a ghost read.
    std::vector<std::string> ghost_tags;
  };

  explicit RfidReaderModel(Config config) : config_(std::move(config)) {}

  const std::string& reader_id() const { return config_.reader_id; }

  /// Per-poll detection probability for a tag at `distance_ft`, scaled by
  /// `efficiency`. Piecewise model fitted to the reported behaviour: near
  /// tags read most polls, tags at the rated 6 ft boundary read roughly
  /// half the time, out-of-field tags read rarely but not never.
  static double DetectionProbability(double distance_ft, double efficiency);

  /// Executes one poll: samples a detection for every (tag, distance) pair
  /// plus possible ghost reads, stamping readings with `time`.
  std::vector<RfidReading> Poll(
      const std::vector<std::pair<std::string, double>>& tag_distances,
      Timestamp time, Rng* rng) const;

 private:
  Config config_;
};

}  // namespace esp::sim

#endif  // ESP_SIM_RFID_READER_H_
