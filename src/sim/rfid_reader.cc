#include "sim/rfid_reader.h"

#include <algorithm>
#include <cmath>

namespace esp::sim {

double RfidReaderModel::DetectionProbability(double distance_ft,
                                             double efficiency) {
  // Logistic fall-off centred past the rated read range (~6 ft for the I2
  // tag in a controlled environment): ~0.9 at 3 ft, ~0.5 at 6 ft, ~0.1 at
  // 9 ft, a couple percent at 12 ft. Efficiency scales the curve.
  const double p = 0.97 / (1.0 + std::exp((distance_ft - 6.3) / 1.3));
  return std::clamp(p * efficiency, 0.0, 1.0);
}

std::vector<RfidReading> RfidReaderModel::Poll(
    const std::vector<std::pair<std::string, double>>& tag_distances,
    Timestamp time, Rng* rng) const {
  std::vector<RfidReading> readings;
  for (const auto& [tag_id, distance_ft] : tag_distances) {
    const double p =
        DetectionProbability(distance_ft, config_.antenna_efficiency);
    if (rng->Bernoulli(p)) {
      readings.push_back({config_.reader_id, tag_id, time});
    }
  }
  if (!config_.ghost_tags.empty() && rng->Bernoulli(config_.ghost_read_prob)) {
    const size_t index = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(config_.ghost_tags.size()) - 1));
    readings.push_back({config_.reader_id, config_.ghost_tags[index], time});
  }
  return readings;
}

}  // namespace esp::sim
