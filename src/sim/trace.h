#ifndef ESP_SIM_TRACE_H_
#define ESP_SIM_TRACE_H_

#include <string>

#include "common/status.h"
#include "stream/tuple.h"

namespace esp::sim {

/// \brief Writes a relation to CSV: header row `time_us,<field names...>`,
/// one row per tuple. Used to archive simulator traces for replay and to
/// dump figure data for plotting.
Status WriteRelationCsv(const std::string& path,
                        const stream::Relation& relation);

/// \brief Reads a relation back from CSV produced by WriteRelationCsv.
/// Values are parsed according to `schema`; empty cells become nulls.
StatusOr<stream::Relation> ReadRelationCsv(const std::string& path,
                                           stream::SchemaRef schema);

}  // namespace esp::sim

#endif  // ESP_SIM_TRACE_H_
