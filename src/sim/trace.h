#ifndef ESP_SIM_TRACE_H_
#define ESP_SIM_TRACE_H_

#include <string>

#include "common/status.h"
#include "stream/tuple.h"

namespace esp::sim {

/// \brief Writes a relation to CSV: header row `time_us,<field names...>`,
/// one row per tuple. Used to archive simulator traces for replay and to
/// dump figure data for plotting.
Status WriteRelationCsv(const std::string& path,
                        const stream::Relation& relation);

/// \brief Reads a relation back from CSV produced by WriteRelationCsv.
/// Values are parsed according to `schema`; empty cells become nulls.
StatusOr<stream::Relation> ReadRelationCsv(const std::string& path,
                                           stream::SchemaRef schema);

/// \brief Archives a relation of raw readings as an ESP input journal
/// (core/journal.h): one push record per tuple, in relation order, tagged
/// with `device_type`. Binary, CRC-framed, and bit-exact on round-trip —
/// unlike CSV, doubles survive without formatting loss, so a journal trace
/// replays a simulation identically.
Status WriteRelationJournal(const std::string& path,
                            const std::string& device_type,
                            const stream::Relation& relation);

/// \brief Reads back every push record for `device_type` from a journal
/// (records of other device types are skipped; tick records are ignored).
/// Tolerates a torn tail, so a journal captured from a crashed run loads
/// up to its last complete record.
StatusOr<stream::Relation> ReadRelationJournal(const std::string& path,
                                               const std::string& device_type,
                                               stream::SchemaRef schema);

}  // namespace esp::sim

#endif  // ESP_SIM_TRACE_H_
