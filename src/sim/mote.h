#ifndef ESP_SIM_MOTE_H_
#define ESP_SIM_MOTE_H_

#include <optional>
#include <string>

#include "common/rng.h"
#include "common/time.h"

namespace esp::sim {

/// \brief Statistical model of a wireless sensor mote: sensing noise, lossy
/// multi-hop delivery, and the "fail dirty" failure mode.
///
/// Delivery loss uses a two-state Gilbert-Elliott channel: links alternate
/// between a good state (most messages arrive) and a bad state (route
/// outage, nearly nothing arrives). Real multi-hop deployments lose data in
/// bursts — the Intel Lab and redwood traces' 40-42% epoch yields are not
/// i.i.d. drops — and burstiness is exactly what limits how much a smoothing
/// window can recover, so the channel shape matters for Section 5.2.
///
/// Fail-dirty (Section 5.1): after `fail_start` the sensor reports a value
/// ramping away from truth (the observed failure mode: temperatures rising
/// slowly past 100 °C), while the radio keeps working.
class MoteModel {
 public:
  struct Config {
    std::string mote_id;
    /// Gaussian sensing noise (1 sigma) added to the true value.
    double noise_stddev = 0.1;

    /// Gilbert-Elliott delivery model. Stationary yield =
    /// good_mean / (good_mean + bad_mean) * good_delivery_prob (approx).
    double good_delivery_prob = 1.0;
    double bad_delivery_prob = 0.0;
    Duration mean_good_duration = Duration::Hours(1e6);  // Default: no loss.
    Duration mean_bad_duration = Duration::Zero();

    /// Fail-dirty configuration.
    bool fail_dirty = false;
    Timestamp fail_start;
    /// Reported value drifts by this many units per hour after fail_start.
    double fail_ramp_per_hour = 4.0;
    /// The faulty value saturates here (sensor rail).
    double fail_ceiling = 130.0;
  };

  /// `rng` must outlive the model; each mote should own a forked stream.
  MoteModel(Config config, Rng rng);

  const std::string& mote_id() const { return config_.mote_id; }

  /// Produces the value the mote senses at `time` given the true physical
  /// value — including noise and fail-dirty corruption. This is what the
  /// local log records (the redwood deployment's storage buffer).
  double Sense(double true_value, Timestamp time);

  /// True if a message sent at `time` survives the multi-hop network.
  /// Call with non-decreasing times; the channel state machine advances
  /// with the clock.
  bool Delivered(Timestamp time);

  /// Sense + Delivered in one step: nullopt when the reading is lost.
  std::optional<double> Sample(double true_value, Timestamp time);

 private:
  void AdvanceChannel(Timestamp time);

  /// Draws an exponential dwell time for the current channel state.
  Duration NextDwell();

  Config config_;
  Rng rng_;
  bool channel_good_ = true;
  Timestamp state_until_;
  bool channel_initialized_ = false;
  // Value held at the moment the sensor failed (latched on first use).
  std::optional<double> fail_base_;
};

}  // namespace esp::sim

#endif  // ESP_SIM_MOTE_H_
