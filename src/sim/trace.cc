#include "sim/trace.h"

#include "common/csv.h"
#include "common/string_util.h"
#include "core/journal.h"

namespace esp::sim {

using stream::DataType;
using stream::Relation;
using stream::Tuple;
using stream::Value;

Status WriteRelationCsv(const std::string& path, const Relation& relation) {
  if (relation.schema() == nullptr) {
    return Status::InvalidArgument("relation has no schema");
  }
  ESP_ASSIGN_OR_RETURN(CsvWriter writer, CsvWriter::Open(path));
  std::vector<std::string> header = {"time_us"};
  for (const stream::Field& field : relation.schema()->fields()) {
    header.push_back(field.name);
  }
  ESP_RETURN_IF_ERROR(writer.WriteRow(header));
  for (const Tuple& tuple : relation.tuples()) {
    std::vector<std::string> row = {
        std::to_string(tuple.timestamp().micros())};
    for (const Value& value : tuple.values()) {
      row.push_back(value.is_null() ? "" : value.ToString());
    }
    ESP_RETURN_IF_ERROR(writer.WriteRow(row));
  }
  return writer.Close();
}

StatusOr<Relation> ReadRelationCsv(const std::string& path,
                                   stream::SchemaRef schema) {
  const size_t expected_columns = schema->num_fields() + 1;
  // The reader rejects ragged rows up front, naming the offending row.
  ESP_ASSIGN_OR_RETURN(auto rows, CsvReader::ReadFile(path, expected_columns));
  if (rows.empty()) {
    return Status::ParseError("trace file '" + path + "' has no header");
  }
  Relation relation(schema);
  for (size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    const size_t row_number = r + 1;  // 1-based, counting the header.
    ESP_ASSIGN_OR_RETURN(const int64_t micros,
                         CsvReader::Int64Field(row, 0, row_number));
    std::vector<Value> values;
    values.reserve(schema->num_fields());
    for (size_t c = 0; c < schema->num_fields(); ++c) {
      if (row[c + 1].empty()) {
        values.push_back(Value::Null());
        continue;
      }
      switch (schema->field(c).type) {
        case DataType::kInt64: {
          ESP_ASSIGN_OR_RETURN(const int64_t v,
                               CsvReader::Int64Field(row, c + 1, row_number));
          values.push_back(Value::Int64(v));
          break;
        }
        case DataType::kDouble: {
          ESP_ASSIGN_OR_RETURN(const double v,
                               CsvReader::DoubleField(row, c + 1, row_number));
          values.push_back(Value::Double(v));
          break;
        }
        case DataType::kBool: {
          ESP_ASSIGN_OR_RETURN(const bool v,
                               CsvReader::BoolField(row, c + 1, row_number));
          values.push_back(Value::Bool(v));
          break;
        }
        case DataType::kString:
          values.push_back(Value::Interned(row[c + 1]));
          break;
        case DataType::kTimestamp: {
          // Timestamps round-trip as raw micros.
          ESP_ASSIGN_OR_RETURN(const int64_t v,
                               CsvReader::Int64Field(row, c + 1, row_number));
          values.push_back(Value::Time(Timestamp::Micros(v)));
          break;
        }
        case DataType::kNull:
          values.push_back(Value::Null());
          break;
      }
    }
    relation.Add(Tuple(schema, std::move(values), Timestamp::Micros(micros)));
  }
  return relation;
}

Status WriteRelationJournal(const std::string& path,
                            const std::string& device_type,
                            const Relation& relation) {
  if (relation.schema() == nullptr) {
    return Status::InvalidArgument("relation has no schema");
  }
  core::JournalWriter::Options options;
  options.fsync_on_flush = false;  // Archival, not crash durability.
  options.flush_every_records = 1024;
  ESP_ASSIGN_OR_RETURN(std::unique_ptr<core::JournalWriter> writer,
                       core::JournalWriter::Create(path, options));
  for (const Tuple& tuple : relation.tuples()) {
    ESP_RETURN_IF_ERROR(writer->AppendPush(device_type, tuple));
  }
  return writer->Flush();
}

StatusOr<Relation> ReadRelationJournal(const std::string& path,
                                       const std::string& device_type,
                                       stream::SchemaRef schema) {
  ESP_ASSIGN_OR_RETURN(
      const core::JournalScan scan,
      core::ScanJournal(path, /*truncate_torn_tail=*/false));
  Relation relation(schema);
  for (const core::JournalRecord& record : scan.records) {
    if (record.kind != core::JournalRecord::Kind::kPush) continue;
    if (!StrEqualsIgnoreCase(record.device_type, device_type)) continue;
    ESP_ASSIGN_OR_RETURN(Tuple tuple,
                         core::DecodeJournalTuple(record, schema));
    relation.Add(std::move(tuple));
  }
  return relation;
}

}  // namespace esp::sim
