#include "sim/trace.h"

#include "common/csv.h"
#include "common/string_util.h"

namespace esp::sim {

using stream::DataType;
using stream::Relation;
using stream::Tuple;
using stream::Value;

Status WriteRelationCsv(const std::string& path, const Relation& relation) {
  if (relation.schema() == nullptr) {
    return Status::InvalidArgument("relation has no schema");
  }
  ESP_ASSIGN_OR_RETURN(CsvWriter writer, CsvWriter::Open(path));
  std::vector<std::string> header = {"time_us"};
  for (const stream::Field& field : relation.schema()->fields()) {
    header.push_back(field.name);
  }
  ESP_RETURN_IF_ERROR(writer.WriteRow(header));
  for (const Tuple& tuple : relation.tuples()) {
    std::vector<std::string> row = {
        std::to_string(tuple.timestamp().micros())};
    for (const Value& value : tuple.values()) {
      row.push_back(value.is_null() ? "" : value.ToString());
    }
    ESP_RETURN_IF_ERROR(writer.WriteRow(row));
  }
  return writer.Close();
}

StatusOr<Relation> ReadRelationCsv(const std::string& path,
                                   stream::SchemaRef schema) {
  ESP_ASSIGN_OR_RETURN(auto rows, CsvReader::ReadFile(path));
  if (rows.empty()) {
    return Status::ParseError("trace file '" + path + "' has no header");
  }
  const size_t expected_columns = schema->num_fields() + 1;
  if (rows[0].size() != expected_columns) {
    return Status::ParseError(
        "trace header has " + std::to_string(rows[0].size()) +
        " columns, schema expects " + std::to_string(expected_columns));
  }
  Relation relation(schema);
  for (size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    if (row.size() != expected_columns) {
      return Status::ParseError("trace row " + std::to_string(r) +
                                " has wrong column count");
    }
    int64_t micros = 0;
    if (!StrToInt64(row[0], &micros)) {
      return Status::ParseError("bad time_us in trace row " +
                                std::to_string(r));
    }
    std::vector<Value> values;
    values.reserve(schema->num_fields());
    for (size_t c = 0; c < schema->num_fields(); ++c) {
      const std::string& cell = row[c + 1];
      if (cell.empty()) {
        values.push_back(Value::Null());
        continue;
      }
      switch (schema->field(c).type) {
        case DataType::kInt64: {
          int64_t v = 0;
          if (!StrToInt64(cell, &v)) {
            return Status::ParseError("bad int64 '" + cell + "' in row " +
                                      std::to_string(r));
          }
          values.push_back(Value::Int64(v));
          break;
        }
        case DataType::kDouble: {
          double v = 0;
          if (!StrToDouble(cell, &v)) {
            return Status::ParseError("bad double '" + cell + "' in row " +
                                      std::to_string(r));
          }
          values.push_back(Value::Double(v));
          break;
        }
        case DataType::kBool:
          values.push_back(Value::Bool(cell == "true"));
          break;
        case DataType::kString:
          values.push_back(Value::String(cell));
          break;
        case DataType::kTimestamp: {
          // Timestamps round-trip via "t=<seconds>s" or raw micros.
          int64_t v = 0;
          if (StrToInt64(cell, &v)) {
            values.push_back(Value::Time(Timestamp::Micros(v)));
          } else {
            return Status::ParseError("bad timestamp '" + cell + "'");
          }
          break;
        }
        case DataType::kNull:
          values.push_back(Value::Null());
          break;
      }
    }
    relation.Add(Tuple(schema, std::move(values), Timestamp::Micros(micros)));
  }
  return relation;
}

}  // namespace esp::sim
