#include "sim/redwood_world.h"

#include <cmath>

#include "common/rng.h"
#include "sim/mote.h"

namespace esp::sim {

std::string RedwoodWorld::MoteId(int index) {
  return "rw_mote_" + std::to_string(index);
}

std::string RedwoodWorld::GroupId(int group) {
  return "height_band_" + std::to_string(group);
}

double RedwoodWorld::HeightOf(int mote_index) const {
  if (config_.num_motes <= 1) return config_.base_height_m;
  const double fraction = static_cast<double>(mote_index) /
                          static_cast<double>(config_.num_motes - 1);
  return config_.base_height_m +
         fraction * (config_.top_height_m - config_.base_height_m);
}

double RedwoodWorld::TrueTemperature(int mote_index, Timestamp time) const {
  const double height = HeightOf(mote_index);
  const double height_fraction =
      (height - config_.base_height_m) /
      (config_.top_height_m - config_.base_height_m);
  const double amplitude =
      config_.base_amplitude_c +
      height_fraction * (config_.top_amplitude_c - config_.base_amplitude_c);
  const double day_fraction = std::fmod(time.seconds(), 86400.0) / 86400.0;
  // Short-period weather fluctuation, phase-shifted along the trunk.
  const double weather_amplitude =
      config_.weather_amplitude_base_c +
      height_fraction *
          (config_.weather_amplitude_top_c - config_.weather_amplitude_base_c);
  const double weather =
      weather_amplitude *
      std::sin(2.0 * M_PI * time.seconds() / config_.weather_period.seconds() +
               0.8 * height_fraction);
  // Coolest just before dawn (~5am), warmest mid-afternoon (~2pm); the
  // canopy also runs slightly warmer on average.
  return config_.mean_temp_c + 1.5 * height_fraction + weather +
         amplitude * std::sin(2.0 * M_PI * (day_fraction - 0.29));
}

std::vector<RedwoodWorld::Tick> RedwoodWorld::Generate() {
  Rng rng(config_.seed);

  std::vector<MoteModel> motes;
  std::vector<double> offsets;        // Calibration error per mote.
  std::vector<double> micro_offsets;  // Intra-group physical difference.
  for (int i = 0; i < config_.num_motes; ++i) {
    MoteModel::Config mote_config;
    mote_config.mote_id = MoteId(i);
    mote_config.noise_stddev = config_.noise_stddev;
    mote_config.good_delivery_prob = config_.good_delivery_prob;
    mote_config.bad_delivery_prob = config_.bad_delivery_prob;
    mote_config.mean_good_duration = config_.mean_good_duration;
    mote_config.mean_bad_duration = config_.mean_bad_duration;
    motes.emplace_back(mote_config, rng.Fork());
    offsets.push_back(rng.Gaussian(0.0, config_.calibration_stddev));
    // Only the second member of each pair is physically offset from the
    // group's nominal spot.
    micro_offsets.push_back(
        i % 2 == 1 ? rng.Gaussian(0.0, config_.intra_group_stddev) : 0.0);
  }

  const int64_t ticks = config_.duration.micros() / config_.epoch.micros();
  std::vector<Tick> trace;
  trace.reserve(static_cast<size_t>(ticks));
  for (int64_t k = 0; k < ticks; ++k) {
    const Timestamp t =
        Timestamp::Epoch() + config_.epoch * static_cast<double>(k);
    Tick tick;
    tick.time = t;
    tick.true_temps.reserve(static_cast<size_t>(config_.num_motes));
    for (int i = 0; i < config_.num_motes; ++i) {
      const size_t index = static_cast<size_t>(i);
      const double truth =
          TrueTemperature(i, t) + micro_offsets[index];
      tick.true_temps.push_back(truth);
      // The local log records every (noisy, calibrated) sample.
      const double sensed =
          motes[index].Sense(truth + offsets[index], t);
      tick.logged.push_back({MoteId(i), sensed, t});
      if (motes[index].Delivered(t)) {
        tick.delivered.push_back({MoteId(i), sensed, t});
      }
    }
    trace.push_back(std::move(tick));
  }
  return trace;
}

}  // namespace esp::sim
