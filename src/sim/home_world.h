#ifndef ESP_SIM_HOME_WORLD_H_
#define ESP_SIM_HOME_WORLD_H_

#include <array>
#include <string>
#include <vector>

#include "common/time.h"
#include "sim/reading.h"

namespace esp::sim {

/// \brief Ground-truth model of the digital-home "person detector"
/// deployment (Section 6, Figures 8 and 9): one office instrumented with
/// two RFID readers (one proximity group), three sound-sensing motes
/// (a second group), and three X10 motion detectors (a third). One person
/// wearing an RFID tag walks in and out of the office at one-minute
/// intervals while talking; the experiment lasts 600 seconds.
///
/// Receptor artefacts reproduced from the paper's raw traces (Figure 9b-d):
/// antenna 1 occasionally reads an errant tag that is not part of the
/// experiment; sound readings sit on a noisy ~500 floor and rise above the
/// 525 threshold while the person talks; X10 detectors both miss motion and
/// fire spuriously.
class HomeWorld {
 public:
  struct Config {
    Duration duration = Duration::Seconds(600);
    Duration presence_period = Duration::Minutes(1);  // In/out alternation.
    double rfid_sample_hz = 5.0;
    Duration mote_epoch = Duration::Seconds(1);
    Duration x10_poll = Duration::Seconds(1);
    /// The person's tag sits mid-room: moderately readable by both readers.
    double person_tag_distance_ft = 5.0;
    std::array<double, 2> antenna_efficiency = {1.0, 0.9};
    double ghost_read_prob = 0.03;  // Antenna 1's errant tag.
    double ambient_noise_mean = 500.0;
    double ambient_noise_stddev = 8.0;
    double talking_noise_boost = 60.0;
    double talking_noise_stddev = 35.0;
    double x10_detection_prob = 0.35;
    double x10_false_alarm_prob = 0.015;
    uint64_t seed = 99;
  };

  struct Tick {
    Timestamp time;
    bool person_present = false;
    std::vector<RfidReading> rfid;
    std::vector<MoteReading> sound;
    std::vector<MotionReading> motion;
  };

  explicit HomeWorld(Config config) : config_(config) {}

  /// Generates the deterministic trace at 5 Hz resolution (RFID rate); mote
  /// and X10 readings appear on the ticks matching their own periods.
  std::vector<Tick> Generate();

  /// True occupancy at `time`: present during even presence periods.
  bool PersonPresent(Timestamp time) const;

  const Config& config() const { return config_; }

  static std::string ReaderId(int index);
  static std::string MoteId(int index);
  static std::string DetectorId(int index);

  /// The tag the person wears and the errant tag antenna 1 picks up.
  static constexpr const char* kPersonTag = "tag_person";
  static constexpr const char* kErrantTag = "tag_errant";

 private:
  Config config_;
};

}  // namespace esp::sim

#endif  // ESP_SIM_HOME_WORLD_H_
