#include "sim/x10_motion.h"

namespace esp::sim {

std::optional<MotionReading> X10MotionModel::Poll(bool motion_present,
                                                  Timestamp time) {
  const double p =
      motion_present ? config_.detection_prob : config_.false_alarm_prob;
  if (!rng_.Bernoulli(p)) return std::nullopt;
  if (last_report_.has_value() &&
      time - *last_report_ < config_.refractory) {
    return std::nullopt;
  }
  last_report_ = time;
  return MotionReading{config_.detector_id, time};
}

}  // namespace esp::sim
