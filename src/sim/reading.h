#ifndef ESP_SIM_READING_H_
#define ESP_SIM_READING_H_

#include <string>

#include "common/time.h"
#include "stream/tuple.h"

namespace esp::sim {

/// \brief One raw RFID detection event: reader `reader_id` saw tag `tag_id`.
///
/// Matches the paper's raw reader output after the built-in checksum filter
/// (its out-of-the-box Point functionality).
struct RfidReading {
  std::string reader_id;
  std::string tag_id;
  Timestamp time;
};

/// \brief One wireless sensor mote sample (temperature or sound, depending
/// on the deployment).
struct MoteReading {
  std::string mote_id;
  double value = 0.0;
  Timestamp time;
};

/// \brief One X10 motion detector event. These devices only emit "ON".
struct MotionReading {
  std::string detector_id;
  Timestamp time;
};

/// Schema of RFID reading streams: (reader_id:string, tag_id:string).
stream::SchemaRef RfidReadingSchema();

/// Schema of temperature mote streams: (mote_id:string, temp:double).
stream::SchemaRef TempReadingSchema();

/// Schema of sound mote streams: (mote_id:string, noise:double).
stream::SchemaRef SoundReadingSchema();

/// Schema of X10 streams: (detector_id:string, value:string) — value is
/// always "ON", mirroring the hardware.
stream::SchemaRef MotionReadingSchema();

/// Tuple conversions against the schemas above.
stream::Tuple ToTuple(const RfidReading& reading);
stream::Tuple ToTempTuple(const MoteReading& reading);
stream::Tuple ToSoundTuple(const MoteReading& reading);
stream::Tuple ToTuple(const MotionReading& reading);

}  // namespace esp::sim

#endif  // ESP_SIM_READING_H_
