#include "sim/fault_injector.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace esp::sim {

using stream::Tuple;
using stream::Value;

FaultInjector::FaultInjector(FaultInjectorConfig config,
                             std::vector<std::string> receptor_ids)
    : config_(std::move(config)),
      receptor_ids_(std::move(receptor_ids)),
      event_rng_(0) {
  Rng rng(config_.seed);
  for (const std::string& id : receptor_ids_) plans_[id];

  const size_t n = receptor_ids_.size();
  auto pick_fraction = [&](double fraction) {
    // round(n * fraction) receptors, chosen by a seeded Fisher-Yates
    // shuffle over the construction-order index list.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    for (size_t i = n; i > 1; --i) {
      const size_t j = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    const size_t count = static_cast<size_t>(
        std::llround(static_cast<double>(n) * fraction));
    order.resize(std::min(count, n));
    return order;
  };

  // Deaths.
  if (config_.death_fraction > 0.0 && n > 0) {
    const double begin = config_.horizon.seconds() * config_.death_window_begin;
    const double end = config_.horizon.seconds() * config_.death_window_end;
    for (size_t index : pick_fraction(config_.death_fraction)) {
      ReceptorPlan& plan = plans_[receptor_ids_[index]];
      plan.die_at = Timestamp::Seconds(rng.Uniform(begin, std::max(begin, end)));
      if (config_.revive_after.has_value()) {
        plan.revive_at = *plan.die_at + *config_.revive_after;
      }
    }
  }

  // Dropout bursts.
  if (config_.dropout_bursts_per_minute > 0.0) {
    const double expected =
        config_.dropout_bursts_per_minute * config_.horizon.seconds() / 60.0;
    for (const std::string& id : receptor_ids_) {
      ReceptorPlan& plan = plans_[id];
      int64_t bursts = static_cast<int64_t>(expected);
      if (rng.Bernoulli(expected - std::floor(expected))) ++bursts;
      for (int64_t b = 0; b < bursts; ++b) {
        const Timestamp begin =
            Timestamp::Seconds(rng.Uniform(0.0, config_.horizon.seconds()));
        plan.bursts.emplace_back(begin, begin + config_.dropout_burst_length);
      }
      std::sort(plan.bursts.begin(), plan.bursts.end());
    }
  }

  // Stuck-at windows.
  if (config_.stuck_fraction > 0.0 && !config_.value_column.empty() && n > 0) {
    const double latest = std::max(
        0.0, config_.horizon.seconds() - config_.stuck_length.seconds());
    for (size_t index : pick_fraction(config_.stuck_fraction)) {
      ReceptorPlan& plan = plans_[receptor_ids_[index]];
      const Timestamp begin = Timestamp::Seconds(rng.Uniform(0.0, latest));
      plan.stuck = {begin, begin + config_.stuck_length};
    }
  }

  // Clock skew.
  if (config_.clock_skew_fraction > 0.0 && n > 0 &&
      !config_.max_clock_skew.IsZero()) {
    const double max_skew = config_.max_clock_skew.seconds();
    for (size_t index : pick_fraction(config_.clock_skew_fraction)) {
      ReceptorPlan& plan = plans_[receptor_ids_[index]];
      plan.skew = Duration::Seconds(rng.Uniform(-max_skew, max_skew));
      plan.has_skew = true;
    }
  }

  // Per-event randomness (spikes, duplicates, reordering) comes from an
  // independent stream so schedule layout and event faults do not perturb
  // each other across configurations.
  event_rng_ = rng.Fork();
}

const FaultInjector::ReceptorPlan* FaultInjector::PlanFor(
    const std::string& receptor_id) const {
  const auto it = plans_.find(receptor_id);
  return it == plans_.end() ? nullptr : &it->second;
}

FaultInjector::ReceptorPlan* FaultInjector::PlanFor(
    const std::string& receptor_id) {
  const auto it = plans_.find(receptor_id);
  return it == plans_.end() ? nullptr : &it->second;
}

bool FaultInjector::Transform(Event* event) {
  ReceptorPlan* plan = PlanFor(event->receptor_id);
  if (plan == nullptr) return true;  // Unknown receptor: pass through.
  const Timestamp t = event->tuple.timestamp();

  // Death window (with optional revival).
  if (plan->die_at.has_value() && t >= *plan->die_at &&
      (!plan->revive_at.has_value() || t < *plan->revive_at)) {
    ++counters_.dropped_dead;
    return false;
  }
  // Dropout bursts.
  for (const auto& [begin, end] : plan->bursts) {
    if (t >= begin && t < end) {
      ++counters_.dropped_burst;
      return false;
    }
    if (begin > t) break;  // Bursts are sorted.
  }

  // Value faults.
  const auto schema = event->tuple.schema();
  size_t value_index = 0;
  bool has_value_index = false;
  if (!config_.value_column.empty() && schema != nullptr) {
    const std::optional<size_t> found = schema->IndexOf(config_.value_column);
    if (found.has_value() &&
        schema->field(*found).type == stream::DataType::kDouble) {
      value_index = *found;
      has_value_index = true;
    }
  }
  std::vector<Value> values = event->tuple.values();
  bool values_changed = false;
  if (has_value_index && !values[value_index].is_null()) {
    if (plan->stuck.has_value() && t >= plan->stuck->first &&
        t < plan->stuck->second) {
      if (!plan->stuck_value.has_value()) {
        plan->stuck_value = values[value_index].double_value();
      }
      values[value_index] = Value::Double(*plan->stuck_value);
      values_changed = true;
      ++counters_.stuck;
    } else if (config_.spike_prob > 0.0 &&
               event_rng_.Bernoulli(config_.spike_prob)) {
      const double sign = event_rng_.Bernoulli(0.5) ? 1.0 : -1.0;
      values[value_index] = Value::Double(
          values[value_index].double_value() + sign * config_.spike_magnitude);
      values_changed = true;
      ++counters_.spiked;
    }
  }

  // Clock skew.
  Timestamp delivered_at = t;
  if (plan->has_skew) {
    delivered_at = t + plan->skew;
    ++counters_.skewed;
  }

  if (values_changed || delivered_at != t) {
    event->tuple = Tuple(schema, std::move(values), delivered_at);
  }
  return true;
}

std::vector<FaultInjector::Event> FaultInjector::Process(Event event) {
  ++counters_.seen;
  std::vector<Event> out;

  // Release delayed readings whose time has come (by original event time).
  const Timestamp now = event.tuple.timestamp();
  while (!delayed_.empty() && delayed_.begin()->first <= now) {
    out.push_back(std::move(delayed_.begin()->second));
    delayed_.erase(delayed_.begin());
  }

  if (!Transform(&event)) return out;

  const bool duplicate = config_.duplicate_prob > 0.0 &&
                         event_rng_.Bernoulli(config_.duplicate_prob);
  const bool delay = config_.reorder_prob > 0.0 &&
                     !config_.max_reorder_delay.IsZero() &&
                     event_rng_.Bernoulli(config_.reorder_prob);
  if (delay) {
    const Duration by = Duration::Seconds(event_rng_.Uniform(
        0.0, config_.max_reorder_delay.seconds()));
    ++counters_.delayed;
    if (duplicate) {
      ++counters_.duplicated;
      delayed_.emplace(now + by, event);
    }
    delayed_.emplace(now + by, std::move(event));
    return out;
  }
  if (duplicate) {
    ++counters_.duplicated;
    out.push_back(event);
  }
  out.push_back(std::move(event));
  return out;
}

std::vector<FaultInjector::Event> FaultInjector::Flush() {
  std::vector<Event> out;
  for (auto& [release_at, event] : delayed_) {
    (void)release_at;
    out.push_back(std::move(event));
  }
  delayed_.clear();
  return out;
}

std::string FaultInjector::ScheduleToString() const {
  std::string out = StrFormat("fault schedule (seed=%llu):\n",
                              static_cast<unsigned long long>(config_.seed));
  for (const std::string& id : receptor_ids_) {
    const ReceptorPlan* plan = PlanFor(id);
    if (plan == nullptr) continue;
    std::string line;
    if (plan->die_at.has_value()) {
      line += StrFormat(" dies@%lldus",
                        static_cast<long long>(plan->die_at->micros()));
      if (plan->revive_at.has_value()) {
        line += StrFormat(" revives@%lldus",
                          static_cast<long long>(plan->revive_at->micros()));
      }
    }
    for (const auto& [begin, end] : plan->bursts) {
      line += StrFormat(" burst[%lld,%lld)us",
                        static_cast<long long>(begin.micros()),
                        static_cast<long long>(end.micros()));
    }
    if (plan->stuck.has_value()) {
      line += StrFormat(" stuck[%lld,%lld)us",
                        static_cast<long long>(plan->stuck->first.micros()),
                        static_cast<long long>(plan->stuck->second.micros()));
    }
    if (plan->has_skew) {
      line += StrFormat(" skew=%lldus",
                        static_cast<long long>(plan->skew.micros()));
    }
    if (!line.empty()) out += "  " + id + ":" + line + "\n";
  }
  return out;
}

}  // namespace esp::sim
