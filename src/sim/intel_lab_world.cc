#include "sim/intel_lab_world.h"

#include <cmath>

#include "common/rng.h"
#include "sim/mote.h"

namespace esp::sim {

std::string IntelLabWorld::MoteId(int index) {
  return "mote_" + std::to_string(index + 1);
}

double IntelLabWorld::TrueTemperature(Timestamp time) const {
  // Office diurnal cycle: coolest ~5am, warmest ~3pm, HVAC-dampened.
  const double day_fraction = std::fmod(time.seconds(), 86400.0) / 86400.0;
  return config_.mean_temp_c +
         config_.diurnal_amplitude_c *
             std::sin(2.0 * M_PI * (day_fraction - 0.3));
}

std::vector<IntelLabWorld::Tick> IntelLabWorld::Generate() {
  Rng rng(config_.seed);

  std::vector<MoteModel> motes;
  std::vector<double> offsets;
  for (int i = 0; i < config_.num_motes; ++i) {
    MoteModel::Config mote_config;
    mote_config.mote_id = MoteId(i);
    mote_config.noise_stddev = config_.noise_stddev;
    mote_config.good_delivery_prob = config_.delivery_prob;
    if (i == config_.failing_mote) {
      mote_config.fail_dirty = true;
      mote_config.fail_start = config_.fail_start;
      mote_config.fail_ramp_per_hour = config_.fail_ramp_per_hour;
    }
    motes.emplace_back(mote_config, rng.Fork());
    // Small per-mote calibration offset, as in real deployments.
    offsets.push_back(rng.Gaussian(0.0, 0.2));
  }

  const int64_t ticks = config_.duration.micros() / config_.epoch.micros();
  std::vector<Tick> trace;
  trace.reserve(static_cast<size_t>(ticks));
  for (int64_t k = 0; k < ticks; ++k) {
    const Timestamp t =
        Timestamp::Epoch() + config_.epoch * static_cast<double>(k);
    Tick tick;
    tick.time = t;
    tick.true_temp = TrueTemperature(t);
    for (int i = 0; i < config_.num_motes; ++i) {
      auto value = motes[static_cast<size_t>(i)].Sample(
          tick.true_temp + offsets[static_cast<size_t>(i)], t);
      if (value.has_value()) {
        tick.readings.push_back({MoteId(i), *value, t});
      }
    }
    trace.push_back(std::move(tick));
  }
  return trace;
}

}  // namespace esp::sim
