#ifndef ESP_SIM_INTEL_LAB_WORLD_H_
#define ESP_SIM_INTEL_LAB_WORLD_H_

#include <string>
#include <vector>

#include "common/time.h"
#include "sim/reading.h"

namespace esp::sim {

/// \brief Ground-truth model of the Intel Research Lab Berkeley trace used
/// for outlier detection (Section 5.1, Figure 7): three temperature motes
/// in one room / proximity group, one of which "fails dirty" — it keeps
/// reporting, but its values ramp away from truth, rising past 100 °C over
/// roughly two days.
///
/// Room temperature follows an office diurnal cycle (HVAC-dampened sinusoid
/// around 21 °C). Functioning motes track it within sensor noise plus small
/// per-mote calibration offsets.
class IntelLabWorld {
 public:
  struct Config {
    Duration duration = Duration::Days(2);
    Duration epoch = Duration::Seconds(31);  // Intel Lab epoch period.
    int num_motes = 3;
    int failing_mote = 2;  // Index of the fail-dirty mote (0-based).
    Timestamp fail_start = Timestamp::Seconds(0.5 * 86400);
    double fail_ramp_per_hour = 2.4;  // Reaches >100 °C before day 2 ends.
    double noise_stddev = 0.15;
    double mean_temp_c = 21.0;
    double diurnal_amplitude_c = 2.0;
    /// Per-epoch message delivery probability (the lab network was
    /// single-hop and relatively healthy for these motes).
    double delivery_prob = 0.95;
    uint64_t seed = 7;
  };

  struct Tick {
    Timestamp time;
    double true_temp = 0.0;
    std::vector<MoteReading> readings;  // Delivered readings only.
  };

  explicit IntelLabWorld(Config config) : config_(config) {}

  /// Generates the deterministic trace.
  std::vector<Tick> Generate();

  /// The room's true temperature at `time`.
  double TrueTemperature(Timestamp time) const;

  const Config& config() const { return config_; }

  static std::string MoteId(int index);

 private:
  Config config_;
};

}  // namespace esp::sim

#endif  // ESP_SIM_INTEL_LAB_WORLD_H_
