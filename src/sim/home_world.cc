#include "sim/home_world.h"

#include <cmath>

#include "common/rng.h"
#include "sim/mote.h"
#include "sim/rfid_reader.h"
#include "sim/x10_motion.h"

namespace esp::sim {

std::string HomeWorld::ReaderId(int index) {
  return "office_reader_" + std::to_string(index);
}
std::string HomeWorld::MoteId(int index) {
  return "office_mote_" + std::to_string(index + 1);
}
std::string HomeWorld::DetectorId(int index) {
  return "x10_" + std::to_string(index + 1);
}

bool HomeWorld::PersonPresent(Timestamp time) const {
  const double periods = time.seconds() / config_.presence_period.seconds();
  return static_cast<int64_t>(periods) % 2 == 0;
}

std::vector<HomeWorld::Tick> HomeWorld::Generate() {
  Rng rng(config_.seed);

  std::array<RfidReaderModel, 2> readers = {
      RfidReaderModel({ReaderId(0), config_.antenna_efficiency[0],
                       /*ghost_read_prob=*/0.0,
                       /*ghost_tags=*/{}}),
      RfidReaderModel({ReaderId(1), config_.antenna_efficiency[1],
                       config_.ghost_read_prob,
                       /*ghost_tags=*/{kErrantTag}}),
  };
  std::array<Rng, 2> reader_rngs = {rng.Fork(), rng.Fork()};

  std::vector<MoteModel> motes;
  for (int i = 0; i < 3; ++i) {
    MoteModel::Config mote_config;
    mote_config.mote_id = MoteId(i);
    mote_config.noise_stddev = 0.0;  // Noise is modelled in the sound field.
    mote_config.good_delivery_prob = 0.92;  // Single-hop office network.
    motes.emplace_back(mote_config, rng.Fork());
  }
  Rng sound_rng = rng.Fork();

  std::vector<X10MotionModel> detectors;
  for (int i = 0; i < 3; ++i) {
    detectors.emplace_back(
        X10MotionModel::Config{DetectorId(i), config_.x10_detection_prob,
                               config_.x10_false_alarm_prob,
                               Duration::Seconds(2)},
        rng.Fork());
  }

  const Duration step = Duration::Seconds(1.0 / config_.rfid_sample_hz);
  const int64_t ticks = config_.duration.micros() / step.micros();
  const int64_t mote_every = config_.mote_epoch.micros() / step.micros();
  const int64_t x10_every = config_.x10_poll.micros() / step.micros();

  std::vector<Tick> trace;
  trace.reserve(static_cast<size_t>(ticks));
  for (int64_t k = 0; k < ticks; ++k) {
    const Timestamp t = Timestamp::Epoch() + step * static_cast<double>(k);
    Tick tick;
    tick.time = t;
    tick.person_present = PersonPresent(t);

    // RFID: the person's tag is readable only while they are in the room.
    for (int r = 0; r < 2; ++r) {
      std::vector<std::pair<std::string, double>> view;
      if (tick.person_present) {
        view.emplace_back(kPersonTag, config_.person_tag_distance_ft);
      }
      std::vector<RfidReading> readings =
          readers[static_cast<size_t>(r)].Poll(
              view, t, &reader_rngs[static_cast<size_t>(r)]);
      for (RfidReading& reading : readings) {
        tick.rfid.push_back(std::move(reading));
      }
    }

    // Sound motes at their own epoch.
    if (k % mote_every == 0) {
      for (int i = 0; i < 3; ++i) {
        double level =
            sound_rng.Gaussian(config_.ambient_noise_mean,
                               config_.ambient_noise_stddev);
        if (tick.person_present) {
          // Talking raises the level, with high variance (speech is bursty).
          level += std::max(
              0.0, sound_rng.Gaussian(config_.talking_noise_boost,
                                      config_.talking_noise_stddev));
        }
        auto value = motes[static_cast<size_t>(i)].Sample(level, t);
        if (value.has_value()) {
          tick.sound.push_back({MoteId(i), *value, t});
        }
      }
    }

    // X10 detectors at their own poll period.
    if (k % x10_every == 0) {
      for (X10MotionModel& detector : detectors) {
        auto reading = detector.Poll(tick.person_present, t);
        if (reading.has_value()) tick.motion.push_back(*reading);
      }
    }
    trace.push_back(std::move(tick));
  }
  return trace;
}

}  // namespace esp::sim
