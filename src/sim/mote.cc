#include "sim/mote.h"

#include <algorithm>
#include <cmath>

namespace esp::sim {

MoteModel::MoteModel(Config config, Rng rng)
    : config_(std::move(config)), rng_(rng) {}

double MoteModel::Sense(double true_value, Timestamp time) {
  const double noise = rng_.Gaussian(0.0, config_.noise_stddev);
  if (config_.fail_dirty && time >= config_.fail_start) {
    if (!fail_base_.has_value()) fail_base_ = true_value;
    const double hours = (time - config_.fail_start).seconds() / 3600.0;
    const double faulty =
        *fail_base_ + config_.fail_ramp_per_hour * hours + noise;
    return std::min(faulty, config_.fail_ceiling);
  }
  return true_value + noise;
}

Duration MoteModel::NextDwell() {
  const Duration mean = channel_good_ ? config_.mean_good_duration
                                      : config_.mean_bad_duration;
  double u = 0.0;
  do {
    u = rng_.NextDouble();
  } while (u == 0.0);
  const double seconds = std::max(1e-6, -mean.seconds() * std::log(u));
  return Duration::Seconds(seconds);
}

void MoteModel::AdvanceChannel(Timestamp time) {
  if (!channel_initialized_) {
    channel_initialized_ = true;
    // Start in the stationary distribution so traces have no warm-up bias.
    const double good_s = config_.mean_good_duration.seconds();
    const double bad_s = config_.mean_bad_duration.seconds();
    const double p_good =
        good_s + bad_s > 0 ? good_s / (good_s + bad_s) : 1.0;
    channel_good_ = rng_.Bernoulli(p_good);
    state_until_ = time + NextDwell();
    return;
  }
  while (time >= state_until_) {
    channel_good_ = !channel_good_;
    state_until_ = state_until_ + NextDwell();
  }
}

bool MoteModel::Delivered(Timestamp time) {
  if (config_.mean_bad_duration.IsZero()) {
    return rng_.Bernoulli(config_.good_delivery_prob);
  }
  AdvanceChannel(time);
  const double p = channel_good_ ? config_.good_delivery_prob
                                 : config_.bad_delivery_prob;
  return rng_.Bernoulli(p);
}

std::optional<double> MoteModel::Sample(double true_value, Timestamp time) {
  // Sense unconditionally so the sensor state (fail latch, noise stream)
  // does not depend on the network.
  const double value = Sense(true_value, time);
  if (!Delivered(time)) return std::nullopt;
  return value;
}

}  // namespace esp::sim
