#ifndef ESP_SIM_FAULT_INJECTOR_H_
#define ESP_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "stream/tuple.h"

namespace esp::sim {

/// \brief Configuration of the fault injector. Every fault class is off by
/// default; enable the mix a chaos run needs. All scheduling randomness is
/// drawn from `seed` through common::Rng, so an identical (config, receptor
/// list) pair always produces a bit-identical fault schedule and injected
/// stream — chaos runs are reproducible.
struct FaultInjectorConfig {
  uint64_t seed = 1;

  /// Experiment length the schedule is laid out over.
  Duration horizon = Duration::Seconds(700);

  // --- Receptor death / revival (the paper's fail-dirty motes). ---
  /// Fraction of receptors killed; round(n * fraction) receptors are chosen
  /// by a seeded shuffle and die at a uniform time inside the death window.
  double death_fraction = 0.0;
  /// Death window as fractions of `horizon`.
  double death_window_begin = 0.25;
  double death_window_end = 0.75;
  /// When set, dead receptors come back after this long (revival).
  std::optional<Duration> revive_after;

  // --- Intermittent dropout bursts (lossy links / epoch-yield dips). ---
  /// Expected bursts per receptor per minute; each burst silences the
  /// receptor for `dropout_burst_length`.
  double dropout_bursts_per_minute = 0.0;
  Duration dropout_burst_length = Duration::Seconds(2);

  // --- Value faults on `value_column` (ignored when the column is empty
  // --- or not a double in the reading schema). ---
  std::string value_column;
  /// Fraction of receptors that freeze (stuck-at) for `stuck_length`,
  /// repeating the first value observed inside the stuck window.
  double stuck_fraction = 0.0;
  Duration stuck_length = Duration::Seconds(30);
  /// Per-reading probability of adding a +/- `spike_magnitude` excursion.
  double spike_prob = 0.0;
  double spike_magnitude = 0.0;

  // --- Delivery faults. ---
  /// Per-reading probability of the reading being emitted twice.
  double duplicate_prob = 0.0;
  /// Per-reading probability of delayed (out-of-order) delivery, by a
  /// uniform delay in (0, max_reorder_delay].
  double reorder_prob = 0.0;
  Duration max_reorder_delay = Duration::Zero();
  /// Fraction of receptors whose tuples carry a constant clock skew drawn
  /// uniformly from [-max_clock_skew, +max_clock_skew].
  double clock_skew_fraction = 0.0;
  Duration max_clock_skew = Duration::Zero();
};

/// \brief A seeded, composable fault layer over any receptor reading
/// stream.
///
/// Usage: construct with the receptor ids the stream contains, then feed
/// every reading (converted to a tuple) in arrival order through Process().
/// The injector returns the readings to actually deliver — possibly none
/// (death, dropout), several (duplicates, released reordered readings), or
/// altered copies (stuck-at, spikes, clock skew). Call Flush() after the
/// last reading to drain still-delayed readings.
///
/// Deterministic by construction: the death/burst/stuck/skew schedule is
/// fixed in the constructor, and per-reading randomness comes from one
/// forked Rng consumed in arrival order.
class FaultInjector {
 public:
  struct Event {
    std::string receptor_id;
    stream::Tuple tuple;
  };

  /// Running totals of what the injector did (for logs and tests).
  struct Counters {
    int64_t seen = 0;
    int64_t dropped_dead = 0;
    int64_t dropped_burst = 0;
    int64_t stuck = 0;
    int64_t spiked = 0;
    int64_t duplicated = 0;
    int64_t delayed = 0;
    int64_t skewed = 0;
  };

  FaultInjector(FaultInjectorConfig config,
                std::vector<std::string> receptor_ids);

  /// Transforms one arriving reading; returns the readings to deliver now,
  /// in order (released delayed readings first). Readings must arrive in
  /// non-decreasing timestamp order.
  std::vector<Event> Process(Event event);

  /// Drains every still-delayed reading, in release order.
  std::vector<Event> Flush();

  /// Canonical rendering of the resolved fault schedule; bit-identical for
  /// identical (config, receptor list) inputs.
  std::string ScheduleToString() const;

  const Counters& counters() const { return counters_; }

 private:
  struct ReceptorPlan {
    std::optional<Timestamp> die_at;
    std::optional<Timestamp> revive_at;
    std::vector<std::pair<Timestamp, Timestamp>> bursts;  // [begin, end)
    std::optional<std::pair<Timestamp, Timestamp>> stuck;  // [begin, end)
    Duration skew;
    bool has_skew = false;
    /// Value frozen on entry into the stuck window (captured at runtime).
    std::optional<double> stuck_value;
  };

  const ReceptorPlan* PlanFor(const std::string& receptor_id) const;
  ReceptorPlan* PlanFor(const std::string& receptor_id);

  /// Applies value/timestamp faults in place; returns false when the
  /// reading is dropped entirely (death or burst).
  bool Transform(Event* event);

  FaultInjectorConfig config_;
  std::vector<std::string> receptor_ids_;  // Construction order.
  std::map<std::string, ReceptorPlan> plans_;
  Rng event_rng_;
  /// Delayed readings keyed by release time; insertion order preserved for
  /// equal keys.
  std::multimap<Timestamp, Event> delayed_;
  Counters counters_;
};

}  // namespace esp::sim

#endif  // ESP_SIM_FAULT_INJECTOR_H_
