#include "sim/shelf_world.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace esp::sim {

ShelfWorld::ShelfWorld(Config config) : config_(config) {
  ESP_CHECK(config_.sample_hz > 0) << "sample rate must be positive";
}

std::string ShelfWorld::ReaderId(int shelf) {
  return "reader_" + std::to_string(shelf);
}

int ShelfWorld::MobileShelfAt(Timestamp time) const {
  const double periods =
      time.seconds() / config_.relocation_period.seconds();
  return static_cast<int64_t>(periods) % 2 == 0 ? 0 : 1;
}

int64_t ShelfWorld::TrueCount(int shelf, Timestamp time) const {
  const int64_t static_count =
      config_.static_tags_near + config_.static_tags_far;
  return static_count +
         (MobileShelfAt(time) == shelf ? config_.mobile_tags : 0);
}

std::vector<ShelfWorld::Tick> ShelfWorld::Generate() {
  Rng rng(config_.seed);
  std::array<Rng, 2> reader_rngs = {rng.Fork(), rng.Fork()};

  std::array<RfidReaderModel, 2> readers = {
      RfidReaderModel({ReaderId(0), config_.antenna_efficiency[0],
                       /*ghost_read_prob=*/0.0,
                       /*ghost_tags=*/{}}),
      RfidReaderModel({ReaderId(1), config_.antenna_efficiency[1],
                       /*ghost_read_prob=*/0.0,
                       /*ghost_tags=*/{}}),
  };

  // Static tag ids and distances, fixed for the run.
  struct StaticTag {
    std::string id;
    int shelf;
    double distance_ft;
  };
  std::vector<StaticTag> static_tags;
  for (int shelf = 0; shelf < 2; ++shelf) {
    for (int i = 0; i < config_.static_tags_near; ++i) {
      static_tags.push_back({StrFormat("tag_s%d_%d", shelf, i), shelf,
                             config_.near_distance_ft});
    }
    for (int i = 0; i < config_.static_tags_far; ++i) {
      static_tags.push_back(
          {StrFormat("tag_s%d_%d", shelf, config_.static_tags_near + i),
           shelf, config_.far_distance_ft});
    }
  }
  std::vector<std::string> mobile_tags;
  for (int i = 0; i < config_.mobile_tags; ++i) {
    mobile_tags.push_back(StrFormat("tag_m%d", i));
  }

  const Duration step = Duration::Seconds(1.0 / config_.sample_hz);
  const int64_t ticks =
      static_cast<int64_t>(config_.duration.micros() / step.micros());

  std::vector<Tick> trace;
  trace.reserve(static_cast<size_t>(ticks));
  for (int64_t k = 0; k < ticks; ++k) {
    const Timestamp t = Timestamp::Epoch() + step * static_cast<double>(k);
    Tick tick;
    tick.time = t;
    tick.true_counts = {TrueCount(0, t), TrueCount(1, t)};

    const int mobile_shelf = MobileShelfAt(t);
    for (int shelf = 0; shelf < 2; ++shelf) {
      // Build this reader's view: (tag, effective distance).
      std::vector<std::pair<std::string, double>> view;
      view.reserve(static_tags.size() + mobile_tags.size());
      const size_t reader = static_cast<size_t>(shelf);
      for (const StaticTag& tag : static_tags) {
        const double distance =
            tag.shelf == shelf ? tag.distance_ft
                               : config_.cross_static_distance_ft[reader];
        view.emplace_back(tag.id, distance);
      }
      for (const std::string& tag : mobile_tags) {
        const double distance =
            mobile_shelf == shelf ? config_.mobile_distance_ft
                                  : config_.cross_mobile_distance_ft[reader];
        view.emplace_back(tag, distance);
      }
      std::vector<RfidReading> readings =
          readers[static_cast<size_t>(shelf)].Poll(
              view, t, &reader_rngs[static_cast<size_t>(shelf)]);
      for (RfidReading& reading : readings) {
        tick.readings.push_back(std::move(reading));
      }
    }
    trace.push_back(std::move(tick));
  }
  return trace;
}

}  // namespace esp::sim
