#ifndef ESP_COMMON_LOGGING_H_
#define ESP_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace esp {

/// \brief Severity levels for the ESP logger.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// \brief Returns the process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();

/// \brief Sets the process-wide minimum level that is actually emitted.
/// Messages below this level are discarded. Default: kInfo.
void SetLogLevel(LogLevel level);

namespace internal {

/// \brief One log statement; accumulates the message and emits it to stderr
/// on destruction. Fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// \brief Swallows a log statement that is below the active level.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

/// \brief Turns a streamed LogMessage chain into void so it can appear on
/// the false branch of a ternary (the classic glog trick). operator& binds
/// more loosely than operator<<, so the whole chain evaluates first.
class LogMessageVoidify {
 public:
  void operator&(LogMessage&) {}
};

}  // namespace internal

// Stream-style logging: ESP_LOG(INFO) << "message " << value;
#define ESP_LOG(severity) ESP_LOG_##severity()
#define ESP_LOG_DEBUG()                                             \
  ::esp::internal::LogMessage(::esp::LogLevel::kDebug, __FILE__, __LINE__)
#define ESP_LOG_INFO()                                              \
  ::esp::internal::LogMessage(::esp::LogLevel::kInfo, __FILE__, __LINE__)
#define ESP_LOG_WARNING()                                           \
  ::esp::internal::LogMessage(::esp::LogLevel::kWarning, __FILE__, __LINE__)
#define ESP_LOG_ERROR()                                             \
  ::esp::internal::LogMessage(::esp::LogLevel::kError, __FILE__, __LINE__)
#define ESP_LOG_FATAL()                                             \
  ::esp::internal::LogMessage(::esp::LogLevel::kFatal, __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Active in all builds;
/// used for programmer errors (API misuse), not data errors.
#define ESP_CHECK(condition)                                          \
  (condition) ? (void)0                                               \
              : ::esp::internal::LogMessageVoidify() &                \
                    (::esp::internal::LogMessage(                     \
                         ::esp::LogLevel::kFatal, __FILE__, __LINE__) \
                     << "Check failed: " #condition " ")

#define ESP_CHECK_OK(expr)                                           \
  do {                                                               \
    ::esp::Status _esp_check_status = (expr);                        \
    ESP_CHECK(_esp_check_status.ok()) << _esp_check_status.ToString(); \
  } while (0)

}  // namespace esp

#endif  // ESP_COMMON_LOGGING_H_
