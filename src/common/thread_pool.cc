#include "common/thread_pool.h"

#include <utility>

namespace esp {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // An in-flight region's caller still needs mu_/region_done_ for its
    // epilogue; shutting down before it runs would destroy them under it.
    std::unique_lock<std::mutex> lock(mu_);
    region_done_.wait(lock, [this] { return body_ == nullptr; });
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (threads_.empty()) {
    packaged();
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    region_size_ = n;
    completed_.store(0, std::memory_order_relaxed);
    generation = ++generation_;
    claim_.store(generation << 32, std::memory_order_release);
  }
  wake_.notify_all();
  // The caller participates; indices it claims count toward completion.
  DrainRegion(generation, body, n);
  std::unique_lock<std::mutex> lock(mu_);
  region_done_.wait(lock, [this] {
    return completed_.load(std::memory_order_acquire) >= region_size_;
  });
  body_ = nullptr;
  region_size_ = 0;
  // A destructor may be parked on region_done_ waiting for this epilogue.
  region_done_.notify_all();
}

void ThreadPool::DrainRegion(uint64_t generation,
                             const std::function<void(size_t)>& body,
                             size_t n) {
  const uint64_t tag = generation << 32;
  uint64_t cur = claim_.load(std::memory_order_acquire);
  while (true) {
    if ((cur & ~uint64_t{0xffffffff}) != tag) break;  // Region superseded.
    const size_t i = static_cast<size_t>(cur & 0xffffffff);
    if (i >= n) break;
    if (!claim_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_acq_rel)) {
      continue;  // cur was reloaded by the failed CAS.
    }
    body(i);
    cur = claim_.load(std::memory_order_acquire);
    if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      // Touch the mutex so the caller cannot be between its predicate check
      // and its sleep when this notify fires (lost-wakeup guard).
      { std::lock_guard<std::mutex> lock(mu_); }
      // notify_all: a destructor may share this condvar with the caller.
      region_done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    wake_.wait(lock, [&] {
      return shutdown_ || !tasks_.empty() ||
             (body_ != nullptr && generation_ != seen_generation);
    });
    if (!tasks_.empty()) {
      std::packaged_task<void()> task = std::move(tasks_.front());
      tasks_.pop();
      lock.unlock();
      task();
      continue;
    }
    if (body_ != nullptr && generation_ != seen_generation) {
      seen_generation = generation_;
      const std::function<void(size_t)>& body = *body_;
      const size_t n = region_size_;
      lock.unlock();
      DrainRegion(seen_generation, body, n);
      continue;
    }
    if (shutdown_) return;
  }
}

}  // namespace esp
