#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace esp {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // Use the top 53 bits for a uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  ESP_CHECK(lo <= hi) << "UniformInt requires lo <= hi";
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = NextUint64();
  while (value >= limit) value = NextUint64();
  return lo + static_cast<int64_t>(value % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Gaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  // Box-Muller: draw u in (0, 1] to avoid log(0).
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u == 0.0);
  const double v = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u));
  const double angle = 2.0 * M_PI * v;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return mean + stddev * radius * std::cos(angle);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

void Rng::SaveState(ByteWriter& w) const {
  for (const uint64_t word : state_) w.WriteU64(word);
  w.WriteBool(has_cached_gaussian_);
  w.WriteDouble(cached_gaussian_);
}

Status Rng::LoadState(ByteReader& r) {
  for (auto& word : state_) {
    ESP_ASSIGN_OR_RETURN(word, r.ReadU64());
  }
  ESP_ASSIGN_OR_RETURN(has_cached_gaussian_, r.ReadBool());
  ESP_ASSIGN_OR_RETURN(cached_gaussian_, r.ReadDouble());
  return Status::OK();
}

}  // namespace esp
