#ifndef ESP_COMMON_RNG_H_
#define ESP_COMMON_RNG_H_

#include <cstdint>

#include "common/binio.h"
#include "common/status.h"

namespace esp {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every simulator in the repository draws randomness exclusively through an
/// Rng seeded explicitly by the caller, so experiments are reproducible
/// bit-for-bit across runs and platforms. Seeding uses SplitMix64 to expand
/// a 64-bit seed into the 256-bit generator state.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64();

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Returns a uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a normally distributed value with the given mean and stddev
  /// (Box-Muller transform).
  double Gaussian(double mean, double stddev);

  /// Creates an independent child generator; useful for giving each device
  /// in a simulation its own stream without cross-correlation.
  Rng Fork();

  /// Serializes / restores the full generator state (the 256-bit xoshiro
  /// words plus the cached Box-Muller output), so a restored simulation
  /// draws exactly the sequence the original would have drawn next.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  uint64_t state_[4];
  // Cached second output of the Box-Muller transform.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace esp

#endif  // ESP_COMMON_RNG_H_
