#include "common/logging.h"

#include <atomic>

namespace esp {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the file path for terse output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace esp
