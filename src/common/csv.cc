#include "common/csv.h"

#include <sstream>

#include "common/string_util.h"

namespace esp {

StatusOr<CsvWriter> CsvWriter::Open(const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  return CsvWriter(std::move(out));
}

std::string CsvWriter::EscapeField(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeField(fields[i]);
  }
  out_ << '\n';
  if (!out_.good()) return Status::IoError("write failed");
  return Status::OK();
}

Status CsvWriter::Close() {
  out_.flush();
  if (!out_.good()) return Status::IoError("flush failed");
  out_.close();
  return Status::OK();
}

StatusOr<std::vector<std::vector<std::string>>> CsvReader::ReadFile(
    const std::string& path, size_t expected_columns) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseString(buffer.str(), expected_columns);
}

StatusOr<std::vector<std::vector<std::string>>> CsvReader::ParseString(
    const std::string& content, size_t expected_columns) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        break;
      case '\r':
        break;  // Tolerate CRLF line endings.
      case '\n':
        if (row_has_content || !field.empty() || !row.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
        }
        row_has_content = false;
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  if (row_has_content || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  if (expected_columns != kAnyColumns) {
    for (size_t r = 0; r < rows.size(); ++r) {
      if (rows[r].size() != expected_columns) {
        return Status::ParseError(
            "CSV row " + std::to_string(r + 1) + " has " +
            std::to_string(rows[r].size()) + " columns, expected " +
            std::to_string(expected_columns));
      }
    }
  }
  return rows;
}

StatusOr<const std::string*> CsvReader::Cell(
    const std::vector<std::string>& row, size_t column, size_t row_number) {
  if (column >= row.size()) {
    return Status::ParseError("CSV row " + std::to_string(row_number) +
                              " has no column " + std::to_string(column + 1) +
                              " (row has " + std::to_string(row.size()) +
                              " columns)");
  }
  return &row[column];
}

StatusOr<int64_t> CsvReader::Int64Field(const std::vector<std::string>& row,
                                        size_t column, size_t row_number) {
  ESP_ASSIGN_OR_RETURN(const std::string* cell, Cell(row, column, row_number));
  int64_t value = 0;
  if (!StrToInt64(*cell, &value)) {
    return Status::ParseError("CSV row " + std::to_string(row_number) +
                              " column " + std::to_string(column + 1) +
                              ": bad int64 '" + *cell + "'");
  }
  return value;
}

StatusOr<double> CsvReader::DoubleField(const std::vector<std::string>& row,
                                        size_t column, size_t row_number) {
  ESP_ASSIGN_OR_RETURN(const std::string* cell, Cell(row, column, row_number));
  double value = 0;
  if (!StrToDouble(*cell, &value)) {
    return Status::ParseError("CSV row " + std::to_string(row_number) +
                              " column " + std::to_string(column + 1) +
                              ": bad double '" + *cell + "'");
  }
  return value;
}

StatusOr<bool> CsvReader::BoolField(const std::vector<std::string>& row,
                                    size_t column, size_t row_number) {
  ESP_ASSIGN_OR_RETURN(const std::string* cell, Cell(row, column, row_number));
  const std::string lowered = StrToLower(*cell);
  if (lowered == "true") return true;
  if (lowered == "false") return false;
  return Status::ParseError("CSV row " + std::to_string(row_number) +
                            " column " + std::to_string(column + 1) +
                            ": bad bool '" + *cell +
                            "' (expected true or false)");
}

}  // namespace esp
