#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace esp {

std::string StrTrim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string StrToLower(const std::string& s) {
  std::string result = s;
  for (char& c : result) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return result;
}

std::string StrToUpper(const std::string& s) {
  std::string result = s;
  for (char& c : result) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return result;
}

std::vector<std::string> StrSplit(const std::string& s, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delimiter, start);
    if (pos == std::string::npos) {
      pieces.push_back(s.substr(start));
      break;
    }
    pieces.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    const std::string& separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result += separator;
    result += pieces[i];
  }
  return result;
}

bool StrEqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StrStartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::memcmp(s.data(), prefix.data(), prefix.size()) == 0;
}

bool StrToDouble(const std::string& s, double* out) {
  const std::string trimmed = StrTrim(s);
  if (trimmed.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (errno != 0 || end != trimmed.c_str() + trimmed.size()) return false;
  *out = value;
  return true;
}

bool StrToInt64(const std::string& s, int64_t* out) {
  const std::string trimmed = StrTrim(s);
  if (trimmed.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (errno != 0 || end != trimmed.c_str() + trimmed.size()) return false;
  *out = value;
  return true;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (size < 0) {
    va_end(args_copy);
    return "";
  }
  std::string result(static_cast<size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

}  // namespace esp
