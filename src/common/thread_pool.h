#ifndef ESP_COMMON_THREAD_POOL_H_
#define ESP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace esp {

/// \brief A fixed pool of worker threads with two entry points:
///
///  - Submit() queues an arbitrary task and returns a future — convenient
///    for one-off work and tests, at the cost of a heap allocation per task.
///  - ParallelFor() runs `body(i)` for i in [0, n) across the workers and
///    the calling thread, allocating nothing on the steady path: workers
///    claim indices from a shared atomic counter and the caller joins in,
///    so a pool of size 0 degenerates to a plain sequential loop.
///
/// ParallelFor calls must not be issued concurrently from multiple threads
/// (one parallel region at a time); Submit() is thread-safe and may be
/// interleaved, but queued tasks wait until the current parallel region
/// releases the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. Zero is valid: every ParallelFor runs
  /// inline on the caller and Submit executes eagerly on the caller.
  explicit ThreadPool(size_t num_threads);

  /// Blocks until any in-flight ParallelFor region has fully completed
  /// (including the calling thread's epilogue) before tearing the pool
  /// down, so destroying the pool from another thread while a region is
  /// running is safe — the region finishes, then the workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Queues `task` for execution on a worker (or runs it inline when the
  /// pool has no threads). The future resolves when the task returns;
  /// exceptions propagate through the future.
  std::future<void> Submit(std::function<void()> task);

  /// Runs body(0) .. body(n-1), distributing indices dynamically across
  /// the workers and the calling thread. Returns once every index has
  /// completed. `body` must be safe to invoke concurrently for distinct
  /// indices. No allocation occurs per call or per index.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();
  /// Claims loop indices until the region of size `n` is exhausted or the
  /// region's generation tag no longer matches `generation` (the region
  /// ended while this thread was stalled — it must not claim from the
  /// successor region). `body` and `n` are snapshotted under `mu_` by the
  /// claimer and only dereferenced after a successful same-generation
  /// claim, so stale claimers never touch reset or destroyed state.
  void DrainRegion(uint64_t generation,
                   const std::function<void(size_t)>& body, size_t n);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable wake_;     // Workers wait here for work.
  std::condition_variable region_done_;  // ParallelFor caller waits here.
  bool shutdown_ = false;

  // One-off task queue (Submit).
  std::queue<std::packaged_task<void()>> tasks_;

  // Current ParallelFor region. `generation_` bumps when a region opens so
  // sleeping workers can tell a new region from a spurious wake.
  uint64_t generation_ = 0;
  const std::function<void(size_t)>* body_ = nullptr;
  size_t region_size_ = 0;
  /// Claim word: generation tag in the high 32 bits, next unclaimed index
  /// in the low 32 bits. Claims CAS the index forward only while the tag
  /// matches, so a claimer stalled past its region's end backs off instead
  /// of stealing an index from the next region.
  std::atomic<uint64_t> claim_{0};
  std::atomic<size_t> completed_{0};
};

}  // namespace esp

#endif  // ESP_COMMON_THREAD_POOL_H_
