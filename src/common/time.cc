#include "common/time.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace esp {

std::string Duration::ToString() const {
  char buf[64];
  const int64_t us = micros_;
  if (us % (86400LL * 1000000LL) == 0 && us != 0) {
    std::snprintf(buf, sizeof(buf), "%lldd",
                  static_cast<long long>(us / (86400LL * 1000000LL)));
  } else if (us % (3600LL * 1000000LL) == 0 && us != 0) {
    std::snprintf(buf, sizeof(buf), "%lldh",
                  static_cast<long long>(us / (3600LL * 1000000LL)));
  } else if (us % (60LL * 1000000LL) == 0 && us != 0) {
    std::snprintf(buf, sizeof(buf), "%lldmin",
                  static_cast<long long>(us / (60LL * 1000000LL)));
  } else if (us % 1000000LL == 0) {
    std::snprintf(buf, sizeof(buf), "%llds",
                  static_cast<long long>(us / 1000000LL));
  } else if (us % 1000LL == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms",
                  static_cast<long long>(us / 1000LL));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

std::string Timestamp::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.3fs", seconds());
  return buf;
}

StatusOr<Duration> ParseDuration(const std::string& text) {
  const std::string trimmed = StrTrim(text);
  if (trimmed.empty()) {
    return Status::ParseError("empty duration specification");
  }
  if (StrToLower(trimmed) == "now") return Duration::Zero();

  // Split into a numeric prefix and a unit suffix.
  size_t pos = 0;
  while (pos < trimmed.size() &&
         (std::isdigit(static_cast<unsigned char>(trimmed[pos])) ||
          trimmed[pos] == '.' || trimmed[pos] == '-' || trimmed[pos] == '+')) {
    ++pos;
  }
  if (pos == 0) {
    return Status::ParseError("duration must start with a number: '" + text +
                              "'");
  }
  double magnitude = 0.0;
  if (!StrToDouble(trimmed.substr(0, pos), &magnitude)) {
    return Status::ParseError("bad duration magnitude: '" + text + "'");
  }
  if (magnitude < 0) {
    return Status::ParseError("duration must be non-negative: '" + text + "'");
  }
  const std::string unit = StrToLower(StrTrim(trimmed.substr(pos)));

  if (unit == "us" || unit == "usec" || unit == "microsecond" ||
      unit == "microseconds") {
    return Duration::Micros(static_cast<int64_t>(std::llround(magnitude)));
  }
  if (unit == "ms" || unit == "msec" || unit == "millisecond" ||
      unit == "milliseconds") {
    return Duration::Micros(static_cast<int64_t>(std::llround(magnitude * 1e3)));
  }
  if (unit == "s" || unit == "sec" || unit == "secs" || unit == "second" ||
      unit == "seconds") {
    return Duration::Seconds(magnitude);
  }
  if (unit == "min" || unit == "mins" || unit == "minute" ||
      unit == "minutes") {
    return Duration::Minutes(magnitude);
  }
  if (unit == "h" || unit == "hour" || unit == "hours") {
    return Duration::Hours(magnitude);
  }
  if (unit == "d" || unit == "day" || unit == "days") {
    return Duration::Days(magnitude);
  }
  return Status::ParseError("unknown duration unit '" + unit + "' in '" +
                            text + "'");
}

}  // namespace esp
