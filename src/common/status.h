#ifndef ESP_COMMON_STATUS_H_
#define ESP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace esp {

/// \brief Canonical error codes used throughout the ESP library.
///
/// The library does not throw exceptions; every fallible operation returns a
/// Status (or StatusOr<T> when it also produces a value).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kTypeError,
  kIoError,
  /// The operation cannot make progress right now and should be retried
  /// (EAGAIN / EWOULDBLOCK on a non-blocking socket).
  kUnavailable,
  /// A blocking syscall was interrupted by a signal (EINTR).
  kInterrupted,
  /// The peer reset or closed the connection (ECONNRESET / EPIPE).
  kConnectionReset,
  /// A deadline elapsed before the operation completed (ETIMEDOUT, or a
  /// library-level read/write/connect timeout).
  kTimedOut,
  /// The system is not in a state the operation requires and retrying the
  /// same call cannot fix it (e.g. an ingest server that lost state the
  /// client already pruned against).
  kFailedPrecondition,
  /// A per-tenant or per-resource budget is exhausted (query count, window
  /// memory, eval-time). Retrying without freeing or raising the budget
  /// cannot succeed (admission control, cql/query_registry.h).
  kResourceExhausted,
};

/// \brief Returns a human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error result, modeled after absl::Status.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message describing what went wrong.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors for each error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Interrupted(std::string msg) {
    return Status(StatusCode::kInterrupted, std::move(msg));
  }
  static Status ConnectionReset(std::string msg) {
    return Status(StatusCode::kConnectionReset, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// Builds an error from the current `errno` (as captured in `err`):
  /// "<context>: <strerror text> (errno N)". Retryable and connection-level
  /// conditions map to distinct codes so callers can branch without string
  /// matching: EAGAIN/EWOULDBLOCK -> kUnavailable, EINTR -> kInterrupted,
  /// ECONNRESET/EPIPE -> kConnectionReset, ETIMEDOUT -> kTimedOut,
  /// ENOENT -> kNotFound, EEXIST -> kAlreadyExists; everything else is
  /// kIoError. All new syscall error paths should use this instead of
  /// hand-rolling strerror messages.
  static Status FromErrno(const std::string& context, int err);

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Holds either a value of type T or an error Status.
///
/// Accessing the value of a non-OK StatusOr aborts in debug builds; callers
/// must check ok() first (or use value_or()).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, mirroring absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status from an expression to the caller.
#define ESP_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::esp::Status _esp_status = (expr);          \
    if (!_esp_status.ok()) return _esp_status;   \
  } while (0)

/// Evaluates a StatusOr expression; on error returns the Status, otherwise
/// assigns the value to `lhs`. `lhs` may include a declaration.
#define ESP_ASSIGN_OR_RETURN(lhs, expr)                     \
  ESP_ASSIGN_OR_RETURN_IMPL(                                \
      ESP_STATUS_CONCAT(_esp_statusor, __LINE__), lhs, expr)

#define ESP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define ESP_STATUS_CONCAT(a, b) ESP_STATUS_CONCAT_IMPL(a, b)
#define ESP_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace esp

#endif  // ESP_COMMON_STATUS_H_
